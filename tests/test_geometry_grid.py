"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Grid2D, Rect


class TestConstruction:
    def test_dims_and_pitch(self, grid16):
        assert grid16.shape == (16, 16)
        assert grid16.dx == pytest.approx(0.5)
        assert grid16.dy == pytest.approx(0.5)
        assert grid16.bin_area == pytest.approx(0.25)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Grid2D(Rect(0, 0, 1, 1), 0, 4)
        with pytest.raises(ValueError):
            Grid2D(Rect(0, 0, 1, 1), 4, -1)

    def test_zero_area_region(self):
        with pytest.raises(ValueError):
            Grid2D(Rect(0, 0, 0, 1), 4, 4)


class TestIndexing:
    def test_scalar_index(self, grid16):
        assert grid16.index_of(0.25, 0.25) == (0, 0)
        assert grid16.index_of(7.75, 7.75) == (15, 15)

    def test_clamping_outside(self, grid16):
        assert grid16.index_of(-5.0, 100.0) == (0, 15)

    def test_boundary_point_clamps_to_last_bin(self, grid16):
        assert grid16.index_of(8.0, 8.0) == (15, 15)

    def test_array_index(self, grid16):
        i, j = grid16.index_of(np.array([0.1, 4.0]), np.array([0.1, 4.0]))
        assert list(i) == [0, 8]
        assert list(j) == [0, 8]

    def test_bin_rect_roundtrip(self, grid16):
        r = grid16.bin_rect(3, 7)
        cx, cy = r.center
        assert grid16.index_of(cx, cy) == (3, 7)

    def test_center_of(self, grid16):
        cx, cy = grid16.center_of(0, 0)
        assert (cx, cy) == (pytest.approx(0.25), pytest.approx(0.25))

    def test_centers_meshgrid(self, grid16):
        X, Y = grid16.centers()
        assert X.shape == grid16.shape
        assert X[1, 0] - X[0, 0] == pytest.approx(grid16.dx)
        assert Y[0, 1] - Y[0, 0] == pytest.approx(grid16.dy)


class TestSampling:
    def test_value_at_nearest(self, grid16):
        m = grid16.zeros()
        m[3, 7] = 5.0
        cx, cy = grid16.center_of(3, 7)
        assert grid16.value_at(m, cx, cy) == 5.0
        assert grid16.value_at(m, cx + grid16.dx, cy) == 0.0

    def test_value_at_shape_mismatch(self, grid16):
        with pytest.raises(ValueError):
            grid16.value_at(np.zeros((3, 3)), 1.0, 1.0)

    def test_bilinear_matches_nearest_at_centers(self, grid16, rng):
        m = rng.random(grid16.shape)
        X, Y = grid16.centers()
        v = grid16.bilinear_at(m, X.ravel(), Y.ravel())
        assert np.allclose(v, m.ravel())

    def test_bilinear_interpolates_midpoint(self, grid16):
        m = grid16.zeros()
        m[0, 0] = 0.0
        m[1, 0] = 2.0
        x0, y0 = grid16.center_of(0, 0)
        v = grid16.bilinear_at(m, x0 + grid16.dx / 2, y0)
        assert v == pytest.approx(1.0)

    @given(st.floats(-2, 10), st.floats(-2, 10))
    def test_bilinear_never_exceeds_map_range(self, x, y):
        g = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        m = np.arange(256, dtype=float).reshape(16, 16)
        v = g.bilinear_at(m, x, y)
        assert m.min() - 1e-9 <= v <= m.max() + 1e-9


class TestNonFiniteCoords:
    """Regression: NaN/Inf coordinates used to map platform-dependently.

    ``np.floor(nan).astype(int64)`` is INT64_MIN on x86 but 0 on ARM,
    and ``np.clip`` passes NaN straight through the bilinear path.  The
    sanitize step pins the behavior: NaN -> the low-edge bin, +/-Inf ->
    the respective edge bins, on every platform.
    """

    @pytest.fixture(autouse=True)
    def _contracts_off(self):
        # pin mode so the sanitize path is what's under test even when
        # the suite runs with REPRO_CHECK_INVARIANTS=raise; the two
        # contract tests below opt back in explicitly
        from repro.utils import contracts

        contracts.configure(mode="off")

    def test_index_of_nan_maps_to_bin_zero(self, grid16):
        assert grid16.index_of(np.nan, np.nan) == (0, 0)

    def test_index_of_inf_saturates_to_edges(self, grid16):
        i, j = grid16.index_of(np.inf, -np.inf)
        assert (i, j) == (grid16.nx - 1, 0)

    def test_index_of_array_mixed(self, grid16):
        x = np.array([1.0, np.nan, np.inf])
        y = np.array([-np.inf, 1.0, np.nan])
        i, j = grid16.index_of(x, y)
        assert i.tolist() == [2, 0, grid16.nx - 1]
        assert j.tolist() == [0, 2, 0]

    def test_index_of_finite_path_unchanged(self, grid16, rng):
        x = rng.uniform(-1, 9, 64)
        y = rng.uniform(-1, 9, 64)
        i, j = grid16.index_of(x, y)
        ii = np.clip(np.floor((x - 0.0) / grid16.dx).astype(np.int64), 0, 15)
        jj = np.clip(np.floor((y - 0.0) / grid16.dy).astype(np.int64), 0, 15)
        assert np.array_equal(i, ii) and np.array_equal(j, jj)

    def test_bilinear_at_nan_is_finite_and_deterministic(self, grid16, rng):
        m = rng.random(grid16.shape)
        v = grid16.bilinear_at(m, np.nan, 1.0)
        assert np.isfinite(v)
        # NaN sanitizes to fractional coordinate 0 = the low-edge center
        x0, _ = grid16.center_of(0, 0)
        assert v == pytest.approx(float(grid16.bilinear_at(m, x0, 1.0)))

    def test_contract_violation_reported_in_warn_mode(self, grid16):
        from repro.utils import contracts

        contracts.configure(mode="warn")
        grid16.index_of(np.nan, 1.0)
        assert contracts.CONTRACTS.n_violations == 1
        assert contracts.CONTRACTS.violations[0]["site"] == "grid.index_of"

    def test_contract_raises_in_raise_mode(self, grid16):
        from repro.utils import contracts
        from repro.utils.contracts import ContractViolation

        contracts.configure(mode="raise")
        with pytest.raises(ContractViolation, match="grid.finite_coords"):
            grid16.bilinear_at(np.zeros(grid16.shape), np.inf, 0.0)

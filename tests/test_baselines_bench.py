"""Flow runners and benchmark harness tests."""

import numpy as np
import pytest

from repro.baselines import (
    ablation_config,
    make_gp_seed,
    run_ours,
    run_xplace,
    run_xplace_route,
    xplace_route_config,
)
from repro.bench.harness import ABLATION_ROWS, run_design, table_rows
from repro.core import RDConfig
from repro.evalrt import EvalConfig
from repro.legalize import check_legal
from repro.place import GPConfig
from repro.route import RouterConfig
from repro.synth import toy_design


@pytest.fixture(scope="module")
def shared():
    """One design + GP seed reused by all flow tests (expensive)."""
    nl = toy_design(200, seed=11)
    gp = GPConfig(max_iters=150)
    seed = make_gp_seed(nl, gp)
    rd = RDConfig(gp=gp, max_rounds=2, iters_per_round=10)
    return nl, gp, rd, seed


class TestConfigs:
    def test_xplace_route_recipe(self):
        cfg = xplace_route_config()
        assert cfg.inflation_mode == "present"
        assert cfg.pg_mode == "static"
        assert not cfg.enable_dc

    def test_ablation_rows_match_table2(self):
        base = ablation_config(mci=False, dc=False, dpa=False)
        assert base.inflation_mode == "present" and base.pg_mode == "static"
        full = ablation_config(mci=True, dc=True, dpa=True)
        assert full.inflation_mode == "momentum"
        assert full.pg_mode == "dynamic"
        assert full.enable_dc

    def test_ablation_row_labels(self):
        labels = [label for label, _ in ABLATION_ROWS]
        assert labels == ["baseline", "+MCI", "+MCI+DC", "+MCI+DC+DPA"]


class TestFlows:
    def test_xplace_flow_legal(self, shared):
        nl, gp, rd, seed = shared
        flow = run_xplace(nl, gp, seed)
        assert flow.name == "Xplace"
        assert check_legal(flow.netlist) == []
        assert flow.placement_time >= seed.time

    def test_xplace_route_flow(self, shared):
        nl, gp, rd, seed = shared
        flow = run_xplace_route(nl, rd, seed)
        assert flow.name == "Xplace-Route"
        assert flow.rd_result is not None
        assert check_legal(flow.netlist) == []

    def test_ours_flow(self, shared):
        nl, gp, rd, seed = shared
        flow = run_ours(nl, rd, seed)
        assert flow.name == "Ours"
        assert flow.rd_result.n_rounds >= 1
        assert check_legal(flow.netlist) == []

    def test_flows_do_not_mutate_input(self, shared):
        nl, gp, rd, seed = shared
        x_before = nl.x.copy()
        run_xplace(nl, gp, seed)
        assert np.array_equal(nl.x, x_before)

    def test_seed_shared_start(self, shared):
        nl, gp, rd, seed = shared
        f1 = run_xplace(nl, gp, seed)
        f2 = run_xplace(nl, gp, seed)
        assert np.array_equal(f1.netlist.x, f2.netlist.x)


class TestHarness:
    def test_run_design_rows(self):
        nl = toy_design(150, seed=4)
        outcome = run_design(
            nl,
            gp_config=GPConfig(max_iters=120),
            rd_config=RDConfig(
                gp=GPConfig(max_iters=120), max_rounds=2, iters_per_round=10
            ),
            eval_config=EvalConfig(
                grid_dim_factor=1, router=RouterConfig(rrr_rounds=1)
            ),
        )
        rows = table_rows([outcome])
        assert {r.placer for r in rows} == {"Xplace", "Xplace-Route", "Ours"}
        for r in rows:
            assert r.metrics["#DRVs"] >= 0
            assert r.metrics["DRWL"] > 0
            assert r.metrics["PT"] > 0

    def test_unknown_placer_rejected(self):
        nl = toy_design(100, seed=1)
        with pytest.raises(ValueError):
            run_design(nl, placers=("Bogus",), gp_config=GPConfig(max_iters=50))

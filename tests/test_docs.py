"""Documentation system: coverage gate + fallback API-reference build."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(script: str):
    path = os.path.join(REPO, "scripts", script)
    spec = importlib.util.spec_from_file_location(script[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def check_docstrings():
    return _load("check_docstrings.py")


@pytest.fixture(scope="module")
def build_docs():
    return _load("build_docs.py")


class TestDocstringGate:
    def test_coverage_meets_pyproject_floor(self, check_docstrings):
        """src/repro stays above the [tool.interrogate] fail-under."""
        floor = check_docstrings.read_fail_under(
            os.path.join(REPO, "pyproject.toml")
        )
        results = check_docstrings.collect(check_docstrings.TARGET)
        assert results, "collector found nothing — wrong target?"
        coverage = 100.0 * sum(ok for _, ok in results) / len(results)
        missing = [name for name, ok in results if not ok]
        assert coverage >= floor, (
            f"docstring coverage {coverage:.1f}% < floor {floor:.1f}%; "
            f"missing: {missing[:10]}"
        )

    def test_gate_counts_known_objects(self, check_docstrings, tmp_path):
        """Counting rules: modules/classes/public defs, no privates."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""pkg."""\n')
        (pkg / "mod.py").write_text(
            '"""mod."""\n'
            "def documented():\n"
            '    """Yes."""\n'
            "def undocumented():\n"
            "    pass\n"
            "def _private():\n"
            "    pass\n"
            "class K:\n"
            '    """K."""\n'
            "    def m(self):\n"
            "        pass\n"
            "    def __init__(self):\n"
            "        pass\n"
        )
        results = dict(check_docstrings.collect(str(pkg)))
        assert results == {
            "pkg": True,
            "pkg.mod": True,
            "pkg.mod.documented": True,
            "pkg.mod.undocumented": False,
            "pkg.mod.K": True,
            "pkg.mod.K.m": False,
        }

    def test_cli_passes_on_repo(self, check_docstrings, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["check_docstrings.py"])
        assert check_docstrings.main() == 0
        assert "PASSED" in capsys.readouterr().out


class TestFallbackBuild:
    def test_builds_full_reference_into_tmpdir(self, build_docs, tmp_path):
        out = tmp_path / "api"
        n = build_docs.build_fallback(str(out))
        assert n > 50  # the whole package, not a subset
        index = (out / "index.html").read_text()
        assert "repro.density.poisson" in index
        page = (out / "repro.density.poisson.html").read_text()
        # module docstring, class and method made it into the page
        assert "SpectralWorkspace" in page
        assert "bit-identical" in page
        assert "def solve(" in page

    def test_pages_escape_html(self, build_docs, tmp_path):
        """Docstrings containing markup must not inject raw HTML."""
        mod = tmp_path / "m.py"
        mod.write_text('"""Uses <angle> brackets & ampersands."""\n')
        html_page = build_docs._render_module("m", str(mod))
        assert "&lt;angle&gt;" in html_page
        assert "&amp;" in html_page

    def test_main_reports_success(self, build_docs, tmp_path, monkeypatch,
                                  capsys):
        monkeypatch.setattr(
            sys, "argv",
            ["build_docs.py", "--out", str(tmp_path / "o"),
             "--force-fallback"],
        )
        assert build_docs.main() == 0
        assert "fallback renderer" in capsys.readouterr().out
        assert (tmp_path / "o" / "index.html").is_file()

"""Documentation system: coverage gate, API/DSE builds, link checker."""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(script: str):
    path = os.path.join(REPO, "scripts", script)
    spec = importlib.util.spec_from_file_location(script[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def check_docstrings():
    return _load("check_docstrings.py")


@pytest.fixture(scope="module")
def build_docs():
    return _load("build_docs.py")


@pytest.fixture(scope="module")
def check_links():
    return _load("check_docs_links.py")


@pytest.fixture(scope="module")
def fill_experiments():
    return _load("fill_experiments.py")


class TestDocstringGate:
    def test_coverage_meets_pyproject_floor(self, check_docstrings):
        """src/repro stays above the [tool.interrogate] fail-under."""
        floor = check_docstrings.read_fail_under(
            os.path.join(REPO, "pyproject.toml")
        )
        results = check_docstrings.collect(check_docstrings.TARGET)
        assert results, "collector found nothing — wrong target?"
        coverage = 100.0 * sum(ok for _, ok in results) / len(results)
        missing = [name for name, ok in results if not ok]
        assert coverage >= floor, (
            f"docstring coverage {coverage:.1f}% < floor {floor:.1f}%; "
            f"missing: {missing[:10]}"
        )

    def test_gate_counts_known_objects(self, check_docstrings, tmp_path):
        """Counting rules: modules/classes/public defs, no privates."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""pkg."""\n')
        (pkg / "mod.py").write_text(
            '"""mod."""\n'
            "def documented():\n"
            '    """Yes."""\n'
            "def undocumented():\n"
            "    pass\n"
            "def _private():\n"
            "    pass\n"
            "class K:\n"
            '    """K."""\n'
            "    def m(self):\n"
            "        pass\n"
            "    def __init__(self):\n"
            "        pass\n"
        )
        results = dict(check_docstrings.collect(str(pkg)))
        assert results == {
            "pkg": True,
            "pkg.mod": True,
            "pkg.mod.documented": True,
            "pkg.mod.undocumented": False,
            "pkg.mod.K": True,
            "pkg.mod.K.m": False,
        }

    def test_cli_passes_on_repo(self, check_docstrings, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["check_docstrings.py"])
        assert check_docstrings.main() == 0
        assert "PASSED" in capsys.readouterr().out


class TestFallbackBuild:
    def test_builds_full_reference_into_tmpdir(self, build_docs, tmp_path):
        out = tmp_path / "api"
        n = build_docs.build_fallback(str(out))
        assert n > 50  # the whole package, not a subset
        index = (out / "index.html").read_text()
        assert "repro.density.poisson" in index
        page = (out / "repro.density.poisson.html").read_text()
        # module docstring, class and method made it into the page
        assert "SpectralWorkspace" in page
        assert "bit-identical" in page
        assert "def solve(" in page

    def test_pages_escape_html(self, build_docs, tmp_path):
        """Docstrings containing markup must not inject raw HTML."""
        mod = tmp_path / "m.py"
        mod.write_text('"""Uses <angle> brackets & ampersands."""\n')
        html_page = build_docs._render_module("m", str(mod))
        assert "&lt;angle&gt;" in html_page
        assert "&amp;" in html_page

    def test_main_reports_success(self, build_docs, tmp_path, monkeypatch,
                                  capsys):
        monkeypatch.setattr(
            sys, "argv",
            ["build_docs.py", "--out", str(tmp_path / "o"),
             "--force-fallback", "--skip-dse"],
        )
        assert build_docs.main() == 0
        assert "fallback renderer" in capsys.readouterr().out
        assert (tmp_path / "o" / "index.html").is_file()


class TestDseDashboardBuild:
    def test_builds_from_golden_database(self, build_docs, tmp_path):
        """The docs build renders the DSE report from tests/golden/dse."""
        out = tmp_path / "dse"
        index = build_docs.build_dse_report(str(out))
        assert os.path.isfile(index)
        page = open(index, encoding="utf-8").read()
        # golden sweep trends and bench regression deltas both render
        assert "inflation.alpha" in page
        assert "Bench history" in page
        assert "<svg" in page

    def test_main_builds_dashboard_by_default(self, build_docs, tmp_path,
                                              monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "argv",
            ["build_docs.py", "--out", str(tmp_path / "api"),
             "--force-fallback", "--dse-out", str(tmp_path / "dse")],
        )
        assert build_docs.main() == 0
        assert "DSE dashboard" in capsys.readouterr().out
        assert (tmp_path / "dse" / "index.html").is_file()


class TestLinkChecker:
    def test_repo_docs_are_clean(self, check_links, capsys):
        """Every intra-doc link in the repo's markdown resolves."""
        assert check_links.main([]) == 0
        assert "all intra-doc links resolve" in capsys.readouterr().out

    def test_catches_broken_target_and_anchor(self, check_links, tmp_path,
                                              capsys):
        good = tmp_path / "good.md"
        good.write_text("# Real Heading\n\nbody\n")
        bad = tmp_path / "bad.md"
        bad.write_text(
            "[gone](missing.md)\n"
            "[no anchor](good.md#fake-heading)\n"
            "[ok](good.md#real-heading)\n"
            "[self](#nope)\n"
        )
        assert check_links.main([str(bad)]) == 3
        out = capsys.readouterr().out
        assert "missing target missing.md" in out
        assert "no heading for good.md#fake-heading" in out
        assert "no heading for #nope" in out

    def test_skips_code_fences_and_external(self, check_links, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ext](https://example.com/x)\n"
            "```\n[fenced](nowhere.md)\n```\n"
        )
        assert check_links.main([str(doc)]) == 0

    def test_slugify_matches_github_rules(self, check_links):
        assert check_links.slugify("5e. Numeric invariants") == \
            "5e-numeric-invariants"
        assert check_links.slugify("`repro dse` quickstart") == \
            "repro-dse-quickstart"


class TestFillExperiments:
    def test_load_rows_accepts_both_shapes(self, fill_experiments, tmp_path):
        """Bare row lists and bench --out payload dicts both load."""
        rows = [{"design": "d", "placer": "Ours", "metrics": {"#DRVs": 3.0}}]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(rows))
        payload = tmp_path / "payload.json"
        payload.write_text(json.dumps({"rows": rows, "supervisor": {}}))
        for path in (bare, payload):
            loaded = fill_experiments.load_rows(str(path))
            assert len(loaded) == 1
            assert loaded[0].placer == "Ours"
            assert loaded[0].metrics["#DRVs"] == 3.0

    def test_load_rows_rejects_unknown_dict(self, fill_experiments, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not_rows": []}))
        with pytest.raises(SystemExit, match="no 'rows' key"):
            fill_experiments.load_rows(str(bad))

    def test_fill_block_replaces_only_marked_region(self, fill_experiments):
        text = "pre\n<!-- fill:t -->\nOLD\n<!-- /fill:t -->\npost"
        out = fill_experiments.fill_block(text, "t", "NEW")
        assert out == "pre\n<!-- fill:t -->\nNEW\n<!-- /fill:t -->\npost"
        with pytest.raises(SystemExit, match="missing"):
            fill_experiments.fill_block(text, "absent", "x")

    def test_experiments_md_is_in_sync(self, fill_experiments):
        """Committed EXPERIMENTS.md matches a fresh regeneration."""
        text = open(fill_experiments.EXPERIMENTS).read()
        t1 = fill_experiments.load_rows(os.path.join(REPO, "results",
                                                     "table1.json"))
        body = fill_experiments.ratio_table(
            t1, "Ours", keys=("DRWL", "#DRVias", "#DRVs", "PT", "RT"),
            bold="#DRVs")
        assert fill_experiments.fill_block(text, "table1", body) == text

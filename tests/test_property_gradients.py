"""Hypothesis property tests for the Alg. 1 / Alg. 2 gradient chains.

Two structural properties the differential checker cannot cover:

* fixed cells receive *exactly* zero gradient, whatever the scene;
* the whole construction is translation-invariant — shifting the die,
  the grid and every cell by one uniform offset leaves the gradients
  (computed in the shifted frame) numerically unchanged.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.congestion_field import CongestionField
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.netmove import two_pin_net_gradients
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec


def _scene(positions, fixed_mask, shift=(0.0, 0.0)):
    """Deterministic multi-net scene, optionally in a shifted frame.

    ``positions`` is a flat list of coordinates in (0, 1) fractions of
    the usable die interior; cells are paired into two-pin nets, and
    every cell additionally joins one shared multi-pin net so the
    Alg. 2 hub selection has structure to work with.
    """
    sx, sy = shift
    die = Rect(0.0 + sx, 0.0 + sy, 10.0 + sx, 10.0 + sy)
    grid = Grid2D(die, 20, 20)
    cells = []
    nets = []
    n = len(positions) // 2
    for k in range(n):
        x = die.xlo + 1.5 + 7.0 * positions[2 * k]
        y = die.ylo + 1.5 + 7.0 * positions[2 * k + 1]
        cells.append(
            CellSpec(f"c{k}", 0.5, 0.5, x=x, y=y, fixed=bool(fixed_mask[k]))
        )
    for k in range(0, n - 1, 2):
        nets.append(
            NetSpec(f"n{k}", pins=[PinSpec(f"c{k}"), PinSpec(f"c{k + 1}")])
        )
    # a hub net touching every cell gives some cells above-average pin
    # counts once paired with the two-pin nets
    nets.append(NetSpec("hub", pins=[PinSpec(f"c{k}") for k in range(n)]))
    netlist = Netlist.from_specs("prop", die, cells, nets)

    gx, gy = grid.centers()
    congestion = 0.3 + np.exp(
        -((gx - die.xlo - 5.0) ** 2 + (gy - die.ylo - 5.0) ** 2) / 8.0
    )
    field = CongestionField(grid, congestion)
    return netlist, grid, congestion, field


coords = st.lists(
    st.floats(0.0, 1.0, allow_nan=False, width=32), min_size=12, max_size=12
)
fixed6 = st.lists(st.booleans(), min_size=6, max_size=6)


class TestFixedCellsGetZeroGradient:
    @given(positions=coords, fixed_mask=fixed6)
    @settings(max_examples=25, deadline=None)
    def test_netmove_fixed_exactly_zero(self, positions, fixed_mask):
        netlist, grid, congestion, field = _scene(positions, fixed_mask)
        grad_x, grad_y, _ = two_pin_net_gradients(
            netlist, grid, congestion, field, virtual_area=0.25
        )
        assert np.all(grad_x[netlist.cell_fixed] == 0.0)
        assert np.all(grad_y[netlist.cell_fixed] == 0.0)
        assert np.isfinite(grad_x).all() and np.isfinite(grad_y).all()

    @given(positions=coords, fixed_mask=fixed6)
    @settings(max_examples=25, deadline=None)
    def test_multipin_fixed_exactly_zero(self, positions, fixed_mask):
        netlist, grid, congestion, field = _scene(positions, fixed_mask)
        grad_x, grad_y, selected = multi_pin_cell_gradients(
            netlist, grid, congestion, field, threshold=0.2
        )
        assert np.all(grad_x[netlist.cell_fixed] == 0.0)
        assert np.all(grad_y[netlist.cell_fixed] == 0.0)
        assert not np.any(selected & netlist.cell_fixed)


class TestTranslationInvariance:
    @given(
        positions=coords,
        shift=st.tuples(
            st.floats(-40.0, 40.0, allow_nan=False, width=32),
            st.floats(-40.0, 40.0, allow_nan=False, width=32),
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_netmove_translation_invariant(self, positions, shift):
        fixed = [False] * 6
        nl0, g0, c0, f0 = _scene(positions, fixed)
        nl1, g1, c1, f1 = _scene(positions, fixed, shift=shift)
        gx0, gy0, _ = two_pin_net_gradients(nl0, g0, c0, f0, virtual_area=0.25)
        gx1, gy1, _ = two_pin_net_gradients(nl1, g1, c1, f1, virtual_area=0.25)
        np.testing.assert_allclose(gx1, gx0, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(gy1, gy0, rtol=1e-9, atol=1e-9)

    @given(
        positions=coords,
        shift=st.tuples(
            st.floats(-40.0, 40.0, allow_nan=False, width=32),
            st.floats(-40.0, 40.0, allow_nan=False, width=32),
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_multipin_translation_invariant(self, positions, shift):
        fixed = [False] * 6
        nl0, g0, c0, f0 = _scene(positions, fixed)
        nl1, g1, c1, f1 = _scene(positions, fixed, shift=shift)
        gx0, gy0, s0 = multi_pin_cell_gradients(nl0, g0, c0, f0, threshold=0.2)
        gx1, gy1, s1 = multi_pin_cell_gradients(nl1, g1, c1, f1, threshold=0.2)
        assert np.array_equal(s0, s1)
        np.testing.assert_allclose(gx1, gx0, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(gy1, gy0, rtol=1e-9, atol=1e-9)

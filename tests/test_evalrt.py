"""Routing-outcome evaluator tests."""

import numpy as np
import pytest

from repro.evalrt import EvalConfig, MetricRow, evaluate_routing, format_table, pin_access_violations, ratio_row
from repro.evalrt.evaluator import evaluation_grid
from repro.evalrt.pinaccess import pins_under_rails
from repro.geometry import Grid2D, Rect
from repro.legalize import legalize
from repro.netlist import CellSpec, Netlist, NetSpec, PGRailSpec, PinSpec
from repro.place import GlobalPlacer, GPConfig, initial_placement


@pytest.fixture
def placed_toy(toy300):
    initial_placement(toy300, 0)
    GlobalPlacer(toy300, GPConfig(max_iters=150)).run()
    legalize(toy300)
    return toy300


class TestPinsUnderRails:
    def test_band_membership(self):
        die = Rect(0, 0, 10, 10)
        cells = [
            CellSpec("on", 0.5, 0.5, x=5, y=2.0),
            CellSpec("off", 0.5, 0.5, x=5, y=5.0),
        ]
        nets = [NetSpec("n", [PinSpec("on"), PinSpec("off")])]
        rails = [PGRailSpec(Rect(0, 1.95, 10, 2.05), horizontal=True)]
        nl = Netlist.from_specs("d", die, cells, nets, pg_rails=rails)
        covered = pins_under_rails(nl, margin_fraction=0.2)
        assert covered[0] and not covered[1]

    def test_margin_extends_band(self):
        die = Rect(0, 0, 10, 10)
        cells = [CellSpec("near", 0.5, 0.5, x=5, y=2.2)]
        nets = [NetSpec("n", [PinSpec("near"), PinSpec("near", 0.1, 0)])]
        rails = [PGRailSpec(Rect(0, 1.95, 10, 2.05), horizontal=True)]
        nl = Netlist.from_specs("d", die, cells, nets, pg_rails=rails)
        assert pins_under_rails(nl, margin_fraction=0.2).all()
        assert not pins_under_rails(nl, margin_fraction=0.05).any()

    def test_no_rails(self, tiny_netlist):
        assert not pins_under_rails(tiny_netlist).any()


class TestViolationModel:
    def test_zero_when_uncongested(self, tiny_netlist):
        grid = Grid2D(tiny_netlist.die, 16, 16)
        rep = pin_access_violations(tiny_netlist, grid, np.zeros(grid.shape))
        assert rep.covered_pin_drvs == 0.0

    def test_ramp_behavior(self):
        die = Rect(0, 0, 10, 10)
        cells = [CellSpec("a", 0.5, 0.5, x=5, y=2.0)]
        nets = [NetSpec("n", [PinSpec("a"), PinSpec("a", 0.1, 0)])]
        rails = [PGRailSpec(Rect(0, 1.95, 10, 2.05), horizontal=True)]
        nl = Netlist.from_specs("d", die, cells, nets, pg_rails=rails)
        grid = Grid2D(die, 10, 10)
        cfg = EvalConfig()
        low = pin_access_violations(nl, grid, np.full(grid.shape, 0.4), cfg)
        mid = pin_access_violations(nl, grid, np.full(grid.shape, 0.85), cfg)
        high = pin_access_violations(nl, grid, np.full(grid.shape, 2.0), cfg)
        assert low.covered_pin_drvs == 0.0
        assert 0 < mid.covered_pin_drvs < high.covered_pin_drvs
        assert high.covered_pin_drvs == pytest.approx(2.0)  # both pins certain to fail

    def test_crowding(self):
        die = Rect(0, 0, 10, 10)
        # 60 pins piled into one tiny area
        cells = [CellSpec(f"c{i}", 0.2, 0.2, x=5.0, y=5.0) for i in range(30)]
        nets = [
            NetSpec(f"n{i}", [PinSpec(f"c{i}"), PinSpec(f"c{(i+1) % 30}")])
            for i in range(30)
        ]
        nl = Netlist.from_specs("crowd", die, cells, nets)
        grid = Grid2D(die, 10, 10)
        rep = pin_access_violations(nl, grid, np.zeros(grid.shape), EvalConfig())
        budget = EvalConfig().pin_budget_per_area * grid.bin_area
        assert rep.crowding_drvs == pytest.approx(60 - budget)


class TestEvaluator:
    def test_fields_populated(self, placed_toy):
        ev = evaluate_routing(placed_toy)
        assert ev.drwl > 0
        assert ev.n_vias > 0
        assert ev.n_drvs >= 0
        assert ev.routing_time > 0
        row = ev.as_row()
        assert {"DRWL", "#DRVias", "#DRVs", "RT"} == set(row)

    def test_deterministic(self, placed_toy):
        cfg = EvalConfig()
        grid = evaluation_grid(placed_toy, cfg)
        e1 = evaluate_routing(placed_toy, cfg, grid)
        e2 = evaluate_routing(placed_toy, cfg, grid)
        assert e1.n_drvs == e2.n_drvs
        assert e1.drwl == e2.drwl

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvalConfig(grid_dim_factor=0)
        with pytest.raises(ValueError):
            EvalConfig(access_util_floor=1.0, access_util_ceil=0.5)

    def test_grid_dim_scales(self, toy120):
        g1 = evaluation_grid(toy120, EvalConfig(grid_dim_factor=1))
        g2 = evaluation_grid(toy120, EvalConfig(grid_dim_factor=2))
        assert g2.nx == 2 * g1.nx


class TestReport:
    def _rows(self):
        return [
            MetricRow("d1", "A", {"#DRVs": 100.0, "DRWL": 10.0}),
            MetricRow("d1", "B", {"#DRVs": 50.0, "DRWL": 10.0}),
            MetricRow("d2", "A", {"#DRVs": 30.0, "DRWL": 20.0}),
            MetricRow("d2", "B", {"#DRVs": 10.0, "DRWL": 22.0}),
        ]

    def test_ratio_row(self):
        r = ratio_row(self._rows(), "B", keys=("#DRVs", "DRWL"))
        assert r["B"]["#DRVs"] == pytest.approx(1.0)
        assert r["A"]["#DRVs"] == pytest.approx((100 / 50 + 30 / 10) / 2)

    def test_exclusion(self):
        r = ratio_row(
            self._rows(),
            "B",
            keys=("#DRVs",),
            exclude={"#DRVs": {("d2", "A")}},
        )
        assert r["A"]["#DRVs"] == pytest.approx(2.0)

    def test_format_table_contains_everything(self):
        text = format_table(self._rows(), keys=("#DRVs", "DRWL"), reference_placer="B")
        assert "d1" in text and "d2" in text
        assert "Avg. Ratio" in text

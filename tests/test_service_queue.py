"""Persistent queue: deterministic ordering (hypothesis) + persistence.

The queue's scheduling contract — strictly higher priority first, FIFO
within a priority band, same submissions always the same order — is
what makes service runs reproducible, so the ordering properties are
pinned with hypothesis over arbitrary priority sequences, and the
persistence properties (atomic files, restart round-trip, corrupt-file
tolerance) with unit tests.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.queue import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    PersistentQueue,
    QueueEntry,
    execution_order,
)

priorities = st.lists(st.integers(min_value=-5, max_value=5), max_size=30)


def drain_order(queue: PersistentQueue) -> list:
    """Job ids in the order a scheduler would run them (simulated)."""
    order = []
    while True:
        entry = queue.next_ready()
        if entry is None:
            return order
        queue.update(entry, state=DONE)
        order.append(entry.job_id)


class TestOrderingProperties:
    @given(prios=priorities)
    @settings(max_examples=50, deadline=None)
    def test_drain_matches_execution_order(self, prios, tmp_path_factory):
        """Draining next_ready() one by one IS the pure execution_order."""
        root = str(tmp_path_factory.mktemp("q"))
        queue = PersistentQueue(root)
        for p in prios:
            queue.submit({"n": p}, priority=p)
        expected = [e.job_id for e in execution_order(queue.entries())]
        assert drain_order(queue) == expected

    @given(prios=priorities)
    @settings(max_examples=50, deadline=None)
    def test_same_submissions_same_order(self, prios, tmp_path_factory):
        """Two queues fed the same sequence drain identically."""
        roots = [str(tmp_path_factory.mktemp("q")) for _ in range(2)]
        orders = []
        for root in roots:
            queue = PersistentQueue(root)
            for p in prios:
                queue.submit({"n": p}, priority=p)
            orders.append(drain_order(queue))
        assert orders[0] == orders[1]

    @given(prios=priorities)
    @settings(max_examples=50, deadline=None)
    def test_priority_bands_fifo(self, prios, tmp_path_factory):
        """Higher priority strictly first; submission order within a band."""
        root = str(tmp_path_factory.mktemp("q"))
        queue = PersistentQueue(root)
        entries = [queue.submit({}, priority=p) for p in prios]
        by_id = {e.job_id: e for e in entries}
        order = drain_order(queue)
        ranks = {jid: k for k, jid in enumerate(order)}
        for a in entries:
            for b in entries:
                if a.priority > b.priority:
                    assert ranks[a.job_id] < ranks[b.job_id]
                elif a.priority == b.priority and a.seq < b.seq:
                    assert ranks[a.job_id] < ranks[b.job_id]
        assert sorted(order) == sorted(by_id)

    @given(prios=priorities)
    @settings(max_examples=25, deadline=None)
    def test_entries_stay_submission_ordered(self, prios, tmp_path_factory):
        """entries() reports submission order however the drain went."""
        root = str(tmp_path_factory.mktemp("q"))
        queue = PersistentQueue(root)
        for p in prios:
            queue.submit({}, priority=p)
        drain_order(queue)
        seqs = [e.seq for e in queue.entries()]
        assert seqs == sorted(seqs) == list(range(len(prios)))


class TestPersistence:
    def test_restart_round_trip(self, tmp_path):
        """A rebuilt queue sees every entry, field for field."""
        root = str(tmp_path / "q")
        queue = PersistentQueue(root)
        a = queue.submit({"kind": "place"}, priority=3)
        b = queue.submit({"kind": "route"}, job_id="named")
        queue.update(a, state=DONE, result={"hpwl": 1.0})
        reloaded = PersistentQueue(root)
        assert [e.as_dict() for e in reloaded.entries()] == [
            a.as_dict(), b.as_dict(),
        ]
        assert reloaded._next_seq == 2

    def test_duplicate_job_id_rejected(self, tmp_path):
        queue = PersistentQueue(str(tmp_path / "q"))
        queue.submit({}, job_id="x")
        with pytest.raises(ValueError, match="duplicate"):
            queue.submit({}, job_id="x")

    def test_requeue_incomplete(self, tmp_path):
        """Only RUNNING entries return to QUEUED, flagged for resume."""
        queue = PersistentQueue(str(tmp_path / "q"))
        run = queue.submit({})
        done = queue.submit({})
        queued = queue.submit({})
        queue.update(run, state=RUNNING, worker_pid=123)
        queue.update(done, state=DONE)
        requeued = PersistentQueue(queue.root).requeue_incomplete()
        assert [e.job_id for e in requeued] == [run.job_id]
        entry = requeued[0]
        assert entry.state == QUEUED
        assert entry.resume is True
        assert entry.worker_pid is None
        reloaded = PersistentQueue(queue.root)
        states = {e.job_id: e.state for e in reloaded.entries()}
        assert states == {
            run.job_id: QUEUED, done.job_id: DONE, queued.job_id: QUEUED,
        }

    def test_corrupt_entry_skipped_with_warning(self, tmp_path):
        """A torn queue file is skipped, not fatal to recovery."""
        queue = PersistentQueue(str(tmp_path / "q"))
        keep = queue.submit({})
        torn = queue.submit({})
        path = os.path.join(queue.root, f"{torn.seq:08d}.json")
        with open(path, "w") as fh:
            fh.write('{"job_id": "torn", "se')
        with pytest.warns(UserWarning, match="corrupt queue entry"):
            reloaded = PersistentQueue(queue.root)
        assert [e.job_id for e in reloaded.entries()] == [keep.job_id]
        # the next submission must not collide with the dead seq
        fresh = reloaded.submit({})
        assert fresh.seq > torn.seq

    def test_updates_are_atomic_files(self, tmp_path):
        """Every persisted entry parses; no tmp droppings left behind."""
        queue = PersistentQueue(str(tmp_path / "q"))
        entry = queue.submit({"k": 1}, priority=2)
        queue.update(entry, state=CANCELLED, error="x")
        names = sorted(os.listdir(queue.root))
        assert names == ["00000000.json"]
        with open(os.path.join(queue.root, names[0])) as fh:
            data = json.load(fh)
        assert QueueEntry.from_dict(data).as_dict() == entry.as_dict()

"""Service chaos: daemon SIGKILL recovery and cancel-during-resume.

The acceptance contract of the placement service under violence:

* SIGKILL the daemon with jobs queued *and* running — after a restart
  on the same root, every accepted job still completes; the job that
  was running warm-starts from its last ``.bak``-backed checkpoint
  instead of recomputing from scratch; the daemon's own telemetry
  stream stays schema-valid across lives.
* Cancel a job while it is stalled *inside* the checkpoint read of a
  resume attempt — the cancel wins, and no orphan heartbeat, result
  or temp files survive the supervisor teardown.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.io import save_design
from repro.jobs import CANCELLED, JobSpec, Supervisor, SupervisorConfig
from repro.service import ServiceClient
from repro.synth import SynthConfig, generate_design
from repro.utils import checkpoint, heartbeat
from repro.utils.faults import FaultPlan
from repro.utils.metrics import (
    MemorySink,
    MetricsRegistry,
    read_jsonl,
    validate_stream,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_design(path, congested: bool = False) -> str:
    """A design file; ``congested`` makes the RD loop run many rounds."""
    kwargs = dict(n_cells=110, seed=9)
    if congested:
        kwargs = dict(
            n_cells=300, seed=1, utilization=0.75, nets_per_cell=1.6
        )
    save_design(
        generate_design(SynthConfig(name="toy", **kwargs)), str(path)
    )
    return os.path.abspath(str(path))


def spawn_daemon(root: str, logfile) -> subprocess.Popen:
    """Start ``repro serve`` (inline execution) as a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--root", root, "--execution", "inline"],
        env=env, stdout=logfile, stderr=logfile,
    )


def wait_for_daemon(root: str, timeout: float = 60.0) -> ServiceClient:
    """Poll until a daemon answers on the (possibly re-written) address
    file; a stale file from a SIGKILLed life just fails the probe."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            client = ServiceClient(root=root, timeout=5.0)
            client.health()
            return client
        except (OSError, ValueError) as exc:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no daemon answering under {root}"
                ) from exc
            time.sleep(0.05)


@pytest.mark.chaos
class TestDaemonSigkill:
    def test_sigkill_daemon_recovers_queue_and_resumes(self, tmp_path):
        """Queued jobs survive a daemon SIGKILL; the running one
        warm-starts from its checkpoint after the restart."""
        design = make_design(tmp_path / "design.bl", congested=True)
        root = str(tmp_path / "service")
        os.makedirs(root)
        log = open(tmp_path / "daemon.log", "w")
        daemon = spawn_daemon(root, log)
        try:
            client = wait_for_daemon(root)
            slow = client.submit({
                "input": design, "routability": True, "iters": 40,
                "rounds": 8, "iters_per_round": 10,
            })["job_id"]
            quick = [
                client.submit({"input": design, "iters": 10})["job_id"]
                for _ in range(2)
            ]
            # wait for the running job's SECOND checkpoint write (a
            # `.bak` predecessor proves one good round is on disk)
            bak = Path(root) / "jobs" / slow / "flow.npz.bak"
            deadline = time.monotonic() + 120.0
            while not bak.exists():
                assert time.monotonic() < deadline, "no .bak appeared"
                assert daemon.poll() is None, "daemon died on its own"
                time.sleep(0.05)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=30)

            daemon = spawn_daemon(root, log)
            client = wait_for_daemon(root)
            entries = client.wait_all([slow, *quick], timeout=600)
            assert [e["state"] for e in entries] == ["DONE"] * 3
            assert entries[0]["resume"] is True
            client.shutdown()
            daemon.wait(timeout=60)
            # graceful HTTP shutdown completes its teardown even
            # though the scheduler/http threads exit first: the
            # address file is gone, and the stream got service.stop
            assert not os.path.exists(os.path.join(root, "service.json"))
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
            log.close()

        # the interrupted job's stream: first segment cut short by the
        # SIGKILL, second segment a resumed run that warm-started
        events = read_jsonl(
            str(Path(root) / "jobs" / slow / "metrics.jsonl")
        )
        validate_stream(events)
        starts = [e for e in events if e["kind"] == "run.start"]
        assert [s["resumed"] for s in starts] == [False, True]
        resumes = [e for e in events if e["kind"] == "rd.resume"]
        assert len(resumes) == 1 and resumes[0]["round"] >= 1
        assert events[-1]["kind"] == "run.end"

        # the daemon's own stream validates across both lives, and the
        # second life recorded the recovery of the interrupted job
        service_events = read_jsonl(os.path.join(root, "service.jsonl"))
        validate_stream(service_events)
        recoveries = [
            e for e in service_events if e["kind"] == "service.recover"
        ]
        assert [e["requeued"] for e in recoveries] == [0, 1]
        assert sum(
            1 for e in service_events if e["kind"] == "job.queued"
        ) == 3
        assert [e["kind"] for e in service_events[-2:]] == [
            "service.stop", "run.end",
        ]


# ----------------------------------------------------------------------
# cancel-during-resume (supervisor level)
# ----------------------------------------------------------------------
def job_resume_then_stall(ckpt: str, marker: str, ctx=None):
    """Attempt 0: write two checkpoints, then die at the fault site.
    Attempt 1: resume through ``read_checkpoint_with_fallback`` — a
    ``checkpoint.read`` delay plan holds the job inside the read, the
    window the test cancels into.  ``marker`` is only written if the
    resume ever completes (the test asserts it never does)."""
    from repro.utils import faults

    heartbeat.beat()
    if ctx.attempt == 0:
        for k in range(2):
            checkpoint.write_checkpoint(
                ckpt, {"round": k}, {"x": np.full(4, float(k))},
                keep_previous=True,
            )
        faults.fire("test.die")
        return "unreachable"  # pragma: no cover — SIGKILLed above
    meta, arrays, used = checkpoint.read_checkpoint_with_fallback(ckpt)
    with open(marker, "w") as fh:
        fh.write(used)
    while True:  # pragma: no cover — cancelled during the read
        heartbeat.beat()
        time.sleep(0.02)


@pytest.mark.service
class TestCancelDuringResume:
    def test_cancel_mid_resume_leaves_no_orphans(self, tmp_path):
        """A cancel landing inside the resume read wins, and teardown
        leaves no heartbeat/result/tmp droppings anywhere."""
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        ckpt = str(ckpt_dir / "flow.npz")
        marker = str(tmp_path / "resume-completed")
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        spec = JobSpec(
            "resume-cancel",
            fn=job_resume_then_stall,
            args=(ckpt, marker),
            with_context=True,
            checkpoint_path=ckpt,
            max_retries=1,
            fault_plans=(
                FaultPlan("test.die", mode="sigkill", attempts=1),
                FaultPlan("checkpoint.read", mode="delay", delay=20.0),
            ),
        )
        sup = Supervisor(
            SupervisorConfig(
                heartbeat_interval=0.02, poll_interval=0.01,
                backoff_base=0.01, cancel_grace=0.2,
            ),
            metrics=metrics,
        )
        try:
            sup.submit(spec)
            # drive the machine until the RETRY attempt starts, then
            # cancel into the stalled checkpoint read
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                sup.poll()
                starts = metrics.series.get("job.start", [])
                if any(s.get("attempt") == 1 for s in starts):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("retry attempt never started")
            sup.cancel("resume-cancel")
            results = sup.wait()
        finally:
            scratch = sup._root
            sup.close()
            metrics.close()

        assert results[0].state == CANCELLED
        assert results[0].attempts == 2
        # the resume never completed: cancel beat the stalled read
        assert not os.path.exists(marker)
        # no orphan supervisor scratch (heartbeat/result/cancel files)
        assert not os.path.exists(scratch)
        # the checkpoint directory holds exactly the two good archives
        assert sorted(os.listdir(ckpt_dir)) == ["flow.npz", "flow.npz.bak"]
        kinds = [e["kind"] for e in metrics.series.get("job.cancel", [])]
        assert kinds == ["job.cancel"]
        validate_stream([json.loads(line) for line in sink.lines])

"""Checkpoint integrity: digests, torn writes, backup fallback.

Covers the checksummed checkpoint format (per-member SHA-256 recorded
at write time, verified on read), the ``checkpoint.write`` torn-write
chaos hook, the ``.bak`` previous-good fallback consulted by
supervised retries, and the flow-level recovery behaviour of
:class:`~repro.core.rd_placer.RoutabilityDrivenPlacer` when its
checkpoint comes back damaged.
"""

from __future__ import annotations

import io
import json
import zipfile

import numpy as np
import pytest

from repro.core import RDConfig, RoutabilityDrivenPlacer
from repro.place import GPConfig
from repro.synth import toy_design
from repro.utils import faults
from repro.utils.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    backup_path,
    read_checkpoint,
    read_checkpoint_with_fallback,
    write_checkpoint,
)
from repro.utils.faults import FaultPlan
from repro.utils.metrics import MemorySink, MetricsRegistry

META = {"design": "t", "round": 2}
ARRAYS = {"x": np.linspace(0.0, 1.0, 7), "mask": np.arange(5)}


def _rd_config(**kw):
    """Small-but-real flow config (mirrors ``test_robustness``)."""
    defaults = dict(
        gp=GPConfig(max_iters=40, seed=1),
        max_rounds=3,
        iters_per_round=8,
        patience=10,
        stop_mean_congestion=0.0,
    )
    defaults.update(kw)
    return RDConfig(**defaults)


def _tamper_member(path: str, member: str, mutate) -> None:
    """Rewrite the archive with one member's bytes passed through
    ``mutate`` (zip structure stays valid, so only the digest check
    can catch the damage)."""
    with zipfile.ZipFile(path) as zf:
        members = [(info.filename, zf.read(info.filename))
                   for info in zf.infolist()]
    buf = io.BytesIO()
    with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in members:
            zf.writestr(name, mutate(data) if name == member else data)
    with open(path, "wb") as fh:
        fh.write(buf.getvalue())


class TestChecksumVerification:
    def test_roundtrip_reads_back_verified(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, META, ARRAYS)
        meta, arrays = read_checkpoint(path)
        assert meta == META
        assert set(arrays) == {"x", "mask"}
        assert np.array_equal(arrays["x"], ARRAYS["x"])
        assert np.array_equal(arrays["mask"], ARRAYS["mask"])

    def test_same_state_writes_identical_bytes(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        write_checkpoint(a, META, ARRAYS)
        write_checkpoint(b, META, ARRAYS)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_tampered_member_raises_with_digests(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, META, ARRAYS)
        # flip one payload byte, keeping the npy header intact
        _tamper_member(
            path, "x.npy",
            lambda data: data[:-1] + bytes([data[-1] ^ 0xFF]),
        )
        with pytest.raises(CheckpointCorruptError, match="digest mismatch"):
            read_checkpoint(path)
        try:
            read_checkpoint(path)
        except CheckpointCorruptError as exc:
            assert exc.path == path
            assert exc.member == "x.npy"
            assert exc.expected and exc.actual
            assert exc.expected != exc.actual
            # the message alone identifies the damage
            assert "x.npy" in str(exc) and exc.expected in str(exc)

    def test_truncated_archive_raises_corrupt(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, META, ARRAYS)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated or torn"):
            read_checkpoint(path)

    def test_missing_member_detected(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, META, ARRAYS)
        with zipfile.ZipFile(path) as zf:
            members = [(i.filename, zf.read(i.filename)) for i in zf.infolist()]
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            for name, data in members:
                if name != "mask.npy":
                    zf.writestr(name, data)
        open(path, "wb").write(buf.getvalue())
        with pytest.raises(CheckpointCorruptError, match="missing from archive"):
            read_checkpoint(path)

    def test_unmanifested_member_detected(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, META, ARRAYS)
        extra = io.BytesIO()
        np.lib.format.write_array(extra, np.zeros(3), allow_pickle=False)
        with zipfile.ZipFile(path, "a") as zf:
            zf.writestr("smuggled.npy", extra.getvalue())
        with pytest.raises(CheckpointCorruptError, match="not in manifest"):
            read_checkpoint(path)

    def test_pre_digest_format_still_loads(self, tmp_path):
        """Format-1 files (raw meta, no envelope) load unverified."""
        path = str(tmp_path / "old.npz")
        np.savez(
            path.rstrip(".npz"),
            __meta__=np.array(json.dumps(META)),
            x=ARRAYS["x"],
        )
        meta, arrays = read_checkpoint(str(tmp_path / "old.npz"))
        assert meta == META
        assert np.array_equal(arrays["x"], ARRAYS["x"])


@pytest.mark.faultinject
class TestTornWrite:
    def test_torn_write_detected_on_read(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        with faults.injected(FaultPlan("checkpoint.write", mode="torn")):
            write_checkpoint(path, META, ARRAYS)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)

    def test_torn_write_falls_back_to_previous_good(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(path, {"round": 1}, ARRAYS)
        with faults.injected(FaultPlan("checkpoint.write", mode="torn")):
            write_checkpoint(path, {"round": 2}, ARRAYS, keep_previous=True)
        # primary is torn, the .bak predecessor is the round-1 state
        meta, _, used = read_checkpoint_with_fallback(path)
        assert used == backup_path(path)
        assert meta == {"round": 1}


class TestFallback:
    def test_missing_primary_resolves_to_backup(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        write_checkpoint(backup_path(path), META, ARRAYS)
        meta, arrays, used = read_checkpoint_with_fallback(path)
        assert used == backup_path(path)
        assert meta == META

    def test_all_candidates_corrupt_reraises_primary(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        for candidate in (path, backup_path(path)):
            write_checkpoint(candidate, META, ARRAYS)
            data = open(candidate, "rb").read()
            open(candidate, "wb").write(data[:40])
        with pytest.raises(CheckpointCorruptError) as excinfo:
            read_checkpoint_with_fallback(path)
        assert excinfo.value.path == path

    def test_no_candidates_raises_plain_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such file"):
            read_checkpoint_with_fallback(str(tmp_path / "absent.npz"))


class TestFlowRecovery:
    """The routability flow survives damaged checkpoints."""

    @staticmethod
    def _multi_round_cfg():
        # toy300 + these settings complete all 3 rounds (no early
        # stop), so the .bak predecessor holds a mid-flow round
        return _rd_config(
            gp=GPConfig(max_iters=60, seed=1), max_rounds=3, iters_per_round=15
        )

    def _run_and_keep_backup(self, path, cfg):
        """Run a full flow; round N's save backs up round N-1's."""
        nl = toy_design(300, seed=3)
        RoutabilityDrivenPlacer(nl, cfg).run(checkpoint_path=path)
        return nl

    def test_corrupt_primary_resumes_from_backup(self, tmp_path):
        path = str(tmp_path / "flow.npz")
        self._run_and_keep_backup(path, self._multi_round_cfg())
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])

        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        nl = toy_design(300, seed=3)
        placer = RoutabilityDrivenPlacer(
            nl, self._multi_round_cfg(), metrics=metrics
        )
        result = placer.run(checkpoint_path=path, resume=True)
        metrics.close()
        assert result.resumed_from_round >= 0
        recoveries = metrics.series.get("rd.recovery", [])
        assert any(
            e["guard"] == "checkpoint_corrupt" and e["action"] == "fallback"
            for e in recoveries
        )

    def test_all_checkpoints_corrupt_cold_starts(self, tmp_path):
        path = str(tmp_path / "flow.npz")
        nl0 = toy_design(150, seed=5)
        RoutabilityDrivenPlacer(nl0, _rd_config()).run(checkpoint_path=path)
        for candidate in (path, backup_path(path)):
            data = open(candidate, "rb").read()
            open(candidate, "wb").write(data[:64])

        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        nl = toy_design(150, seed=5)
        placer = RoutabilityDrivenPlacer(nl, _rd_config(), metrics=metrics)
        result = placer.run(checkpoint_path=path, resume=True)
        metrics.close()
        # flow completed from scratch rather than propagating corruption
        assert result.resumed_from_round == -1
        recoveries = metrics.series.get("rd.recovery", [])
        assert any(
            e["guard"] == "checkpoint_corrupt" and e["action"] == "cold_start"
            for e in recoveries
        )
        assert any(
            g.kind == "checkpoint_corrupt" for g in placer.recovery_log.events
        )

"""Unit tests for the netlist hypergraph container."""

import pytest

from repro.geometry import Rect
from repro.netlist import (
    CellSpec,
    Netlist,
    NetSpec,
    PinSpec,
    compute_stats,
    validate_netlist,
)


class TestConstruction:
    def test_sizes(self, tiny_netlist):
        nl = tiny_netlist
        assert nl.n_cells == 4
        assert nl.n_nets == 2
        assert nl.n_pins == 5

    def test_duplicate_cell_names_rejected(self):
        cells = [CellSpec("a", 1, 1), CellSpec("a", 1, 1)]
        with pytest.raises(ValueError, match="duplicate"):
            Netlist.from_specs("d", Rect(0, 0, 5, 5), cells, [])

    def test_unknown_cell_in_net_rejected(self):
        cells = [CellSpec("a", 1, 1)]
        nets = [NetSpec("n", [PinSpec("ghost")])]
        with pytest.raises(ValueError, match="unknown cell"):
            Netlist.from_specs("d", Rect(0, 0, 5, 5), cells, nets)

    def test_validates_clean(self, tiny_netlist):
        validate_netlist(tiny_netlist)

    def test_movable_mask(self, tiny_netlist):
        assert list(tiny_netlist.movable) == [True, True, True, False]

    def test_cell_area(self, tiny_netlist):
        assert tiny_netlist.cell_area[2] == pytest.approx(2.0)


class TestConnectivity:
    def test_net_pins_roundtrip(self, tiny_netlist):
        nl = tiny_netlist
        for e in range(nl.n_nets):
            for p in nl.net_pins(e):
                assert nl.pin_net[p] == e

    def test_cell_pins_roundtrip(self, tiny_netlist):
        nl = tiny_netlist
        for c in range(nl.n_cells):
            for p in nl.cell_pins(c):
                assert nl.pin_cell[p] == c

    def test_degrees(self, tiny_netlist):
        assert list(tiny_netlist.net_degrees()) == [2, 3]
        assert list(tiny_netlist.cell_pin_counts()) == [2, 2, 1, 0]

    def test_pin_positions_follow_cells(self, tiny_netlist):
        nl = tiny_netlist
        px, py = nl.pin_positions()
        assert px[0] == pytest.approx(nl.x[0] + 0.1)
        nl.x[0] += 5.0
        px2, _ = nl.pin_positions()
        assert px2[0] == pytest.approx(px[0] + 5.0)


class TestMutation:
    def test_set_positions_preserves_identity(self, tiny_netlist):
        nl = tiny_netlist
        xref = nl.x
        nl.set_positions(nl.x + 1, nl.y + 1)
        assert nl.x is xref

    def test_clamp_to_die(self, tiny_netlist):
        nl = tiny_netlist
        nl.x[0] = -100.0
        nl.y[0] = 100.0
        nl.clamp_to_die()
        assert nl.x[0] == pytest.approx(nl.die.xlo + nl.cell_width[0] / 2)
        assert nl.y[0] == pytest.approx(nl.die.yhi - nl.cell_height[0] / 2)

    def test_clamp_does_not_move_fixed(self, tiny_netlist):
        nl = tiny_netlist
        nl.x[3] = -50.0  # fixed cell deliberately outside
        nl.clamp_to_die()
        assert nl.x[3] == -50.0

    def test_copy_isolates_positions(self, tiny_netlist):
        nl = tiny_netlist
        cp = nl.copy()
        cp.x[0] += 10
        assert nl.x[0] != cp.x[0]
        # topology shared
        assert cp.pin_cell is nl.pin_cell


class TestValidate:
    def test_catches_bad_pin_index(self, tiny_netlist):
        nl = tiny_netlist.copy()
        bad = nl.pin_cell.copy()
        bad[0] = 99
        nl.pin_cell = bad
        with pytest.raises(ValueError):
            validate_netlist(nl)

    def test_catches_nonpositive_size(self, tiny_netlist):
        nl = tiny_netlist.copy()
        w = nl.cell_width.copy()
        w[0] = 0.0
        nl.cell_width = w
        with pytest.raises(ValueError, match="positive"):
            validate_netlist(nl)

    def test_inside_die_check(self, tiny_netlist):
        nl = tiny_netlist.copy()
        nl.x[0] = -100
        with pytest.raises(ValueError, match="outside"):
            validate_netlist(nl, require_inside_die=True)


class TestStats:
    def test_basic_stats(self, tiny_netlist):
        s = compute_stats(tiny_netlist)
        assert s.n_cells == 4
        assert s.n_movable == 3
        assert s.n_macros == 1
        assert s.n_two_pin_nets == 1
        assert s.avg_net_degree == pytest.approx(2.5)
        assert s.avg_pins_per_cell == pytest.approx(5 / 4)

    def test_utilization_excludes_fixed(self, tiny_netlist):
        s = compute_stats(tiny_netlist)
        # movable area 4, free area = 100 - 4 (fixed macro)
        assert s.utilization == pytest.approx(4.0 / 96.0)

    def test_as_dict_keys(self, tiny_netlist):
        d = compute_stats(tiny_netlist).as_dict()
        assert {"cells", "nets", "pins", "utilization"} <= set(d)

"""End-to-end integration tests over the full pipeline."""

import numpy as np
import pytest

from repro.core import RDConfig, RoutabilityDrivenPlacer
from repro.detail import detailed_place
from repro.evalrt import evaluate_routing
from repro.geometry import Grid2D
from repro.io import dumps_design, loads_design
from repro.legalize import check_legal, legalize
from repro.netlist import validate_netlist
from repro.place import GPConfig
from repro.route import GlobalRouter
from repro.synth import toy_design
from repro.wirelength import hpwl


class TestFullPipeline:
    def test_place_route_legalize_refine_evaluate(self):
        nl = toy_design(250, seed=21)
        cfg = RDConfig(
            gp=GPConfig(max_iters=200),
            max_rounds=2,
            iters_per_round=15,
        )
        placer = RoutabilityDrivenPlacer(nl, cfg)
        result = placer.run()
        validate_netlist(nl)

        legalize(nl)
        assert check_legal(nl) == []
        stats = detailed_place(
            nl,
            passes=1,
            grid=placer.gp.grid,
            congestion=result.final_routing.congestion_map,
        )
        assert check_legal(nl) == []
        assert stats.hpwl_after <= stats.hpwl_before + 1e-9

        ev = evaluate_routing(nl)
        assert ev.n_drvs >= 0
        assert ev.drwl > 0

    def test_save_place_load_consistency(self):
        nl = toy_design(150, seed=5)
        cfg = RDConfig(gp=GPConfig(max_iters=100), max_rounds=1, iters_per_round=10)
        RoutabilityDrivenPlacer(nl, cfg).run()
        legalize(nl)
        back = loads_design(dumps_design(nl))
        assert hpwl(back) == pytest.approx(hpwl(nl), rel=1e-12)
        assert check_legal(back) == []

    def test_routing_reflects_placement_quality(self):
        """A clumped placement must route worse than a spread one."""
        nl_spread = toy_design(250, seed=8)
        nl_clump = nl_spread.copy()
        cfg = RDConfig(gp=GPConfig(max_iters=250), max_rounds=1, iters_per_round=5)
        RoutabilityDrivenPlacer(nl_spread, cfg).run()

        # clump: everything at die center
        mv = nl_clump.movable
        cx, cy = nl_clump.die.center
        nl_clump.x[mv] = cx
        nl_clump.y[mv] = cy
        nl_clump.clamp_to_die()

        grid = Grid2D(nl_spread.die, 32, 32)
        r_spread = GlobalRouter(grid).route(nl_spread)
        r_clump = GlobalRouter(grid).route(nl_clump)
        assert r_clump.total_overflow > r_spread.total_overflow

    def test_determinism_of_whole_flow(self):
        results = []
        for _ in range(2):
            nl = toy_design(150, seed=13)
            cfg = RDConfig(gp=GPConfig(max_iters=80), max_rounds=1, iters_per_round=5)
            RoutabilityDrivenPlacer(nl, cfg).run()
            results.append(nl.x.copy())
        assert np.array_equal(results[0], results[1])

"""Spectral Poisson solver tests: brute-force basis and FD cross-checks."""

import numpy as np
import pytest

from repro.density import PoissonSolver, solve_poisson_fd
from repro.geometry import Grid2D, Rect


def brute_force(grid, rho):
    """Direct cosine-basis projection solution (O(n^4), tiny grids only)."""
    m, n = grid.nx, grid.ny
    xs = (np.arange(m) + 0.5) * grid.dx
    ys = (np.arange(n) + 0.5) * grid.dy
    bal = rho - rho.mean()
    psi = np.zeros((m, n))
    ex = np.zeros((m, n))
    ey = np.zeros((m, n))
    for u in range(m):
        for v in range(n):
            if u == 0 and v == 0:
                continue
            wu = np.pi * u / (m * grid.dx)
            wv = np.pi * v / (n * grid.dy)
            bu = np.cos(wu * xs)
            bv = np.cos(wv * ys)
            norm = (bu**2).sum() * (bv**2).sum()
            a = (bal * np.outer(bu, bv)).sum() / norm
            c = a / (wu**2 + wv**2)
            psi += c * np.outer(bu, bv)
            ex += c * wu * np.outer(np.sin(wu * xs), bv)
            ey += c * wv * np.outer(bu, np.sin(wv * ys))
    return psi, ex, ey


class TestSpectralSolver:
    @pytest.mark.parametrize("shape", [(8, 8), (8, 4), (5, 7)])
    def test_matches_brute_force(self, shape, rng):
        grid = Grid2D(Rect(0, 0, 4, 3), *shape)
        rho = rng.random(shape)
        psi, ex, ey = PoissonSolver(grid).solve(rho)
        psi_bf, ex_bf, ey_bf = brute_force(grid, rho)
        assert np.allclose(psi, psi_bf, atol=1e-12)
        assert np.allclose(ex, ex_bf, atol=1e-12)
        assert np.allclose(ey, ey_bf, atol=1e-12)

    def test_potential_zero_mean(self, rng):
        grid = Grid2D(Rect(0, 0, 2, 2), 16, 16)
        psi, _, _ = PoissonSolver(grid).solve(rng.random(grid.shape))
        assert abs(psi.mean()) < 1e-12

    def test_mean_removed_automatically(self, rng):
        grid = Grid2D(Rect(0, 0, 2, 2), 16, 16)
        rho = rng.random(grid.shape)
        s = PoissonSolver(grid)
        psi1, _, _ = s.solve(rho)
        psi2, _, _ = s.solve(rho + 7.0)  # constant offset: same solution
        assert np.allclose(psi1, psi2, atol=1e-10)

    def test_uniform_charge_gives_zero_field(self):
        grid = Grid2D(Rect(0, 0, 1, 1), 8, 8)
        psi, ex, ey = PoissonSolver(grid).solve(np.ones(grid.shape))
        assert np.allclose(psi, 0, atol=1e-12)
        assert np.allclose(ex, 0, atol=1e-12)

    def test_field_points_away_from_blob(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        rho = grid.zeros()
        rho[8, 8] = 10.0
        _, ex, ey = PoissonSolver(grid).solve(rho)
        # to the left of the blob, E_x < 0 (away from the charge)
        assert ex[4, 8] < 0
        assert ex[12, 8] > 0
        assert ey[8, 4] < 0
        assert ey[8, 12] > 0

    def test_laplacian_reproduces_charge(self, rng):
        # finite-difference Laplacian of psi ~ -(rho - mean)
        grid = Grid2D(Rect(0, 0, 1, 1), 64, 64)
        X, Y = grid.centers()
        rho = np.cos(2 * np.pi * X) * np.cos(np.pi * Y)
        psi, _, _ = PoissonSolver(grid).solve(rho)
        lap = (
            np.roll(psi, 1, 0) + np.roll(psi, -1, 0) - 2 * psi
        ) / grid.dx**2 + (
            np.roll(psi, 1, 1) + np.roll(psi, -1, 1) - 2 * psi
        ) / grid.dy**2
        inner = (slice(2, -2), slice(2, -2))
        bal = rho - rho.mean()
        assert np.allclose(lap[inner], -bal[inner], atol=2e-2)

    def test_shape_mismatch_raises(self):
        grid = Grid2D(Rect(0, 0, 1, 1), 8, 8)
        with pytest.raises(ValueError):
            PoissonSolver(grid).solve(np.zeros((4, 4)))

    def test_fd_reference_agrees(self, rng):
        grid = Grid2D(Rect(0, 0, 1, 1), 64, 64)
        X, Y = grid.centers()
        rho = np.cos(2 * np.pi * X) * np.cos(np.pi * Y)
        _, ex, ey = PoissonSolver(grid).solve(rho)
        _, exf, eyf = solve_poisson_fd(grid, rho)
        scale = np.abs(ex).max()
        assert np.abs(ex - exf).max() < 0.01 * scale + 1e-12
        assert np.abs(ey - eyf).max() < 0.01 * scale + 1e-12

    def test_anisotropic_grid(self, rng):
        grid = Grid2D(Rect(0, 0, 10, 2), 10, 6)
        rho = rng.random(grid.shape)
        psi, ex, ey = PoissonSolver(grid).solve(rho)
        psi_bf, ex_bf, ey_bf = brute_force(grid, rho)
        assert np.allclose(psi, psi_bf, atol=1e-11)
        assert np.allclose(ex, ex_bf, atol=1e-11)
        assert np.allclose(ey, ey_bf, atol=1e-11)

"""Routability-driven placer flow tests (Fig. 2) and congestion field."""

import numpy as np
import pytest

from repro.core import CongestionField, RDConfig, RoutabilityDrivenPlacer
from repro.geometry import Grid2D, Rect
from repro.place import GPConfig


@pytest.fixture
def fast_cfg():
    return RDConfig(
        gp=GPConfig(max_iters=120),
        max_rounds=3,
        iters_per_round=15,
    )


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RDConfig(inflation_mode="bogus")
        with pytest.raises(ValueError):
            RDConfig(pg_mode="bogus")
        with pytest.raises(ValueError):
            RDConfig(max_rounds=0)

    def test_enable_properties(self):
        cfg = RDConfig(inflation_mode="momentum", pg_mode="dynamic")
        assert cfg.enable_mci and cfg.enable_dpa
        cfg = RDConfig(inflation_mode="present", pg_mode="static")
        assert not cfg.enable_mci and not cfg.enable_dpa


class TestCongestionField:
    def test_penalty_positive_at_hotspot(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        util = np.full(grid.shape, 0.2)
        util[8, 8] = 3.0
        fld = CongestionField(grid, util)
        hot = fld.penalty(np.array([4.25]), np.array([4.25]), 1.0)
        cold = fld.penalty(np.array([1.0]), np.array([1.0]), 1.0)
        assert hot > cold

    def test_gradient_toward_descent(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        util = np.zeros(grid.shape)
        util[8, 8] = 5.0
        fld = CongestionField(grid, util)
        gx, gy = fld.gradient_at(np.array([3.0]), np.array([4.25]), 1.0)
        # west of hotspot: -grad points further west
        assert -gx[0] < 0

    def test_shape_mismatch(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        with pytest.raises(ValueError):
            CongestionField(grid, np.zeros((4, 4)))


class TestRDFlow:
    def test_full_run(self, toy300, fast_cfg):
        rd = RoutabilityDrivenPlacer(toy300, fast_cfg)
        result = rd.run()
        assert 1 <= result.n_rounds <= fast_cfg.max_rounds
        assert result.final_routing is not None
        assert result.placement_time > 0
        assert len(result.selected_rails) > 0
        rec = result.rounds[0]
        assert rec.hpwl > 0
        assert rec.mean_congestion >= 0

    def test_ablation_modes_run(self, toy120):
        for infl in ("momentum", "present", "off"):
            for pg in ("dynamic", "static", "off"):
                cfg = RDConfig(
                    gp=GPConfig(max_iters=60),
                    max_rounds=2,
                    iters_per_round=10,
                    inflation_mode=infl,
                    pg_mode=pg,
                    enable_dc=(infl == "momentum"),
                )
                nl = toy120.copy()
                result = RoutabilityDrivenPlacer(nl, cfg).run()
                assert result.n_rounds >= 1

    def test_skip_initial_gp(self, toy120, fast_cfg):
        from repro.place import GlobalPlacer, initial_placement

        initial_placement(toy120, 0)
        GlobalPlacer(toy120, GPConfig(max_iters=100)).run()
        x_before = toy120.x.copy()
        rd = RoutabilityDrivenPlacer(toy120, fast_cfg)
        rd.run(skip_initial_gp=True)
        # positions moved in rounds but started from the given placement
        assert not np.array_equal(toy120.x, x_before)

    def test_c_value_recorded_and_stop(self, toy300):
        cfg = RDConfig(
            gp=GPConfig(max_iters=120),
            max_rounds=6,
            iters_per_round=10,
            patience=1,
            c_improve_tol=0.5,  # essentially any non-halving stalls
        )
        result = RoutabilityDrivenPlacer(toy300, cfg).run()
        # aggressive tolerance stops the loop well before max_rounds
        assert result.n_rounds <= 4

    def test_inflation_state_grows_in_momentum_mode(self, toy300, fast_cfg):
        rd = RoutabilityDrivenPlacer(toy300, fast_cfg)
        result = rd.run()
        if result.rounds[-1].mean_congestion > 0:
            assert rd.inflation.round >= 1
            assert (rd.inflation.rates >= 0.9).all()

    def test_lambda2_nonnegative(self, toy300, fast_cfg):
        rd = RoutabilityDrivenPlacer(toy300, fast_cfg)
        result = rd.run()
        assert all(r.lambda2 >= 0 for r in result.rounds)

    def test_series_accessor(self, toy120, fast_cfg):
        result = RoutabilityDrivenPlacer(toy120, fast_cfg).run()
        assert len(result.series("hpwl")) == result.n_rounds

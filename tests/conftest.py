"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from repro.synth import toy_design


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def grid16():
    """16x16 grid over a 8x8 die."""
    return Grid2D(Rect(0, 0, 8, 8), 16, 16)


@pytest.fixture
def tiny_netlist():
    """Four cells, two nets, deterministic geometry."""
    die = Rect(0, 0, 10, 10)
    cells = [
        CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
        CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
        CellSpec("c", 2.0, 1.0, x=5.0, y=8.0),
        CellSpec("fix", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
    ]
    nets = [
        NetSpec("n1", [PinSpec("a", 0.1, 0.0), PinSpec("b", -0.1, 0.0)]),
        NetSpec("n2", [PinSpec("a"), PinSpec("b"), PinSpec("c", 0.5, 0.2)]),
    ]
    return Netlist.from_specs("tiny", die, cells, nets)


@pytest.fixture
def toy120():
    """Small generated design (120 cells) for pipeline tests."""
    return toy_design(120, seed=7)


@pytest.fixture
def toy300():
    return toy_design(300, seed=3)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from repro.synth import toy_design


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/data/*.npz reference files "
             "from the current implementation instead of comparing",
    )


@pytest.fixture
def regen_golden(request) -> bool:
    """True when the run should rewrite the golden reference files."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def grid16():
    """16x16 grid over a 8x8 die."""
    return Grid2D(Rect(0, 0, 8, 8), 16, 16)


@pytest.fixture
def tiny_netlist():
    """Four cells, two nets, deterministic geometry."""
    die = Rect(0, 0, 10, 10)
    cells = [
        CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
        CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
        CellSpec("c", 2.0, 1.0, x=5.0, y=8.0),
        CellSpec("fix", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
    ]
    nets = [
        NetSpec("n1", [PinSpec("a", 0.1, 0.0), PinSpec("b", -0.1, 0.0)]),
        NetSpec("n2", [PinSpec("a"), PinSpec("b"), PinSpec("c", 0.5, 0.2)]),
    ]
    return Netlist.from_specs("tiny", die, cells, nets)


@pytest.fixture
def toy120():
    """Small generated design (120 cells) for pipeline tests."""
    return toy_design(120, seed=7)


@pytest.fixture
def toy300():
    return toy_design(300, seed=3)


@pytest.fixture
def inject_faults():
    """Factory installing deterministic fault plans; auto-uninstalled.

    Usage::

        def test_x(inject_faults):
            inj = inject_faults(faults.FaultPlan("optim.gradient", mode="nan"))
            ...  # faults fire inside the flow
            assert inj.count_fired("optim.gradient") == 1
    """
    from repro.utils import faults

    def _install(*plans):
        injector = faults.FaultInjector()
        for plan in plans:
            injector.add(plan)
        return faults.install(injector)

    yield _install
    faults.uninstall()


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Fail fast if a test leaves a process-wide injector installed."""
    from repro.utils import faults

    yield
    leaked = faults.active() is not None
    faults.uninstall()
    assert not leaked, "test left a FaultInjector installed"


@pytest.fixture(autouse=True)
def _reset_kernels():
    """Restore the kernel-backend selection between tests.

    Tests that call :func:`repro.kernels.configure` change process-wide
    state (the cached backend instance *and* the exported
    ``REPRO_KERNEL_BACKEND`` environment variable); neither may leak
    into later tests.  An externally-set env var (e.g. a CI matrix leg
    running the whole suite under ``REPRO_KERNEL_BACKEND=fastnp``) is
    put back so it keeps governing subsequent tests.
    """
    import os

    from repro import kernels

    prev = os.environ.get(kernels.ENV_VAR)
    yield
    if prev is None:
        os.environ.pop(kernels.ENV_VAR, None)
    else:
        os.environ[kernels.ENV_VAR] = prev
    kernels.reset()


@pytest.fixture(autouse=True)
def _reset_contracts():
    """Restore the shared contract checker between tests.

    Tests that flip :data:`repro.utils.contracts.CONTRACTS` into warn
    or raise mode must not leak that mode (or recorded violations, or
    an attached metrics registry) into later tests.  The environment
    default is restored so `REPRO_CHECK_INVARIANTS=raise` CI runs keep
    contracts armed across the whole suite.
    """
    from repro.utils import contracts

    yield
    contracts.CONTRACTS.set_mode(contracts.env_default_mode())
    contracts.CONTRACTS.reset()
    contracts.CONTRACTS.attach_metrics(None)

"""Golden numeric regression suite.

Frozen ``.npz`` references for the paper's numeric kernels live in
``tests/golden/data/``; the tests compare current outputs against them
at ``atol=1e-9`` (see :class:`GoldenChecker`).  Regenerate after an
*intentional* numeric change with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

and commit the updated files together with the change that explains
them.
"""

from __future__ import annotations

import os

import numpy as np

#: Absolute tolerance of every golden comparison.  Deliberately tight:
#: the kernels are deterministic, so anything beyond float noise means
#: the numerics changed.
GOLDEN_ATOL = 1e-9

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


class GoldenChecker:
    """Compare named arrays against (or regenerate) one golden file."""

    def __init__(self, regen: bool) -> None:
        self.regen = regen

    def path(self, name: str) -> str:
        return os.path.join(DATA_DIR, f"{name}.npz")

    def check(self, name: str, arrays: dict) -> None:
        """Assert ``arrays`` matches ``data/<name>.npz`` bit-near-exactly.

        With ``--regen-golden`` the file is (re)written instead and the
        check trivially passes — the regen run itself still validates
        that every array is finite.
        """
        path = self.path(name)
        clean = {k: np.asarray(v) for k, v in arrays.items()}
        for key, arr in clean.items():
            assert np.isfinite(arr).all(), f"{name}.{key} contains non-finite values"
        if self.regen:
            os.makedirs(DATA_DIR, exist_ok=True)
            np.savez(path, **clean)
            return
        assert os.path.exists(path), (
            f"golden file {path} is missing — generate it with "
            f"'pytest tests/golden --regen-golden' and commit it"
        )
        with np.load(path) as ref:
            assert sorted(ref.files) == sorted(clean), (
                f"{name}: golden keys {sorted(ref.files)} != "
                f"current keys {sorted(clean)} — regenerate if intentional"
            )
            for key in ref.files:
                np.testing.assert_allclose(
                    clean[key],
                    ref[key],
                    rtol=0.0,
                    atol=GOLDEN_ATOL,
                    err_msg=f"{name}.{key} drifted from the golden reference "
                            f"(regenerate with --regen-golden if intentional)",
                )

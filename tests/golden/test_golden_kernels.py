"""Golden numeric regressions for the paper's kernels.

Every test drives one kernel on a frozen deterministic scenario and
compares the full output arrays against ``data/*.npz`` at ``atol=1e-9``
(``rtol=0``).  A failure means the numerics changed: either fix the
regression or — for an intentional change — regenerate with
``pytest tests/golden --regen-golden`` and commit the new references.

Covered kernels:

* the differentiable congestion (DC) field of Eq. (1)-(2)
  (:class:`~repro.core.congestion_field.CongestionField`);
* two-pin net-moving gradients, Alg. 1 / Eq. (6)-(9)
  (:func:`~repro.core.netmove.two_pin_net_gradients`);
* multi-pin cell-moving gradients, Alg. 2
  (:func:`~repro.core.multipin.multi_pin_cell_gradients`);
* momentum inflation rates, Eq. (11)-(12), on a sequence that triggers
  deflation (:class:`~repro.core.inflation.MomentumInflation`);
* PG-rail selection and the dynamic density adjustment, Eq. (13)-(15)
  (:mod:`~repro.core.pgrails`, :mod:`~repro.core.pinaccess`);
* the WA wirelength objective and gradient, Sec. II-A
  (:func:`~repro.wirelength.wa.wa_wirelength_and_grad`) — this one
  also pins the pluggable kernel layer (:mod:`repro.kernels`): any
  backend drift beyond 1e-9 fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.congestion_field import CongestionField
from repro.core.inflation import (
    InflationConfig,
    MomentumInflation,
    congestion_at_cell_centers,
)
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.netmove import (
    NetMoveConfig,
    two_pin_net_gradients,
    virtual_cell_positions,
)
from repro.core.pgrails import rail_area_map, select_pg_rails
from repro.core.pinaccess import PinAccessConfig, pg_density_charge
from repro.geometry import Grid2D
from repro.place.initial import initial_placement
from repro.route import GlobalRouter, RouterConfig
from repro.synth import toy_design
from repro.wirelength.wa import WAWirelength, wa_wirelength_and_grad

from tests.golden import GOLDEN_ATOL, GoldenChecker


@pytest.fixture
def golden(regen_golden) -> GoldenChecker:
    return GoldenChecker(regen=regen_golden)


@pytest.fixture(scope="module")
def scenario():
    """Frozen routing snapshot all kernel goldens derive from.

    A 150-cell toy design (one macro, PG rails), deterministic initial
    placement, one batched routing pass on a 16x16 grid.  Everything
    downstream (field, gradients, inflation inputs, DPA charge) is a
    pure function of this state.
    """
    netlist = toy_design(150, seed=5)
    initial_placement(netlist, 0)
    grid = Grid2D(netlist.die, 16, 16)
    routing = GlobalRouter(grid, RouterConfig()).route(netlist)
    field = CongestionField(grid, routing.utilization_map)
    std = netlist.movable & ~netlist.cell_macro
    virtual_area = float(netlist.cell_area[std].mean())
    return {
        "netlist": netlist,
        "grid": grid,
        "routing": routing,
        "field": field,
        "virtual_area": virtual_area,
    }


class TestDCField:
    def test_congestion_field_golden(self, scenario, golden):
        field = scenario["field"]
        nl = scenario["netlist"]
        # probe the smooth interpolants where the flow actually reads
        # them: at every cell center, with the real cell areas
        gx, gy = field.gradient_at(nl.x, nl.y, nl.cell_area)
        golden.check("dc_field", {
            "utilization": field.utilization,
            "potential": field.potential,
            "field_x": field.field_x,
            "field_y": field.field_y,
            "potential_at_cells": field.potential_at(nl.x, nl.y),
            "grad_x_at_cells": gx,
            "grad_y_at_cells": gy,
            "penalty": field.penalty(nl.x, nl.y, nl.cell_area),
        })


class TestNetMove:
    def test_two_pin_gradients_golden(self, scenario, golden):
        nl = scenario["netlist"]
        cfg = NetMoveConfig()
        info = virtual_cell_positions(
            nl, scenario["grid"], scenario["routing"].congestion_map, cfg
        )
        grad_x, grad_y, _ = two_pin_net_gradients(
            nl,
            scenario["grid"],
            scenario["routing"].congestion_map,
            scenario["field"],
            scenario["virtual_area"],
            cfg,
        )
        assert info["active"].any(), "scenario exercises no two-pin net"
        assert np.abs(grad_x).sum() > 0, "scenario produces a zero gradient"
        golden.check("netmove", {
            "net_ids": info["net_ids"],
            "xv": info["xv"],
            "yv": info["yv"],
            "congestion": info["congestion"],
            "active": info["active"].astype(np.int8),
            "grad_x": grad_x,
            "grad_y": grad_y,
        })


class TestMultiPin:
    def test_multi_pin_gradients_golden(self, scenario, golden):
        nl = scenario["netlist"]
        grad_x, grad_y, selected = multi_pin_cell_gradients(
            nl,
            scenario["grid"],
            scenario["routing"].congestion_map,
            scenario["field"],
            threshold=0.7,
        )
        assert selected.any(), "scenario selects no multi-pin cell"
        golden.check("multipin", {
            "grad_x": grad_x,
            "grad_y": grad_y,
            "selected": selected.astype(np.int8),
        })


class TestWA:
    def test_wa_wirelength_golden(self, scenario, golden):
        """Freeze the WA value and gradient at two gamma regimes.

        The loose gamma is the flow's starting value
        (:class:`WAWirelength` with the scenario's bin pitch as base
        unit); the tight gamma (quartered) pins the near-HPWL regime
        where the shifted exponentials are most saturation-prone.  Net
        weights exercise the weighted accumulation path.
        """
        nl = scenario["netlist"]
        gamma = WAWirelength(base_unit=scenario["grid"].dx).gamma
        wl, gx, gy = wa_wirelength_and_grad(nl, gamma)
        assert wl > 0.0, "scenario has zero wirelength"
        assert np.abs(gx).sum() > 0, "scenario produces a zero gradient"
        wl_t, gx_t, gy_t = wa_wirelength_and_grad(nl, 0.25 * gamma)
        weights = 1.0 + (np.arange(nl.n_nets) % 3) * 0.5
        wl_w, gx_w, gy_w = wa_wirelength_and_grad(nl, gamma, weights)
        golden.check("wa", {
            "wl": np.array([wl, wl_t, wl_w]),
            "grad_x": gx,
            "grad_y": gy,
            "grad_x_tight": gx_t,
            "grad_y_tight": gy_t,
            "grad_x_weighted": gx_w,
            "grad_y_weighted": gy_w,
        })


class TestMCI:
    def test_momentum_inflation_golden(self, scenario, golden):
        """Three Eq. (11)-(12) rounds, the middle one deflating.

        Round 1 observes the real scenario congestion; round 2 moves
        the initially-hot cells into a cold region (above-average ->
        below-average, firing the Eq. 12 deflation); round 3 checks the
        momentum carried across the correction.
        """
        nl = scenario["netlist"]
        raw = congestion_at_cell_centers(
            nl, scenario["grid"], scenario["routing"].congestion_map
        )
        # normalize to [0, 1] so round-1 rates stay inside (r_min, r_max)
        # — saturated rates would make the golden insensitive
        c1 = raw / raw.max()
        hot = c1 > c1.mean()
        c2 = np.where(hot, 0.05 * c1, c1 + 0.2)  # hot cells escaped
        c3 = 0.5 * (c1 + c2)

        mci = MomentumInflation(nl.n_cells, InflationConfig())
        out = {}
        deflated = []
        for round_id, c in enumerate((c1, c2, c3), start=1):
            rates = mci.update(c)
            out[f"rates_r{round_id}"] = rates.copy()
            out[f"delta_rates_r{round_id}"] = mci.delta_rates.copy()
            deflated.append(mci.last_n_deflated)
        # the constructed sequence must actually trigger deflation
        assert deflated[0] == 0  # round 1 has no history
        assert deflated[1] > 0, "deflation sequence did not fire Eq. 12"
        out["n_deflated"] = np.array(deflated)
        out["size_scale"] = mci.size_scale()
        golden.check("mci", out)

    def test_deflation_shrinks_escaped_cells(self):
        """Behavioral (golden-independent): an escaped cell deflates.

        Cell 0 sits far above the round-1 mean, then lands moderately
        below the round-2 mean; the Eq. 12 negative correction
        (weighted ``1 - alpha``) outweighs the carried momentum
        (``alpha * dr^1``), so its rate shrinks within one round while
        the cells entering congestion keep inflating.
        """
        c1 = np.array([0.8, 0.05, 0.05, 0.05])
        c2 = np.array([0.25, 0.5, 0.5, 0.5])
        mci = MomentumInflation(4, InflationConfig())
        r1 = mci.update(c1).copy()
        r2 = mci.update(c2)
        assert mci.last_n_deflated == 1
        assert r2[0] < r1[0]
        assert (r2[1:] >= r1[1:]).all()


class TestDPA:
    def test_rail_selection_and_density_golden(self, scenario, golden):
        nl = scenario["netlist"]
        grid = scenario["grid"]
        rails = select_pg_rails(nl)
        assert rails, "scenario selects no PG rail piece"
        assert len(rails) >= len(nl.pg_rails) - nl.cell_macro.sum() * 2, \
            "macro cutting removed implausibly many rails"
        rail_area = rail_area_map(rails, grid)
        charge = pg_density_charge(
            grid, rail_area, scenario["routing"].congestion_map,
            PinAccessConfig(),
        )
        assert (charge > 0).any(), "scenario adjusts no density bin"
        golden.check("dpa", {
            "rail_rects": np.array(
                [[r.rect.xlo, r.rect.ylo, r.rect.xhi, r.rect.yhi] for r in rails]
            ),
            "rail_horizontal": np.array(
                [r.horizontal for r in rails], dtype=np.int8
            ),
            "rail_area": rail_area,
            "charge": charge,
        })


class TestHarnessSensitivity:
    def test_perturbation_beyond_atol_fails(self, scenario, golden):
        """The harness must flag a 2e-9 numeric drift.

        This is the guard on the guard: if the comparison tolerance
        were ever loosened past 1e-9, this test fails first.
        """
        if golden.regen:
            pytest.skip("regenerating goldens")
        path = golden.path("netmove")
        with np.load(path) as ref:
            drifted = ref["grad_x"] + 2.0 * GOLDEN_ATOL
            with pytest.raises(AssertionError):
                np.testing.assert_allclose(
                    drifted, ref["grad_x"], rtol=0.0, atol=GOLDEN_ATOL
                )

    def test_unperturbed_reference_passes(self, golden):
        if golden.regen:
            pytest.skip("regenerating goldens")
        path = golden.path("netmove")
        with np.load(path) as ref:
            np.testing.assert_allclose(
                ref["grad_x"], ref["grad_x"].copy(), rtol=0.0, atol=GOLDEN_ATOL
            )

    def test_missing_golden_names_the_fix(self, regen_golden):
        checker = GoldenChecker(regen=False)
        with pytest.raises(AssertionError, match="--regen-golden"):
            checker.check("does_not_exist", {"x": np.zeros(3)})

    def test_key_mismatch_is_reported(self, tmp_path, monkeypatch):
        import tests.golden as G

        monkeypatch.setattr(G, "DATA_DIR", str(tmp_path))
        checker = GoldenChecker(regen=True)
        checker.check("k", {"a": np.ones(2)})
        checker.regen = False
        checker.check("k", {"a": np.ones(2)})  # clean round trip
        with pytest.raises(AssertionError, match="keys"):
            checker.check("k", {"b": np.ones(2)})

    def test_non_finite_arrays_rejected(self):
        checker = GoldenChecker(regen=True)
        with pytest.raises(AssertionError, match="non-finite"):
            checker.check("bad", {"x": np.array([1.0, np.nan])})

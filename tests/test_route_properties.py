"""Property-based tests of the routing stack (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Grid2D, Rect
from repro.route import GlobalRouter, RouterConfig, rudy_map
from repro.route.patterns import PatternRouter
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec


coords = st.integers(0, 15)


class TestPatternRouterProperties:
    @given(coords, coords, coords, coords)
    @settings(max_examples=100, deadline=None)
    def test_path_cost_lower_bounded_by_manhattan(self, i1, j1, i2, j2):
        """On a unit cost map, cost >= number of G-cells on any monotone path."""
        router = PatternRouter(np.ones((16, 16)), np.ones((16, 16)), via_cost=0.0)
        p = router.route(i1, j1, i2, j2)
        if (i1, j1) == (i2, j2):
            assert p.cost == 0
            return
        manhattan_cells = abs(i2 - i1) + abs(j2 - j1) + 1
        assert p.cost >= manhattan_cells - 1.0 - 1e-9

    @given(coords, coords, coords, coords)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, i1, j1, i2, j2):
        """Routing a->b and b->a must find equal-cost paths."""
        rng = np.random.default_rng(7)
        h = rng.random((16, 16)) + 0.1
        v = rng.random((16, 16)) + 0.1
        router = PatternRouter(h, v, via_cost=0.3)
        fwd = router.route(i1, j1, i2, j2)
        rev = router.route(i2, j2, i1, j1)
        assert fwd.cost == pytest.approx(rev.cost, rel=1e-9)

    @given(coords, coords, coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_bends_cost_money(self, i1, j1, i2, j2):
        """With enormous via cost, the router minimizes bends."""
        router = PatternRouter(np.ones((16, 16)), np.ones((16, 16)), via_cost=1e6)
        p = router.route(i1, j1, i2, j2)
        if i1 == i2 or j1 == j2:
            assert p.n_bends == 0
        else:
            assert p.n_bends == 1  # an L, never a Z


class TestRouterInvariants:
    def _mini_design(self, rng, n=30):
        die = Rect(0, 0, 12, 12)
        cells = [
            CellSpec(f"c{k}", 0.4, 0.8,
                     x=float(rng.uniform(0.5, 11.5)),
                     y=float(rng.uniform(0.5, 11.5)))
            for k in range(n)
        ]
        nets = []
        for k in range(n):
            a, b = rng.integers(0, n, 2)
            if a != b:
                nets.append(NetSpec(f"n{k}", [PinSpec(f"c{a}"), PinSpec(f"c{b}")]))
        return Netlist.from_specs("mini", die, cells, nets)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_demand_conservation(self, seed):
        """Total committed wire demand equals the sum of path run lengths."""
        rng = np.random.default_rng(seed)
        nl = self._mini_design(rng)
        grid = Grid2D(nl.die, 12, 12)
        router = GlobalRouter(grid, RouterConfig(rrr_rounds=0, pin_via_demand=0.0))
        res = router.route(nl)
        total_cells = res.grid.h_demand.sum() + res.grid.v_demand.sum()
        assert total_cells >= 0
        # wirelength = (cells crossed - 1 per run) * pitch; both derive
        # from the same committed runs, so they must be consistent:
        assert res.wirelength <= total_cells * max(grid.dx, grid.dy)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_nonnegative_demand_after_rrr(self, seed):
        """Rip-up must never leave negative demand anywhere."""
        rng = np.random.default_rng(seed)
        nl = self._mini_design(rng, n=60)
        grid = Grid2D(nl.die, 10, 10)
        res = GlobalRouter(grid, RouterConfig(rrr_rounds=3, wire_pitch=0.6)).route(nl)
        assert (res.grid.h_demand >= -1e-9).all()
        assert (res.grid.v_demand >= -1e-9).all()
        assert (res.grid.via_demand >= -1e-9).all()


class TestRudyProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_rudy_mass_formula(self, seed):
        """Total RUDY mass = sum over nets of (w+h)/(w*h) * clipped box area."""
        rng = np.random.default_rng(seed)
        die = Rect(0, 0, 16, 16)
        cells = [
            CellSpec(f"c{k}", 0.1, 0.1,
                     x=float(rng.uniform(1, 15)), y=float(rng.uniform(1, 15)))
            for k in range(8)
        ]
        nets = [NetSpec("n", [PinSpec(f"c{k}") for k in range(8)])]
        nl = Netlist.from_specs("r", die, cells, nets)
        grid = Grid2D(die, 16, 16)
        r = rudy_map(nl, grid)
        px, py = nl.pin_positions()
        w = max(px.max() - px.min(), grid.dx)
        h = max(py.max() - py.min(), grid.dy)
        density = (w + h) / (w * h)
        # mass = density * area covered (in whole G-cells)
        i0, j0 = grid.index_of(px.min(), py.min())
        i1, j1 = grid.index_of(px.max(), py.max())
        n_cells = (i1 - i0 + 1) * (j1 - j0 + 1)
        assert r.sum() == pytest.approx(density * n_cells, rel=1e-9)

"""Grid-spec parsing, expansion determinism, sharding, knob binding."""

from __future__ import annotations

import json

import pytest

from repro.dse.grid import (
    KNOBS,
    apply_knobs,
    expand_points,
    load_spec,
    make_units,
    parse_spec,
    shard_units,
    validate_knobs,
)
from repro.place.config import GPConfig
from repro.core.rd_placer import RDConfig

RAW = {
    "name": "mini",
    "designs": ["des_perf_1", "fft_1"],
    "grid": {"inflation.alpha": [0.2, 0.4, 0.6], "dpa.density_scale": [1.0, 1.5]},
    "paired": {"rd.max_rounds": [2, 4], "rd.iters_per_round": [40, 20]},
    "scale": 0.25,
    "seed": 3,
    "placers": ["Ours"],
}


class TestSpecParsing:
    def test_json_and_toml_agree(self, tmp_path):
        jpath = tmp_path / "spec.json"
        jpath.write_text(json.dumps(RAW))
        tpath = tmp_path / "spec.toml"
        tpath.write_text(
            'name = "mini"\n'
            'designs = ["des_perf_1", "fft_1"]\n'
            "scale = 0.25\nseed = 3\nplacers = [\"Ours\"]\n"
            "[grid]\n"
            '"inflation.alpha" = [0.2, 0.4, 0.6]\n'
            '"dpa.density_scale" = [1.0, 1.5]\n'
            "[paired]\n"
            '"rd.max_rounds" = [2, 4]\n'
            '"rd.iters_per_round" = [40, 20]\n'
        )
        assert load_spec(jpath) == load_spec(tpath)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("{}")
        with pytest.raises(ValueError, match="json or .toml"):
            load_spec(path)

    @pytest.mark.parametrize("mutate,match", [
        (lambda r: r.pop("name"), "name"),
        (lambda r: r.update(designs=[]), "designs"),
        (lambda r: r.update(designs=["nope"]), "unknown design"),
        (lambda r: r.update(grid={"bogus.knob": [1]}), "unknown grid knob"),
        (lambda r: r.update(grid={"inflation.alpha": []}), "no values"),
        (lambda r: r.update(grid={"inflation.alpha": ["hot"]}), "number"),
        (lambda r: r.update(paired={"rd.max_rounds": [1], "gp.seed": [1, 2]}),
         "share one length"),
        (lambda r: r.update(paired={"inflation.alpha": [0.3]}), "both"),
        (lambda r: r.update(scale=0), "scale"),
    ])
    def test_invalid_specs_rejected(self, mutate, match):
        raw = json.loads(json.dumps(RAW))
        mutate(raw)
        with pytest.raises(ValueError, match=match):
            parse_spec(raw)


class TestExpansion:
    def test_point_count_is_cross_times_pairs(self):
        spec = parse_spec(RAW)
        # 3 alphas x 2 density scales, crossed; 2 paired rows zipped
        assert len(expand_points(spec)) == 3 * 2 * 2

    def test_expansion_is_deterministic(self):
        spec = parse_spec(RAW)
        assert expand_points(spec) == expand_points(spec)
        again = parse_spec(json.loads(json.dumps(RAW)))
        assert expand_points(spec) == expand_points(again)

    def test_expansion_order_row_major_sorted_names(self):
        spec = parse_spec({**RAW, "paired": {}})
        points = expand_points(spec)
        # sorted knob names: dpa.density_scale varies slower than
        # inflation.alpha (row-major over sorted names)
        assert points[0] == {"dpa.density_scale": 1.0, "inflation.alpha": 0.2}
        assert points[1] == {"dpa.density_scale": 1.0, "inflation.alpha": 0.4}
        assert points[3] == {"dpa.density_scale": 1.5, "inflation.alpha": 0.2}

    def test_paired_values_advance_together(self):
        spec = parse_spec({**RAW, "grid": {}})
        points = expand_points(spec)
        assert points == [
            {"rd.iters_per_round": 40, "rd.max_rounds": 2},
            {"rd.iters_per_round": 20, "rd.max_rounds": 4},
        ]


class TestUnitsAndShards:
    def test_unit_ids_and_order(self):
        spec = parse_spec(RAW)
        units = make_units(spec)
        assert len(units) == 12 * 2
        assert units[0].unit_id == "mini:p000:des_perf_1"
        assert units[1].unit_id == "mini:p000:fft_1"
        assert [u.index for u in units] == list(range(len(units)))
        assert units[0].scale == 0.25 and units[0].seed == 3

    def test_same_spec_same_shard_order(self):
        units_a = make_units(parse_spec(RAW))
        units_b = make_units(parse_spec(json.loads(json.dumps(RAW))))
        for n in (1, 3, 5):
            sa = shard_units(units_a, n)
            sb = shard_units(units_b, n)
            assert [[u.unit_id for u in s] for s in sa] == \
                   [[u.unit_id for u in s] for s in sb]

    def test_shards_partition_round_robin(self):
        units = make_units(parse_spec(RAW))
        shards = shard_units(units, 3)
        assert sum(len(s) for s in shards) == len(units)
        assert [u.index % 3 for s in shards for u in s] == \
               [i for i, s in enumerate(shards) for _ in s]
        with pytest.raises(ValueError):
            shard_units(units, 0)


class TestKnobBinding:
    def test_registry_casts_and_rejects(self):
        assert validate_knobs({"rd.max_rounds": 3}) == {"rd.max_rounds": 3}
        with pytest.raises(ValueError, match="unknown knob"):
            validate_knobs({"bogus": 1})
        with pytest.raises(ValueError, match="integer"):
            validate_knobs({"rd.max_rounds": 2.5})
        with pytest.raises(ValueError, match="number"):
            validate_knobs({"inflation.alpha": True})
        with pytest.raises(ValueError, match="not in"):
            validate_knobs({"router.engine": "quantum"})

    def test_apply_knobs_rebinds_each_section(self):
        binding = apply_knobs({
            "inflation.alpha": 0.7,
            "dpa.density_scale": 2.0,
            "netmove.max_samples": 16,
            "rd.max_rounds": 3,
            "gp.target_density": 0.8,
            "router.engine": "scalar",
            "kernel.backend": "reference",
        })
        rd = binding.rd_config
        assert rd.inflation.alpha == 0.7
        assert rd.pinaccess.density_scale == 2.0
        assert rd.netmove.max_samples == 16
        assert rd.max_rounds == 3
        assert rd.router.engine == "scalar"
        assert binding.gp_config.target_density == 0.8
        assert rd.gp is binding.gp_config
        assert binding.kernel_backend == "reference"

    def test_apply_knobs_layers_on_bases(self):
        gp = GPConfig(max_iters=77, seed=5)
        rd = RDConfig(gp=gp, iters_per_round=9)
        binding = apply_knobs({"inflation.alpha": 0.5}, gp_base=gp, rd_base=rd)
        assert binding.gp_config.max_iters == 77
        assert binding.rd_config.iters_per_round == 9
        assert binding.rd_config.inflation.alpha == 0.5
        assert binding.kernel_backend is None

    def test_every_registered_knob_applies(self):
        for name, knob in KNOBS.items():
            sample = {"float": 0.95, "int": 2, "bool": True, "str": None}[knob.kind]
            if knob.choices:
                sample = knob.choices[0]
            binding = apply_knobs({name: sample})
            if knob.section == "kernel":
                assert binding.kernel_backend == sample
            elif knob.section == "gp":
                assert getattr(binding.gp_config, knob.attr) == sample
            elif knob.section == "rd":
                assert getattr(binding.rd_config, knob.attr) == sample
            else:
                sub = getattr(binding.rd_config, knob.section)
                assert getattr(sub, knob.attr) == sample

"""Metrics subsystem: registry, sinks, schema, report, CLI integration.

Covers the telemetry contract end to end: aggregate bookkeeping,
JSONL streaming, schema validation (including multi-segment resumed
streams), report rendering, the near-zero disabled-overhead guarantee
(micro-benchmark) and a full CLI ``place --routability --metrics-out``
run whose stream is schema-checked.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.io import save_design
from repro.place.config import GPConfig
from repro.place.global_placer import GlobalPlacer
from repro.place.initial import initial_placement
from repro.synth import toy_design
from repro.utils.clock import FakeClock
from repro.utils.metrics import (
    EVENT_FIELDS,
    NULL,
    SCHEMA_VERSION,
    HistStats,
    JsonlSink,
    MemorySink,
    MetricsConfig,
    MetricsError,
    MetricsRegistry,
    MetricsReport,
    NullMetrics,
    read_jsonl,
    validate_event,
    validate_stream,
)


def events_of(sink: MemorySink) -> list:
    return [json.loads(line) for line in sink.lines]


class TestSinks:
    def test_memory_sink_keeps_lines(self):
        sink = MemorySink()
        sink.write("a")
        sink.write("b")
        sink.flush()
        sink.close()
        assert sink.lines == ["a", "b"]

    def test_jsonl_sink_buffers_until_threshold(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(str(path), buffer_lines=3)
        sink.write("one")
        sink.write("two")
        assert path.read_text() == ""  # still buffered
        sink.write("three")  # hits the threshold
        assert path.read_text() == "one\ntwo\nthree\n"
        sink.write("four")
        sink.close()
        assert path.read_text() == "one\ntwo\nthree\nfour\n"

    def test_jsonl_sink_append_vs_truncate(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write("first")
        with JsonlSink(str(path), append=True) as sink:
            sink.write("second")
        assert path.read_text() == "first\nsecond\n"
        with JsonlSink(str(path)) as sink:  # append=False truncates
            sink.write("fresh")
        assert path.read_text() == "fresh\n"

    def test_jsonl_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "m.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write("x")
        assert path.read_text() == "x\n"

    def test_jsonl_sink_rejects_bad_buffer(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "m.jsonl"), buffer_lines=0)

    def test_jsonl_sink_close_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "m.jsonl"))
        sink.close()
        sink.close()


class TestHistStats:
    def test_empty(self):
        d = HistStats().as_dict()
        assert d == {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None}

    def test_observations(self):
        h = HistStats()
        for v in (2.0, -1.0, 5.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(6.0)
        assert d["min"] == -1.0 and d["max"] == 5.0
        assert d["mean"] == pytest.approx(2.0)


class TestRegistry:
    def test_aggregates(self):
        m = MetricsRegistry()
        m.inc("calls")
        m.inc("calls", 2)
        m.gauge("lambda", 0.5)
        m.gauge("lambda", 0.75)
        m.observe("overflow", 10.0)
        m.observe("overflow", 2.0)
        snap = m.snapshot()
        assert snap["counters"] == {"calls": 3}
        assert snap["gauges"] == {"lambda": 0.75}
        assert snap["histograms"]["overflow"]["count"] == 2
        assert snap["histograms"]["overflow"]["max"] == 10.0

    def test_emit_envelope_and_seq(self):
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.start_run(design="d")
        m.emit("custom.kind", value=1)
        ev = events_of(sink)
        assert [e["seq"] for e in ev] == [0, 1]
        assert ev[0] == {"v": SCHEMA_VERSION, "seq": 0, "kind": "run.start",
                         "design": "d"}
        assert ev[1]["kind"] == "custom.kind" and ev[1]["value"] == 1

    def test_lazy_run_start(self):
        """Ad-hoc emit without start_run still yields a valid stream."""
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.emit("custom.kind", value=1)
        ev = events_of(sink)
        assert ev[0]["kind"] == "run.start" and ev[0]["seq"] == 0
        assert ev[1]["seq"] == 1
        validate_stream(ev)

    def test_start_run_resets_sequence(self):
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.start_run()
        m.emit("a.b", x=1)
        m.start_run(resumed=True)
        m.emit("a.b", x=2)
        ev = events_of(sink)
        assert [e["seq"] for e in ev] == [0, 1, 0, 1]
        assert ev[2]["resumed"] is True
        validate_stream(ev)

    def test_no_timestamp_by_default(self):
        m = MetricsRegistry(sink=MemorySink())
        assert "t" not in m.emit("a.b")

    def test_timestamp_from_clock_when_enabled(self):
        clock = FakeClock(start=10.0)
        m = MetricsRegistry(
            sink=MemorySink(),
            config=MetricsConfig(record_time=True),
            clock=clock,
        )
        m.start_run()
        clock.advance(1.5)
        ev = m.emit("a.b")
        assert ev["t"] == pytest.approx(11.5)

    def test_series_cap_bounds_memory_not_stream(self):
        sink = MemorySink()
        m = MetricsRegistry(sink=sink, config=MetricsConfig(max_series=3))
        m.start_run()
        for k in range(10):
            m.emit("a.b", k=k)
        assert len(m.series["a.b"]) == 3
        assert len(sink.lines) == 11  # run.start + 10, all streamed

    def test_close_emits_run_end_with_snapshot(self):
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.start_run()
        m.inc("n", 4)
        m.close()
        end = events_of(sink)[-1]
        assert end["kind"] == "run.end"
        assert end["counters"] == {"n": 4}
        validate_stream(events_of(sink))

    def test_close_idempotent_and_emit_after_close_raises(self):
        m = MetricsRegistry(sink=MemorySink())
        m.start_run()
        m.close()
        m.close()
        with pytest.raises(MetricsError):
            m.emit("a.b")

    def test_null_registry_is_inert(self):
        assert NULL.enabled is False
        assert isinstance(NULL, NullMetrics)
        # every operation is a no-op that returns None
        assert NULL.emit("gp.iter", anything=1) is None
        assert NULL.inc("x") is None
        assert NULL.gauge("x", 1.0) is None
        assert NULL.observe("x", 1.0) is None
        assert NULL.start_run() is None
        NULL.flush()
        NULL.close()
        NULL.emit("still.works.after.close")


class TestValidation:
    def test_validate_event_ok(self):
        validate_event({"v": 1, "seq": 0, "kind": "run.start"})
        validate_event({"v": 1, "seq": 3, "kind": "unknown.kind", "extra": 1})

    @pytest.mark.parametrize("event,match", [
        ("not a dict", "not an object"),
        ({"seq": 0, "kind": "x"}, "envelope"),
        ({"v": 99, "seq": 0, "kind": "x"}, "version"),
        ({"v": 1, "seq": -1, "kind": "x"}, "seq"),
        ({"v": 1, "seq": 0.5, "kind": "x"}, "seq"),
        ({"v": 1, "seq": 0, "kind": ""}, "kind"),
        ({"v": 1, "seq": 1, "kind": "gp.iter"}, "missing fields"),
    ])
    def test_validate_event_failures(self, event, match):
        with pytest.raises(MetricsError, match=match):
            validate_event(event)

    def test_known_kinds_require_their_fields(self):
        for kind, fields in EVENT_FIELDS.items():
            event = {"v": 1, "seq": 1, "kind": kind}
            event.update({f: 0 for f in fields})
            validate_event(event)
            if fields:
                incomplete = dict(event)
                del incomplete[fields[0]]
                with pytest.raises(MetricsError):
                    validate_event(incomplete)

    def test_validate_stream_rejects_empty(self):
        with pytest.raises(MetricsError, match="empty"):
            validate_stream([])

    def test_validate_stream_requires_run_start_first(self):
        with pytest.raises(MetricsError, match="begin with run.start"):
            validate_stream([{"v": 1, "seq": 0, "kind": "a.b"}])

    def test_validate_stream_rejects_seq_gap(self):
        events = [
            {"v": 1, "seq": 0, "kind": "run.start"},
            {"v": 1, "seq": 2, "kind": "a.b"},
        ]
        with pytest.raises(MetricsError, match="seq gap"):
            validate_stream(events)

    def test_validate_stream_accepts_appended_segments(self):
        events = [
            {"v": 1, "seq": 0, "kind": "run.start"},
            {"v": 1, "seq": 1, "kind": "a.b"},
            {"v": 1, "seq": 0, "kind": "run.start", "resumed": True},
            {"v": 1, "seq": 1, "kind": "a.b"},
            {"v": 1, "seq": 2, "kind": "a.b"},
        ]
        validate_stream(events)

    def test_validate_stream_rejects_misplaced_run_start(self):
        events = [
            {"v": 1, "seq": 0, "kind": "run.start"},
            {"v": 1, "seq": 1, "kind": "run.start"},
        ]
        with pytest.raises(MetricsError, match="run.start at seq"):
            validate_stream(events)


class TestJsonlRoundTrip:
    def test_registry_stream_reads_back(self, tmp_path):
        path = tmp_path / "m.jsonl"
        m = MetricsRegistry(sink=JsonlSink(str(path)))
        m.start_run(command="test")
        m.emit("a.b", x=1.5)
        m.close()
        events = read_jsonl(str(path))
        validate_stream(events)
        assert events[1]["x"] == 1.5

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v":1,"seq":0,"kind":"run.start"}\n\n')
        assert len(read_jsonl(str(path))) == 1

    def test_read_jsonl_names_the_bad_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v":1,"seq":0,"kind":"run.start"}\nnot json\n')
        with pytest.raises(MetricsError, match=r"m\.jsonl:2"):
            read_jsonl(str(path))


class TestReport:
    def _stream(self):
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.start_run(command="t")
        for k in range(4):
            m.emit("gp.iter", iter=k + 1, hpwl=100.0 - k, overflow=0.5,
                   density_weight=0.1, step=1.0, grad_norm=2.0)
        m.inc("gp.guard_trips", 0)
        m.observe("rd.total_overflow", 12.0)
        m.close()
        return events_of(sink)

    def test_as_dict_summarises_series(self):
        data = MetricsReport(events=self._stream()).as_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["segments"] == 1
        assert data["kinds"]["gp.iter"] == 4
        hpwl = data["series"]["gp.iter"]["hpwl"]
        assert hpwl == {"first": 100.0, "last": 97.0, "min": 97.0, "max": 100.0}
        # envelope keys and strings never appear as series
        assert "seq" not in data["series"]["gp.iter"]
        assert "command" not in data["series"].get("run.start", {})
        assert data["snapshot"]["histograms"]["rd.total_overflow"]["count"] == 1

    def test_render_mentions_kinds_and_aggregates(self):
        text = MetricsReport(events=self._stream()).render("title here")
        assert text.splitlines()[0] == "title here"
        assert "gp.iter" in text
        assert "hpwl" in text
        assert "rd.total_overflow" in text

    def test_from_registry_grafts_live_snapshot(self):
        m = MetricsRegistry(sink=MemorySink())
        m.start_run()
        m.emit("a.b", x=1)
        m.inc("events", 1)
        data = MetricsReport.from_registry(m).as_dict()  # no run.end yet
        assert data["snapshot"]["counters"] == {"events": 1}
        assert data["kinds"]["a.b"] == 1

    def test_to_json_writes_payload(self, tmp_path):
        path = tmp_path / "report.json"
        payload = MetricsReport(events=self._stream()).to_json(str(path))
        assert json.loads(path.read_text()) == payload


class TestDisabledOverhead:
    def test_disabled_hot_loop_overhead_is_negligible(self):
        """With metrics disabled, the hot-loop guard costs ~one attribute
        read per iteration.

        The placer guards every emission with ``if metrics.enabled:``,
        so a disabled run must never pack kwargs or serialise JSON.  We
        time the exact guarded pattern against an empty loop; the bound
        is deliberately generous (10x + slack) so the assertion only
        fires on a real regression (e.g. someone making ``enabled`` a
        property doing work, or dropping the guard).
        """
        import timeit

        metrics = NULL
        n = 200_000

        def guarded():
            for _ in range(n):
                if metrics.enabled:
                    metrics.emit("gp.iter", iter=1, hpwl=0.0, overflow=0.0,
                                 density_weight=0.0, step=0.0, grad_norm=0.0)

        def bare():
            for _ in range(n):
                pass

        t_guard = min(timeit.repeat(guarded, number=1, repeat=3))
        t_bare = min(timeit.repeat(bare, number=1, repeat=3))
        # well under a microsecond per iteration, absolute backstop for
        # noisy CI machines where t_bare is tiny and the ratio unstable
        assert t_guard < max(10 * t_bare, 0.25), (
            f"disabled-metrics guard too slow: {t_guard:.4f}s for {n} iters "
            f"(bare loop {t_bare:.4f}s)"
        )

    def test_placer_without_metrics_uses_null(self, toy120):
        initial_placement(toy120, 0)
        placer = GlobalPlacer(toy120, GPConfig(max_iters=5))
        placer.run()
        assert placer.metrics is NULL


class TestFlowIntegration:
    def test_gp_emits_one_event_per_iteration(self, toy120):
        initial_placement(toy120, 0)
        sink = MemorySink()
        m = MetricsRegistry(sink=sink)
        m.start_run()
        placer = GlobalPlacer(toy120, GPConfig(max_iters=12), metrics=m)
        placer.run()
        m.close()
        events = events_of(sink)
        validate_stream(events)
        iters = [e for e in events if e["kind"] == "gp.iter"]
        assert len(iters) == len(placer.history)
        assert [e["iter"] for e in iters] == list(range(1, len(iters) + 1))
        assert all(e["hpwl"] > 0 for e in iters)

    def test_cli_place_routability_metrics_out(self, tmp_path):
        design = tmp_path / "toy.bl"
        out = tmp_path / "placed.bl"
        mpath = tmp_path / "metrics.jsonl"
        save_design(toy_design(90, seed=2), str(design))
        rc = cli_main([
            "place", str(design), "--routability", "--iters", "40",
            "--out", str(out), "--metrics-out", str(mpath),
        ])
        assert rc == 0
        events = read_jsonl(str(mpath))
        validate_stream(events)  # schema-checked end to end
        kinds = {e["kind"] for e in events}
        # the stream covers placer iterations, RD rounds and router passes
        assert {"run.start", "rd.start", "gp.iter", "rd.round",
                "route.pass", "run.end"} <= kinds
        start = events[0]
        assert start["kind"] == "run.start"
        assert start["command"] == "place" and start["resumed"] is False
        rounds = [e for e in events if e["kind"] == "rd.round"]
        assert [e["round"] for e in rounds] == list(range(len(rounds)))
        for e in rounds:  # every schema field present and finite
            for name in EVENT_FIELDS["rd.round"]:
                assert name in e
        passes = [e for e in events if e["kind"] == "route.pass"]
        assert all(e["engine"] in ("batched", "scalar") for e in passes)
        assert all(e["h_cap"] > 0 and e["v_cap"] > 0 for e in passes)
        end = events[-1]
        assert end["kind"] == "run.end"
        assert end["counters"]["rd.rounds"] == len(rounds)

    def test_cli_route_metrics_out(self, tmp_path):
        design = tmp_path / "toy.bl"
        mpath = tmp_path / "metrics.jsonl"
        save_design(toy_design(90, seed=2), str(design))
        assert cli_main([
            "route", str(design), "--metrics-out", str(mpath),
        ]) == 0
        events = read_jsonl(str(mpath))
        validate_stream(events)
        assert any(e["kind"] == "route.pass" for e in events)

    def test_cli_metrics_resume_appends_segment(self, tmp_path):
        """A resumed flow appends a consistent second segment."""
        design = tmp_path / "toy.bl"
        ckpt = tmp_path / "flow.ckpt.npz"
        mpath = tmp_path / "metrics.jsonl"
        save_design(toy_design(90, seed=2), str(design))
        args = ["place", str(design), "--routability", "--iters", "30",
                "--out", str(tmp_path / "p.bl"),
                "--checkpoint", str(ckpt), "--metrics-out", str(mpath)]
        assert cli_main(args) == 0
        assert ckpt.exists()
        first_len = len(read_jsonl(str(mpath)))
        assert cli_main(args) == 0  # resumes from the checkpoint
        events = read_jsonl(str(mpath))
        validate_stream(events)  # concatenated segments validate
        assert len(events) > first_len
        segments = [e for e in events if e["kind"] == "run.start"]
        assert len(segments) == 2
        assert segments[0]["resumed"] is False
        assert segments[1]["resumed"] is True
        assert any(e["kind"] == "rd.resume" for e in events)


class TestBenchTelemetry:
    def test_bench_payload_embeds_report(self):
        from repro.bench.harness import bench_payload

        m = MetricsRegistry(sink=MemorySink())
        m.start_run()
        m.emit("a.b", x=1)
        payload = bench_payload([], metrics=m)
        assert payload["telemetry"]["kinds"]["a.b"] == 1
        assert "telemetry" not in bench_payload([], metrics=None)
        assert "telemetry" not in bench_payload([], metrics=NULL)


class TestAbortFlush:
    """SIGTERM/atexit flushing keeps a killed run's stream valid."""

    def _registry(self, tmp_path):
        from repro.utils.metrics import install_abort_flush

        path = str(tmp_path / "m.jsonl")
        m = MetricsRegistry(sink=JsonlSink(path))
        m.start_run(command="test")
        m.emit("gp.guard", iter=1, guard="g", detail="d")
        return m, install_abort_flush(m), path

    def test_sigterm_writes_aborted_marker_and_exits(self, tmp_path):
        import signal

        m, abort, path = self._registry(tmp_path)
        try:
            with pytest.raises(SystemExit) as excinfo:
                abort._signal_hook(signal.SIGTERM, None)
            assert excinfo.value.code == 128 + signal.SIGTERM
            events = read_jsonl(path)
            validate_stream(events)
            assert events[-1]["kind"] == "run.aborted"
            assert events[-1]["reason"] == "signal:sigterm"
        finally:
            abort.uninstall()

    def test_aborted_event_carries_open_stages(self, tmp_path):
        import signal

        from repro.utils.metrics import install_abort_flush
        from repro.utils.profile import StageProfiler

        path = str(tmp_path / "m.jsonl")
        profiler = StageProfiler()
        m = MetricsRegistry(sink=JsonlSink(path))
        m.start_run(command="test")
        abort = install_abort_flush(m, profiler=profiler)
        try:
            profiler.open_stages.append("rd.route")
            with pytest.raises(SystemExit):
                abort._signal_hook(signal.SIGTERM, None)
            events = read_jsonl(path)
            assert events[-1]["open_stages"] == ["rd.route"]
        finally:
            abort.uninstall()

    def test_atexit_hook_flushes_unclosed_registry(self, tmp_path):
        m, abort, path = self._registry(tmp_path)
        try:
            abort._atexit_hook()
            events = read_jsonl(path)
            validate_stream(events)
            assert events[-1]["kind"] == "run.aborted"
            assert events[-1]["reason"] == "exit-without-close"
        finally:
            abort.uninstall()

    def test_noop_after_normal_close(self, tmp_path):
        m, abort, path = self._registry(tmp_path)
        m.close()
        abort.uninstall()
        assert abort.trigger("too-late") is False
        events = read_jsonl(path)
        validate_stream(events)
        assert events[-1]["kind"] == "run.end"
        assert all(e["kind"] != "run.aborted" for e in events)

    def test_fires_at_most_once(self, tmp_path):
        m, abort, path = self._registry(tmp_path)
        try:
            assert abort.trigger("first") is True
            assert abort.trigger("second") is False
            events = read_jsonl(path)
            aborted = [e for e in events if e["kind"] == "run.aborted"]
            assert [e["reason"] for e in aborted] == ["first"]
        finally:
            abort.uninstall()

    def test_install_uninstall_restores_handler(self):
        import signal

        from repro.utils.metrics import AbortFlush

        m = MetricsRegistry(sink=MemorySink())
        m.start_run()
        before = signal.getsignal(signal.SIGTERM)
        abort = AbortFlush(m).install()
        assert signal.getsignal(signal.SIGTERM) == abort._signal_hook
        abort.uninstall()
        assert signal.getsignal(signal.SIGTERM) == before

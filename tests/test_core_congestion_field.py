"""Congestion field (differentiable C(x, y)) tests."""

import numpy as np
import pytest

from repro.core import CongestionField
from repro.geometry import Grid2D, Rect


@pytest.fixture
def hotspot_field():
    grid = Grid2D(Rect(0, 0, 8, 8), 32, 32)
    util = np.full(grid.shape, 0.2)
    util[16, 16] = 4.0
    return grid, CongestionField(grid, util)


class TestPotential:
    def test_peak_at_hotspot(self, hotspot_field):
        grid, fld = hotspot_field
        assert fld.potential.argmax() == np.ravel_multi_index((16, 16), grid.shape)

    def test_potential_at_interpolates(self, hotspot_field):
        grid, fld = hotspot_field
        cx, cy = grid.center_of(16, 16)
        near = fld.potential_at(cx + grid.dx / 4, cy)
        far = fld.potential_at(1.0, 1.0)
        assert near > far

    def test_penalty_is_half_sum(self, hotspot_field):
        grid, fld = hotspot_field
        xs = np.array([2.0, 4.0])
        ys = np.array([2.0, 4.0])
        areas = np.array([1.0, 2.0])
        expected = 0.5 * (areas * fld.potential_at(xs, ys)).sum()
        assert fld.penalty(xs, ys, areas) == pytest.approx(expected)

    def test_penalty_scales_with_area(self, hotspot_field):
        _, fld = hotspot_field
        p1 = fld.penalty(np.array([4.1]), np.array([4.1]), 1.0)
        p2 = fld.penalty(np.array([4.1]), np.array([4.1]), 2.0)
        assert p2 == pytest.approx(2 * p1)


class TestGradient:
    def test_descent_moves_away(self, hotspot_field):
        grid, fld = hotspot_field
        cx, cy = grid.center_of(16, 16)
        # probe points on all four sides
        probes = [
            (cx - 1, cy, "x", -1),
            (cx + 1, cy, "x", +1),
            (cx, cy - 1, "y", -1),
            (cx, cy + 1, "y", +1),
        ]
        for px, py, axis, side in probes:
            gx, gy = fld.gradient_at(np.array([px]), np.array([py]), 1.0)
            step = -(gx[0] if axis == "x" else gy[0])
            assert np.sign(step) == side  # step increases distance

    def test_gradient_scales_with_charge(self, hotspot_field):
        _, fld = hotspot_field
        g1 = fld.gradient_at(np.array([3.0]), np.array([4.0]), 1.0)
        g2 = fld.gradient_at(np.array([3.0]), np.array([4.0]), 3.0)
        assert g2[0][0] == pytest.approx(3 * g1[0][0])

    def test_uniform_utilization_no_force(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        fld = CongestionField(grid, np.full(grid.shape, 0.7))
        gx, gy = fld.gradient_at(np.array([4.0]), np.array([4.0]), 1.0)
        assert abs(gx[0]) < 1e-10 and abs(gy[0]) < 1e-10

"""Maze router tests: optimality, detours, fallback integration."""

import numpy as np
import pytest

from repro.geometry import Grid2D
from repro.route import GlobalRouter, RouterConfig
from repro.route.maze import maze_route
from repro.route.patterns import PatternRouter
from repro.synth import toy_design


class TestMazeBasics:
    def test_same_cell(self):
        p = maze_route(np.ones((8, 8)), np.ones((8, 8)), 3, 3, 3, 3)
        assert p.cost == 0.0 and p.runs == []

    def test_straight_line(self):
        p = maze_route(np.ones((8, 8)), np.ones((8, 8)), 1, 2, 6, 2)
        assert p.n_bends == 0
        assert p.cost == pytest.approx(5.0)  # 5 cells entered

    def test_connects_endpoints(self):
        rng = np.random.default_rng(0)
        h = rng.random((12, 12)) + 0.1
        v = rng.random((12, 12)) + 0.1
        for _ in range(20):
            i1, i2 = rng.integers(0, 12, 2)
            j1, j2 = rng.integers(0, 12, 2)
            p = maze_route(h, v, int(i1), int(j1), int(i2), int(j2))
            pos = (int(i1), int(j1))
            for kind, fixed, a, b in p.runs:
                if kind == "h":
                    assert pos == (a, fixed)
                    pos = (b, fixed)
                else:
                    assert pos == (fixed, a)
                    pos = (fixed, b)
            assert pos == (int(i2), int(j2))

    def test_never_worse_than_pattern_router(self):
        """Maze explores a superset of L/Z paths: cost <= pattern cost."""
        rng = np.random.default_rng(1)
        h = rng.random((14, 14)) * 3 + 0.1
        v = rng.random((14, 14)) * 3 + 0.1
        pattern = PatternRouter(h, v, via_cost=1.0, z_samples=64)
        for _ in range(15):
            i1, i2 = rng.integers(0, 14, 2)
            j1, j2 = rng.integers(0, 14, 2)
            pm = maze_route(h, v, int(i1), int(j1), int(i2), int(j2), via_cost=1.0)
            pp = pattern.route(int(i1), int(j1), int(i2), int(j2))
            # maze charges entry cost of the start cell's first move
            # differently; allow a one-cell slack
            assert pm.cost <= pp.cost + max(h.max(), v.max()) + 1e-9

    def test_takes_detour_around_wall(self):
        h = np.ones((10, 10))
        v = np.ones((10, 10))
        # vertical wall at i=5 except a gap at j=8
        h[5, :] = 1000.0
        h[5, 8] = 1.0
        p = maze_route(h, v, 2, 2, 8, 2, via_cost=0.1, window=10)
        assert p.cost < 100.0  # found the gap instead of paying the wall
        crossed = [(kind, fixed) for kind, fixed, a, b in p.runs if kind == "h"]
        assert any(fixed == 8 for _, fixed in crossed)


class TestMazeFallback:
    def test_fallback_reduces_overflow(self):
        nl = toy_design(400, seed=6, utilization=0.8)
        grid = Grid2D(nl.die, 24, 24)
        cfg_off = RouterConfig(rrr_rounds=1, wire_pitch=0.4, maze_fallback=False)
        cfg_on = RouterConfig(rrr_rounds=1, wire_pitch=0.4, maze_fallback=True)
        off = GlobalRouter(grid, cfg_off).route(nl)
        on = GlobalRouter(grid, cfg_on).route(nl)
        assert on.total_overflow <= off.total_overflow + 1e-9

    def test_fallback_keeps_demand_nonnegative(self):
        nl = toy_design(300, seed=2, utilization=0.8)
        grid = Grid2D(nl.die, 16, 16)
        res = GlobalRouter(
            grid, RouterConfig(rrr_rounds=1, wire_pitch=0.5, maze_fallback=True)
        ).route(nl)
        assert (res.grid.h_demand >= -1e-9).all()
        assert (res.grid.v_demand >= -1e-9).all()

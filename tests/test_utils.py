"""Utility module tests: timers, RNG derivation, logging."""

import logging
import time

import pytest

from repro.utils import Timer, get_logger, make_rng
from repro.utils.logging import set_verbosity
from repro.utils.rng import seed_from_name


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        assert first >= 0.005
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestRng:
    def test_seeded_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_seed_from_name_stable(self):
        a = seed_from_name("superblue12", 0)
        b = seed_from_name("superblue12", 0)
        assert a == b

    def test_seed_from_name_distinguishes(self):
        assert seed_from_name("fft_1") != seed_from_name("fft_2")
        assert seed_from_name("fft_1", 0) != seed_from_name("fft_1", 1)


class TestLogging:
    def test_namespaced(self):
        log = get_logger("route.router")
        assert log.name == "repro.route.router"

    def test_already_prefixed(self):
        log = get_logger("repro.core")
        assert log.name == "repro.core"

    def test_set_verbosity(self):
        set_verbosity(logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)

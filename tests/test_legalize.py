"""Legalization tests: rows, Tetris, Abacus, legality checking."""

import numpy as np
import pytest

from repro.legalize import build_row_map, check_legal, legalize
from repro.legalize.abacus import _place_segment
from repro.place import GlobalPlacer, GPConfig, initial_placement


class TestRowMap:
    def test_row_count_and_geometry(self, tiny_netlist):
        rm = build_row_map(tiny_netlist)
        assert rm.n_rows == 10
        assert rm.row_center_y(0) == pytest.approx(0.5)

    def test_blockage_splits_row(self, tiny_netlist):
        rm = build_row_map(tiny_netlist)
        # fixed 2x2 macro at (5,5) blocks rows 4-5 into two segments
        for r in (4, 5):
            segs = rm.segments[r]
            assert len(segs) == 2
            assert segs[0].xhi == pytest.approx(4.0)
            assert segs[1].xlo == pytest.approx(6.0)

    def test_unblocked_row_single_segment(self, tiny_netlist):
        rm = build_row_map(tiny_netlist)
        assert len(rm.segments[0]) == 1

    def test_row_of_clamps(self, tiny_netlist):
        rm = build_row_map(tiny_netlist)
        assert rm.row_of(-100.0) == 0
        assert rm.row_of(100.0) == rm.n_rows - 1

    def test_site_snapping(self, tiny_netlist):
        rm = build_row_map(tiny_netlist)
        assert rm.site_ceil(1.01) == pytest.approx(1.25)
        assert rm.site_floor(1.24) == pytest.approx(1.0)


class TestAbacusPlaceSegment:
    def test_non_overlapping_targets_untouched(self):
        lefts = _place_segment(
            np.array([1.0, 5.0]), np.array([1.0, 1.0]), np.array([1.0, 1.0]), 0.0, 10.0
        )
        assert lefts == pytest.approx([1.0, 5.0])

    def test_overlapping_cells_split_around_mean(self):
        lefts = _place_segment(
            np.array([4.0, 4.0]), np.array([2.0, 2.0]), np.array([1.0, 1.0]), 0.0, 10.0
        )
        # cluster of width 4 centered at weighted target 4-1=3
        assert lefts[1] - lefts[0] == pytest.approx(2.0)
        assert lefts[0] == pytest.approx(3.0)

    def test_boundary_clamping(self):
        lefts = _place_segment(
            np.array([-5.0]), np.array([2.0]), np.array([1.0]), 0.0, 10.0
        )
        assert lefts[0] == 0.0

    def test_right_boundary(self):
        lefts = _place_segment(
            np.array([9.5]), np.array([2.0]), np.array([1.0]), 0.0, 10.0
        )
        assert lefts[0] == pytest.approx(8.0)

    def test_weights_bias_cluster_position(self):
        heavy_first = _place_segment(
            np.array([2.0, 2.0]), np.array([1.0, 1.0]), np.array([10.0, 1.0]), 0.0, 10.0
        )
        heavy_second = _place_segment(
            np.array([2.0, 2.0]), np.array([1.0, 1.0]), np.array([1.0, 10.0]), 0.0, 10.0
        )
        # heavier first cell keeps the cluster closer to its own target
        assert heavy_first[0] > heavy_second[0] - 1.0
        assert heavy_first[0] == pytest.approx(2.0, abs=0.2)


class TestLegalizeEndToEnd:
    def _place_and_legalize(self, nl, use_abacus=True):
        initial_placement(nl, 0)
        GlobalPlacer(nl, GPConfig(max_iters=150)).run()
        stats = legalize(nl, use_abacus=use_abacus)
        return stats

    def test_toy_legal_after(self, toy120):
        self._place_and_legalize(toy120)
        assert check_legal(toy120) == []

    def test_abacus_not_worse_than_tetris(self, toy300):
        nl1 = toy300.copy()
        nl2 = toy300.copy()
        initial_placement(nl1, 0)
        GlobalPlacer(nl1, GPConfig(max_iters=150)).run()
        nl2.x[:] = nl1.x
        nl2.y[:] = nl1.y
        s_tetris = legalize(nl1, use_abacus=False)
        s_abacus = legalize(nl2, use_abacus=True)
        assert check_legal(nl1) == []
        assert check_legal(nl2) == []
        assert s_abacus.total_displacement <= s_tetris.total_displacement * 1.05

    def test_high_utilization_compact_fallback(self):
        from repro.synth import toy_design

        nl = toy_design(500, seed=9, utilization=0.92, n_macros=2)
        initial_placement(nl, 0)
        GlobalPlacer(nl, GPConfig(max_iters=100)).run()
        legalize(nl)
        assert check_legal(nl) == []

    def test_stats_fields(self, toy120):
        stats = self._place_and_legalize(toy120)
        assert stats.n_cells > 0
        assert stats.max_displacement >= stats.mean_displacement >= 0


class TestCheckLegal:
    def test_detects_overlap(self, toy120):
        initial_placement(toy120, 0)
        GlobalPlacer(toy120, GPConfig(max_iters=100)).run()
        legalize(toy120)
        mv = np.flatnonzero(toy120.movable)
        a, b = mv[0], mv[1]
        toy120.x[b] = toy120.x[a]
        toy120.y[b] = toy120.y[a]
        issues = check_legal(toy120)
        assert any("overlap" in v for v in issues)

    def test_detects_outside_die(self, tiny_netlist):
        tiny_netlist.x[0] = -5.0
        assert any("outside" in v for v in check_legal(tiny_netlist))

    def test_detects_row_misalignment(self, toy120):
        initial_placement(toy120, 0)
        GlobalPlacer(toy120, GPConfig(max_iters=100)).run()
        legalize(toy120)
        mv = np.flatnonzero(toy120.movable)
        toy120.y[mv[0]] += 0.33
        assert any("row-aligned" in v for v in check_legal(toy120))

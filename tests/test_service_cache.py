"""ServiceCache correctness: staleness detection and snapshot isolation.

The cache key must change whenever the file's *content* changes, even
when ``os.stat`` cannot tell: a rewrite with the same byte count that
lands within the filesystem's timestamp granularity leaves
``(mtime_ns, size)`` identical.  The regression below pins the mtime
explicitly with :func:`os.utime` to simulate exactly that, and fails
against the pre-digest key.
"""

from __future__ import annotations

import os

import numpy as np

from repro.io.bookshelf import dumps_design, save_design
from repro.service.cache import ServiceCache
from repro.synth import toy_design


def _write_design(path, netlist):
    save_design(netlist, str(path))


class TestCacheStaleness:
    def test_same_size_rewrite_with_pinned_mtime_is_a_miss(self, tmp_path):
        """A content rewrite invisible to stat() must still miss.

        The second write moves one cell by swapping two equal-length
        position fields, keeping the byte count identical, and then
        restores the original ``st_mtime_ns`` — the strongest form of
        the coarse-timestamp race.  Serving the cached parse here would
        hand the daemon a stale design.
        """
        nl = toy_design(60, seed=11)
        path = tmp_path / "design.bl"
        text = dumps_design(nl)
        path.write_text(text)
        st = os.stat(path)

        cache = ServiceCache()
        first = cache.netlist(str(path))
        assert cache.misses == 1

        # same length, different content: swap the payloads of the
        # first two cell lines (names stay in place, geometry swaps)
        lines = text.splitlines()
        idx = [i for i, ln in enumerate(lines) if ln.startswith("cell ")]
        a, b = idx[0], idx[1]
        pa, pb = lines[a].split(), lines[b].split()
        pa[1:], pb[1:] = pb[1:], pa[1:]
        lines[a], lines[b] = " ".join(pa), " ".join(pb)
        new_text = "\n".join(lines) + ("\n" if text.endswith("\n") else "")
        assert new_text != text
        assert len(new_text.encode()) == len(text.encode())
        path.write_text(new_text)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns))
        after = os.stat(path)
        assert after.st_mtime_ns == st.st_mtime_ns
        assert after.st_size == st.st_size

        second = cache.netlist(str(path))
        assert cache.misses == 2, (
            "rewritten file served from cache: the key does not see "
            "content changes hidden from stat()"
        )
        assert not (
            np.array_equal(first.x, second.x)
            and np.array_equal(first.y, second.y)
        )

    def test_unchanged_file_hits(self, tmp_path):
        nl = toy_design(60, seed=11)
        path = tmp_path / "design.bl"
        _write_design(path, nl)
        cache = ServiceCache()
        cache.netlist(str(path))
        cache.netlist(str(path))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_snapshots_are_private_copies(self, tmp_path):
        nl = toy_design(60, seed=11)
        path = tmp_path / "design.bl"
        _write_design(path, nl)
        cache = ServiceCache()
        first = cache.netlist(str(path))
        first.x[:] = -1.0
        second = cache.netlist(str(path))
        assert not np.array_equal(first.x, second.x)

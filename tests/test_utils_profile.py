"""StageProfiler behaviour: timers, counters, merge, serialisation.

Timing assertions inject a :class:`~repro.utils.clock.FakeClock`
instead of sleeping, so they are exact and instantaneous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Grid2D
from repro.route import GlobalRouter, RouterConfig
from repro.synth import toy_design
from repro.utils.clock import FakeClock, SystemClock
from repro.utils.profile import StageProfiler, StageStats
from repro.utils.timer import Timer


class TestClocks:
    def test_fake_clock_advances_exactly(self):
        clock = FakeClock(start=5.0)
        assert clock.now() == 5.0
        clock.advance(0.25)
        assert clock.now() == 5.25

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_timer_uses_injected_clock(self):
        clock = FakeClock()
        timer = Timer(clock=clock).start()
        clock.advance(1.5)
        timer.stop()
        clock.advance(100.0)  # after stop: no effect
        assert timer.elapsed == pytest.approx(1.5)


class TestAccumulation:
    def test_timer_accumulates_time_and_calls(self):
        clock = FakeClock()
        prof = StageProfiler(clock=clock)
        for _ in range(3):
            with prof.timer("a.b"):
                clock.advance(0.002)
        st = prof.stages["a.b"]
        assert st.calls == 3
        assert st.time == pytest.approx(0.006)
        assert prof.time_of("a.b") == st.time
        assert prof.time_of("missing") == 0.0

    def test_nested_timers_attribute_time_to_each_stage(self):
        clock = FakeClock()
        prof = StageProfiler(clock=clock)
        with prof.timer("outer"):
            clock.advance(1.0)
            with prof.timer("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        assert prof.time_of("inner") == pytest.approx(2.0)
        assert prof.time_of("outer") == pytest.approx(3.5)

    def test_timer_records_on_exception(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.timer("boom"):
                raise RuntimeError("x")
        assert prof.stages["boom"].calls == 1

    def test_counters(self):
        prof = StageProfiler()
        prof.count("segments", 10)
        prof.count("segments", 5)
        prof.count("calls")
        assert prof.counters == {"segments": 15, "calls": 1}

    def test_total_by_prefix(self):
        prof = StageProfiler()
        prof.add_time("route.initial", 1.0)
        prof.add_time("route.rrr", 2.0)
        prof.add_time("gp.step", 4.0)
        assert prof.total("route.") == pytest.approx(3.0)
        assert prof.total() == pytest.approx(7.0)

    def test_reset(self):
        prof = StageProfiler()
        prof.add_time("x", 1.0)
        prof.count("y")
        prof.reset()
        assert not prof.stages and not prof.counters


class TestMergeAndSerialise:
    def test_merge(self):
        a = StageProfiler()
        a.add_time("s", 1.0, calls=2)
        a.count("c", 3)
        b = StageProfiler()
        b.add_time("s", 0.5)
        b.add_time("t", 0.25)
        b.count("c", 1)
        a.merge(b)
        assert a.stages["s"] == StageStats(time=1.5, calls=3)
        assert a.stages["t"].time == 0.25
        assert a.counters["c"] == 4

    def test_dict_round_trip(self):
        prof = StageProfiler()
        prof.add_time("route.total", 1.25, calls=2)
        prof.count("route.segments", 99)
        data = prof.as_dict()
        assert data["stages"]["route.total"] == {
            "time_s": 1.25, "calls": 2, "errors": 0,
        }
        back = StageProfiler.from_dict(data)
        assert back.as_dict() == data

    def test_report_contains_stages_and_counters(self):
        prof = StageProfiler()
        prof.add_time("slow", 2.0)
        prof.add_time("fast", 0.5)
        prof.count("things", 7)
        text = prof.report("my title")
        lines = text.splitlines()
        assert lines[0] == "my title"
        # sorted by time descending
        assert lines[1].split()[0] == "slow"
        assert lines[2].split()[0] == "fast"
        assert any("things" in ln and "7" in ln for ln in lines)

    def test_report_empty(self):
        assert "(no stages recorded)" in StageProfiler().report()


class TestRouterIntegration:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_router_records_stages(self, engine):
        netlist = toy_design(150, seed=5)
        prof = StageProfiler()
        grid = Grid2D(netlist.die, 16, 16)
        router = GlobalRouter(grid, RouterConfig(engine=engine), profiler=prof)
        result = router.route(netlist)
        assert prof.counters["route.calls"] == 1
        assert prof.counters["route.segments"] == result.n_segments
        for stage in ("route.total", "route.initial", "route.rrr"):
            assert prof.stages[stage].calls >= 1
        # the stage clock covers real work
        assert prof.time_of("route.total") > 0.0
        assert np.isfinite(prof.total())


class TestExceptionSafety:
    def test_raising_stage_keeps_partial_breakdown(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError, match="boom"):
            with prof.timer("flaky"):
                raise RuntimeError("boom")
        assert prof.stages["flaky"].calls == 1
        assert prof.stages["flaky"].errors == 1
        assert prof.stages["flaky"].time >= 0.0
        assert prof.open_stages == []

    def test_nested_raise_closes_all_timers(self):
        prof = StageProfiler()
        with pytest.raises(ValueError):
            with prof.timer("outer"):
                with prof.timer("inner"):
                    assert prof.open_stages == ["outer", "inner"]
                    raise ValueError("inner died")
        assert prof.open_stages == []
        assert prof.stages["inner"].errors == 1
        assert prof.stages["outer"].errors == 1
        assert prof.stages["inner"].calls == 1
        assert prof.stages["outer"].calls == 1

    def test_open_stages_tracks_stack(self):
        prof = StageProfiler()
        with prof.timer("a"):
            with prof.timer("b"):
                assert prof.open_stages == ["a", "b"]
            assert prof.open_stages == ["a"]
        assert prof.open_stages == []

    def test_errors_survive_roundtrip_and_merge(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.timer("s"):
                raise RuntimeError
        back = StageProfiler.from_dict(prof.as_dict())
        assert back.stages["s"].errors == 1
        merged = StageProfiler().merge(back).merge(back)
        assert merged.stages["s"].errors == 2

    def test_report_marks_errors(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.timer("bad.stage"):
                raise RuntimeError
        assert "!1" in prof.report()

    def test_old_snapshots_still_load(self):
        back = StageProfiler.from_dict(
            {"stages": {"s": {"time_s": 1.0, "calls": 2}}, "counters": {}}
        )
        assert back.stages["s"].errors == 0

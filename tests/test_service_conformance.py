"""Service-vs-CLI conformance: the API must not change a single byte.

The service's core promise is that it is *only* an execution vehicle:
a job submitted over the HTTP API runs the same code as ``repro
place`` and therefore produces bit-identical positions, telemetry
stream rows and checkpoint bytes.  The CLI side runs as a real
subprocess (its own interpreter, its own kernel-backend resolution)
so the comparison crosses the same process boundary a user's shell
invocation would — extending the ``TestSupervisedIdentity`` pattern
from ``test_bench_parallel.py`` to the service layer.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.io import save_design
from repro.service import PlacementService, ServiceClient, ServiceConfig
from repro.synth import SynthConfig, generate_design
from repro.utils.checkpoint import backup_path
from repro.utils.metrics import read_jsonl, validate_stream

pytestmark = pytest.mark.service

SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_design(path: str, n_cells: int = 110, seed: int = 9,
                congested: bool = False) -> str:
    """Write a small synthetic design file; returns its absolute path.

    ``congested=True`` raises the net count so the routability loop
    actually iterates (multiple rounds -> multiple checkpoint writes
    -> a ``.bak`` predecessor exists to compare).
    """
    kwargs = dict(n_cells=n_cells, seed=seed)
    if congested:
        kwargs.update(utilization=0.75, nets_per_cell=1.6)
    netlist = generate_design(SynthConfig(name="toy", **kwargs))
    save_design(netlist, path)
    return os.path.abspath(path)


def run_cli(args, cwd: str) -> None:
    """Run ``python -m repro <args>`` as a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"CLI failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
    )


class TestServiceConformance:
    def test_api_run_bit_identical_to_cli(self, tmp_path):
        """Same design via CLI subprocess and via the service API:
        positions, metrics rows and checkpoint bytes all byte-equal."""
        design = make_design(
            str(tmp_path / "design.bl"), n_cells=300, seed=1, congested=True
        )
        flow = ["--routability", "--iters", "40",
                "--rounds", "2", "--iters-per-round", "10"]

        cli_dir = tmp_path / "cli"
        cli_dir.mkdir()
        cli_out = str(cli_dir / "placed.bl")
        cli_ckpt = str(cli_dir / "flow.npz")
        cli_metrics = str(cli_dir / "metrics.jsonl")
        run_cli(
            ["place", design, *flow, "--out", cli_out,
             "--checkpoint", cli_ckpt, "--metrics-out", cli_metrics],
            cwd=str(cli_dir),
        )

        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="supervised", poll_interval=0.02
        )
        with PlacementService(config):
            client = ServiceClient(root=root)
            entry = client.submit({
                "input": design, "routability": True, "iters": 40,
                "rounds": 2, "iters_per_round": 10,
            })
            job_id = entry["job_id"]
            final = client.wait(job_id, timeout=600)
        assert final["state"] == "DONE", final
        jobdir = Path(root) / "jobs" / job_id

        def read(path) -> bytes:
            with open(path, "rb") as fh:
                return fh.read()

        assert read(jobdir / "placed.bl") == read(cli_out)
        assert read(jobdir / "metrics.jsonl") == read(cli_metrics)
        assert read(jobdir / "flow.npz") == read(cli_ckpt)
        assert read(backup_path(str(jobdir / "flow.npz"))) == read(
            backup_path(cli_ckpt)
        )
        assert final["result"]["hpwl"] > 0

    def test_repeat_submission_identical_and_cached(self, tmp_path):
        """Inline mode: a repeated job serves the design from the warm
        cache and still produces byte-identical artifacts."""
        design = make_design(str(tmp_path / "design.bl"), seed=3)
        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="inline", poll_interval=0.02
        )
        with PlacementService(config) as service:
            client = ServiceClient(root=root)
            request = {"input": design, "iters": 30}
            first = client.submit(request)
            second = client.submit(request)
            entries = client.wait_all(
                [first["job_id"], second["job_id"]], timeout=600
            )
            assert [e["state"] for e in entries] == ["DONE", "DONE"]
            stats = service.cache.stats()
            assert stats["netlist_misses"] == 1
            assert stats["netlist_hits"] == 1
            assert stats["spectral_workspaces"] >= 1

        def job_bytes(entry, name: str) -> bytes:
            with open(
                Path(root) / "jobs" / entry["job_id"] / name, "rb"
            ) as fh:
                return fh.read()

        for name in ("placed.bl", "metrics.jsonl"):
            assert job_bytes(entries[0], name) == job_bytes(entries[1], name)
        assert entries[0]["result"]["hpwl"] == entries[1]["result"]["hpwl"]

    def test_route_job_matches_cli(self, tmp_path):
        """Route jobs conform too (same placed input, same stream)."""
        design = make_design(str(tmp_path / "design.bl"), seed=5)
        cli_dir = tmp_path / "cli"
        cli_dir.mkdir()
        cli_metrics = str(cli_dir / "metrics.jsonl")
        run_cli(
            ["route", design, "--metrics-out", cli_metrics],
            cwd=str(cli_dir),
        )
        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="supervised", poll_interval=0.02
        )
        with PlacementService(config):
            client = ServiceClient(root=root)
            entry = client.submit({"input": design}, kind="route")
            final = client.wait(entry["job_id"], timeout=600)
        assert final["state"] == "DONE", final
        jobdir = Path(root) / "jobs" / entry["job_id"]
        with open(jobdir / "metrics.jsonl", "rb") as fh:
            service_stream = fh.read()
        with open(cli_metrics, "rb") as fh:
            cli_stream = fh.read()
        assert service_stream == cli_stream
        assert final["result"]["kind"] == "route"
        validate_stream(read_jsonl(str(jobdir / "metrics.jsonl")))

"""Run-database ingestion (idempotent) and query API, on the golden set."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dse.store import RunDB

GOLDEN = Path(__file__).parent / "golden" / "dse"


def load_golden(db: RunDB) -> None:
    """Ingest every golden source file into ``db``."""
    for path in sorted(GOLDEN.glob("*.json")) + sorted(GOLDEN.glob("*.jsonl")):
        db.ingest_path(path)


@pytest.fixture
def db():
    with RunDB(":memory:") as handle:
        load_golden(handle)
        yield handle


class TestIngestion:
    def test_counts(self, db):
        summary = db.summary()
        assert summary["sweeps"] == ["golden"]
        counts = summary["counts"]
        assert counts["units"] == 4
        assert counts["runs"] == 4
        assert counts["rounds"] == 8  # 2 rounds x 4 units
        assert counts["knobs"] == 8  # 2 knobs x 4 units
        assert counts["bench_payloads"] == 2
        assert counts["supervisor_events"] > 0

    def test_reingest_is_a_noop(self, db):
        before = db.dump()
        load_golden(db)
        assert db.dump() == before
        # same content from a different path is also a repeat
        payload = json.loads(
            (GOLDEN / "golden__p000__des_perf_1.json").read_text())
        assert db.ingest_unit_payload(payload, source="elsewhere") is False
        assert db.dump() == before

    def test_unknown_suffix_rejected(self, db, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="suffix"):
            db.ingest_path(path)

    def test_manifest_recorded_without_metric_rows(self, db, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"spec": {}, "units": []}))
        assert db.ingest_bench_json(manifest) is True
        assert db.ingest_bench_json(manifest) is False
        assert "manifest.json" not in db.bench_files()

    def test_kernel_events_extracted(self, db):
        rows = list(db.conn.execute(
            "SELECT requested, resolved FROM kernel_events ORDER BY unit_id"))
        assert rows and all(r == ("auto", "fastnp") for r in rows)


class TestQueries:
    def test_best_by_minimizes_and_carries_knobs(self, db):
        best = db.best_by("#DRVs", limit=2)
        assert [b["value"] for b in best] == [7.0, 9.0]
        assert best[0]["design"] == "fft_1"
        assert best[0]["knobs"]["inflation.alpha"] == 0.6
        worst = db.best_by("#DRVs", minimize=False, limit=1)
        assert worst[0]["value"] == 14.0

    def test_best_by_placer_filter(self, db):
        assert db.best_by("#DRVs", placer="nope") == []
        assert len(db.best_by("#DRVs", placer="Ours")) == 4

    def test_trend_groups_by_knob_value(self, db):
        trend = db.trend("inflation.alpha", "#DRVs")
        assert [(t["value"], t["mean"], t["n"]) for t in trend] == [
            (0.2, (14.0 + 9.0) / 2, 2), (0.6, (11.0 + 7.0) / 2, 2)]

    def test_compare_reports_deltas(self, db):
        out = db.compare("golden:p000:des_perf_1:Ours",
                         "golden:p001:des_perf_1:Ours")
        assert out["metrics"]["#DRVs"] == {"a": 14.0, "b": 11.0, "delta": -3.0}
        with pytest.raises(KeyError):
            db.compare("golden:p000:des_perf_1:Ours", "missing:run")

    def test_unit_rounds_ordered(self, db):
        rounds = db.unit_rounds("golden:p000:des_perf_1")
        assert [r["round"] for r in rounds] == [0, 1]
        assert rounds[1]["mean_congestion"] == 0.22

    def test_bench_history(self, db):
        assert db.bench_files() == ["BENCH_mini_0.json", "BENCH_mini_1.json"]
        series = db.bench_series("wa", "speedup")
        assert series == {"n1000": [("BENCH_mini_0.json", 4.0),
                                    ("BENCH_mini_1.json", 5.0)]}
        assert ("raster", "fastnp_ms") in db.bench_families()

    def test_names(self, db):
        assert db.knob_names() == ["inflation.alpha", "rd.max_rounds"]
        assert "#DRVs" in db.metric_names()


class TestBenchShapes:
    def test_bare_table_list(self, tmp_path):
        path = tmp_path / "table1.json"
        path.write_text(json.dumps([
            {"design": "d", "placer": "Ours", "metrics": {"DRWL": 1.0}}]))
        with RunDB(":memory:") as db:
            assert db.ingest_bench_json(path) is True
            assert db.bench_series("table", "DRWL") == {
                "d/Ours": [("table1.json", 1.0)]}

    def test_sweep_payload_rows(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text(json.dumps({
            "kind": "table1", "jobs": 2,
            "rows": [{"design": "d", "placer": "Ours",
                      "metrics": {"#DRVs": 3.0}}],
            "supervisor": {"events": []}}))
        with RunDB(":memory:") as db:
            assert db.ingest_bench_json(path) is True
            assert db.bench_series("table", "#DRVs") == {
                "d/Ours": [("BENCH_sweep.json", 3.0)]}

    def test_spectral_payload(self, tmp_path):
        path = tmp_path / "BENCH_spectral.json"
        path.write_text(json.dumps({
            "host": "h", "spectral": {"per_dim": [
                {"dim": 64, "density_speedup": 2.0}]}}))
        with RunDB(":memory:") as db:
            db.ingest_bench_json(path)
            assert db.bench_series("spectral", "density_speedup") == {
                "dim64": [("BENCH_spectral.json", 2.0)]}

    def test_route_payload(self, tmp_path):
        path = tmp_path / "BENCH_route.json"
        path.write_text(json.dumps({
            "bench": "route",
            "designs": {"d": {"rd_profile": {"total_s": 4.5}, "flat": 1.0}}}))
        with RunDB(":memory:") as db:
            db.ingest_bench_json(path)
            assert db.bench_series("route", "total_s") == {
                "d/rd_profile": [("BENCH_route.json", 4.5)]}
            assert db.bench_series("route", "flat") == {
                "d": [("BENCH_route.json", 1.0)]}

"""Registry behavior and per-kernel equivalence of the backend layer.

Two halves:

* **registry** — selection order (configure > env > auto), the numba
  fallback rules, the exported env var, telemetry emission and the
  :class:`~repro.kernels.KernelTuner` lock-in contract;
* **equivalence** — every registered fast backend reproduces the
  ``reference`` backend on all four routed hot paths, driven through
  the *public* call sites (``wa_wirelength_and_grad``,
  ``CellRasterizer``, Alg. 1/2 gradients, the batched router).  The
  ``fastnp`` backend must be **bit-identical** (``atol=0``); the
  optional ``numba`` backend is held to 1e-12 (libm vs numpy SIMD
  exponentials differ by ULPs) and runs only where numba imports
  (``-m numba`` CI job).

Each equivalence test repeats the fast-backend call ``2 *
TUNE_SAMPLES + 2`` times so tuned kernels are compared in *both*
layout variants and again after the tuner locks in.
"""

from __future__ import annotations

import contextlib
import logging
import os

import numpy as np
import pytest

from repro import kernels
from repro.core.congestion_field import CongestionField
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.netmove import (
    NetMoveConfig,
    two_pin_net_gradients,
    virtual_cell_positions,
)
from repro.density.rasterize import CellRasterizer
from repro.geometry import Grid2D
from repro.kernels import ENV_VAR, TUNE_SAMPLES, KernelTuner
from repro.place.initial import initial_placement
from repro.route import GlobalRouter, RouterConfig
from repro.synth import toy_design
from repro.utils.metrics import MetricsRegistry, validate_event
from repro.wirelength.wa import wa_wirelength_and_grad

#: Repetitions that walk a tuned kernel through both variants' timing
#: samples and past the lock-in point.
N_TUNE_CALLS = 2 * TUNE_SAMPLES + 2

FAST_BACKENDS = [
    pytest.param("fastnp", id="fastnp"),
    pytest.param(
        "numba",
        id="numba",
        marks=[
            pytest.mark.numba,
            pytest.mark.skipif(
                not kernels.numba_available(), reason="numba not installed"
            ),
        ],
    ),
]


@contextlib.contextmanager
def use_backend(name):
    """Activate backend ``name``, restoring env var and cache on exit."""
    prev = os.environ.get(ENV_VAR)
    try:
        yield kernels.configure(name)
    finally:
        if prev is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev
        kernels.reset()


def _assert_match(backend, got, want, label):
    """Bit-identity for fastnp; 1e-12 for the JIT backend."""
    got = np.asarray(got)
    want = np.asarray(want)
    if backend == "fastnp":
        assert np.array_equal(got, want), (
            f"{label}: fastnp output is not bit-identical to reference"
        )
    else:
        np.testing.assert_allclose(
            got, want, rtol=1e-12, atol=1e-12, err_msg=label
        )


@pytest.fixture(scope="module")
def scene():
    """Placed toy design with one real routing pass (reference backend)."""
    with use_backend("reference"):
        netlist = toy_design(150, seed=5)
        initial_placement(netlist, 0)
        grid = Grid2D(netlist.die, 16, 16)
        routing = GlobalRouter(grid, RouterConfig()).route(netlist)
        field = CongestionField(grid, routing.utilization_map)
        std = netlist.movable & ~netlist.cell_macro
        virtual_area = float(netlist.cell_area[std].mean())
    return {
        "netlist": netlist,
        "grid": grid,
        "congestion": routing.congestion_map,
        "field": field,
        "virtual_area": virtual_area,
    }


class TestRegistry:
    def test_available_backends(self):
        names = kernels.available_backends()
        assert names[-1] == "auto"
        assert {"reference", "fastnp", "numba"} <= set(names)
        assert names[:-1] == sorted(names[:-1])

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        kernels.reset()
        assert kernels.requested_backend() == "auto"
        expected = "numba" if kernels.numba_available() else "reference"
        assert kernels.get_backend().name == expected

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fastnp")
        kernels.reset()
        assert kernels.requested_backend() == "fastnp"
        assert kernels.get_backend().name == "fastnp"

    def test_configure_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fastnp")
        kernels.reset()
        backend = kernels.configure("reference")
        assert backend.name == "reference"
        # the choice is exported so worker subprocesses inherit it
        assert os.environ[ENV_VAR] == "reference"

    def test_configure_none_keeps_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fastnp")
        kernels.reset()
        assert kernels.configure(None).name == "fastnp"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.configure("cuda")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        kernels.reset()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend()

    def test_backend_instance_is_cached(self):
        kernels.reset()
        assert kernels.get_backend() is kernels.get_backend()

    @pytest.mark.skipif(
        kernels.numba_available(), reason="exercises the numba-absent fallback"
    )
    def test_numba_fallback_warns_once(self, caplog, monkeypatch):
        # the repro root logger does not propagate; let caplog see it
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level("WARNING"):
            with use_backend("numba") as backend:
                assert backend.name == "reference"
        assert any("falling back" in r.message for r in caplog.records)

    @pytest.mark.skipif(
        kernels.numba_available(), reason="exercises the numba-absent fallback"
    )
    def test_auto_falls_back_silently(self, monkeypatch, caplog):
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        monkeypatch.delenv(ENV_VAR, raising=False)
        kernels.reset()
        with caplog.at_level("WARNING"):
            assert kernels.get_backend().name == "reference"
        assert not caplog.records

    def test_configure_emits_schema_valid_event(self):
        registry = MetricsRegistry()
        with use_backend("reference"):
            pass  # enter/exit only to restore state afterwards
        kernels.configure("fastnp", metrics=registry)
        kernels.reset()
        (event,) = registry.series["kernel.backend"]
        validate_event(event)
        assert event["requested"] == "fastnp"
        assert event["resolved"] == "fastnp"
        assert event["numba_available"] == kernels.numba_available()

    def test_describe_carries_autotune_state(self):
        with use_backend("fastnp") as backend:
            info = backend.describe()
        assert info["name"] == "fastnp"
        assert set(info["autotune"]) == {
            "wa_axes",
            "raster_overlaps",
            "scatter_add_pair",
            "route_best_bends",
        }
        for report in info["autotune"].values():
            assert set(report) == {"choice", "samples"}


class TestKernelTuner:
    def test_locks_best_variant_after_sampling(self):
        calls = []
        tuner = KernelTuner(
            "toy",
            {
                "a": lambda v: calls.append("a") or v + 1,
                "b": lambda v: calls.append("b") or v + 1,
            },
        )
        for _ in range(2 * TUNE_SAMPLES):
            assert tuner(1) == 2  # every variant agrees on the result
        report = tuner.report()
        assert tuner.choice in ("a", "b")
        assert report["choice"] == tuner.choice
        assert report["samples"] == {"a": TUNE_SAMPLES, "b": TUNE_SAMPLES}
        # locked: only the chosen variant runs from now on
        tuner(1)
        assert calls[-1] == tuner.choice

    def test_alternates_least_sampled_while_tuning(self):
        seen = []
        tuner = KernelTuner(
            "toy",
            {"a": lambda: seen.append("a"), "b": lambda: seen.append("b")},
        )
        for _ in range(2 * TUNE_SAMPLES):
            tuner()
        assert seen.count("a") == TUNE_SAMPLES
        assert seen.count("b") == TUNE_SAMPLES


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestEquivalence:
    def test_wa_wirelength(self, scene, backend):
        nl = scene["netlist"]
        gamma = 0.5 * scene["grid"].dx
        with use_backend("reference"):
            ref = wa_wirelength_and_grad(nl, gamma)
        with use_backend(backend):
            for call in range(N_TUNE_CALLS):
                wl, gx, gy = wa_wirelength_and_grad(nl, gamma)
                _assert_match(backend, wl, ref[0], f"wa wl (call {call})")
                _assert_match(backend, gx, ref[1], f"wa grad_x (call {call})")
                _assert_match(backend, gy, ref[2], f"wa grad_y (call {call})")

    def test_raster_density(self, scene, backend):
        nl = scene["netlist"]
        grid = scene["grid"]
        with use_backend("reference"):
            ref_raster = CellRasterizer(
                grid, nl.x, nl.y, nl.cell_width, nl.cell_height
            )
            ref_charge = ref_raster.charge_map()
            field = np.cos(ref_charge)  # any dense per-bin field
            ref_gather = ref_raster.gather(field)
        with use_backend(backend):
            for call in range(N_TUNE_CALLS):
                raster = CellRasterizer(
                    grid, nl.x, nl.y, nl.cell_width, nl.cell_height
                )
                _assert_match(
                    backend,
                    raster.charge_map(),
                    ref_charge,
                    f"raster charge (call {call})",
                )
                _assert_match(
                    backend,
                    raster.gather(field),
                    ref_gather,
                    f"raster gather (call {call})",
                )

    def test_netmove_gradients(self, scene, backend):
        nl = scene["netlist"]
        cfg = NetMoveConfig()
        args = (nl, scene["grid"], scene["congestion"])
        with use_backend("reference"):
            ref_info = virtual_cell_positions(*args, cfg)
            ref_grads = two_pin_net_gradients(
                *args, scene["field"], scene["virtual_area"], cfg
            )
        with use_backend(backend):
            info = virtual_cell_positions(*args, cfg)
            for key in ("xv", "yv", "congestion"):
                _assert_match(backend, info[key], ref_info[key], f"netmove {key}")
            assert np.array_equal(info["active"], ref_info["active"])
            gx, gy, _ = two_pin_net_gradients(
                *args, scene["field"], scene["virtual_area"], cfg
            )
            _assert_match(backend, gx, ref_grads[0], "netmove grad_x")
            _assert_match(backend, gy, ref_grads[1], "netmove grad_y")

    def test_multipin_gradients(self, scene, backend):
        nl = scene["netlist"]
        args = (nl, scene["grid"], scene["congestion"], scene["field"])
        with use_backend("reference"):
            ref_gx, ref_gy, ref_sel = multi_pin_cell_gradients(
                *args, threshold=0.7
            )
        with use_backend(backend):
            gx, gy, sel = multi_pin_cell_gradients(*args, threshold=0.7)
            _assert_match(backend, gx, ref_gx, "multipin grad_x")
            _assert_match(backend, gy, ref_gy, "multipin grad_y")
            assert np.array_equal(sel, ref_sel)

    def test_batched_routing(self, scene, backend):
        nl = scene["netlist"]
        grid = scene["grid"]
        with use_backend("reference"):
            ref = GlobalRouter(grid, RouterConfig()).route(nl)
        with use_backend(backend):
            out = GlobalRouter(grid, RouterConfig()).route(nl)
        _assert_match(backend, out.congestion_map, ref.congestion_map, "route congestion")
        _assert_match(backend, out.utilization_map, ref.utilization_map, "route utilization")
        assert out.wirelength == ref.wirelength
        assert out.n_vias == ref.n_vias

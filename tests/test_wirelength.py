"""Tests for HPWL and the WA smooth wirelength model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from repro.wirelength import WAWirelength, hpwl, hpwl_per_net, wa_wirelength_and_grad


def _line_netlist(xs, ys=None):
    """One net connecting point cells at the given coordinates."""
    ys = ys if ys is not None else [0.0] * len(xs)
    cells = [CellSpec(f"c{i}", 0.2, 0.2, x=x, y=y) for i, (x, y) in enumerate(zip(xs, ys))]
    net = NetSpec("n", [PinSpec(f"c{i}") for i in range(len(xs))])
    return Netlist.from_specs("line", Rect(-100, -100, 100, 100), cells, [net])


class TestHPWL:
    def test_two_pin(self):
        nl = _line_netlist([0.0, 3.0], [0.0, 4.0])
        assert hpwl(nl) == pytest.approx(7.0)

    def test_multi_pin_is_bbox(self):
        nl = _line_netlist([0, 5, 2], [1, -1, 4])
        assert hpwl(nl) == pytest.approx(5 + 5)

    def test_single_pin_zero(self):
        cells = [CellSpec("a", 1, 1), CellSpec("b", 1, 1)]
        nets = [NetSpec("n", [PinSpec("a")])]
        nl = Netlist.from_specs("d", Rect(0, 0, 10, 10), cells, nets)
        assert hpwl(nl) == 0.0

    def test_net_weights(self, tiny_netlist):
        base = hpwl_per_net(tiny_netlist)
        w = np.array([2.0, 0.5])
        weighted = hpwl_per_net(tiny_netlist, w)
        assert np.allclose(weighted, base * w)

    def test_pin_offsets_matter(self):
        cells = [CellSpec("a", 1, 1, x=0), CellSpec("b", 1, 1, x=4)]
        nets = [NetSpec("n", [PinSpec("a", 0.3, 0), PinSpec("b", -0.3, 0)])]
        nl = Netlist.from_specs("d", Rect(-10, -10, 10, 10), cells, nets)
        assert hpwl(nl) == pytest.approx(4 - 0.6)


class TestWAValue:
    def test_upper_bound_of_hpwl(self):
        # WA underestimates per axis; |WA - HPWL| <= O(gamma)
        nl = _line_netlist([0, 1, 5, 9], [0, 2, -3, 1])
        exact = hpwl(nl)
        for gamma in (4.0, 1.0, 0.1):
            wl, _, _ = wa_wirelength_and_grad(nl, gamma)
            assert wl <= exact + 1e-9
        wl, _, _ = wa_wirelength_and_grad(nl, 0.01)
        assert wl == pytest.approx(exact, rel=1e-3)

    def test_invalid_gamma(self, tiny_netlist):
        with pytest.raises(ValueError):
            wa_wirelength_and_grad(tiny_netlist, 0.0)

    def test_large_coordinates_stable(self):
        nl = _line_netlist([1e5, 1e5 + 3], [0, 0])
        wl, gx, gy = wa_wirelength_and_grad(nl, 0.5)
        assert np.isfinite(wl)
        assert np.isfinite(gx).all()
        assert wl == pytest.approx(3.0, abs=0.5)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_wa_below_hpwl_property(self, xs):
        nl = _line_netlist(xs)
        wl, _, _ = wa_wirelength_and_grad(nl, 1.0)
        assert wl <= hpwl(nl) + 1e-6


class TestWAGradient:
    def _fd_check(self, nl, gamma, eps=1e-5):
        _, gx, gy = wa_wirelength_and_grad(nl, gamma)
        for i in range(nl.n_cells):
            if nl.cell_fixed[i]:
                continue
            for arr, g in ((nl.x, gx), (nl.y, gy)):
                orig = arr[i]
                arr[i] = orig + eps
                up, _, _ = wa_wirelength_and_grad(nl, gamma)
                arr[i] = orig - eps
                dn, _, _ = wa_wirelength_and_grad(nl, gamma)
                arr[i] = orig
                fd = (up - dn) / (2 * eps)
                assert g[i] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_gradient_matches_finite_difference(self):
        nl = _line_netlist([0, 1.7, 5.2, 8.9], [0.3, 2.1, -3.3, 1.4])
        self._fd_check(nl, gamma=1.3)

    def test_gradient_multi_net(self, tiny_netlist):
        self._fd_check(tiny_netlist, gamma=0.8)

    def test_fixed_cells_zero_gradient(self, tiny_netlist):
        _, gx, gy = wa_wirelength_and_grad(tiny_netlist, 1.0)
        assert gx[3] == 0.0 and gy[3] == 0.0

    def test_translation_invariance(self):
        nl = _line_netlist([0, 2, 7])
        wl1, gx1, _ = wa_wirelength_and_grad(nl, 1.0)
        nl.x += 13.0
        wl2, gx2, _ = wa_wirelength_and_grad(nl, 1.0)
        assert wl1 == pytest.approx(wl2)
        assert np.allclose(gx1, gx2)

    def test_gradient_sums_to_zero_per_axis(self):
        # internal forces: moving the whole net does not change WA
        nl = _line_netlist([0, 2, 7], [1, 5, -2])
        _, gx, gy = wa_wirelength_and_grad(nl, 1.0)
        assert gx.sum() == pytest.approx(0.0, abs=1e-10)
        assert gy.sum() == pytest.approx(0.0, abs=1e-10)


class TestGammaSchedule:
    def test_gamma_shrinks_with_overflow(self):
        wa = WAWirelength(base_unit=1.0)
        hi = wa.update_gamma(1.0)
        lo = wa.update_gamma(0.0)
        assert lo < hi

    def test_callable_interface(self, tiny_netlist):
        wa = WAWirelength(base_unit=0.5)
        wl, gx, gy = wa(tiny_netlist)
        assert wl > 0
        assert gx.shape == (tiny_netlist.n_cells,)

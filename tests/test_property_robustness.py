"""Property-based invariants of the robustness-critical numerics.

Two guarantees the flow's recovery paths rely on:

* MCI inflation rates stay inside ``[r_min, r_max]`` and finite no
  matter what congestion sequence arrives — including adversarial
  values (negative, huge, NaN, Inf) from a corrupted router pass;
* the Eq. (10) congestion weight ``lambda_2`` is finite for every
  input, in particular 0 when the congestion gradient vanishes (the
  division that could blow up is guarded).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inflation import InflationConfig, MomentumInflation
from repro.core.weights import congestion_penalty_weight

# adversarial congestion samples: normal values, extremes, and the
# non-finite values a corrupted map can carry
congestion_value = st.one_of(
    st.floats(min_value=-10.0, max_value=10.0),
    st.sampled_from([0.0, 1e12, -1e12, 1e308, float("nan"), float("inf"), float("-inf")]),
)
congestion_round = st.lists(congestion_value, min_size=4, max_size=4)


class TestInflationRateInvariants:
    @given(st.lists(congestion_round, min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_rates_always_in_legal_range(self, rounds):
        cfg = InflationConfig()
        mci = MomentumInflation(4, cfg)
        for cong in rounds:
            rates = mci.update(np.array(cong))
            assert np.isfinite(rates).all()
            assert (rates >= cfg.r_min - 1e-12).all()
            assert (rates <= cfg.r_max + 1e-12).all()

    @given(st.lists(congestion_round, min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_momentum_state_stays_finite(self, rounds):
        """The carried momentum terms must never go non-finite, or a
        single poisoned round would corrupt every later round."""
        mci = MomentumInflation(4, InflationConfig())
        for cong in rounds:
            mci.update(np.array(cong))
            assert np.isfinite(mci.delta_rates).all()
            assert np.isfinite(mci._prev_cong).all()
            assert np.isfinite(mci._prev_mean)

    @given(st.floats(0.91, 2.0), st.floats(0.91, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_custom_range_respected(self, a, b):
        cfg = InflationConfig(r_min=min(a, b), r_max=max(a, b))
        mci = MomentumInflation(3, cfg)
        for cong in ([5.0, -5.0, float("inf")], [float("nan")] * 3):
            rates = mci.update(np.array(cong))
            assert (rates >= cfg.r_min - 1e-12).all()
            assert (rates <= cfg.r_max + 1e-12).all()


class TestLambda2Invariants:
    @given(
        st.floats(min_value=0.0, max_value=1e30),
        st.floats(min_value=-1e30, max_value=1e30),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_always_finite(self, wl_l1, cong_l1, n_congested, n_cells):
        lam2 = congestion_penalty_weight(wl_l1, cong_l1, n_congested, n_cells)
        assert np.isfinite(lam2)
        assert lam2 >= 0.0

    @given(st.floats(min_value=0.0, max_value=1e30), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_zero_when_congestion_gradient_vanishes(self, wl_l1, n_congested):
        """Eq. (10) divides by the congestion-gradient L1 norm; an
        all-zero congestion gradient must yield weight 0, not inf."""
        assert congestion_penalty_weight(wl_l1, 0.0, n_congested, 100) == 0.0
        assert congestion_penalty_weight(wl_l1, -1.0, n_congested, 100) == 0.0

"""Extra coverage for reporting and the __main__ entry point."""

import subprocess
import sys

import pytest

from repro.evalrt.report import MetricRow, format_table, ratio_row


class TestRatioEdgeCases:
    def test_missing_placer_on_a_design_skipped(self):
        rows = [
            MetricRow("d1", "A", {"#DRVs": 10.0}),
            MetricRow("d1", "B", {"#DRVs": 5.0}),
            MetricRow("d2", "B", {"#DRVs": 7.0}),  # d2 lacks A
        ]
        r = ratio_row(rows, "B", keys=("#DRVs",))
        assert r["A"]["#DRVs"] == pytest.approx(2.0)

    def test_zero_reference_skipped(self):
        rows = [
            MetricRow("d1", "A", {"#DRVs": 10.0}),
            MetricRow("d1", "B", {"#DRVs": 0.0}),
        ]
        r = ratio_row(rows, "B", keys=("#DRVs",))
        assert r["A"]["#DRVs"] != r["A"]["#DRVs"]  # NaN: no valid designs

    def test_format_table_without_reference(self):
        rows = [MetricRow("d1", "A", {"#DRVs": 10.0})]
        text = format_table(rows, keys=("#DRVs",))
        assert "Avg. Ratio" not in text
        assert "d1" in text

    def test_small_values_two_decimals(self):
        rows = [MetricRow("d1", "A", {"PT": 3.14159})]
        text = format_table(rows, keys=("PT",))
        assert "3.14" in text


class TestMainEntry:
    def test_module_invocation_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "gen" in proc.stdout and "place" in proc.stdout

    def test_unknown_command_fails(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bogus"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0

"""Numeric-contract layer tests: modes, checks, telemetry, overhead."""

from __future__ import annotations

import json
import timeit

import numpy as np
import pytest

from repro.core.congestion_field import CongestionField
from repro.core.inflation import MomentumInflation
from repro.core.pinaccess import pg_density_charge
from repro.density.electrostatic import ElectrostaticSystem
from repro.geometry import Grid2D, Rect
from repro.utils import contracts
from repro.utils.contracts import ContractChecker, ContractViolation
from repro.utils.metrics import MemorySink, MetricsRegistry, validate_stream


class TestModes:
    def test_default_is_off(self):
        c = ContractChecker()
        assert c.mode == "off"
        assert c.enabled is False

    def test_set_mode(self):
        c = ContractChecker()
        c.set_mode("warn")
        assert c.enabled is True
        c.set_mode("raise")
        assert c.mode == "raise"
        c.set_mode("off")
        assert c.enabled is False

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown contracts mode"):
            ContractChecker("loud")

    def test_configure_shared(self):
        got = contracts.configure(mode="warn")
        assert got is contracts.CONTRACTS
        assert contracts.CONTRACTS.mode == "warn"
        # mode=None leaves the current mode untouched
        contracts.configure(mode=None)
        assert contracts.CONTRACTS.mode == "warn"

    def test_env_default_mode_unknown_is_off(self, monkeypatch):
        monkeypatch.setenv(contracts.ENV_VAR, "banana")
        assert contracts.env_default_mode() == "off"
        monkeypatch.setenv(contracts.ENV_VAR, "raise")
        assert contracts.env_default_mode() == "raise"


class TestViolate:
    def test_off_is_noop(self):
        c = ContractChecker("off")
        c.violate("site", "contract", "detail")
        assert c.n_violations == 0
        assert c.violations == []

    def test_warn_records_without_raising(self):
        c = ContractChecker("warn")
        c.violate("s", "k", "d")
        assert c.n_violations == 1
        assert c.violations[0] == {"site": "s", "contract": "k", "detail": "d"}

    def test_raise_mode_raises_with_attributes(self):
        c = ContractChecker("raise")
        with pytest.raises(ContractViolation) as exc:
            c.violate("router.route", "route.demand_conservation", "boom")
        assert exc.value.site == "router.route"
        assert exc.value.contract == "route.demand_conservation"
        assert "boom" in str(exc.value)

    def test_recorded_violations_capped(self):
        c = ContractChecker("warn")
        for k in range(contracts.MAX_RECORDED + 50):
            c.violate("s", "k", str(k))
        assert c.n_violations == contracts.MAX_RECORDED + 50
        assert len(c.violations) == contracts.MAX_RECORDED

    def test_reset(self):
        c = ContractChecker("warn")
        c.violate("s", "k", "d")
        c.reset()
        assert c.n_violations == 0
        assert c.violations == []


class TestArrayChecks:
    def test_shape_mismatch(self):
        c = ContractChecker("warn")
        c.check_array("s", "g", np.zeros(3), shape=(4,))
        assert c.violations[0]["contract"] == "g.shape"

    def test_dtype_mismatch(self):
        c = ContractChecker("warn")
        c.check_array("s", "g", np.zeros(3, dtype=np.float32), dtype=np.float64)
        assert c.violations[0]["contract"] == "g.dtype"

    def test_finite(self):
        c = ContractChecker("warn")
        c.check_array("s", "g", np.array([1.0, np.nan]), finite=True)
        assert c.violations[0]["contract"] == "g.finite"

    def test_range(self):
        c = ContractChecker("warn")
        c.check_range("s", "r", np.array([0.95, 2.1]), 0.9, 2.0)
        assert c.violations[0]["contract"] == "r.range"
        c.reset()
        c.check_range("s", "r", np.array([0.95, 1.9]), 0.9, 2.0)
        assert c.n_violations == 0

    def test_finite_scalar(self):
        c = ContractChecker("warn")
        c.check_finite_scalar("s", "lam", np.inf)
        assert c.violations[0]["contract"] == "lam.finite"
        c.reset()
        c.check_finite_scalar("s", "lam", -1.0, nonneg=True)
        assert c.violations[0]["contract"] == "lam.nonneg"
        c.reset()
        c.check_finite_scalar("s", "lam", 0.5, nonneg=True)
        assert c.n_violations == 0

    def test_empty_array_passes(self):
        c = ContractChecker("warn")
        c.check_array("s", "g", np.zeros(0), finite=True, min_value=0.0)
        assert c.n_violations == 0


class TestPhysicalInvariants:
    def _solved_field(self, rng):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        rho = rng.uniform(0.0, 2.0, size=grid.shape)
        return grid, rho, CongestionField(grid, rho)

    def test_charge_neutrality_holds_for_real_solve(self, rng):
        c = ContractChecker("raise")
        _, _, fld = self._solved_field(rng)
        c.check_charge_neutrality("s", fld.potential)

    def test_charge_neutrality_catches_shift(self, rng):
        c = ContractChecker("warn")
        _, _, fld = self._solved_field(rng)
        c.check_charge_neutrality("s", fld.potential + 1.0)
        assert c.violations[0]["contract"] == "poisson.charge_neutrality"

    def test_field_energy_nonneg_for_real_solve(self, rng):
        c = ContractChecker("raise")
        _, rho, fld = self._solved_field(rng)
        c.check_field_energy("s", rho, fld.potential)

    def test_field_energy_catches_negated_potential(self, rng):
        c = ContractChecker("warn")
        _, rho, fld = self._solved_field(rng)
        c.check_field_energy("s", rho, -fld.potential)
        assert c.violations[0]["contract"] == "poisson.energy_nonneg"

    def test_demand_conservation(self):
        c = ContractChecker("warn")
        good = np.ones((4, 4))
        c.check_demand_conservation("s", good, good)
        assert c.n_violations == 0
        c.check_demand_conservation("s", good, good - 2.0)
        assert c.violations[0]["contract"] == "route.demand_conservation"
        c.reset()
        bad = good.copy()
        bad[0, 0] = np.nan
        c.check_demand_conservation("s", bad, good)
        assert "non-finite" in c.violations[0]["detail"]


class TestTelemetry:
    def test_violation_emits_event(self):
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        c = ContractChecker("warn", metrics=metrics)
        c.violate("grid.index_of", "grid.finite_coords", "2 bad")
        metrics.close()
        events = [json.loads(line) for line in sink.lines]
        validate_stream(events)
        hits = [e for e in events if e["kind"] == "contract.violation"]
        assert len(hits) == 1
        assert hits[0]["site"] == "grid.index_of"
        assert hits[0]["contract"] == "grid.finite_coords"

    def test_attach_metrics_none_detaches(self):
        c = ContractChecker("warn")
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        c.attach_metrics(metrics)
        c.attach_metrics(None)
        c.violate("s", "k", "d")
        events = [json.loads(line) for line in sink.lines]
        assert not [e for e in events if e["kind"] == "contract.violation"]


class TestWiredSites:
    """The contract layer actually fires at its production call sites."""

    def test_grid_nonfinite_coordinate_reported(self, grid16):
        contracts.configure(mode="warn")
        grid16.index_of(np.array([1.0, np.nan]), np.array([1.0, 1.0]))
        assert contracts.CONTRACTS.n_violations == 1
        assert contracts.CONTRACTS.violations[0]["contract"] == "grid.finite_coords"

    def test_pinaccess_nonfinite_congestion_reported(self, grid16):
        contracts.configure(mode="warn")
        cong = np.zeros(grid16.shape)
        cong[3, 3] = np.nan
        pg_density_charge(grid16, np.ones(grid16.shape), cong)
        assert any(
            v["contract"] == "dpa.finite_congestion"
            for v in contracts.CONTRACTS.violations
        )

    def test_inflation_survives_poisoned_input_in_raise_mode(self):
        contracts.configure(mode="raise")
        infl = MomentumInflation(8)
        c = np.full(8, np.nan)
        rates = infl.update(c)  # sanitized internally; contract holds
        assert np.isfinite(rates).all()

    def test_electrostatic_solve_passes_in_raise_mode(self, rng):
        contracts.configure(mode="raise")
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        sys_ = ElectrostaticSystem(grid)
        n = 30
        x = rng.uniform(1, 7, n)
        y = rng.uniform(1, 7, n)
        w = np.full(n, 0.5)
        sys_.solve(x, y, w, w)  # no ContractViolation raised


class TestDisabledOverhead:
    def test_disabled_guard_is_cheap(self):
        """`if CONTRACTS.enabled:` must cost an attribute read, nothing more."""
        checker = ContractChecker("off")

        def guarded():
            for _ in range(200_000):
                if checker.enabled:
                    checker.check_finite_scalar("s", "v", 1.0)

        def bare():
            for _ in range(200_000):
                pass

        t_guard = min(timeit.repeat(guarded, number=1, repeat=3))
        t_bare = min(timeit.repeat(bare, number=1, repeat=3))
        assert t_guard < max(10 * t_bare, 0.25)

"""Hypothesis property: all registered backends agree on random scenes.

The equivalence tests in ``test_kernel_backends.py`` pin one frozen
scenario; this module lets hypothesis hunt for a scene where a fast
backend diverges from ``reference``.  Scenes deliberately include the
degenerate structure the stacked/broadcast restructures are most
sensitive to:

* **same-cell nets** — both pins on one cell, so per-net max == min and
  the shifted exponentials all collapse to ``e^0``;
* **fixed cells** — which must receive exactly zero gradient from every
  backend;
* **single-pin nets** — degree < 2 nets interleaved between real ones,
  shifting the CSR segment boundaries (the regime where the reference's
  ``reduceat`` start-clamp quirk is live);
* **coincident / boundary-hugging cells** — zero-width overlap windows
  in the rasterizer.

The ``fastnp`` backend must match bit-for-bit; ``numba`` (when
importable) within 1e-12.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.density.rasterize import CellRasterizer
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from tests.test_kernel_backends import FAST_BACKENDS, _assert_match, use_backend
from repro.wirelength.wa import wa_wirelength_and_grad


def _scene(positions, fixed_mask):
    """Random 8-cell scene with degenerate nets mixed into the CSR.

    Cells land anywhere on (and slightly past) the die so the raster
    clip paths fire; nets cover two-pin, same-cell two-pin, single-pin
    and a hub net over every cell.
    """
    die = Rect(0.0, 0.0, 12.0, 12.0)
    cells = []
    n = len(positions) // 2
    for k in range(n):
        x = die.xlo + 13.0 * positions[2 * k] - 0.5
        y = die.ylo + 13.0 * positions[2 * k + 1] - 0.5
        cells.append(
            CellSpec(
                f"c{k}", 0.75, 0.5, x=x, y=y, fixed=bool(fixed_mask[k])
            )
        )
    nets = [
        NetSpec("pair01", [PinSpec("c0", 0.1, 0.0), PinSpec("c1", -0.1, 0.0)]),
        # degenerate: both pins on the same cell (max == min per axis)
        NetSpec("same2", [PinSpec("c2"), PinSpec("c2", 0.05, -0.05)]),
        # degree-1 net between real ones shifts every later CSR start
        NetSpec("lone3", [PinSpec("c3")]),
        NetSpec("pair45", [PinSpec("c4"), PinSpec("c5", 0.0, 0.2)]),
        NetSpec("hub", [PinSpec(f"c{k}") for k in range(n)]),
        # trailing degree-1 net: starts[-1] near the pin-count boundary,
        # the regime the reference reduceat clamp actually changes
        NetSpec("tail", [PinSpec("c6")]),
    ]
    return Netlist.from_specs("prop", die, cells, nets), die


coords16 = st.lists(
    st.floats(0.0, 1.0, allow_nan=False, width=32), min_size=16, max_size=16
)
fixed8 = st.lists(st.booleans(), min_size=8, max_size=8)
gammas = st.floats(0.05, 8.0, allow_nan=False)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestBackendsAgree:
    @given(positions=coords16, fixed_mask=fixed8, gamma=gammas)
    @settings(max_examples=30, deadline=None)
    def test_wa_wirelength_and_grad(self, backend, positions, fixed_mask, gamma):
        netlist, _ = _scene(positions, fixed_mask)
        with use_backend("reference"):
            ref = wa_wirelength_and_grad(netlist, gamma)
        with use_backend(backend):
            wl, gx, gy = wa_wirelength_and_grad(netlist, gamma)
        _assert_match(backend, wl, ref[0], "wa wl")
        _assert_match(backend, gx, ref[1], "wa grad_x")
        _assert_match(backend, gy, ref[2], "wa grad_y")
        assert np.all(gx[netlist.cell_fixed] == 0.0)
        assert np.all(gy[netlist.cell_fixed] == 0.0)

    @given(positions=coords16, fixed_mask=fixed8)
    @settings(max_examples=30, deadline=None)
    def test_rasterized_density(self, backend, positions, fixed_mask):
        netlist, die = _scene(positions, fixed_mask)
        grid = Grid2D(die, 12, 12)
        args = (grid, netlist.x, netlist.y, netlist.cell_width, netlist.cell_height)
        with use_backend("reference"):
            ref_raster = CellRasterizer(*args)
            ref_charge = ref_raster.charge_map()
            field = np.sin(ref_charge)
            ref_gather = ref_raster.gather(field)
        with use_backend(backend):
            raster = CellRasterizer(*args)
            _assert_match(backend, raster.charge_map(), ref_charge, "charge")
            _assert_match(backend, raster.gather(field), ref_gather, "gather")

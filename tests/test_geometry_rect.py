"""Unit tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + abs(w), y + abs(h)),
        finite,
        finite,
        st.floats(0, 1e3),
        st.floats(0, 1e3),
    )


class TestConstruction:
    def test_basic_properties(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == (2.5, 5.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_zero_area_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0

    def test_from_center(self):
        r = Rect.from_center(5, 5, 2, 4)
        assert (r.xlo, r.ylo, r.xhi, r.yhi) == (4, 3, 6, 7)


class TestContains:
    def test_interior_and_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(1, 1)
        assert r.contains(0, 0)
        assert r.contains(2, 2)
        assert not r.contains(2.01, 1)
        assert not r.contains(1, -0.01)


class TestIntersection:
    def test_overlapping(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        inter = a.intersection(b)
        assert inter == Rect(1, 1, 2, 2)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.intersects(b)

    def test_touching_edges_do_not_intersect(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.overlap_area(b) == 0.0

    def test_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 6, 6)
        assert a.intersection(b) is None
        assert a.overlap_area(b) == 0.0

    @given(rects(), rects())
    def test_overlap_symmetric_and_bounded(self, a, b):
        ab = a.overlap_area(b)
        assert ab == pytest.approx(b.overlap_area(a))
        assert 0.0 <= ab <= min(a.area, b.area) + 1e-6

    @given(rects())
    def test_self_overlap_is_area(self, r):
        assert r.overlap_area(r) == pytest.approx(r.area)


class TestTransforms:
    def test_expanded_by_ten_percent(self):
        r = Rect(0, 0, 10, 20)
        e = r.expanded(0.1)
        assert e.width == pytest.approx(12)
        assert e.height == pytest.approx(24)
        assert e.center == pytest.approx(r.center)

    def test_translated(self):
        r = Rect(0, 0, 1, 1).translated(3, -2)
        assert (r.xlo, r.ylo) == (3, -2)

    @given(rects(), st.floats(0, 1))
    def test_expanded_contains_original(self, r, f):
        e = r.expanded(f)
        assert e.xlo <= r.xlo and e.xhi >= r.xhi
        assert e.ylo <= r.ylo and e.yhi >= r.yhi

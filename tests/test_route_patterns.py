"""Pattern router tests: path validity and cost optimality."""

import numpy as np
import pytest

from repro.route.patterns import PatternRouter, RoutedPath


def _uniform_router(nx=16, ny=16, via=1.0):
    return PatternRouter(np.ones((nx, ny)), np.ones((nx, ny)), via_cost=via)


def path_connects(path: RoutedPath, i1, j1, i2, j2):
    """Walk the runs and verify they chain from (i1,j1) to (i2,j2)."""
    pos = (i1, j1)
    for kind, fixed, a, b in path.runs:
        if kind == "h":
            assert pos == (a, fixed)
            pos = (b, fixed)
        else:
            assert pos == (fixed, a)
            pos = (fixed, b)
    assert pos == (i2, j2)


class TestBasicShapes:
    def test_same_cell(self):
        p = _uniform_router().route(3, 3, 3, 3)
        assert p.runs == [] and p.cost == 0.0

    def test_straight_horizontal(self):
        p = _uniform_router().route(2, 5, 9, 5)
        assert p.runs == [("h", 5, 2, 9)]
        assert p.n_bends == 0
        assert p.cost == pytest.approx(8.0)  # 8 cells crossed

    def test_straight_vertical(self):
        p = _uniform_router().route(4, 1, 4, 6)
        assert p.runs == [("v", 4, 1, 6)]
        assert p.cost == pytest.approx(6.0)

    def test_l_or_z_shape_diagonal(self):
        p = _uniform_router().route(1, 1, 6, 4)
        path_connects(p, 1, 1, 6, 4)
        assert 1 <= p.n_bends <= 2
        # wirelength in cells: manhattan span + 1 per run overlap
        assert p.wire_cells() >= (6 - 1) + (4 - 1)

    def test_wirelength_physical(self):
        p = _uniform_router().route(0, 0, 3, 0)
        assert p.wirelength(dx=2.0, dy=1.0) == pytest.approx(6.0)

    def test_covered_cells(self):
        p = _uniform_router().route(0, 0, 2, 0)
        assert set(p.covered_cells()) == {(0, 0), (1, 0), (2, 0)}


class TestCongestionAvoidance:
    def test_avoids_expensive_column(self):
        h = np.ones((16, 16))
        v = np.ones((16, 16))
        v[8, :] = 100.0  # column 8 vertical routing is very expensive
        router = PatternRouter(h, v, via_cost=0.1)
        p = router.route(2, 2, 14, 10)
        for kind, fixed, a, b in p.runs:
            if kind == "v":
                assert fixed != 8

    def test_prefers_cheap_row(self):
        h = np.ones((16, 16)) * 10
        h[:, 3] = 0.1  # row 3 is nearly free for horizontal wires
        v = np.ones((16, 16))
        router = PatternRouter(h, v, via_cost=0.1, detour_margin=5)
        p = router.route(1, 1, 14, 6)
        h_rows = [fixed for kind, fixed, *_ in p.runs if kind == "h"]
        assert 3 in h_rows

    def test_cost_matches_manual_sum(self):
        rng = np.random.default_rng(5)
        h = rng.random((12, 12)) + 0.5
        v = rng.random((12, 12)) + 0.5
        router = PatternRouter(h, v, via_cost=0.7)
        p = router.route(2, 3, 9, 8)
        manual = 0.0
        for kind, fixed, a, b in p.runs:
            lo, hi = min(a, b), max(a, b)
            if kind == "h":
                manual += h[lo : hi + 1, fixed].sum()
            else:
                manual += v[fixed, lo : hi + 1].sum()
        manual += 0.7 * p.n_bends
        assert p.cost == pytest.approx(manual)

    def test_chooses_optimal_among_hvh_and_vhv(self):
        # brute-force all single/double-bend paths and compare
        rng = np.random.default_rng(11)
        h = rng.random((10, 10)) + 0.2
        v = rng.random((10, 10)) + 0.2
        router = PatternRouter(h, v, via_cost=0.5, z_samples=100, detour_margin=0)
        i1, j1, i2, j2 = 1, 2, 8, 7
        best = np.inf
        for m in range(min(i1, i2), max(i1, i2) + 1):
            c = (
                h[min(i1, m) : max(i1, m) + 1, j1].sum()
                + v[m, min(j1, j2) : max(j1, j2) + 1].sum()
                + h[min(m, i2) : max(m, i2) + 1, j2].sum()
                - h[m, j1] - h[m, j2]  # avoid double count at junctions
            )
            bends = (m != i1) + (m != i2)
            best = min(best, c + 0.5 * bends + h[m, j1] + h[m, j2] - h[m, j1] - h[m, j2])
        p = router.route(i1, j1, i2, j2)
        # router's path cost is at least as good as HVH brute force family
        # (it may also pick VHV); check it never exceeds the family best + tol
        # recompute family best carefully via the router's own segments costs
        assert p.cost <= best + 2.0  # loose sanity bound

    def test_refresh_changes_choice(self):
        h = np.ones((8, 8))
        v = np.ones((8, 8))
        router = PatternRouter(h, v, via_cost=0.1)
        p1 = router.route(0, 0, 7, 7)
        v2 = v.copy()
        for kind, fixed, a, b in p1.runs:
            if kind == "v":
                v2[fixed, :] = 50.0
        router.refresh(h, v2)
        p2 = router.route(0, 0, 7, 7)
        assert {f for k, f, *_ in p2.runs if k == "v"}.isdisjoint(
            {f for k, f, *_ in p1.runs if k == "v"}
        )


class TestConnectivityProperty:
    def test_many_random_pairs_connect(self):
        rng = np.random.default_rng(3)
        h = rng.random((20, 14)) + 0.1
        v = rng.random((20, 14)) + 0.1
        router = PatternRouter(h, v)
        for _ in range(50):
            i1, i2 = rng.integers(0, 20, 2)
            j1, j2 = rng.integers(0, 14, 2)
            p = router.route(int(i1), int(j1), int(i2), int(j2))
            if (i1, j1) != (i2, j2):
                path_connects(p, i1, j1, i2, j2)
                assert len(p.bends) == p.n_bends <= 2

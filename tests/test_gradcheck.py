"""Differential-checker tests: every analytic gradient matches numerics."""

from __future__ import annotations

import numpy as np

from repro.utils.gradcheck import (
    check_dc_field,
    check_multipin,
    check_netmove,
    check_wa,
    run_gradcheck,
)

TOL = 1e-4


class TestIndividualChecks:
    def test_dc_field(self):
        r = check_dc_field(seed=0, tol=TOL)
        assert r.passed, r.max_rel_error
        assert r.max_rel_error < TOL

    def test_netmove(self):
        r = check_netmove(seed=0, tol=TOL)
        assert r.passed, r.max_rel_error

    def test_multipin(self):
        r = check_multipin(seed=0, tol=TOL)
        assert r.passed, r.max_rel_error
        assert r.n_samples > 0

    def test_wa(self):
        r = check_wa(seed=0, tol=TOL)
        assert r.passed, r.max_rel_error

    def test_other_seeds(self):
        for seed in (1, 5):
            assert run_gradcheck(seed=seed, tol=TOL).passed


class TestReport:
    def test_render_and_pass_flag(self):
        report = run_gradcheck(seed=0, tol=TOL)
        assert report.passed
        text = report.render()
        assert "dc_field" in text and "wa" in text
        assert text.endswith("PASSED")
        assert all(np.isfinite(r.max_rel_error) for r in report.results)

    def test_failing_tolerance_reported(self):
        # an absurd tolerance makes every check fail without touching
        # the kernels — exercises the failure rendering path
        report = run_gradcheck(seed=0, tol=1e-20)
        assert not report.passed
        assert report.render().endswith("FAILED")


class TestCli:
    def test_gradcheck_exit_codes(self, capsys):
        from repro.cli import main

        assert main(["gradcheck", "--seed", "0"]) == 0
        assert "PASSED" in capsys.readouterr().out
        assert main(["gradcheck", "--tol", "1e-20"]) == 1
        assert "FAILED" in capsys.readouterr().out

"""End-to-end harness test over a tiny suite subset."""

import pytest

from repro.bench.harness import run_suite, table_rows
from repro.core import RDConfig
from repro.evalrt import EvalConfig, format_table, ratio_row
from repro.place import GPConfig
from repro.route import RouterConfig


@pytest.mark.parametrize("names", [["fft_1", "fft_2"]])
def test_run_suite_small(names):
    gp = GPConfig(max_iters=150)
    outcomes = run_suite(
        names=names,
        scale=0.25,
        gp_config=gp,
        rd_config=RDConfig(gp=gp, max_rounds=2, iters_per_round=10),
        eval_config=EvalConfig(grid_dim_factor=1, router=RouterConfig(rrr_rounds=1)),
    )
    assert [o.design for o in outcomes] == names
    rows = table_rows(outcomes)
    assert len(rows) == 3 * len(names)

    text = format_table(rows, reference_placer="Ours")
    assert "Avg. Ratio" in text
    ratios = ratio_row(rows, "Ours")
    for placer in ("Xplace", "Xplace-Route", "Ours"):
        for key in ("DRWL", "#DRVias", "#DRVs", "PT", "RT"):
            assert ratios[placer][key] == ratios[placer][key]  # not NaN

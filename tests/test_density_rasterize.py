"""Charge rasterization tests: conservation and scatter/gather duality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import CellRasterizer
from repro.geometry import Grid2D, Rect


@pytest.fixture
def grid():
    return Grid2D(Rect(0, 0, 16, 8), 32, 16)


class TestChargeConservation:
    def test_total_equals_cell_area(self, grid, rng):
        n = 50
        x = rng.uniform(1, 15, n)
        y = rng.uniform(1, 7, n)
        w = rng.uniform(0.1, 0.8, n)
        h = rng.uniform(0.1, 0.8, n)
        r = CellRasterizer(grid, x, y, w, h)
        assert r.total_charge() == pytest.approx((w * h).sum(), rel=1e-12)
        assert r.charge_map().sum() == pytest.approx((w * h).sum(), rel=1e-10)

    def test_smoothing_preserves_charge(self, grid):
        # a cell much smaller than a bin still deposits its full area
        r = CellRasterizer(grid, np.array([5.0]), np.array([5.0]),
                           np.array([0.01]), np.array([0.01]))
        assert r.charge_map().sum() == pytest.approx(0.0001, rel=1e-9)

    def test_no_smoothing_exact(self, grid):
        r = CellRasterizer(grid, np.array([5.0]), np.array([5.0]),
                           np.array([0.01]), np.array([0.01]), smooth=False)
        assert r.charge_map().sum() == pytest.approx(0.0001, rel=1e-9)

    def test_large_macro_path(self, grid):
        # spans far more than the vector span limit -> exact slow path
        r = CellRasterizer(grid, np.array([8.0]), np.array([4.0]),
                           np.array([10.0]), np.array([6.0]), smooth=False)
        m = r.charge_map()
        assert m.sum() == pytest.approx(60.0, rel=1e-10)
        # density inside the macro footprint is 1.0
        assert m[16, 8] == pytest.approx(grid.bin_area, rel=1e-9)

    def test_boundary_clipping(self, grid):
        # a cell centered at the corner keeps the on-die charge portion
        r = CellRasterizer(grid, np.array([0.0]), np.array([0.0]),
                           np.array([2.0]), np.array([2.0]), smooth=False)
        assert r.charge_map().sum() == pytest.approx(1.0, rel=1e-9)

    @given(
        st.lists(
            st.tuples(st.floats(0.5, 15.5), st.floats(0.5, 7.5),
                      st.floats(0.05, 2.0), st.floats(0.05, 2.0)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, cells):
        grid = Grid2D(Rect(0, 0, 16, 8), 32, 16)
        x, y, w, h = (np.array(v) for v in zip(*cells))
        # keep rects fully on-die so no charge is clipped
        x = np.clip(x, w, 16 - w)
        y = np.clip(y, h, 8 - h)
        r = CellRasterizer(grid, x, y, w, h)
        assert r.charge_map().sum() == pytest.approx((w * h).sum(), rel=1e-9)


class TestGather:
    def test_gather_ones_returns_charge(self, grid, rng):
        n = 30
        x = rng.uniform(1, 15, n)
        y = rng.uniform(1, 7, n)
        w = rng.uniform(0.1, 1.5, n)
        h = rng.uniform(0.1, 1.5, n)
        r = CellRasterizer(grid, x, y, w, h)
        per_cell = r.gather(np.ones(grid.shape))
        assert np.allclose(per_cell, w * h, rtol=1e-9)

    def test_scatter_gather_adjoint(self, grid, rng):
        """<scatter(q), f> == <q, gather(f)> — the operators are adjoint."""
        n = 25
        x = rng.uniform(1, 15, n)
        y = rng.uniform(1, 7, n)
        w = rng.uniform(0.1, 1.2, n)
        h = rng.uniform(0.1, 1.2, n)
        r = CellRasterizer(grid, x, y, w, h)
        f = rng.random(grid.shape)
        lhs = float((r.charge_map() * f).sum())
        rhs = float(r.gather(f).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_gather_shape_mismatch(self, grid):
        r = CellRasterizer(grid, np.array([5.0]), np.array([5.0]),
                           np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            r.gather(np.zeros((3, 3)))

    def test_macro_gather(self, grid):
        r = CellRasterizer(grid, np.array([8.0]), np.array([4.0]),
                           np.array([10.0]), np.array([6.0]), smooth=False)
        assert r.gather(np.ones(grid.shape))[0] == pytest.approx(60.0, rel=1e-9)

    def test_empty_input(self, grid):
        z = np.zeros(0)
        r = CellRasterizer(grid, z, z, z, z)
        assert r.charge_map().sum() == 0.0
        assert len(r.gather(np.ones(grid.shape))) == 0


class TestDensityMap:
    def test_density_is_occupancy_ratio(self, grid):
        # one bin-sized cell exactly on a bin => density 1 in that bin
        cx, cy = grid.center_of(4, 4)
        r = CellRasterizer(grid, np.array([cx]), np.array([cy]),
                           np.array([grid.dx]), np.array([grid.dy]), smooth=False)
        d = r.density_map()
        assert d[4, 4] == pytest.approx(1.0)
        assert d.sum() == pytest.approx(1.0)

"""Cached spectral workspace: exact equivalence and buffer reuse.

The workspace path must be *bit-identical* (``atol=0``) to the original
reference implementation — anything weaker would silently invalidate
the golden suite — and must not allocate fresh scratch per solve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.congestion_field import CongestionField
from repro.density.poisson import (
    PoissonSolver,
    SpectralWorkspace,
    clear_spectral_cache,
    spectral_cache_size,
)
from repro.geometry import Grid2D, Rect
from repro.place.initial import initial_placement
from repro.route import GlobalRouter, RouterConfig
from repro.synth import toy_design

#: Every preallocated per-solve scratch buffer of the workspace.
SCRATCH = (
    "_bal", "_balt", "_coef", "_cx", "_cy", "_cyt",
    "_shift_x", "_shift_xt", "_shift_y",
)

SHAPES = [
    ((8, 8), (4, 3)),
    ((8, 4), (4, 3)),
    ((5, 7), (4, 3)),
    ((33, 17), (7, 2)),
    ((64, 64), (10, 10)),
    # non-power-of-two and mixed-parity shapes: pocketfft picks
    # different codepaths here, so these pin the transposed-layout and
    # decomposed-dctn routes where naive transform fusions diverge
    ((24, 24), (6, 6)),
    ((96, 96), (12, 12)),
    ((20, 10), (5, 5)),
    ((7, 8), (4, 3)),
]


def _exact(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and bool((a == b).all())


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_spectral_cache()
    yield
    clear_spectral_cache()


@pytest.fixture(scope="module")
def golden_utilization():
    """The golden scenario's routing utilization map (16x16 grid)."""
    netlist = toy_design(150, seed=5)
    initial_placement(netlist, 0)
    grid = Grid2D(netlist.die, 16, 16)
    routing = GlobalRouter(grid, RouterConfig()).route(netlist)
    return grid, routing.utilization_map


class TestExactEquivalence:
    @pytest.mark.parametrize("shape,die", SHAPES)
    def test_workspace_matches_reference_exactly(self, shape, die, rng):
        grid = Grid2D(Rect(0, 0, *die), *shape)
        rho = rng.random(shape)
        ref = PoissonSolver(grid, use_workspace=False)
        p0, x0, y0 = ref.solve_reference(rho)
        p1, x1, y1 = SpectralWorkspace.for_grid(grid).solve(rho)
        assert _exact(p0, p1)
        assert _exact(x0, x1)
        assert _exact(y0, y1)

    def test_golden_input_equivalence(self, golden_utilization):
        """atol=0 on the golden scenario's utilization map."""
        grid, util = golden_utilization
        ref = PoissonSolver(grid, use_workspace=False)
        p0, x0, y0 = ref.solve_reference(util)
        p1, x1, y1 = SpectralWorkspace.for_grid(grid).solve(util)
        np.testing.assert_array_equal(p0, p1)
        np.testing.assert_array_equal(x0, x1)
        np.testing.assert_array_equal(y0, y1)

    def test_workers_path_is_identical(self, rng):
        grid = Grid2D(Rect(0, 0, 10, 10), 32, 32)
        rho = rng.random((32, 32))
        ws = SpectralWorkspace.for_grid(grid)
        p0, x0, y0 = ws.solve(rho)
        p1, x1, y1 = ws.solve(rho, workers=2)
        assert _exact(p0, p1) and _exact(x0, x1) and _exact(y0, y1)

    def test_poisson_solver_default_is_workspace(self, rng):
        grid = Grid2D(Rect(0, 0, 10, 10), 16, 16)
        rho = rng.random((16, 16))
        s = PoissonSolver(grid)
        assert s._ws is SpectralWorkspace.for_grid(grid)
        p0, x0, y0 = s.solve(rho)
        p1, x1, y1 = s.solve_reference(rho)
        assert _exact(p0, p1) and _exact(x0, x1) and _exact(y0, y1)

    def test_congestion_field_uses_cached_workspace(self, golden_utilization):
        grid, util = golden_utilization
        ref = PoissonSolver(grid, use_workspace=False)
        p0, x0, y0 = ref.solve_reference(util)
        fld = CongestionField(grid, util)
        np.testing.assert_array_equal(fld.potential, p0)
        np.testing.assert_array_equal(fld.field_x, x0)
        np.testing.assert_array_equal(fld.field_y, y0)
        assert spectral_cache_size() == 1

    def test_shape_mismatch_raises(self):
        grid = Grid2D(Rect(0, 0, 1, 1), 8, 8)
        with pytest.raises(ValueError):
            SpectralWorkspace.for_grid(grid).solve(np.zeros((4, 4)))


class TestVariantTuning:
    """The auto-tuned stage variants are interchangeable bit-for-bit."""

    VARIANTS = [
        (fwd, ex, ey)
        for fwd in ("direct", "transposed")
        for ex in ("strided", "transposed")
        for ey in ("strided", "transposed")
    ]

    @pytest.mark.parametrize("fwd,ex,ey", VARIANTS)
    @pytest.mark.parametrize("shape,die", [((5, 7), (4, 3)),
                                           ((24, 24), (6, 6)),
                                           ((33, 17), (7, 2))])
    def test_every_variant_combination_is_exact(
        self, shape, die, fwd, ex, ey, rng
    ):
        grid = Grid2D(Rect(0, 0, *die), *shape)
        rho = rng.random(shape)
        p0, x0, y0 = PoissonSolver(grid, use_workspace=False).solve_reference(rho)
        ws = SpectralWorkspace(*shape, grid.dx, grid.dy)
        ws._variant = {"fwd": fwd, "ex": ex, "ey": ey}
        p1, x1, y1 = ws.solve(rho)
        assert _exact(p0, p1)
        assert _exact(x0, x1)
        assert _exact(y0, y1)

    def test_tuning_locks_in_and_stays_exact(self, rng):
        """All stages lock after sampling; later solves remain exact."""
        grid = Grid2D(Rect(0, 0, 8, 8), 24, 24)
        ws = SpectralWorkspace.for_grid(grid)
        ref = PoissonSolver(grid, use_workspace=False)
        assert all(v is None for v in ws.variants.values())
        for _ in range(8):  # 2 variants x 3 samples, rounded up
            rho = rng.random((24, 24))
            p0, x0, y0 = ref.solve_reference(rho)
            p1, x1, y1 = ws.solve(rho)
            assert _exact(p0, p1) and _exact(x0, x1) and _exact(y0, y1)
        locked = ws.variants
        assert locked["fwd"] in ("direct", "transposed")
        assert locked["ex"] in ("strided", "transposed")
        assert locked["ey"] in ("strided", "transposed")
        rho = rng.random((24, 24))
        p0, x0, y0 = ref.solve_reference(rho)
        p1, x1, y1 = ws.solve(rho)
        assert _exact(p0, p1) and _exact(x0, x1) and _exact(y0, y1)
        assert ws.variants == locked  # choice is stable once made


class TestCacheReuse:
    def test_same_geometry_shares_one_workspace(self):
        g1 = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        g2 = Grid2D(Rect(0, 0, 8, 8), 16, 16)  # distinct object, same key
        g3 = Grid2D(Rect(0, 0, 8, 8), 32, 32)
        ws1 = SpectralWorkspace.for_grid(g1)
        assert SpectralWorkspace.for_grid(g2) is ws1
        assert SpectralWorkspace.for_grid(g3) is not ws1
        assert spectral_cache_size() == 2
        clear_spectral_cache()
        assert spectral_cache_size() == 0
        assert SpectralWorkspace.for_grid(g1) is not ws1

    def test_no_reallocation_across_repeated_solves(self, rng):
        """Scratch buffers survive untouched across same-shape solves."""
        grid = Grid2D(Rect(0, 0, 8, 8), 24, 24)
        ws = SpectralWorkspace.for_grid(grid)
        scratch_ids = {
            name: id(getattr(ws, name))
            for name in ("_wu", "_wv", "_inv_denom") + SCRATCH
        }
        for _ in range(10):
            ws.solve(rng.random((24, 24)))
        assert ws.n_solves == 10
        for name, ident in scratch_ids.items():
            assert id(getattr(ws, name)) == ident, f"{name} was reallocated"
        assert spectral_cache_size() == 1

    def test_results_survive_later_solves(self, rng):
        """Returned arrays are caller-owned, never workspace scratch."""
        grid = Grid2D(Rect(0, 0, 8, 8), 24, 24)
        ws = SpectralWorkspace.for_grid(grid)
        rho = rng.random((24, 24))
        psi, ex, ey = ws.solve(rho)
        kept = (psi.copy(), ex.copy(), ey.copy())
        scratch = tuple(getattr(ws, name) for name in SCRATCH)
        for arr in (psi, ex, ey):
            assert not any(np.shares_memory(arr, s) for s in scratch)
        for _ in range(3):
            ws.solve(rng.random((24, 24)))
        np.testing.assert_array_equal(psi, kept[0])
        np.testing.assert_array_equal(ex, kept[1])
        np.testing.assert_array_equal(ey, kept[2])

    def test_consecutive_congestion_fields_share_workspace(self, rng):
        """Round-over-round CongestionField reuse: one workspace total."""
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        for _ in range(4):
            CongestionField(grid, rng.random((16, 16)))
        ws = SpectralWorkspace.for_grid(grid)
        assert ws.n_solves == 4
        assert spectral_cache_size() == 1

"""End-to-end determinism: same seed => bit-identical everything.

Runs the full routability-driven flow twice from identical inputs and
compares

* final cell positions (exact array equality, not approx),
* the emitted metrics JSONL streams (byte-for-byte),
* the on-disk flow checkpoint files (byte-for-byte — relies on the
  deterministic archive writer of :mod:`repro.utils.checkpoint`).

Nothing in the flow may consult wall-clock time, process ids or
unseeded randomness on the data path; this test is the tripwire.
"""

from __future__ import annotations

import numpy as np

from repro.core import RDConfig, RoutabilityDrivenPlacer
from repro.place.config import GPConfig
from repro.place.initial import initial_placement
from repro.synth import toy_design
from repro.utils.checkpoint import read_checkpoint, write_checkpoint
from repro.utils.metrics import JsonlSink, MetricsRegistry


def _run_flow(tmp_path, tag: str):
    """One complete instrumented RD flow; returns its artifacts."""
    netlist = toy_design(110, seed=9)
    initial_placement(netlist, 0)
    metrics_path = tmp_path / f"metrics_{tag}.jsonl"
    ckpt_path = tmp_path / f"flow_{tag}.npz"
    metrics = MetricsRegistry(sink=JsonlSink(str(metrics_path)))
    metrics.start_run(command="determinism")
    config = RDConfig(
        gp=GPConfig(max_iters=40),
        max_rounds=2,
        iters_per_round=10,
    )
    placer = RoutabilityDrivenPlacer(netlist, config, metrics=metrics)
    result = placer.run(
        skip_initial_gp=True, checkpoint_path=str(ckpt_path), resume=False
    )
    metrics.close()
    return {
        "x": netlist.x.copy(),
        "y": netlist.y.copy(),
        "result": result,
        "metrics_bytes": metrics_path.read_bytes(),
        "ckpt_bytes": ckpt_path.read_bytes(),
    }


class TestFlowDeterminism:
    def test_two_runs_bit_identical(self, tmp_path):
        a = _run_flow(tmp_path, "a")
        b = _run_flow(tmp_path, "b")
        # positions: exact, not approximate
        assert np.array_equal(a["x"], b["x"])
        assert np.array_equal(a["y"], b["y"])
        assert a["result"].n_rounds == b["result"].n_rounds
        assert a["result"].best_round == b["result"].best_round
        # the telemetry streams are byte-for-byte identical (no
        # timestamps by default; json float repr is deterministic)
        assert a["metrics_bytes"] == b["metrics_bytes"]
        # the checkpoint files are byte-for-byte identical (fixed zip
        # member timestamps, insertion-ordered members)
        assert a["ckpt_bytes"] == b["ckpt_bytes"]


class TestCheckpointBytes:
    def test_write_checkpoint_is_byte_deterministic(self, tmp_path):
        meta = {"round": 3, "score": 1.25, "flags": [1, 2, 3]}
        arrays = {
            "x": np.linspace(0.0, 1.0, 257),
            "mask": np.arange(16) % 3 == 0,
        }
        p1, p2 = tmp_path / "a.npz", tmp_path / "b.npz"
        write_checkpoint(str(p1), meta, arrays)
        write_checkpoint(str(p2), meta, arrays)
        assert p1.read_bytes() == p2.read_bytes()

    def test_checkpoint_round_trips_bit_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        arrays = {"x": rng.standard_normal(100), "n": np.array([7])}
        path = tmp_path / "c.npz"
        write_checkpoint(str(path), {"k": "v"}, arrays)
        meta, back = read_checkpoint(str(path))
        assert meta == {"k": "v"}
        assert np.array_equal(back["x"], arrays["x"])
        assert back["x"].dtype == arrays["x"].dtype

"""Detailed placement tests: legality preservation and HPWL behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detail import IncrementalWirelength, detailed_place
from repro.geometry import Grid2D, Rect
from repro.legalize import check_legal, legalize
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from repro.place import GlobalPlacer, GPConfig, initial_placement
from repro.wirelength import hpwl


@pytest.fixture
def legal_toy(toy300):
    initial_placement(toy300, 0)
    GlobalPlacer(toy300, GPConfig(max_iters=150)).run()
    legalize(toy300)
    return toy300


class TestIncrementalOracle:
    def test_delta_matches_full_recompute(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        cell = int(mv[5])
        before = hpwl(legal_toy)
        new_x = legal_toy.x[cell] + 1.0
        delta = oracle.delta_for_move(cell, new_x, legal_toy.y[cell])
        legal_toy.x[cell] = new_x
        assert hpwl(legal_toy) - before == pytest.approx(delta, abs=1e-9)

    def test_move_restores_state(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        cell = int(mv[3])
        x0 = legal_toy.x[cell]
        oracle.delta_for_move(cell, x0 + 2.0, legal_toy.y[cell])
        assert legal_toy.x[cell] == x0

    def test_swap_delta_matches(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        a, b = int(mv[1]), int(mv[2])
        before = hpwl(legal_toy)
        delta = oracle.delta_for_swap(a, b)
        legal_toy.x[a], legal_toy.x[b] = legal_toy.x[b], legal_toy.x[a]
        legal_toy.y[a], legal_toy.y[b] = legal_toy.y[b], legal_toy.y[a]
        assert hpwl(legal_toy) - before == pytest.approx(delta, abs=1e-9)


class TestIncrementalExceptionSafety:
    """A mid-evaluation failure must not corrupt the netlist.

    ``delta_for_move`` / ``delta_for_swap`` apply the trial position in
    place; if the second ``nets_hpwl`` evaluation raises (contracts in
    ``raise`` mode, a numerical guard, ...), the trial position must
    still be rolled back.  These regressions fail on the pre-``finally``
    implementation, which left the trial applied on the error path.
    """

    @staticmethod
    def _failing_oracle(netlist):
        oracle = IncrementalWirelength(netlist)
        real = oracle.nets_hpwl
        calls = {"n": 0}

        def flaky(nets):
            calls["n"] += 1
            if calls["n"] == 2:  # the "after" evaluation, trial applied
                raise RuntimeError("injected mid-evaluation failure")
            return real(nets)

        oracle.nets_hpwl = flaky
        return oracle

    def test_move_restores_position_when_evaluation_raises(self, legal_toy):
        oracle = self._failing_oracle(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        cell = int(mv[4])
        x0, y0 = legal_toy.x[cell], legal_toy.y[cell]
        with pytest.raises(RuntimeError, match="injected"):
            oracle.delta_for_move(cell, x0 + 3.0, y0 + 1.0)
        assert legal_toy.x[cell] == x0
        assert legal_toy.y[cell] == y0

    def test_swap_restores_positions_when_evaluation_raises(self, legal_toy):
        oracle = self._failing_oracle(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        a, b = int(mv[1]), int(mv[2])
        ax, ay = legal_toy.x[a], legal_toy.y[a]
        bx, by = legal_toy.x[b], legal_toy.y[b]
        with pytest.raises(RuntimeError, match="injected"):
            oracle.delta_for_swap(a, b)
        assert (legal_toy.x[a], legal_toy.y[a]) == (ax, ay)
        assert (legal_toy.x[b], legal_toy.y[b]) == (bx, by)


class TestDetailedPlace:
    def test_hpwl_never_increases(self, legal_toy):
        before = hpwl(legal_toy)
        stats = detailed_place(legal_toy, passes=2)
        assert stats.hpwl_after <= before + 1e-9
        assert stats.improvement >= -1e-9

    def test_preserves_legality(self, legal_toy):
        detailed_place(legal_toy, passes=2)
        assert check_legal(legal_toy) == []

    def test_congestion_veto_blocks_moves(self, legal_toy):
        grid = Grid2D(legal_toy.die, 16, 16)
        blocked = np.full(grid.shape, 10.0)  # everything congested
        stats = detailed_place(
            legal_toy, passes=1, grid=grid, congestion=blocked
        )
        assert stats.shifts_applied == 0
        assert stats.swaps_applied == 0

    def test_zero_congestion_equals_plain(self, legal_toy):
        nl2 = legal_toy.copy()
        grid = Grid2D(legal_toy.die, 16, 16)
        s1 = detailed_place(legal_toy, passes=1)
        s2 = detailed_place(nl2, passes=1, grid=grid, congestion=np.zeros(grid.shape))
        assert s1.shifts_applied == s2.shifts_applied
        assert s1.hpwl_after == pytest.approx(s2.hpwl_after)

    def test_moves_counted(self, legal_toy):
        stats = detailed_place(legal_toy, passes=2)
        assert stats.passes == 2
        assert stats.shifts_applied >= 0
        assert stats.swaps_applied >= 0

# ----------------------------------------------------------------------
# property: the oracle agrees with the full evaluator on ANY netlist
# ----------------------------------------------------------------------
@st.composite
def _random_netlists(draw):
    """Small random netlists, degenerate nets included.

    Degrees are drawn from 0..4 so empty nets and single-pin stubs —
    the cases where the "skip degree<2" convention must match
    ``hpwl_per_net`` masking them to zero — show up routinely, not as
    rare corner draws.
    """
    n_cells = draw(st.integers(min_value=2, max_value=6))
    coord = st.floats(min_value=0.5, max_value=19.5)
    offset = st.floats(min_value=-0.5, max_value=0.5)
    cells = [
        CellSpec(
            f"c{i}",
            width=draw(st.floats(min_value=0.5, max_value=2.0)),
            height=1.0,
            x=draw(coord),
            y=draw(coord),
        )
        for i in range(n_cells)
    ]
    n_nets = draw(st.integers(min_value=1, max_value=6))
    nets = []
    for e in range(n_nets):
        degree = draw(st.integers(min_value=0, max_value=4))
        pins = [
            PinSpec(
                f"c{draw(st.integers(min_value=0, max_value=n_cells - 1))}",
                draw(offset),
                draw(offset),
            )
            for _ in range(degree)
        ]
        nets.append(NetSpec(f"n{e}", pins))
    netlist = Netlist.from_specs("prop", Rect(0, 0, 20, 20), cells, nets)
    cell = draw(st.integers(min_value=0, max_value=n_cells - 1))
    new_x = draw(coord)
    new_y = draw(coord)
    return netlist, cell, new_x, new_y


class TestIncrementalOracleProperty:
    @given(_random_netlists())
    @settings(max_examples=150, deadline=None)
    def test_move_delta_equals_full_recompute(self, case):
        netlist, cell, new_x, new_y = case
        oracle = IncrementalWirelength(netlist)
        before = hpwl(netlist)
        delta = oracle.delta_for_move(cell, new_x, new_y)
        netlist.x[cell] = new_x
        netlist.y[cell] = new_y
        assert hpwl(netlist) - before == pytest.approx(delta, abs=1e-9)

    @given(_random_netlists())
    @settings(max_examples=75, deadline=None)
    def test_swap_delta_equals_full_recompute(self, case):
        netlist, a, _, _ = case
        b = (a + 1) % netlist.n_cells
        oracle = IncrementalWirelength(netlist)
        before = hpwl(netlist)
        delta = oracle.delta_for_swap(a, b)
        netlist.x[a], netlist.x[b] = netlist.x[b].copy(), netlist.x[a].copy()
        netlist.y[a], netlist.y[b] = netlist.y[b].copy(), netlist.y[a].copy()
        assert hpwl(netlist) - before == pytest.approx(delta, abs=1e-9)

"""Detailed placement tests: legality preservation and HPWL behavior."""

import numpy as np
import pytest

from repro.detail import IncrementalWirelength, detailed_place
from repro.geometry import Grid2D
from repro.legalize import check_legal, legalize
from repro.place import GlobalPlacer, GPConfig, initial_placement
from repro.wirelength import hpwl


@pytest.fixture
def legal_toy(toy300):
    initial_placement(toy300, 0)
    GlobalPlacer(toy300, GPConfig(max_iters=150)).run()
    legalize(toy300)
    return toy300


class TestIncrementalOracle:
    def test_delta_matches_full_recompute(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        cell = int(mv[5])
        before = hpwl(legal_toy)
        new_x = legal_toy.x[cell] + 1.0
        delta = oracle.delta_for_move(cell, new_x, legal_toy.y[cell])
        legal_toy.x[cell] = new_x
        assert hpwl(legal_toy) - before == pytest.approx(delta, abs=1e-9)

    def test_move_restores_state(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        cell = int(mv[3])
        x0 = legal_toy.x[cell]
        oracle.delta_for_move(cell, x0 + 2.0, legal_toy.y[cell])
        assert legal_toy.x[cell] == x0

    def test_swap_delta_matches(self, legal_toy):
        oracle = IncrementalWirelength(legal_toy)
        mv = np.flatnonzero(legal_toy.movable)
        a, b = int(mv[1]), int(mv[2])
        before = hpwl(legal_toy)
        delta = oracle.delta_for_swap(a, b)
        legal_toy.x[a], legal_toy.x[b] = legal_toy.x[b], legal_toy.x[a]
        legal_toy.y[a], legal_toy.y[b] = legal_toy.y[b], legal_toy.y[a]
        assert hpwl(legal_toy) - before == pytest.approx(delta, abs=1e-9)


class TestDetailedPlace:
    def test_hpwl_never_increases(self, legal_toy):
        before = hpwl(legal_toy)
        stats = detailed_place(legal_toy, passes=2)
        assert stats.hpwl_after <= before + 1e-9
        assert stats.improvement >= -1e-9

    def test_preserves_legality(self, legal_toy):
        detailed_place(legal_toy, passes=2)
        assert check_legal(legal_toy) == []

    def test_congestion_veto_blocks_moves(self, legal_toy):
        grid = Grid2D(legal_toy.die, 16, 16)
        blocked = np.full(grid.shape, 10.0)  # everything congested
        stats = detailed_place(
            legal_toy, passes=1, grid=grid, congestion=blocked
        )
        assert stats.shifts_applied == 0
        assert stats.swaps_applied == 0

    def test_zero_congestion_equals_plain(self, legal_toy):
        nl2 = legal_toy.copy()
        grid = Grid2D(legal_toy.die, 16, 16)
        s1 = detailed_place(legal_toy, passes=1)
        s2 = detailed_place(nl2, passes=1, grid=grid, congestion=np.zeros(grid.shape))
        assert s1.shifts_applied == s2.shifts_applied
        assert s1.hpwl_after == pytest.approx(s2.hpwl_after)

    def test_moves_counted(self, legal_toy):
        stats = detailed_place(legal_toy, passes=2)
        assert stats.passes == 2
        assert stats.shifts_applied >= 0
        assert stats.swaps_applied >= 0

"""PG-rail selection (Fig. 4) and dynamic PG density (Eq. 13-15) tests."""

import numpy as np
import pytest

from repro.core import PinAccessConfig, pg_density_charge, rail_area_map, select_pg_rails
from repro.core.pgrails import _cut_interval
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, PGRailSpec
from repro.synth import toy_design


class TestCutInterval:
    def test_no_holes(self):
        assert _cut_interval(0, 10, []) == [(0, 10)]

    def test_middle_hole(self):
        assert _cut_interval(0, 10, [(4, 6)]) == [(0, 4), (6, 10)]

    def test_overlapping_holes(self):
        pieces = _cut_interval(0, 10, [(2, 5), (4, 7)])
        assert pieces == [(0, 2), (7, 10)]

    def test_hole_covers_all(self):
        assert _cut_interval(0, 10, [(-1, 11)]) == []

    def test_hole_at_edges(self):
        assert _cut_interval(0, 10, [(0, 3), (8, 10)]) == [(3, 8)]


def _railed_netlist(macro_x=5.0):
    die = Rect(0, 0, 10, 10)
    cells = [
        CellSpec("m0", 3.0, 3.0, x=macro_x, y=5.0, fixed=True, macro=True),
        CellSpec("c0", 0.5, 1.0, x=1, y=1),
    ]
    rails = [
        PGRailSpec(Rect(0, 4.95, 10, 5.05), horizontal=True),   # crosses macro
        PGRailSpec(Rect(0, 0.95, 10, 1.05), horizontal=True),   # clear
        PGRailSpec(Rect(0, 9.0, 10, 9.1), horizontal=True),     # clear
    ]
    return Netlist.from_specs("r", die, cells, [], pg_rails=rails)


class TestSelection:
    def test_clear_rails_survive_whole(self):
        nl = _railed_netlist()
        selected = select_pg_rails(nl)
        full = [r for r in selected if r.rect.width == pytest.approx(10.0)]
        assert len(full) == 2

    def test_cut_rail_produces_pieces(self):
        nl = _railed_netlist()
        selected = select_pg_rails(nl)
        pieces = [r for r in selected if r.rect.width < 10.0]
        # macro 3 wide at x=5, expanded 10% -> blocks [3.2, 6.8]:
        # pieces [0, 3.2] and [6.8, 10] both >= 0.2*10 = 2
        assert len(pieces) == 2
        widths = sorted(p.rect.width for p in pieces)
        assert widths[0] == pytest.approx(3.2, abs=0.01)
        assert widths[1] == pytest.approx(3.2, abs=0.01)

    def test_short_pieces_dropped(self):
        # macro nearly spans the die: left/right pieces shorter than 0.2*W
        nl = _railed_netlist()
        big = Netlist.from_specs(
            "big",
            nl.die,
            [CellSpec("m0", 8.0, 3.0, x=5.0, y=5.0, fixed=True, macro=True)],
            [],
            pg_rails=[PGRailSpec(Rect(0, 4.95, 10, 5.05), horizontal=True)],
        )
        selected = select_pg_rails(big)
        assert selected == []

    def test_vertical_rails(self):
        die = Rect(0, 0, 10, 10)
        cells = [CellSpec("m", 3, 3, x=5, y=5, fixed=True, macro=True)]
        rails = [PGRailSpec(Rect(4.95, 0, 5.05, 10), horizontal=False)]
        nl = Netlist.from_specs("v", die, cells, [], pg_rails=rails)
        selected = select_pg_rails(nl)
        assert len(selected) == 2
        assert all(not r.horizontal for r in selected)

    def test_generated_design_selection_nonempty(self):
        nl = toy_design(150, seed=2)
        selected = select_pg_rails(nl)
        assert 0 < len(selected)
        # every selected piece satisfies the 0.2x span rule
        for r in selected:
            assert r.length >= 0.2 * nl.die.width - 1e-9


class TestRailAreaMap:
    def test_area_conserved(self):
        nl = _railed_netlist()
        grid = Grid2D(nl.die, 20, 20)
        m = rail_area_map(nl.pg_rails, grid)
        total = sum(r.rect.area for r in nl.pg_rails)
        assert m.sum() == pytest.approx(total, rel=1e-9)

    def test_empty_rails(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        assert rail_area_map([], grid).sum() == 0.0


class TestPGDensity:
    def test_eta_selects_above_average_bins(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        rail_area = np.ones(grid.shape) * 0.1
        cong = np.zeros(grid.shape)
        cong[3, 3] = 1.0  # mean > 0, only this bin above mean
        charge = pg_density_charge(grid, rail_area, cong, PinAccessConfig(density_scale=1.0))
        assert charge[3, 3] == pytest.approx((1 + 1.0) * 0.1)
        assert charge[0, 0] == 0.0

    def test_weight_is_one_plus_congestion(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        rail_area = np.ones(grid.shape)
        cong = np.zeros(grid.shape)
        cong[1, 1] = 0.5
        cong[2, 2] = 1.5
        charge = pg_density_charge(grid, rail_area, cong, PinAccessConfig(density_scale=1.0))
        assert charge[2, 2] / charge[1, 1] == pytest.approx(2.5 / 1.5)

    def test_zero_congestion_zero_charge(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        charge = pg_density_charge(grid, np.ones(grid.shape), np.zeros(grid.shape))
        assert charge.sum() == 0.0

    def test_shape_mismatch(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        with pytest.raises(ValueError):
            pg_density_charge(grid, np.zeros((3, 3)), np.zeros(grid.shape))

    def test_density_scale(self):
        grid = Grid2D(Rect(0, 0, 4, 4), 8, 8)
        rail_area = np.ones(grid.shape)
        cong = np.zeros(grid.shape)
        cong[1, 1] = 1.0
        c1 = pg_density_charge(grid, rail_area, cong, PinAccessConfig(density_scale=1.0))
        c2 = pg_density_charge(grid, rail_area, cong, PinAccessConfig(density_scale=2.0))
        assert c2[1, 1] == pytest.approx(2 * c1[1, 1])


class TestPGDensityNonFinite:
    """Regression: one NaN bin used to silently disable DPA for a round.

    ``congestion.mean()`` is NaN when any bin is NaN, NaN comparisons
    are False everywhere, so ``eta`` came out all-False.  The mean is
    now computed over the finite bins and non-finite bins are never
    selected.
    """

    @pytest.fixture(autouse=True)
    def _contracts_off(self):
        # pin mode so the finite-mean fix is what's under test even when
        # the suite runs with REPRO_CHECK_INVARIANTS=raise; the contract
        # test below opts back in explicitly
        from repro.utils import contracts

        contracts.configure(mode="off")

    def _grid(self):
        return Grid2D(Rect(0, 0, 4, 4), 8, 8)

    def test_nan_bin_does_not_disable_dpa(self):
        grid = self._grid()
        rail_area = np.ones(grid.shape) * 0.1
        cong = np.zeros(grid.shape)
        cong[3, 3] = 1.0
        cong[0, 0] = np.nan
        charge = pg_density_charge(
            grid, rail_area, cong, PinAccessConfig(density_scale=1.0)
        )
        assert charge[3, 3] == pytest.approx(2.0 * 0.1)  # still selected
        assert np.isfinite(charge).all()
        assert charge[0, 0] == 0.0  # the poisoned bin is never selected

    def test_mean_over_finite_bins(self):
        grid = self._grid()
        rail_area = np.ones(grid.shape)
        cong = np.full(grid.shape, 0.5)
        cong[3, 3] = 2.0
        cong[1, 1] = np.inf
        charge = pg_density_charge(
            grid, rail_area, cong, PinAccessConfig(density_scale=1.0)
        )
        # finite mean is just above 0.5, so only the 2.0 bin is selected
        assert charge[3, 3] > 0.0
        assert charge[2, 2] == 0.0
        assert np.isfinite(charge).all()

    def test_all_nan_selects_nothing(self):
        grid = self._grid()
        charge = pg_density_charge(
            grid, np.ones(grid.shape), np.full(grid.shape, np.nan)
        )
        assert charge.sum() == 0.0

    def test_contract_violation_reported(self):
        from repro.utils import contracts

        contracts.configure(mode="warn")
        grid = self._grid()
        cong = np.zeros(grid.shape)
        cong[0, 0] = np.nan
        pg_density_charge(grid, np.ones(grid.shape), cong)
        assert any(
            v["contract"] == "dpa.finite_congestion"
            for v in contracts.CONTRACTS.violations
        )

"""Incremental / ECO placement tests.

Fast unit coverage of the netlist differ, the warm-start planner and
the dirty-region analysis runs in tier-1; the end-to-end flow tests
(null-edit bit-identity, QoR vs a cold full re-place) carry the
``eco`` marker and run in their own CI job.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.rd_placer import RDConfig, RoutabilityDrivenPlacer
from repro.detail import detailed_place
from repro.eco import (
    EcoConfig,
    apply_warm_start,
    diff_netlists,
    dirty_region,
    eco_place,
    full_replace,
)
from repro.geometry import Grid2D, Rect
from repro.io.bookshelf import dumps_design, loads_design
from repro.legalize import check_legal, legalize
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec
from repro.place.config import GPConfig
from repro.synth import toy_design
from repro.utils.metrics import MemorySink, MetricsRegistry, validate_stream
from repro.wirelength import hpwl


def _quad() -> Netlist:
    """Four movable cells and one fixed macro on a 10x10 die."""
    die = Rect(0, 0, 10, 10)
    cells = [
        CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
        CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
        CellSpec("c", 1.0, 1.0, x=2.0, y=8.0),
        CellSpec("d", 1.0, 1.0, x=8.0, y=8.0),
        CellSpec("m", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
    ]
    nets = [
        NetSpec("n_ab", [PinSpec("a"), PinSpec("b")]),
        NetSpec("n_cd", [PinSpec("c"), PinSpec("d")]),
        NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
    ]
    return Netlist.from_specs("quad", die, cells, nets)


def _resize_cell(text: str, cell: str, factor: float) -> str:
    """Scale one cell's width in a serialized design."""
    out = []
    for line in text.splitlines():
        parts = line.split()
        if len(parts) >= 4 and parts[0] == "cell" and parts[1] == cell:
            parts[2] = str(float(parts[2]) * factor)
            line = " ".join(parts)
        out.append(line)
    return "\n".join(out) + "\n"


class TestNetlistDiff:
    def test_identical_designs_null_diff(self):
        old, new = _quad(), _quad()
        diff = diff_netlists(old, new)
        assert diff.is_null
        assert diff.n_edits == 0
        assert (diff.cell_old_to_new == np.arange(old.n_cells)).all()
        assert (diff.cell_new_to_old == np.arange(new.n_cells)).all()
        assert (diff.net_new_to_old == np.arange(new.n_nets)).all()

    def test_resize_detected(self):
        old = _quad()
        new = loads_design(_resize_cell(dumps_design(old), "b", 2.0))
        diff = diff_netlists(old, new)
        assert diff.resized_cells == ["b"]
        assert diff.n_edits == 1
        assert not diff.is_null

    def test_added_and_removed_cells(self):
        old = _quad()
        die = old.die
        cells = [
            CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
            CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
            CellSpec("c", 1.0, 1.0, x=2.0, y=8.0),
            CellSpec("e", 1.0, 1.0),  # new cell, d removed
            CellSpec("m", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
        ]
        nets = [
            NetSpec("n_ab", [PinSpec("a"), PinSpec("b")]),
            NetSpec("n_ce", [PinSpec("c"), PinSpec("e")]),  # n_cd removed
            NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
        ]
        new = Netlist.from_specs("quad", die, cells, nets)
        diff = diff_netlists(old, new)
        assert diff.added_cells == ["e"]
        assert diff.removed_cells == ["d"]
        assert diff.added_nets == ["n_ce"]
        assert diff.removed_nets == ["n_cd"]
        # surviving cells keep a two-way mapping
        i_old = old.cell_names.index("c")
        i_new = new.cell_names.index("c")
        assert diff.cell_old_to_new[i_old] == i_new
        assert diff.cell_new_to_old[i_new] == i_old
        # the removed cell maps nowhere
        assert diff.cell_old_to_new[old.cell_names.index("d")] == -1

    def test_rewired_net_detected(self):
        old = _quad()
        die = old.die
        cells = [
            CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
            CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
            CellSpec("c", 1.0, 1.0, x=2.0, y=8.0),
            CellSpec("d", 1.0, 1.0, x=8.0, y=8.0),
            CellSpec("m", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
        ]
        nets = [
            NetSpec("n_ab", [PinSpec("a"), PinSpec("d")]),  # b -> d
            NetSpec("n_cd", [PinSpec("c"), PinSpec("d")]),
            NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
        ]
        new = Netlist.from_specs("quad", die, cells, nets)
        diff = diff_netlists(old, new)
        assert diff.rewired_nets == ["n_ab"]
        assert diff.added_nets == [] and diff.removed_nets == []

    def test_pin_order_does_not_count_as_rewire(self):
        old = _quad()
        die = old.die
        cells = [
            CellSpec("a", 1.0, 1.0, x=2.0, y=2.0),
            CellSpec("b", 1.0, 1.0, x=8.0, y=2.0),
            CellSpec("c", 1.0, 1.0, x=2.0, y=8.0),
            CellSpec("d", 1.0, 1.0, x=8.0, y=8.0),
            CellSpec("m", 2.0, 2.0, x=5.0, y=5.0, fixed=True, macro=True),
        ]
        nets = [
            NetSpec("n_ab", [PinSpec("b"), PinSpec("a")]),  # order flipped
            NetSpec("n_cd", [PinSpec("c"), PinSpec("d")]),
            NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
        ]
        new = Netlist.from_specs("quad", die, cells, nets)
        assert diff_netlists(old, new).is_null


class TestWarmStart:
    def test_surviving_cells_keep_positions(self):
        old, new = _quad(), _quad()
        new.x[:] = 0.0
        new.y[:] = 0.0
        diff = diff_netlists(old, new)
        warm = apply_warm_start(new, diff, old.x, old.y)
        assert warm.n_mapped == old.n_cells
        assert warm.n_seeded == 0
        assert np.array_equal(new.x, old.x)
        assert np.array_equal(new.y, old.y)

    def test_added_cell_seeded_at_neighbor_centroid(self):
        old = _quad()
        die = old.die
        cells = [
            CellSpec("a", 1.0, 1.0),
            CellSpec("b", 1.0, 1.0),
            CellSpec("c", 1.0, 1.0),
            CellSpec("d", 1.0, 1.0),
            CellSpec("m", 2.0, 2.0, fixed=True, macro=True),
            CellSpec("z", 1.0, 1.0),  # new, tied to a and b
        ]
        nets = [
            NetSpec("n_ab", [PinSpec("a"), PinSpec("b")]),
            NetSpec("n_cd", [PinSpec("c"), PinSpec("d")]),
            NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
            NetSpec("n_z", [PinSpec("z"), PinSpec("a"), PinSpec("b")]),
        ]
        new = Netlist.from_specs("quad", die, cells, nets)
        diff = diff_netlists(old, new)
        warm = apply_warm_start(new, diff, old.x, old.y)
        assert warm.n_seeded == 1
        z = new.cell_names.index("z")
        # centroid of a=(2,2) and b=(8,2)
        assert new.x[z] == pytest.approx(5.0)
        assert new.y[z] == pytest.approx(2.0)

    def test_isolated_added_cell_falls_back_to_die_center(self):
        old = _quad()
        die = old.die
        cells = [
            CellSpec("a", 1.0, 1.0),
            CellSpec("b", 1.0, 1.0),
            CellSpec("c", 1.0, 1.0),
            CellSpec("d", 1.0, 1.0),
            CellSpec("m", 2.0, 2.0, fixed=True, macro=True),
            CellSpec("lone", 1.0, 1.0),
        ]
        nets = [
            NetSpec("n_ab", [PinSpec("a"), PinSpec("b")]),
            NetSpec("n_cd", [PinSpec("c"), PinSpec("d")]),
            NetSpec("n_am", [PinSpec("a"), PinSpec("m")]),
        ]
        new = Netlist.from_specs("quad", die, cells, nets)
        diff = diff_netlists(old, new)
        apply_warm_start(new, diff, old.x, old.y)
        lone = new.cell_names.index("lone")
        cx, cy = die.center
        assert new.x[lone] == pytest.approx(cx)
        assert new.y[lone] == pytest.approx(cy)


class TestDirtyRegion:
    def _grid(self, netlist: Netlist) -> Grid2D:
        return Grid2D(netlist.die, 8, 8)

    def test_resized_cell_and_bin_neighbors_dirty(self):
        old = _quad()
        new = loads_design(_resize_cell(dumps_design(old), "b", 2.0))
        diff = diff_netlists(old, new)
        region = dirty_region(new, old, diff, self._grid(new), halo_bins=0)
        b = new.cell_names.index("b")
        assert region.dirty_cells[b]
        assert region.n_bins >= 1
        # every net with a pin on a dirty cell is dirty
        for e in range(new.n_nets):
            pins = new.net_pins(e)
            touches = bool(region.dirty_cells[new.pin_cell[pins]].any())
            assert bool(region.dirty_nets[e]) == touches

    def test_fixed_cells_never_dirty(self):
        old = _quad()
        new = loads_design(_resize_cell(dumps_design(old), "m", 1.5))
        diff = diff_netlists(old, new)
        region = dirty_region(new, old, diff, self._grid(new), halo_bins=2)
        assert not region.dirty_cells[new.cell_names.index("m")]
        assert not (region.dirty_cells & new.cell_fixed).any()

    def test_halo_grows_the_region(self):
        old = _quad()
        new = loads_design(_resize_cell(dumps_design(old), "b", 2.0))
        diff = diff_netlists(old, new)
        grid = self._grid(new)
        r0 = dirty_region(new, old, diff, grid, halo_bins=0)
        r2 = dirty_region(new, old, diff, grid, halo_bins=2)
        assert r2.n_bins > r0.n_bins
        assert r2.n_dirty_cells >= r0.n_dirty_cells

    def test_null_diff_empty_region(self):
        old, new = _quad(), _quad()
        diff = diff_netlists(old, new)
        region = dirty_region(new, old, diff, self._grid(new))
        assert region.n_dirty_cells == 0
        assert region.n_dirty_nets == 0


class TestEcoFlowUnit:
    def test_null_edit_without_checkpoint_keeps_positions(self):
        rd = RDConfig(gp=GPConfig(max_iters=30), max_rounds=1, iters_per_round=5)
        old = toy_design(80, seed=9)
        text = dumps_design(old)
        new = loads_design(text)
        old = loads_design(text)
        result = eco_place(new, old, EcoConfig(rd=rd))
        assert result.n_rounds == 0
        assert result.region.n_dirty_cells == 0
        assert np.array_equal(new.x, old.x)
        assert np.array_equal(new.y, old.y)

    def test_telemetry_stream_valid_and_complete(self):
        rd = RDConfig(gp=GPConfig(max_iters=30), max_rounds=1, iters_per_round=5)
        old = toy_design(80, seed=9)
        text = dumps_design(old)
        new = loads_design(_resize_cell(text, "c10", 2.0))
        old = loads_design(text)
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        eco_place(new, old, EcoConfig(rd=rd), metrics=metrics)
        metrics.close()
        events = [json.loads(line) for line in sink.lines]
        validate_stream(events)
        kinds = [e["kind"] for e in events]
        for kind in ("eco.diff", "eco.warm", "eco.region", "eco.place"):
            assert kind in kinds, f"missing {kind} in {kinds}"


@pytest.mark.eco
class TestEcoEndToEnd:
    """Slow flow-level guarantees; own CI job (``-m eco``)."""

    RD = dict(max_rounds=4, iters_per_round=15)

    def _baseline(self, tmp_path, n_cells=150, seed=5, utilization=0.8):
        """Place a toy design through the full RD flow + finishing."""
        rd = RDConfig(gp=GPConfig(max_iters=100), **self.RD)
        netlist = toy_design(n_cells, seed=seed, utilization=utilization)
        placer = RoutabilityDrivenPlacer(netlist, rd)
        checkpoint = str(tmp_path / "base.npz")
        result = placer.run(checkpoint_path=checkpoint)
        legalize(netlist)
        detailed_place(
            netlist,
            passes=2,
            grid=placer.gp.grid,
            congestion=result.final_routing.congestion_map,
        )
        return netlist, rd, checkpoint

    def test_null_edit_resume_is_bit_identical(self, tmp_path):
        """A null diff + checkpoint degenerates to a plain resume."""
        netlist, rd, checkpoint = self._baseline(tmp_path)
        text = dumps_design(netlist)

        # reference: resume the checkpoint directly, as the CLI would
        ref = loads_design(text)
        import shutil

        ref_ck = str(tmp_path / "ref.npz")
        shutil.copyfile(checkpoint, ref_ck)
        RoutabilityDrivenPlacer(ref, rd).run(
            checkpoint_path=ref_ck, resume=True
        )

        eco = loads_design(text)
        result = eco_place(
            eco,
            loads_design(text),
            EcoConfig(rd=rd, legalize=False),
            baseline_checkpoint=checkpoint,
            checkpoint_path=str(tmp_path / "eco.npz"),
        )
        assert result.resumed
        assert result.diff.is_null
        assert np.array_equal(eco.x, ref.x)
        assert np.array_equal(eco.y, ref.y)

    def test_single_resize_beats_cold_full_replace(self, tmp_path):
        """The acceptance run: a <=5%-cells edit must match full QoR.

        ECO must finish in strictly fewer RD rounds than the cold full
        re-place while keeping HPWL within 1% and overflow no worse.
        """
        netlist, rd, checkpoint = self._baseline(tmp_path)
        text = dumps_design(netlist)
        edited = _resize_cell(text, "c10", 2.0)

        eco = loads_design(edited)
        result = eco_place(
            eco,
            loads_design(text),
            EcoConfig(rd=rd),
            baseline_checkpoint=checkpoint,
        )
        assert result.region.n_dirty_cells <= 0.05 * eco.n_cells + 10
        assert check_legal(eco) == []

        full_nl = loads_design(edited)
        full = full_replace(full_nl, rd)

        assert result.n_rounds < full["rounds"], (
            f"eco took {result.n_rounds} rounds, full {full['rounds']}"
        )
        assert result.hpwl <= 1.01 * full["hpwl"], (
            f"eco hpwl {result.hpwl} vs full {full['hpwl']}"
        )
        assert result.total_overflow <= full["total_overflow"] + 1e-9
        assert result.hpwl == pytest.approx(hpwl(eco))

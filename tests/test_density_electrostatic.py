"""Electrostatic system tests: energy, forces, overflow, static charge."""

import numpy as np
import pytest

from repro.density import ElectrostaticSystem
from repro.geometry import Grid2D, Rect


@pytest.fixture
def system():
    return ElectrostaticSystem(Grid2D(Rect(0, 0, 8, 8), 32, 32), target_density=0.9)


class TestSolve:
    def test_two_close_cells_repel(self, system):
        x = np.array([3.9, 4.1])
        y = np.array([4.0, 4.0])
        w = np.array([0.5, 0.5])
        h = np.array([0.5, 0.5])
        sol = system.solve(x, y, w, h)
        # descent direction -grad pushes them apart in x
        assert -sol.grad_x[0] < 0 and -sol.grad_x[1] > 0

    def test_energy_decreases_when_spreading(self, system):
        w = np.full(2, 0.5)
        h = np.full(2, 0.5)
        e_close = system.solve(np.array([3.9, 4.1]), np.array([4.0, 4.0]), w, h).energy
        e_far = system.solve(np.array([2.0, 6.0]), np.array([4.0, 4.0]), w, h).energy
        assert e_far < e_close

    def test_gradient_consistent_with_energy_finite_difference(self, system):
        """The ePlace force q*E is a consistent descent direction.

        It is not the exact derivative of the *discretized* energy
        (rasterization makes that only piecewise smooth), but it must
        agree in sign and order of magnitude with the finite
        difference everywhere.
        """
        x = np.array([3.5, 4.5, 4.0])
        y = np.array([4.0, 4.2, 3.6])
        w = np.full(3, 0.6)
        h = np.full(3, 0.6)
        sol = system.solve(x, y, w, h)
        eps = 1e-4
        for i in range(3):
            xp = x.copy(); xp[i] += eps
            xm = x.copy(); xm[i] -= eps
            fd = (system.solve(xp, y, w, h).energy - system.solve(xm, y, w, h).energy) / (2 * eps)
            assert np.sign(sol.grad_x[i]) == np.sign(fd)
            ratio = sol.grad_x[i] / fd
            assert 0.5 < ratio < 1.5

    def test_overflow_zero_when_spread(self, system, rng):
        n = 16
        xs, ys = np.meshgrid(np.linspace(1, 7, 4), np.linspace(1, 7, 4))
        sol = system.solve(xs.ravel(), ys.ravel(), np.full(n, 0.3), np.full(n, 0.3))
        assert sol.overflow == pytest.approx(0.0, abs=1e-9)

    def test_overflow_positive_when_stacked(self, system):
        n = 10
        sol = system.solve(np.full(n, 4.0), np.full(n, 4.0),
                           np.full(n, 1.0), np.full(n, 1.0))
        assert sol.overflow > 0.5


class TestStaticCharge:
    def test_static_obstacle_repels(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 32, 32)
        static = ElectrostaticSystem.static_charge_from(
            grid, np.array([4.0]), np.array([4.0]), np.array([2.0]), np.array([2.0])
        )
        system = ElectrostaticSystem(grid, 0.9, static_charge=static)
        sol = system.solve(np.array([3.2]), np.array([4.0]),
                           np.array([0.5]), np.array([0.5]))
        # cell left of the obstacle is pushed further left
        assert -sol.grad_x[0] < 0

    def test_static_shape_mismatch(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 32, 32)
        with pytest.raises(ValueError):
            ElectrostaticSystem(grid, 0.9, static_charge=np.zeros((3, 3)))

    def test_bad_target_density(self):
        grid = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        with pytest.raises(ValueError):
            ElectrostaticSystem(grid, 0.0)
        with pytest.raises(ValueError):
            ElectrostaticSystem(grid, 1.5)

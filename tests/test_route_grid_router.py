"""Routing grid and global router tests."""

import numpy as np
import pytest

from repro.geometry import Grid2D, Rect
from repro.route import (
    GlobalRouter,
    RouterConfig,
    RoutingGrid,
    congestion_from_demand,
    rudy_map,
)


@pytest.fixture
def rgrid():
    return RoutingGrid(Grid2D(Rect(0, 0, 8, 8), 16, 16), RouterConfig())


class TestRoutingGrid:
    def test_capacity_positive(self, rgrid):
        assert (rgrid.h_cap > 0).all()
        assert (rgrid.v_cap > 0).all()

    def test_layer_split(self):
        g = Grid2D(Rect(0, 0, 8, 8), 16, 16)
        cfg = RouterConfig(n_layers=4, wire_pitch=0.25)
        rg = RoutingGrid(g, cfg)
        # 2 horizontal layers x (dy / pitch) tracks
        assert rg.h_cap[0, 0] == pytest.approx(2 * g.dy / 0.25)
        assert rg.v_cap[0, 0] == pytest.approx(2 * g.dx / 0.25)

    def test_demand_add_and_remove(self, rgrid):
        rgrid.add_h_run(3, 2, 6)
        assert rgrid.h_demand[2:7, 3].sum() == pytest.approx(5.0)
        rgrid.add_h_run(3, 6, 2, sign=-1.0)
        assert np.allclose(rgrid.h_demand, 0.0)

    def test_via_demand(self, rgrid):
        rgrid.add_via(4, 4, 2.0)
        assert rgrid.via_demand[4, 4] == 2.0
        td = rgrid.total_demand()
        assert td[4, 4] == pytest.approx(2.0 * rgrid.config.via_weight)

    def test_utilization_and_overflow(self, rgrid):
        rgrid.h_demand[5, 5] = rgrid.h_cap[5, 5] + 3.0
        ov = rgrid.overflow_map()
        assert ov[5, 5] == pytest.approx(3.0)
        util = rgrid.utilization()
        assert util[5, 5] > 0.5

    def test_macro_blockage_reduces_capacity(self, toy120):
        g = Grid2D(toy120.die, 32, 32)
        with_nl = RoutingGrid(g, RouterConfig(), toy120)
        without = RoutingGrid(g, RouterConfig())
        assert with_nl.h_cap.sum() < without.h_cap.sum()

    def test_rail_blockage_reduces_capacity(self, toy120):
        g = Grid2D(toy120.die, 32, 32)
        rails_on = RoutingGrid(g, RouterConfig(), toy120)
        bare = toy120.copy()
        bare.pg_rails = []
        rails_off = RoutingGrid(g, RouterConfig(), bare)
        assert rails_on.h_cap.sum() < rails_off.h_cap.sum()

    def test_cost_maps_monotone_in_demand(self, rgrid):
        h0, _ = rgrid.cost_maps()
        rgrid.h_demand[4, 4] = rgrid.h_cap[4, 4]
        h1, _ = rgrid.cost_maps()
        assert h1[4, 4] > h0[4, 4]

    def test_history_accumulation(self, rgrid):
        rgrid.h_demand[3, 3] = rgrid.h_cap[3, 3] + 1
        rgrid.accumulate_history()
        rgrid.accumulate_history()
        assert rgrid.history[3, 3] == 2.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(n_layers=1)
        with pytest.raises(ValueError):
            RouterConfig(wire_pitch=0)


class TestGlobalRouter:
    def test_routes_toy_design(self, toy120):
        g = Grid2D(toy120.die, 32, 32)
        res = GlobalRouter(g).route(toy120)
        assert res.n_segments > 0
        assert res.wirelength > 0
        assert res.n_vias > 0
        assert res.congestion_map.shape == g.shape

    def test_deterministic(self, toy120):
        g = Grid2D(toy120.die, 32, 32)
        r1 = GlobalRouter(g).route(toy120)
        r2 = GlobalRouter(g).route(toy120)
        assert r1.wirelength == r2.wirelength
        assert np.array_equal(r1.congestion_map, r2.congestion_map)

    def test_wirelength_at_least_mst_bound(self, toy120):
        # routed wirelength >= sum of manhattan segment spans (discretized)
        from repro.route import decompose_netlist

        g = Grid2D(toy120.die, 32, 32)
        res = GlobalRouter(g).route(toy120)
        lower = 0.0
        for segs in decompose_netlist(toy120):
            for (x1, y1, x2, y2) in segs:
                i1, j1 = g.index_of(x1, y1)
                i2, j2 = g.index_of(x2, y2)
                lower += abs(i2 - i1) * g.dx + abs(j2 - j1) * g.dy
        assert res.wirelength >= lower - 1e-6

    def test_rrr_reduces_or_keeps_overflow(self, toy300):
        g = Grid2D(toy300.die, 32, 32)
        no_rrr = GlobalRouter(g, RouterConfig(rrr_rounds=0)).route(toy300)
        rrr = GlobalRouter(g, RouterConfig(rrr_rounds=3)).route(toy300)
        assert rrr.total_overflow <= no_rrr.total_overflow * 1.05 + 5

    def test_congestion_eq3(self, rgrid):
        rgrid.h_demand[2, 2] = 2 * (rgrid.h_cap[2, 2] + rgrid.v_cap[2, 2])
        data = congestion_from_demand(rgrid)
        # Dmd/Cap = 2 exactly at that cell (via=0): C = max(rho-1, 0) = 1
        assert data.congestion[2, 2] == pytest.approx(1.0, rel=1e-6)
        assert data.utilization[2, 2] == pytest.approx(2.0, rel=1e-6)
        assert data.max_congestion >= 1.0
        assert data.congested_mask()[2, 2]


class TestRudy:
    def test_total_mass(self, tiny_netlist):
        g = Grid2D(tiny_netlist.die, 20, 20)
        r = rudy_map(tiny_netlist, g)
        assert r.shape == g.shape
        assert (r >= -1e-12).all()
        assert r.sum() > 0

    def test_single_net_box(self):
        from repro.geometry import Rect
        from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec

        cells = [CellSpec("a", 0.1, 0.1, x=2, y=2), CellSpec("b", 0.1, 0.1, x=6, y=6)]
        nets = [NetSpec("n", [PinSpec("a"), PinSpec("b")])]
        nl = Netlist.from_specs("d", Rect(0, 0, 8, 8), cells, nets)
        g = Grid2D(nl.die, 16, 16)
        r = rudy_map(nl, g)
        # density (w+h)/(w*h) = 8/16 = 0.5 inside the box, 0 outside
        assert r[g.index_of(4.0, 4.0)] == pytest.approx(0.5)
        assert r[g.index_of(1.0, 7.0)] == pytest.approx(0.0)

    def test_empty_netlist_map(self):
        from repro.geometry import Rect
        from repro.netlist import Netlist

        nl = Netlist.from_specs("e", Rect(0, 0, 4, 4), [], [])
        g = Grid2D(nl.die, 8, 8)
        assert rudy_map(nl, g).sum() == 0.0

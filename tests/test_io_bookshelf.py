"""Round-trip and error tests for the Bookshelf-lite format."""

import numpy as np
import pytest

from repro.io import (
    BookshelfParseError,
    dumps_design,
    load_design,
    loads_design,
    save_design,
)
from repro.netlist import validate_netlist


class TestRoundTrip:
    def test_tiny_roundtrip(self, tiny_netlist):
        text = dumps_design(tiny_netlist)
        back = loads_design(text)
        validate_netlist(back)
        assert back.name == tiny_netlist.name
        assert back.n_cells == tiny_netlist.n_cells
        assert back.n_nets == tiny_netlist.n_nets
        assert np.allclose(back.x, tiny_netlist.x)
        assert np.allclose(back.pin_offset_x, tiny_netlist.pin_offset_x)
        assert list(back.cell_fixed) == list(tiny_netlist.cell_fixed)
        assert list(back.cell_macro) == list(tiny_netlist.cell_macro)

    def test_generated_roundtrip_exact(self, toy120):
        back = loads_design(dumps_design(toy120))
        assert np.array_equal(back.x, toy120.x)
        assert np.array_equal(back.cell_width, toy120.cell_width)
        assert back.net_names == toy120.net_names
        assert len(back.pg_rails) == len(toy120.pg_rails)
        assert back.pg_rails[0].horizontal == toy120.pg_rails[0].horizontal

    def test_file_roundtrip(self, tiny_netlist, tmp_path):
        path = tmp_path / "design.bl"
        save_design(tiny_netlist, str(path))
        back = load_design(str(path))
        assert back.n_pins == tiny_netlist.n_pins

    def test_comments_and_blank_lines(self, tiny_netlist):
        text = "# header comment\n\n" + dumps_design(tiny_netlist) + "\n# trailing\n"
        back = loads_design(text)
        assert back.n_cells == tiny_netlist.n_cells


class TestErrors:
    def test_missing_die(self):
        with pytest.raises(ValueError, match="die"):
            loads_design("design d\n")

    def test_unknown_record(self):
        with pytest.raises(BookshelfParseError, match=r"<string>:2"):
            loads_design("die 0 0 1 1\nbogus stuff\n")

    def test_pin_outside_net(self):
        with pytest.raises(BookshelfParseError, match="outside a net block"):
            loads_design("die 0 0 1 1\npin a 0 0\n")

    def test_missing_pins(self):
        text = "die 0 0 4 4\ncell a 1 1 1 1 -\nnet n 2\npin a 0 0\n"
        with pytest.raises(ValueError, match="missing"):
            loads_design(text)

    def test_truncated_cell_line(self):
        with pytest.raises(BookshelfParseError, match="too few fields"):
            loads_design("die 0 0 4 4\ncell a 1 1\n")

    def test_error_locates_line_and_content(self):
        with pytest.raises(BookshelfParseError) as info:
            loads_design("die 0 0 4 4\ncell a 1 1 oops 1 -\n", source="bad.bl")
        err = info.value
        assert err.source == "bad.bl"
        assert err.line_no == 2
        assert "cell a 1 1 oops 1 -" in str(err)
        assert "bad.bl:2" in str(err)

    def test_load_design_names_the_file(self, tmp_path):
        path = tmp_path / "broken.bl"
        path.write_text("die 0 0 4 4\ncell a 1 1\n")
        with pytest.raises(BookshelfParseError, match="broken.bl:2"):
            load_design(str(path))

    def test_duplicate_cells_name_source(self):
        text = "die 0 0 4 4\ncell a 1 1 1 1 -\ncell a 1 1 2 2 -\n"
        with pytest.raises(ValueError, match="<string>.*duplicate"):
            loads_design(text)

"""Algorithm 1 tests: virtual cells and two-pin net gradients."""

import numpy as np
import pytest

from repro.core import CongestionField, NetMoveConfig, two_pin_net_gradients, virtual_cell_positions
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec


def _net_scene(blob_at=(5.1, 5.1), cells_y=5.0, blob_val=3.0):
    """Two cells on a horizontal two-pin net plus a congestion blob."""
    die = Rect(0, 0, 10, 10)
    cells = [
        CellSpec("a", 0.5, 0.5, x=2, y=cells_y),
        CellSpec("b", 0.5, 0.5, x=8, y=cells_y),
    ]
    nets = [NetSpec("n", [PinSpec("a"), PinSpec("b")])]
    nl = Netlist.from_specs("scene", die, cells, nets)
    grid = Grid2D(die, 20, 20)
    util = np.zeros(grid.shape)
    util[grid.index_of(*blob_at)] = blob_val
    cong = np.maximum(util - 1.0, 0.0)
    return nl, grid, util, cong


class TestVirtualCell:
    def test_lands_on_max_congestion_sample(self):
        nl, grid, util, cong = _net_scene()
        info = virtual_cell_positions(nl, grid, cong)
        assert info["active"][0]
        # virtual cell inside the congested bin's x-range
        i, j = grid.index_of(info["xv"][0], info["yv"][0])
        assert cong[i, j] == cong.max()
        assert info["congestion"][0] == pytest.approx(2.0)

    def test_inactive_without_congestion_on_segment(self):
        nl, grid, util, cong = _net_scene(blob_at=(5.0, 8.0))
        info = virtual_cell_positions(nl, grid, cong)
        assert not info["active"][0]

    def test_k_samples_eq6(self):
        nl, grid, _, cong = _net_scene()
        # pins 6 apart, G-cell width 0.5 -> k = 12 samples (capped at config)
        cfg = NetMoveConfig(max_samples=48)
        info = virtual_cell_positions(nl, grid, cong, cfg)
        assert info["xv"].shape == (1,)

    def test_sample_cap_respected(self):
        nl, grid, _, cong = _net_scene()
        cfg = NetMoveConfig(max_samples=3)
        info = virtual_cell_positions(nl, grid, cong, cfg)
        # with only 3 samples at 1/4, 2/4, 3/4, the middle one (x=5) hits
        assert info["active"][0]

    def test_min_congestion_threshold(self):
        nl, grid, _, cong = _net_scene(blob_val=1.5)  # congestion 0.5
        info = virtual_cell_positions(nl, grid, cong, NetMoveConfig(min_congestion=0.6))
        assert not info["active"][0]

    def test_no_two_pin_nets(self):
        die = Rect(0, 0, 4, 4)
        cells = [CellSpec(c, 0.5, 0.5, x=1 + i, y=2) for i, c in enumerate("abc")]
        nets = [NetSpec("n", [PinSpec("a"), PinSpec("b"), PinSpec("c")])]
        nl = Netlist.from_specs("m", die, cells, nets)
        grid = Grid2D(die, 8, 8)
        info = virtual_cell_positions(nl, grid, np.ones(grid.shape))
        assert len(info["xv"]) == 0


class TestGradients:
    def test_direction_perpendicular_and_away(self):
        nl, grid, util, cong = _net_scene()
        fld = CongestionField(grid, util)
        gx, gy, _ = two_pin_net_gradients(nl, grid, cong, fld, 0.25)
        # blob slightly above the segment: minimization step (-grad)
        # must move cells down => grad_y > 0; no x-component
        assert abs(gx[0]) < 1e-12 and abs(gx[1]) < 1e-12
        assert gy[0] > 0 and gy[1] > 0

    def test_eq9_distance_scaling(self):
        nl, grid, util, cong = _net_scene()
        fld = CongestionField(grid, util)
        gx, gy, info = two_pin_net_gradients(nl, grid, cong, fld, 0.25)
        xv = info["xv"][info["active"]][0]
        d_a = abs(xv - 2.0)
        d_b = abs(xv - 8.0)
        # closer pin gets the larger gradient, ratio = d_b/d_a
        assert abs(gy[0] / gy[1]) == pytest.approx(d_b / d_a, rel=1e-6)

    def test_max_scale_clamp(self):
        nl, grid, util, cong = _net_scene(blob_at=(2.3, 5.1))
        fld = CongestionField(grid, util)
        cfg = NetMoveConfig(max_scale=1.0)
        gx1, gy1, _ = two_pin_net_gradients(nl, grid, cong, fld, 0.25, cfg)
        cfg2 = NetMoveConfig(max_scale=8.0)
        gx2, gy2, _ = two_pin_net_gradients(nl, grid, cong, fld, 0.25, cfg2)
        assert abs(gy1[0]) <= abs(gy2[0]) + 1e-12

    def test_inactive_nets_zero_gradient(self):
        nl, grid, util, cong = _net_scene(blob_at=(5.0, 8.0))
        fld = CongestionField(grid, util)
        gx, gy, _ = two_pin_net_gradients(nl, grid, cong, fld, 0.25)
        assert np.allclose(gx, 0) and np.allclose(gy, 0)

    def test_fixed_cells_masked(self):
        die = Rect(0, 0, 10, 10)
        cells = [
            CellSpec("a", 0.5, 0.5, x=2, y=5, fixed=True),
            CellSpec("b", 0.5, 0.5, x=8, y=5),
        ]
        nets = [NetSpec("n", [PinSpec("a"), PinSpec("b")])]
        nl = Netlist.from_specs("f", die, cells, nets)
        grid = Grid2D(die, 20, 20)
        util = np.zeros(grid.shape)
        util[grid.index_of(5.1, 5.1)] = 3.0
        fld = CongestionField(grid, util)
        gx, gy, _ = two_pin_net_gradients(nl, grid, np.maximum(util - 1, 0), fld, 0.25)
        assert gx[0] == 0 and gy[0] == 0
        assert gy[1] != 0

    def test_gradients_accumulate_over_nets(self):
        die = Rect(0, 0, 10, 10)
        cells = [
            CellSpec("hub", 0.5, 0.5, x=2, y=5),
            CellSpec("b", 0.5, 0.5, x=8, y=5),
            CellSpec("c", 0.5, 0.5, x=8, y=5.2),
        ]
        nets = [
            NetSpec("n1", [PinSpec("hub"), PinSpec("b")]),
            NetSpec("n2", [PinSpec("hub"), PinSpec("c")]),
        ]
        nl = Netlist.from_specs("acc", die, cells, nets)
        grid = Grid2D(die, 20, 20)
        util = np.zeros(grid.shape)
        util[grid.index_of(5.1, 5.15)] = 3.0
        fld = CongestionField(grid, util)
        gx, gy, _ = two_pin_net_gradients(nl, grid, np.maximum(util - 1, 0), fld, 0.25)
        # hub belongs to both nets: gradient magnitude exceeds each leaf's
        assert abs(gy[0]) > abs(gy[1]) - 1e-12


class TestSameCellNets:
    """Regression: a two-pin net with both pins on one cell doubled forces.

    Such a net has no segment to move perpendicular to; applying Eq. 9
    to both endpoints deposited the projected gradient twice onto the
    same cell.  These nets are now masked out of the update.
    """

    def _scene_with_self_net(self):
        die = Rect(0, 0, 10, 10)
        cells = [
            CellSpec("a", 0.5, 0.5, x=2, y=5.0),
            CellSpec("b", 0.5, 0.5, x=8, y=5.0),
            CellSpec("s", 0.5, 0.5, x=5.1, y=5.1),
        ]
        nets = [
            NetSpec("n", [PinSpec("a"), PinSpec("b")]),
            # both pins on cell "s", slightly apart
            NetSpec("self", [PinSpec("s", -0.1, 0.0), PinSpec("s", 0.1, 0.0)]),
        ]
        nl = Netlist.from_specs("selfnet", die, cells, nets)
        grid = Grid2D(die, 20, 20)
        util = np.zeros(grid.shape)
        util[grid.index_of(5.1, 5.1)] = 3.0
        cong = np.maximum(util - 1.0, 0.0)
        return nl, grid, util, cong

    def test_same_cell_net_gets_no_gradient(self):
        nl, grid, util, cong = self._scene_with_self_net()
        field = CongestionField(grid, util)
        gx, gy, info = two_pin_net_gradients(nl, grid, cong, field, 0.25)
        s = 2  # cell "s" sits in the congestion blob
        assert gx[s] == 0.0 and gy[s] == 0.0
        # the genuine net still receives its forces
        assert gx[0] != 0.0 or gy[0] != 0.0

    def test_active_mask_reflects_exclusion(self):
        nl, grid, util, cong = self._scene_with_self_net()
        field = CongestionField(grid, util)
        _, _, info = two_pin_net_gradients(nl, grid, cong, field, 0.25)
        # info["active"] is the effective mask: perp arrays align with it
        assert info["active"].sum() == len(info["perp_x"])
        same = nl.pin_cell[info["p1"]] == nl.pin_cell[info["p2"]]
        assert not np.any(info["active"] & same)

    def test_only_same_cell_nets_yields_zero_gradients(self):
        die = Rect(0, 0, 10, 10)
        cells = [CellSpec("s", 0.5, 0.5, x=5.1, y=5.1)]
        nets = [NetSpec("self", [PinSpec("s", -0.1, 0.0), PinSpec("s", 0.1, 0.0)])]
        nl = Netlist.from_specs("onlyself", die, cells, nets)
        grid = Grid2D(die, 20, 20)
        util = np.zeros(grid.shape)
        util[grid.index_of(5.1, 5.1)] = 3.0
        cong = np.maximum(util - 1.0, 0.0)
        field = CongestionField(grid, util)
        gx, gy, info = two_pin_net_gradients(nl, grid, cong, field, 0.25)
        assert not gx.any() and not gy.any()
        assert not info["active"].any()

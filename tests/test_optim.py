"""Optimizer tests: convergence on quadratics, trust region, restarts."""

import numpy as np
import pytest

from repro.optim import AdamOptimizer, NesterovOptimizer


def quad_grad(target, scale=1.0):
    return lambda x: scale * (x - target)


class TestNesterov:
    def test_converges_on_quadratic(self):
        target = np.array([3.0, -2.0, 7.5])
        opt = NesterovOptimizer(np.zeros(3), quad_grad(target), initial_step=0.1)
        for _ in range(200):
            opt.do_step()
        assert np.allclose(opt.u, target, atol=1e-6)

    def test_secant_step_adapts_to_curvature(self):
        # gradient scale 10 -> inverse Lipschitz estimate ~0.1
        opt = NesterovOptimizer(np.zeros(2), quad_grad(np.ones(2), 10.0),
                                initial_step=1e-3)
        for _ in range(5):
            opt.do_step()
        assert opt.step == pytest.approx(0.1, rel=0.2)

    def test_trust_region_caps_displacement(self):
        big_grad = lambda x: np.full_like(x, 1e6)
        opt = NesterovOptimizer(np.zeros(4), big_grad, initial_step=1.0,
                                max_move=0.5)
        u0 = opt.u.copy()
        opt.do_step()
        assert np.abs(opt.u - u0).max() <= 0.5 + 1e-9

    def test_min_max_step_clamps(self):
        opt = NesterovOptimizer(np.zeros(1), quad_grad(np.ones(1)),
                                initial_step=1.0, max_step=1e-3)
        for _ in range(3):
            opt.do_step()
        assert opt.step <= 1e-3 + 1e-12

    def test_momentum_coefficient_recursion(self):
        opt = NesterovOptimizer(np.zeros(1), quad_grad(np.zeros(1)))
        a0 = opt.a
        opt.do_step()
        assert opt.a == pytest.approx((1 + np.sqrt(4 * a0**2 + 1)) / 2)

    def test_reset_momentum(self):
        opt = NesterovOptimizer(np.zeros(2), quad_grad(np.ones(2)), initial_step=0.1)
        for _ in range(10):
            opt.do_step()
        opt.reset_momentum()
        assert opt.a == 1.0
        assert np.allclose(opt.v, opt.u)
        # still converges after reset
        for _ in range(200):
            opt.do_step()
        assert np.allclose(opt.u, 1.0, atol=1e-6)

    def test_zero_gradient_is_stationary(self):
        opt = NesterovOptimizer(np.ones(3), lambda x: np.zeros_like(x))
        opt.do_step()
        assert np.allclose(opt.u, 1.0)

    def test_diagnostics(self):
        opt = NesterovOptimizer(np.zeros(2), quad_grad(np.ones(2)), initial_step=0.1)
        info = opt.do_step()
        assert info["iteration"] == 1
        assert info["grad_norm"] == pytest.approx(np.sqrt(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -4.0])
        opt = AdamOptimizer(np.zeros(2), quad_grad(target), lr=0.1)
        for _ in range(1000):
            opt.do_step()
        assert np.allclose(opt.u, target, atol=1e-3)

    def test_bias_correction_first_step(self):
        opt = AdamOptimizer(np.zeros(1), lambda x: np.ones(1), lr=0.5)
        opt.do_step()
        # first Adam step magnitude == lr regardless of gradient scale
        assert opt.u[0] == pytest.approx(-0.5, rel=1e-6)

    def test_iteration_counter(self):
        opt = AdamOptimizer(np.zeros(1), lambda x: np.ones(1))
        for k in range(3):
            info = opt.do_step()
        assert info["iteration"] == 3

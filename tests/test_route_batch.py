"""Batched routing engine equivalence against the scalar reference.

The batched engine's correctness argument is structural (same
candidates, same cost algebra, same stale-within-chunk cost maps), but
these tests pin it down empirically: randomized segment sets must route
to identical paths, and whole-netlist routing must produce bit-identical
demand maps under both engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Grid2D, Rect
from repro.route import GlobalRouter, RouterConfig
from repro.route.grid import RoutingGrid
from repro.route.patterns import PatternRouter, RoutedPath
from repro.synth import toy_design


def _random_router(rng, nx=24, ny=20, **kw):
    h = rng.uniform(0.5, 5.0, size=(nx, ny))
    v = rng.uniform(0.5, 5.0, size=(nx, ny))
    return PatternRouter(h, v, via_cost=rng.uniform(0.5, 3.0), **kw)


def _random_segments(rng, n, nx=24, ny=20):
    i1 = rng.integers(0, nx, size=n)
    j1 = rng.integers(0, ny, size=n)
    i2 = rng.integers(0, nx, size=n)
    j2 = rng.integers(0, ny, size=n)
    # mix in straight and degenerate segments so every family is hit
    i2[: n // 8] = i1[: n // 8]
    j2[n // 8 : n // 4] = j1[n // 8 : n // 4]
    i2[n // 4 : n // 4 + 3] = i1[n // 4 : n // 4 + 3]
    j2[n // 4 : n // 4 + 3] = j1[n // 4 : n // 4 + 3]
    return i1, j1, i2, j2


class TestRouteBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scalar_route(self, seed):
        rng = np.random.default_rng(seed)
        router = _random_router(rng, z_samples=4 + 3 * seed)
        i1, j1, i2, j2 = _random_segments(rng, 200)
        batch = router.route_batch(i1, j1, i2, j2)
        assert len(batch) == 200
        for k in range(200):
            scalar = router.route(int(i1[k]), int(j1[k]), int(i2[k]), int(j2[k]))
            got = batch.path(k)
            assert got.runs == scalar.runs, f"segment {k}"
            assert got.bends == scalar.bends, f"segment {k}"
            assert got.cost == pytest.approx(scalar.cost, rel=1e-12)

    def test_candidate_matrix_matches_scalar(self):
        rng = np.random.default_rng(7)
        router = _random_router(rng, nx=64, ny=64, z_samples=9)
        a = rng.integers(0, 64, size=300)
        b = rng.integers(0, 64, size=300)
        mat = router._candidate_matrix(a, b, 64)
        for k in range(300):
            row = router._candidates(int(a[k]), int(b[k]), 64)
            assert np.array_equal(mat[k, : len(row)], row)
            # padding repeats the last candidate, never introduces new ones
            assert np.all(np.isin(mat[k], row))

    def test_wirelengths_match_paths(self):
        rng = np.random.default_rng(11)
        router = _random_router(rng)
        i1, j1, i2, j2 = _random_segments(rng, 120)
        batch = router.route_batch(i1, j1, i2, j2)
        wl = batch.wirelengths(dx=1.5, dy=0.75)
        for k in range(120):
            assert wl[k] == pytest.approx(batch.path(k).wirelength(1.5, 0.75))

    def test_runs_cover_same_cells_as_paths(self):
        rng = np.random.default_rng(13)
        router = _random_router(rng)
        i1, j1, i2, j2 = _random_segments(rng, 80)
        batch = router.route_batch(i1, j1, i2, j2)
        runs = batch.runs()
        for k in range(80):
            mine_h = [
                (int(runs.h_j[q]), int(runs.h_lo[q]), int(runs.h_hi[q]))
                for q in np.flatnonzero(runs.h_seg == k)
            ]
            mine_v = [
                (int(runs.v_i[q]), int(runs.v_lo[q]), int(runs.v_hi[q]))
                for q in np.flatnonzero(runs.v_seg == k)
            ]
            ref_h, ref_v = [], []
            for kind, fixed, a, b in batch.path(k).runs:
                (ref_h if kind == "h" else ref_v).append(
                    (fixed, min(a, b), max(a, b))
                )
            assert sorted(mine_h) == sorted(ref_h)
            assert sorted(mine_v) == sorted(ref_v)
            n_bends = int((runs.b_seg == k).sum())
            assert n_bends == batch.path(k).n_bends


class TestPathVectorization:
    """RoutedPath span arithmetic vs straightforward per-cell loops."""

    @staticmethod
    def _reference_covered(path: RoutedPath) -> list:
        cells = []
        for kind, fixed, a, b in path.runs:
            lo, hi = min(a, b), max(a, b)
            for t in range(lo, hi + 1):
                cells.append((t, fixed) if kind == "h" else (fixed, t))
        return cells

    def test_covered_and_wire_cells(self):
        rng = np.random.default_rng(17)
        router = _random_router(rng)
        i1, j1, i2, j2 = _random_segments(rng, 60)
        for k in range(60):
            path = router.route(int(i1[k]), int(j1[k]), int(i2[k]), int(j2[k]))
            ref = self._reference_covered(path)
            assert path.covered_cells() == ref
            assert path.wire_cells() == len(ref)

    def test_empty_path(self):
        path = RoutedPath(runs=[], bends=[], cost=0.0)
        assert path.covered_cells() == []
        assert path.wire_cells() == 0
        assert path.wirelength(2.0, 3.0) == 0.0


class TestBatchCommit:
    def test_scatter_matches_sequential_commit(self):
        rng = np.random.default_rng(19)
        grid = RoutingGrid(Grid2D(Rect(0, 0, 8, 8), 24, 20), RouterConfig())
        seq = RoutingGrid(Grid2D(Rect(0, 0, 8, 8), 24, 20), RouterConfig())
        router = _random_router(rng)
        i1, j1, i2, j2 = _random_segments(rng, 150)
        batch = router.route_batch(i1, j1, i2, j2)

        runs = batch.runs()
        grid.add_h_runs(runs.h_j, runs.h_lo, runs.h_hi)
        grid.add_v_runs(runs.v_i, runs.v_lo, runs.v_hi)
        grid.add_vias(runs.b_i, runs.b_j)
        for k in range(150):
            GlobalRouter._commit_path(seq, batch.path(k), 1.0)

        assert np.array_equal(grid.h_demand, seq.h_demand)
        assert np.array_equal(grid.v_demand, seq.v_demand)
        assert np.array_equal(grid.via_demand, seq.via_demand)

        # and the scatter is exactly reversible
        grid.add_h_runs(runs.h_j, runs.h_lo, runs.h_hi, sign=-1.0)
        grid.add_v_runs(runs.v_i, runs.v_lo, runs.v_hi, sign=-1.0)
        grid.add_vias(runs.b_i, runs.b_j, sign=-1.0)
        assert not grid.h_demand.any()
        assert not grid.v_demand.any()
        assert not grid.via_demand.any()


def _route_both(netlist, **cfg_kw):
    results = {}
    for engine in ("scalar", "batched"):
        dim = 24
        grid = Grid2D(netlist.die, dim, dim)
        cfg = RouterConfig(engine=engine, **cfg_kw)
        results[engine] = GlobalRouter(grid, cfg).route(netlist)
    return results["scalar"], results["batched"]


def _assert_equivalent(scalar, batched):
    assert np.array_equal(scalar.grid.h_demand, batched.grid.h_demand)
    assert np.array_equal(scalar.grid.v_demand, batched.grid.v_demand)
    assert np.array_equal(scalar.grid.via_demand, batched.grid.via_demand)
    assert np.array_equal(scalar.grid.history, batched.grid.history)
    assert scalar.n_segments == batched.n_segments
    assert np.isclose(scalar.wirelength, batched.wirelength)
    assert np.isclose(scalar.n_vias, batched.n_vias)
    assert np.isclose(scalar.total_overflow, batched.total_overflow)
    assert np.array_equal(scalar.congestion_map, batched.congestion_map)


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [3, 5])
    def test_toy_design_demand_maps_identical(self, seed):
        scalar, batched = _route_both(toy_design(300, seed=seed))
        _assert_equivalent(scalar, batched)

    def test_small_refresh_interval(self):
        scalar, batched = _route_both(
            toy_design(250, seed=9), cost_refresh_interval=7
        )
        _assert_equivalent(scalar, batched)

    def test_stt_topology(self):
        scalar, batched = _route_both(toy_design(250, seed=2), topology="stt")
        _assert_equivalent(scalar, batched)

    def test_maze_fallback(self):
        scalar, batched = _route_both(
            toy_design(300, seed=4), maze_fallback=True, rrr_rounds=1
        )
        _assert_equivalent(scalar, batched)

    def test_empty_netlist(self, tiny_netlist):
        bare = tiny_netlist.copy()
        scalar, batched = _route_both(bare)
        _assert_equivalent(scalar, batched)

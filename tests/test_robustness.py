"""Fault injection, divergence guards, rollback and checkpoint/resume.

The `faultinject`-marked tests install deterministic
:class:`~repro.utils.faults.FaultPlan` entries at named sites inside
the flow and assert that every recovery path fires: the solver backs
off NaN gradients, the routability loop scrubs poisoned congestion
maps, the router degrades to the scalar engine bit-identically, and a
crashed round rolls back to the best snapshot.  The checkpoint tests
pin down the acceptance criterion: a flow interrupted after round k
and resumed from disk produces bit-identical final positions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RDConfig, RoutabilityDrivenPlacer
from repro.geometry import Grid2D
from repro.place import GPConfig
from repro.route import GlobalRouter, RouterConfig
from repro.synth import toy_design
from repro.utils import faults
from repro.utils.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.utils.faults import FaultPlan, InjectedFault
from repro.utils.guards import (
    DivergenceSentinel,
    GuardConfig,
    all_finite,
    scrub_nonfinite,
)


def _rd_config(**kw):
    base = dict(
        gp=GPConfig(max_iters=40, seed=1),
        max_rounds=3,
        iters_per_round=8,
        patience=10,
        stop_mean_congestion=0.0,
    )
    base.update(kw)
    return RDConfig(**base)


def _assert_legal_positions(netlist):
    assert all_finite(netlist.x) and all_finite(netlist.y)
    die = netlist.die
    assert (netlist.x >= die.xlo - 1e-9).all()
    assert (netlist.x <= die.xhi + 1e-9).all()
    assert (netlist.y >= die.ylo - 1e-9).all()
    assert (netlist.y <= die.yhi + 1e-9).all()


# ---------------------------------------------------------------------------
# unit level: guards / faults / checkpoint primitives
# ---------------------------------------------------------------------------


class TestGuardPrimitives:
    def test_scrub_nonfinite(self):
        a = np.array([1.0, np.nan, np.inf, -np.inf, 2.0])
        out, n_bad = scrub_nonfinite(a, fill=0.5)
        assert n_bad == 3
        assert out is a  # in place
        assert np.array_equal(a, [1.0, 0.5, 0.5, 0.5, 2.0])

    def test_scrub_clean_is_noop(self):
        a = np.array([1.0, 2.0])
        out, n_bad = scrub_nonfinite(a)
        assert n_bad == 0 and out is a

    def test_sentinel_trips_on_blowup(self):
        s = DivergenceSentinel(GuardConfig(blowup_factor=10.0, warmup=2))
        assert s.observe(100.0) == "ok"
        assert s.observe(101.0) == "ok"
        assert s.observe(102.0) == "ok"
        assert s.observe(5000.0) == "diverging"
        # unhealthy values never enter the baseline
        assert s.observe(103.0) == "ok"

    def test_sentinel_nonfinite(self):
        s = DivergenceSentinel(GuardConfig(warmup=1))
        s.observe(1.0)
        s.observe(1.0)
        assert s.observe(float("nan")) == "nonfinite"

    def test_guard_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(blowup_factor=0.5)
        with pytest.raises(ValueError):
            GuardConfig(window=0)


class TestFaultPlans:
    def test_trigger_and_count_window(self):
        plan = FaultPlan("s", trigger=2, count=2)
        assert [plan.active_at(h) for h in range(5)] == [
            False, False, True, True, False,
        ]

    def test_forever(self):
        plan = FaultPlan("s", trigger=1, count=-1)
        assert not plan.active_at(0)
        assert plan.active_at(10_000)

    def test_fire_identity_without_injector(self):
        arr = np.ones(3)
        assert faults.fire("anything", arr) is arr

    def test_nan_injection_is_deterministic(self):
        with faults.injected(FaultPlan("s", mode="nan", stride=2)):
            out1 = faults.fire("s", np.ones(6))
        with faults.injected(FaultPlan("s", mode="nan", stride=2)):
            out2 = faults.fire("s", np.ones(6))
        assert np.array_equal(np.isnan(out1), np.isnan(out2))
        assert np.isnan(out1[::2]).all() and np.isfinite(out1[1::2]).all()

    def test_raise_mode(self):
        with faults.injected(FaultPlan("s", mode="raise")):
            with pytest.raises(InjectedFault, match="'s'"):
                faults.fire("s")


class TestCheckpointIO:
    def test_roundtrip_bit_exact(self, tmp_path, rng):
        path = str(tmp_path / "c.npz")
        arr = rng.standard_normal(100)
        meta = {"k": 1, "f": 0.1 + 0.2, "nested": {"a": [1, 2]}}
        write_checkpoint(path, meta, {"arr": arr})
        meta2, arrays = read_checkpoint(path)
        assert meta2 == meta
        assert np.array_equal(arrays["arr"], arr)

    def test_numpy_scalars_in_meta(self, tmp_path):
        path = str(tmp_path / "c.npz")
        write_checkpoint(
            path,
            {"a": np.float64(1.5), "b": np.int64(3), "c": np.bool_(True)},
            {},
        )
        meta, _ = read_checkpoint(path)
        assert meta == {"a": 1.5, "b": 3, "c": True}

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz payload")
        with pytest.raises(CheckpointError, match="bad.npz"):
            read_checkpoint(str(path))

    def test_foreign_npz_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, x=np.ones(3))
        with pytest.raises(CheckpointError, match="missing meta"):
            read_checkpoint(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "c.npz")
        write_checkpoint(path, {"v": 1}, {"a": np.ones(2)})
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]


# ---------------------------------------------------------------------------
# flow level: injected faults must be survived, recovery must be reported
# ---------------------------------------------------------------------------


@pytest.mark.faultinject
class TestGradientFaults:
    def test_nesterov_backs_off_nan_gradient(self):
        from repro.optim.nesterov import NesterovOptimizer

        def grad(p):
            return faults.fire("optim.gradient", 2.0 * p)

        opt = NesterovOptimizer(
            np.linspace(-1.0, 1.0, 10), grad, initial_step=0.1
        )
        with faults.injected(FaultPlan("optim.gradient", trigger=1, count=1)):
            opt.do_step()
            opt.do_step()  # corrupted gradient -> backoff + retry
            opt.do_step()
        assert all_finite(opt.u)
        assert len(opt.guard_log) >= 1
        assert any(e.action == "backoff" for e in opt.guard_log.events)

    def test_flow_survives_nan_gradients(self, inject_faults):
        nl = toy_design(150, seed=5)
        # skip the initial GP so the fault hits the flow's own solver
        # (the initial placement runs a separate placer instance whose
        # recovery would not show up in this flow's records)
        injector = inject_faults(
            FaultPlan("optim.gradient", mode="nan", trigger=3, count=2)
        )
        placer = RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=2))
        result = placer.run(skip_initial_gp=True)
        assert injector.count_fired("optim.gradient") >= 1
        _assert_legal_positions(nl)
        assert result.n_rounds >= 1
        assert any(r.guard_trips > 0 for r in result.rounds) or result.guard_events


@pytest.mark.faultinject
class TestCongestionFaults:
    def test_poisoned_map_is_scrubbed_and_reported(self, inject_faults):
        nl = toy_design(150, seed=5)
        inject_faults(FaultPlan("rd.congestion", mode="poison", trigger=0))
        placer = RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=2))
        result = placer.run()
        _assert_legal_positions(nl)
        assert any("congestion" in note for r in result.rounds for r_ in [r]
                   for note in r_.recovery)
        # inflation must have stayed in its legal range despite the poison
        rates = placer.inflation.rates
        assert all_finite(rates)
        assert (rates >= placer.config.inflation.r_min - 1e-12).all()
        assert (rates <= placer.config.inflation.r_max + 1e-12).all()

    def test_crashing_round_rolls_back(self, inject_faults):
        nl = toy_design(150, seed=5)
        # raising at the congestion site aborts round 1 itself ->
        # the loop must roll back and keep going
        inject_faults(FaultPlan("rd.congestion", mode="raise", trigger=1, count=1))
        placer = RoutabilityDrivenPlacer(nl, _rd_config())
        result = placer.run()
        _assert_legal_positions(nl)
        assert any(e["action"] == "rollback" for e in result.guard_events)
        # the flow continued past the failed round
        assert result.n_rounds >= 1

    def test_persistent_failure_returns_best_snapshot(self, inject_faults):
        nl = toy_design(150, seed=5)
        inject_faults(FaultPlan("rd.congestion", mode="raise", trigger=1, count=-1))
        placer = RoutabilityDrivenPlacer(nl, _rd_config())
        result = placer.run()
        _assert_legal_positions(nl)
        rollbacks = [e for e in result.guard_events if e["action"] == "rollback"]
        # gives up after max_round_failures consecutive failures
        assert len(rollbacks) == placer.config.max_round_failures


@pytest.mark.faultinject
class TestRouterFaults:
    def test_batched_failure_falls_back_bit_identical(self, toy300):
        dim = 24
        grid = Grid2D(toy300.die, dim, dim)
        clean = GlobalRouter(grid, RouterConfig()).route(toy300)
        with faults.injected(FaultPlan("route.batched", mode="raise", count=-1)):
            degraded = GlobalRouter(grid, RouterConfig()).route(toy300)
        assert degraded.n_fallbacks == 1
        assert np.array_equal(clean.grid.h_demand, degraded.grid.h_demand)
        assert np.array_equal(clean.grid.v_demand, degraded.grid.v_demand)
        # the scalar engine accumulates wirelength in a different
        # summation order; demand maps are the bit-exact contract
        assert clean.wirelength == pytest.approx(degraded.wirelength, rel=1e-12)

    def test_chunk_failure_falls_back_bit_identical(self, toy300):
        dim = 24
        grid = Grid2D(toy300.die, dim, dim)
        clean = GlobalRouter(grid, RouterConfig()).route(toy300)
        plan = FaultPlan("route.batched_chunk", mode="raise", trigger=1, count=2)
        with faults.injected(plan) as injector:
            degraded = GlobalRouter(grid, RouterConfig()).route(toy300)
        assert injector.count_fired("route.batched_chunk") == 2
        assert degraded.n_fallbacks == 2
        assert np.array_equal(clean.grid.h_demand, degraded.grid.h_demand)
        assert np.array_equal(clean.grid.v_demand, degraded.grid.v_demand)

    def test_flow_reports_router_fallbacks(self, inject_faults):
        nl = toy_design(150, seed=5)
        inject_faults(FaultPlan("route.batched", mode="raise", count=-1))
        placer = RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=2))
        result = placer.run()
        _assert_legal_positions(nl)
        assert all(r.router_fallbacks >= 1 for r in result.rounds)


# ---------------------------------------------------------------------------
# checkpoint / resume of the whole flow
# ---------------------------------------------------------------------------


class TestFlowCheckpoint:
    def _interrupt_after(self, placer, n_route_calls):
        """Kill the flow with KeyboardInterrupt at the n-th routing pass."""
        orig = placer.router.route
        calls = {"n": 0}

        def route(netlist):
            calls["n"] += 1
            if calls["n"] == n_route_calls:
                raise KeyboardInterrupt
            return orig(netlist)

        placer.router.route = route

    @staticmethod
    def _multi_round_cfg():
        # toy300 + these settings complete all 3 rounds (no early stop),
        # so an interruption mid-flow leaves real work to resume
        return _rd_config(
            gp=GPConfig(max_iters=60, seed=1), max_rounds=3, iters_per_round=15
        )

    def test_resume_is_bit_identical(self, tmp_path):
        from dataclasses import asdict

        path = str(tmp_path / "flow.npz")

        ref = toy_design(300, seed=3)
        ref_result = RoutabilityDrivenPlacer(ref, self._multi_round_cfg()).run()

        # routing passes: 1 = initial, 2 = end of round 0, 3 = end of
        # round 1 -> dying at pass 3 leaves only round 0's checkpoint
        nl = toy_design(300, seed=3)
        placer = RoutabilityDrivenPlacer(nl, self._multi_round_cfg())
        self._interrupt_after(placer, 3)
        with pytest.raises(KeyboardInterrupt):
            placer.run(checkpoint_path=path)

        nl2 = toy_design(300, seed=3)
        placer2 = RoutabilityDrivenPlacer(nl2, self._multi_round_cfg())
        result = placer2.run(checkpoint_path=path, resume=True)
        assert result.resumed_from_round == 0
        assert np.array_equal(ref.x, nl2.x)
        assert np.array_equal(ref.y, nl2.y)
        # per-round telemetry must also match the uninterrupted run:
        # n_deflated in particular only survives resume because the
        # inflation controller checkpoints last_n_deflated
        assert len(result.rounds) == len(ref_result.rounds)
        for got, want in zip(result.rounds, ref_result.rounds):
            assert asdict(got) == asdict(want)

    def test_resume_rejects_other_design(self, tmp_path):
        path = str(tmp_path / "flow.npz")
        nl = toy_design(150, seed=5)
        RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=1)).run(
            checkpoint_path=path
        )
        other = toy_design(120, seed=7)
        placer = RoutabilityDrivenPlacer(other, _rd_config(max_rounds=1))
        with pytest.raises(CheckpointError, match="design"):
            placer.run(checkpoint_path=path, resume=True)

    def test_resume_rejects_other_config(self, tmp_path):
        path = str(tmp_path / "flow.npz")
        nl = toy_design(150, seed=5)
        RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=1)).run(
            checkpoint_path=path
        )
        nl2 = toy_design(150, seed=5)
        placer = RoutabilityDrivenPlacer(
            nl2, _rd_config(max_rounds=1, iters_per_round=9)
        )
        with pytest.raises(CheckpointError, match="config"):
            placer.run(checkpoint_path=path, resume=True)

    def test_fresh_run_when_no_checkpoint_exists(self, tmp_path):
        path = str(tmp_path / "missing.npz")
        nl = toy_design(150, seed=5)
        placer = RoutabilityDrivenPlacer(nl, _rd_config(max_rounds=1))
        result = placer.run(checkpoint_path=path, resume=True)
        assert result.resumed_from_round == -1
        assert result.n_rounds >= 1
        import os

        assert os.path.exists(path)

"""Algorithm 2 multi-pin selection and Eq. (10) lambda_2 tests."""

import numpy as np
import pytest

from repro.core import CongestionField, congestion_penalty_weight, multi_pin_cell_gradients
from repro.core.weights import count_cells_in_congestion
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PinSpec


def _hub_scene(hub_cong=3.0):
    """A 4-pin hub cell in a congested bin plus 1-pin leaf cells."""
    die = Rect(0, 0, 10, 10)
    cells = [CellSpec("hub", 0.5, 0.5, x=5.2, y=5.3)] + [
        CellSpec(f"s{k}", 0.5, 0.5, x=1.0 + k, y=1.0) for k in range(4)
    ]
    nets = [NetSpec(f"e{k}", [PinSpec("hub"), PinSpec(f"s{k}")]) for k in range(4)]
    nl = Netlist.from_specs("hub", die, cells, nets)
    grid = Grid2D(die, 20, 20)
    util = np.zeros(grid.shape)
    util[grid.index_of(5.25, 5.25)] = hub_cong
    cong = np.maximum(util - 1.0, 0.0)
    return nl, grid, util, cong


class TestMultiPinSelection:
    def test_hub_selected(self):
        nl, grid, util, cong = _hub_scene()
        fld = CongestionField(grid, util)
        gx, gy, sel = multi_pin_cell_gradients(nl, grid, cong, fld, threshold=0.7)
        assert sel[0]
        assert not sel[1:].any()  # leaves have 1 pin == below average? avg=8/5=1.6
        assert gx[0] != 0 or gy[0] != 0

    def test_threshold_blocks_selection(self):
        nl, grid, util, cong = _hub_scene(hub_cong=1.5)  # congestion 0.5 < 0.7
        fld = CongestionField(grid, util)
        _, _, sel = multi_pin_cell_gradients(nl, grid, cong, fld, threshold=0.7)
        assert not sel.any()

    def test_pin_count_rule(self):
        # hub has 4 pins, average = 8/5 = 1.6 -> only hub exceeds it
        nl, grid, util, cong = _hub_scene()
        counts = nl.cell_pin_counts()
        assert counts[0] == 4
        assert counts[0] > counts.mean()
        assert (counts[1:] <= counts.mean()).all()

    def test_gradient_points_away_from_blob(self):
        nl, grid, util, cong = _hub_scene()
        fld = CongestionField(grid, util)
        gx, gy, _ = multi_pin_cell_gradients(nl, grid, cong, fld, 0.7)
        # hub at (5.2, 5.3), blob center (5.25, 5.25):
        # descent step -grad must increase distance from the blob center
        new = np.array([5.2 - 0.01 * gx[0], 5.3 - 0.01 * gy[0]])
        d_old = np.hypot(5.2 - 5.25, 5.3 - 5.25)
        d_new = np.hypot(new[0] - 5.25, new[1] - 5.25)
        assert d_new > d_old

    def test_fixed_cells_never_selected(self):
        nl, grid, util, cong = _hub_scene()
        nl.cell_fixed[0] = True
        fld = CongestionField(grid, util)
        _, _, sel = multi_pin_cell_gradients(nl, grid, cong, fld, 0.7)
        assert not sel[0]
        nl.cell_fixed[0] = False

    def test_empty_netlist(self):
        die = Rect(0, 0, 4, 4)
        nl = Netlist.from_specs("e", die, [], [])
        grid = Grid2D(die, 8, 8)
        fld = CongestionField(grid, np.zeros(grid.shape))
        gx, gy, sel = multi_pin_cell_gradients(nl, grid, np.zeros(grid.shape), fld)
        assert len(gx) == 0 and len(sel) == 0


class TestLambda2:
    def test_eq10_formula(self):
        lam = congestion_penalty_weight(
            wl_grad_l1=100.0, cong_grad_l1=20.0, n_congested_cells=50, n_cells=200
        )
        assert lam == pytest.approx((2 * 50 / 200) * (100 / 20))

    def test_zero_when_no_congestion_force(self):
        assert congestion_penalty_weight(100.0, 0.0, 10, 100) == 0.0

    def test_zero_when_no_cells(self):
        assert congestion_penalty_weight(100.0, 10.0, 0, 0) == 0.0

    def test_scales_with_congested_fraction(self):
        lo = congestion_penalty_weight(10.0, 1.0, 5, 100)
        hi = congestion_penalty_weight(10.0, 1.0, 50, 100)
        assert hi == pytest.approx(10 * lo)

    def test_count_cells_in_congestion(self):
        nl, grid, util, cong = _hub_scene()
        n = count_cells_in_congestion(nl, grid, cong)
        assert n == 1  # only the hub sits in the congested bin

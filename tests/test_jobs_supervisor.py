"""Supervised job runtime: lifecycle, deadlines, retries, degradation.

Unit-level tests of :mod:`repro.jobs` using tiny module-level job
functions (no placement flows — the chaos tests in
``test_jobs_chaos.py`` exercise the runtime under the real sweep).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.jobs import (
    CANCELLED,
    CRASHED,
    DONE,
    FAILED,
    HUNG,
    TIMEOUT,
    JobCancelled,
    JobSpec,
    Supervisor,
    SupervisorConfig,
    SupervisorError,
    compute_backoff,
    run_job_in_process,
    run_jobs,
)
from repro.utils import heartbeat
from repro.utils.faults import FaultPlan
from repro.utils.metrics import MemorySink, MetricsRegistry, validate_stream

#: Fast supervision policy for tests: tight polling, tiny backoff.
FAST = dict(heartbeat_interval=0.02, poll_interval=0.01, backoff_base=0.01)


def job_double(x):
    """Trivial job: returns its argument doubled."""
    return x * 2


def job_raise(x):
    """Deterministic failure: always raises."""
    raise ValueError(f"deliberate failure for {x}")


def job_sleep_silent(seconds):
    """A hung job: sleeps without ever beating."""
    time.sleep(seconds)
    return "woke"


def job_sleep_beating(seconds):
    """A slow-but-alive job: beats while it sleeps."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        heartbeat.beat()
        time.sleep(0.02)
    return "done-slow"


def job_flaky(x):
    """Fires the ``flaky.site`` fault site, then returns."""
    from repro.utils import faults

    heartbeat.beat()
    faults.fire("flaky.site")
    return x + 1


def job_with_ctx(base, ctx=None):
    """Context-aware job: reports its attempt number and checkpoint."""
    return {
        "base": base,
        "attempt": ctx.attempt,
        "is_retry": ctx.is_retry,
        "checkpoint": ctx.checkpoint_path,
    }


def job_cancelled(x):
    """Raises the cooperative-cancellation signal directly."""
    raise JobCancelled("giving up")


class TestHeartbeatHook:
    def test_beat_without_handler_is_noop(self):
        heartbeat.clear_handler()
        heartbeat.beat()  # must not raise
        assert heartbeat.active() is None

    def test_handler_receives_beats_and_can_raise(self):
        calls = []
        heartbeat.set_handler(lambda: calls.append(1))
        try:
            heartbeat.beat()
            heartbeat.beat()
        finally:
            heartbeat.clear_handler()
        assert calls == [1, 1]
        heartbeat.set_handler(lambda: (_ for _ in ()).throw(JobCancelled("x")))
        try:
            with pytest.raises(JobCancelled):
                heartbeat.beat()
        finally:
            heartbeat.clear_handler()


class TestLifecycle:
    def test_done_failed_and_order(self):
        specs = [
            JobSpec("a", fn=job_double, args=(3,), index=0),
            JobSpec("b", fn=job_raise, args=(1,), index=1),
            JobSpec("c", fn=job_double, args=(5,), index=2),
        ]
        results = run_jobs(specs, config=SupervisorConfig(max_workers=2, **FAST))
        assert [r.job_id for r in results] == ["a", "b", "c"]
        assert results[0].state == DONE and results[0].value == 6
        assert results[0].ok and results[0].attempts == 1
        assert results[1].state == FAILED
        assert "deliberate failure" in results[1].error
        assert not results[1].ok
        assert results[2].state == DONE and results[2].value == 10

    def test_failed_jobs_are_not_retried(self):
        results = run_jobs(
            [JobSpec("f", fn=job_raise, args=(0,), max_retries=3)],
            config=SupervisorConfig(**FAST),
        )
        assert results[0].state == FAILED
        assert results[0].attempts == 1

    def test_context_passed_to_with_context_jobs(self):
        results = run_jobs(
            [
                JobSpec(
                    "ctx",
                    fn=job_with_ctx,
                    args=(7,),
                    with_context=True,
                    checkpoint_path="/tmp/nowhere.npz",
                )
            ],
            config=SupervisorConfig(**FAST),
        )
        assert results[0].value == {
            "base": 7,
            "attempt": 0,
            "is_retry": False,
            "checkpoint": "/tmp/nowhere.npz",
        }

    def test_cancelled_inside_job_reports_cancelled(self):
        results = run_jobs(
            [JobSpec("c", fn=job_cancelled, args=(0,))],
            config=SupervisorConfig(**FAST),
        )
        assert results[0].state == CANCELLED
        assert "giving up" in results[0].error

    def test_duplicate_job_ids_rejected(self):
        with Supervisor(SupervisorConfig(**FAST)) as sup:
            sup.submit(JobSpec("dup", fn=job_double, args=(1,)))
            with pytest.raises(ValueError, match="duplicate job id"):
                sup.submit(JobSpec("dup", fn=job_double, args=(2,)))


class TestDeadlines:
    def test_timeout_kills_and_reports(self):
        results = run_jobs(
            [
                JobSpec(
                    "slow",
                    fn=job_sleep_silent,
                    args=(30.0,),
                    timeout=0.4,
                    max_retries=0,
                )
            ],
            config=SupervisorConfig(**FAST),
        )
        assert results[0].state == TIMEOUT
        assert "deadline" in results[0].error

    def test_hung_worker_reaped_but_beating_worker_survives(self):
        specs = [
            JobSpec(
                "hung",
                fn=job_sleep_silent,
                args=(30.0,),
                heartbeat_timeout=0.4,
                max_retries=0,
                index=0,
            ),
            JobSpec(
                "beating",
                fn=job_sleep_beating,
                args=(1.0,),
                heartbeat_timeout=0.4,
                index=1,
            ),
        ]
        results = run_jobs(
            specs, config=SupervisorConfig(max_workers=2, **FAST)
        )
        # same wall time, opposite outcomes: silence is hung, slow is fine
        assert results[0].state == HUNG
        assert "heartbeat" in results[0].error
        assert results[1].state == DONE and results[1].value == "done-slow"


class TestRetry:
    def test_sigkill_then_retry_succeeds(self):
        spec = JobSpec(
            "kill-once",
            fn=job_flaky,
            args=(10,),
            max_retries=2,
            fault_plans=(
                FaultPlan("flaky.site", mode="sigkill", attempts=1),
            ),
        )
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        results = run_jobs(
            [spec], config=SupervisorConfig(**FAST), metrics=metrics
        )
        metrics.close()
        assert results[0].state == DONE
        assert results[0].value == 11
        assert results[0].attempts == 2
        kinds = [e["kind"] for e in metrics.series.get("job.crashed", [])]
        assert kinds == ["job.crashed"]
        retries = metrics.series.get("job.retry", [])
        assert len(retries) == 1 and retries[0]["attempt"] == 1

    def test_crash_every_attempt_exhausts_retries(self):
        spec = JobSpec(
            "kill-always",
            fn=job_flaky,
            args=(0,),
            max_retries=1,
            fault_plans=(FaultPlan("flaky.site", mode="sigkill"),),
        )
        results = run_jobs([spec], config=SupervisorConfig(**FAST))
        assert results[0].state == CRASHED
        assert results[0].attempts == 2
        assert "without a result" in results[0].error

    def test_backoff_is_deterministic_and_grows(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0)
        first = compute_backoff(cfg, "job-a", 1)
        assert first == compute_backoff(cfg, "job-a", 1)
        assert compute_backoff(cfg, "job-a", 3) > first
        # different jobs get decorrelated jitter
        assert first != compute_backoff(cfg, "job-b", 1)


class TestCancellation:
    def test_cancel_pending_job(self):
        with Supervisor(SupervisorConfig(max_workers=1, **FAST)) as sup:
            sup.submit(JobSpec("run", fn=job_sleep_beating, args=(0.5,)))
            sup.submit(JobSpec("queued", fn=job_double, args=(1,)))
            sup.cancel("queued")
            results = sup.wait()
        by_id = {r.job_id: r for r in results}
        assert by_id["run"].state == DONE
        assert by_id["queued"].state == CANCELLED
        assert by_id["queued"].attempts == 0

    def test_cancel_running_job_cooperatively(self):
        with Supervisor(SupervisorConfig(max_workers=1, **FAST)) as sup:
            sup.submit(JobSpec("long", fn=job_sleep_beating, args=(30.0,)))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                sup.poll()
                if sup._jobs["long"].state == "running":
                    break
                time.sleep(0.01)
            sup.cancel("long")
            results = sup.wait()
        assert results[0].state == CANCELLED


class TestDegradation:
    class _BrokenContext:
        """An mp context whose process starts always fail."""

        class Process:
            def __init__(self, *a, **kw):
                pass

            def start(self):
                raise OSError("no processes for you")

        def get_context(self):  # pragma: no cover — API compat shim
            return self

    def test_broken_supervisor_degrades_to_in_process(self):
        sink = MemorySink()
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="test")
        results = run_jobs(
            [
                JobSpec("a", fn=job_double, args=(2,), index=0),
                JobSpec("b", fn=job_double, args=(3,), index=1),
            ],
            config=SupervisorConfig(**FAST),
            metrics=metrics,
            mp_context=self._BrokenContext(),
        )
        metrics.close()
        # every rung failed to spawn; the last rung still ran the jobs
        assert [r.value for r in results] == [4, 6]
        assert all(r.state == DONE for r in results)
        rungs = [e["rung"] for e in metrics.series.get("job.degrade", [])]
        assert rungs == ["fresh-supervisor", "in-process"]
        validate_stream([json.loads(line) for line in sink.lines])

    def test_run_job_in_process_captures_failure(self):
        result = run_job_in_process(JobSpec("x", fn=job_raise, args=(1,)))
        assert result.state == FAILED and "deliberate" in result.error
        ok = run_job_in_process(JobSpec("y", fn=job_double, args=(4,)))
        assert ok.state == DONE and ok.value == 8

    def test_supervisor_error_is_raised_not_swallowed(self):
        sup = Supervisor(SupervisorConfig(**FAST), mp_context=self._BrokenContext())
        try:
            with pytest.raises(SupervisorError, match="cannot start worker"):
                sup.run([JobSpec("x", fn=job_double, args=(1,))])
        finally:
            sup.close()

"""Tests for visualization, Steiner trees, PinRUDY and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.geometry import Grid2D, Rect
from repro.route import pin_rudy_map, single_trunk_segments, stt_length
from repro.route.decompose import decompose_net, mst_edges
from repro.viz import ascii_heatmap, placement_svg, save_heatmap_ppm, save_placement_svg


class TestSteinerTree:
    def test_two_pins(self):
        segs = single_trunk_segments(np.array([0.0, 4.0]), np.array([0.0, 2.0]))
        assert len(segs) == 1

    def test_collinear_pins(self):
        segs = single_trunk_segments(np.array([0.0, 2.0, 5.0]), np.zeros(3))
        total = sum(abs(x2 - x1) + abs(y2 - y1) for x1, y1, x2, y2 in segs)
        assert total == pytest.approx(5.0)

    def test_star_topology_beats_mst(self):
        # classic case: pins on a cross; trunk+branches < MST
        px = np.array([0.0, 10.0, 5.0, 5.0, 5.0])
        py = np.array([5.0, 5.0, 0.0, 10.0, 5.0])
        stt = stt_length(px, py)
        mst = sum(
            abs(px[a] - px[b]) + abs(py[a] - py[b])
            for a, b in mst_edges(px, py)
        )
        assert stt <= mst + 1e-9

    def test_connectivity_of_segments(self):
        rng = np.random.default_rng(3)
        px = rng.uniform(0, 10, 7)
        py = rng.uniform(0, 10, 7)
        segs = single_trunk_segments(px, py)
        # every pin must appear as an endpoint of some segment (or lie
        # exactly on the trunk)
        endpoints = set()
        for x1, y1, x2, y2 in segs:
            endpoints.add((round(x1, 9), round(y1, 9)))
            endpoints.add((round(x2, 9), round(y2, 9)))
        med_y = round(float(np.median(py)), 9)
        med_x = round(float(np.median(px)), 9)
        for x, y in zip(px, py):
            on_trunk = round(float(y), 9) == med_y or round(float(x), 9) == med_x
            assert (round(float(x), 9), round(float(y), 9)) in endpoints or on_trunk

    def test_stt_never_shorter_than_bbox_half_perimeter(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            px = rng.uniform(0, 10, 6)
            py = rng.uniform(0, 10, 6)
            lower = (px.max() - px.min()) + (py.max() - py.min())
            assert stt_length(px, py) >= lower - 1e-9

    def test_decompose_with_stt_topology(self, tiny_netlist):
        px, py = tiny_netlist.pin_positions()
        segs = decompose_net(tiny_netlist, 1, px, py, topology="stt")
        assert len(segs) >= 2

    def test_unknown_topology(self, tiny_netlist):
        px, py = tiny_netlist.pin_positions()
        with pytest.raises(ValueError):
            decompose_net(tiny_netlist, 1, px, py, topology="bogus")


class TestPinRudy:
    def test_mass_at_pin_bins_only(self, tiny_netlist):
        grid = Grid2D(tiny_netlist.die, 10, 10)
        m = pin_rudy_map(tiny_netlist, grid)
        px, py = tiny_netlist.pin_positions()
        i, j = grid.index_of(px, py)
        pin_bins = set(zip(i.tolist(), j.tolist()))
        nz = set(zip(*np.nonzero(m)))
        assert nz <= pin_bins

    def test_empty(self):
        from repro.netlist import Netlist

        nl = Netlist.from_specs("e", Rect(0, 0, 4, 4), [], [])
        grid = Grid2D(nl.die, 8, 8)
        assert pin_rudy_map(nl, grid).sum() == 0.0


class TestViz:
    def test_ascii_heatmap_shape(self):
        m = np.random.default_rng(0).random((32, 16))
        art = ascii_heatmap(m, width=16, title="test")
        lines = art.splitlines()
        assert lines[0] == "test"
        assert all(len(line) == 16 for line in lines[1:])

    def test_ascii_rejects_3d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2, 2)))

    def test_ppm_output(self, tmp_path):
        m = np.random.default_rng(0).random((8, 8))
        path = tmp_path / "map.ppm"
        save_heatmap_ppm(m, str(path), pixel_scale=2)
        data = path.read_bytes()
        assert data.startswith(b"P6 16 16 255\n")
        assert len(data) == len(b"P6 16 16 255\n") + 16 * 16 * 3

    def test_placement_svg(self, toy120, tmp_path):
        svg = placement_svg(toy120, width_px=400)
        assert svg.startswith("<svg")
        assert svg.count("<rect") > toy120.n_cells  # cells + background
        path = tmp_path / "p.svg"
        save_placement_svg(toy120, str(path))
        assert path.read_text().endswith("</svg>\n")

    def test_svg_with_congestion_overlay(self, toy120):
        grid = Grid2D(toy120.die, 8, 8)
        cong = np.zeros(grid.shape)
        cong[4, 4] = 1.0
        svg = placement_svg(toy120, congestion=cong, grid=grid)
        assert "fill-opacity" in svg


class TestCli:
    def test_gen_and_route_and_eval(self, tmp_path):
        out = tmp_path / "d.bl"
        assert cli_main(["gen", "toy_cli", "--cells", "120", "--out", str(out)]) == 0
        assert out.exists()
        assert cli_main(["route", str(out)]) == 0
        assert cli_main(["eval", str(out)]) == 0

    def test_place_wirelength_only(self, tmp_path):
        src = tmp_path / "d.bl"
        dst = tmp_path / "placed.bl"
        cli_main(["gen", "toy_cli2", "--cells", "100", "--out", str(src)])
        assert cli_main([
            "place", str(src), "--iters", "120", "--out", str(dst)
        ]) == 0
        assert dst.exists()

    def test_plot(self, tmp_path):
        src = tmp_path / "d.bl"
        cli_main(["gen", "toy_cli3", "--cells", "80", "--out", str(src)])
        prefix = str(tmp_path / "viz")
        assert cli_main(["plot", str(src), "--prefix", prefix]) == 0
        import os

        assert os.path.exists(prefix + "_placement.svg")
        assert os.path.exists(prefix + "_congestion.ppm")

    def test_gen_suite_design(self, tmp_path):
        out = tmp_path / "fft.bl"
        assert cli_main(["gen", "fft_1", "--scale", "0.3", "--out", str(out)]) == 0

"""Momentum-based cell inflation tests (Eq. 11-12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InflationConfig, MomentumInflation


class TestConfig:
    def test_paper_defaults(self):
        cfg = InflationConfig()
        assert cfg.r_min == 0.9
        assert cfg.r_max == 2.0
        assert cfg.alpha == 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            InflationConfig(alpha=1.0)
        with pytest.raises(ValueError):
            InflationConfig(r_min=2.5, r_max=2.0)
        with pytest.raises(ValueError):
            InflationConfig(r_min=-0.1)


class TestFirstRound:
    def test_dr1_equals_c1(self):
        infl = MomentumInflation(3)
        rates = infl.update(np.array([0.0, 0.3, 0.8]))
        # r^1 = clamp(1 + C^1)
        assert rates == pytest.approx([1.0, 1.3, 1.8])
        assert infl.delta_rates == pytest.approx([0.0, 0.3, 0.8])

    def test_r0_is_one(self):
        infl = MomentumInflation(2)
        assert infl.rates == pytest.approx([1.0, 1.0])

    def test_clamp_at_rmax(self):
        infl = MomentumInflation(1)
        rates = infl.update(np.array([5.0]))
        assert rates[0] == 2.0


class TestMomentum:
    def test_eq11_recursion(self):
        infl = MomentumInflation(1)
        infl.update(np.array([0.5]))       # dr1 = 0.5, r = 1.5
        infl.update(np.array([0.6]))       # both rounds above mean? single cell: C == mean
        # single cell: C_i == C-bar so the deflation branch never fires
        # (requires C_i < C-bar strictly); delta = 1, s = 0.6
        expected_dr = 0.4 * 0.5 + 0.6 * 0.6
        assert infl.delta_rates[0] == pytest.approx(expected_dr)
        assert infl.rates[0] == pytest.approx(min(1.5 + expected_dr, 2.0))

    def test_deflation_fires_on_escape(self):
        # cell 0 escapes congestion (above avg -> below avg); cell 1 stays hot
        infl = MomentumInflation(2)
        infl.update(np.array([0.8, 0.2]))          # mean 0.5; cell0 above
        r_before = infl.rates.copy()
        infl.update(np.array([0.1, 0.9]))          # mean 0.5; cell0 below now
        # delta_0 = -|0.8/0.5 - 0.1/0.5| = -1.4 ; s_0 = -1.4*0.1 = -0.14
        # dr_0 = 0.4*0.8 + 0.6*(-0.14) = 0.236
        assert infl.delta_rates[0] == pytest.approx(0.4 * 0.8 + 0.6 * (-1.4 * 0.1))
        # compare against the no-deflation counterfactual (delta=1 -> s=+0.1)
        no_deflate = 0.4 * 0.8 + 0.6 * 0.1
        assert infl.delta_rates[0] < no_deflate

    def test_escape_to_zero_congestion_stops_growth(self):
        infl = MomentumInflation(2)
        infl.update(np.array([0.8, 0.2]))
        infl.update(np.array([0.0, 0.9]))   # cell0 fully escaped: s = 0
        assert infl.delta_rates[0] == pytest.approx(0.4 * 0.8)

    def test_rates_always_clamped(self):
        infl = MomentumInflation(1, InflationConfig(r_min=0.9, r_max=2.0))
        for c in (3.0, 3.0, 0.0, 0.0, 3.0):
            rates = infl.update(np.array([c]))
            assert 0.9 <= rates[0] <= 2.0

    @given(
        st.lists(
            st.lists(st.floats(0, 2), min_size=4, max_size=4),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_clamp_invariant_property(self, rounds):
        infl = MomentumInflation(4)
        for c in rounds:
            rates = infl.update(np.array(c))
            assert (rates >= 0.9 - 1e-12).all()
            assert (rates <= 2.0 + 1e-12).all()

    def test_length_mismatch(self):
        infl = MomentumInflation(3)
        with pytest.raises(ValueError):
            infl.update(np.zeros(5))

    def test_reset(self):
        infl = MomentumInflation(2)
        infl.update(np.array([1.0, 1.0]))
        infl.reset()
        assert infl.round == 0
        assert infl.rates == pytest.approx([1.0, 1.0])


class TestSizeScale:
    def test_area_scaling(self):
        infl = MomentumInflation(1)
        infl.update(np.array([0.69]))  # r = 1.69
        s = infl.size_scale()
        assert s[0] == pytest.approx(1.3)  # sqrt(1.69): area scales by r

    def test_identity_at_start(self):
        infl = MomentumInflation(3)
        assert infl.size_scale() == pytest.approx([1, 1, 1])


class TestStateRoundTrip:
    def test_state_dict_includes_last_n_deflated(self):
        infl = MomentumInflation(3)
        infl.update(np.array([2.0, 2.0, 0.1]))
        infl.update(np.array([0.1, 2.5, 0.2]))  # cell 0 escaped -> deflates
        assert infl.last_n_deflated > 0
        state = infl.state_dict()
        assert state["last_n_deflated"] == infl.last_n_deflated

    def test_round_trip_restores_last_n_deflated(self):
        infl = MomentumInflation(3)
        infl.update(np.array([2.0, 2.0, 0.1]))
        infl.update(np.array([0.1, 2.5, 0.2]))
        state = infl.state_dict()
        other = MomentumInflation(3)
        other.load_state_dict(state)
        assert other.last_n_deflated == infl.last_n_deflated
        assert np.array_equal(other.rates, infl.rates)

    def test_load_old_snapshot_defaults_to_zero(self):
        """Snapshots written before the field existed resume as 0."""
        infl = MomentumInflation(2)
        infl.update(np.array([1.0, 1.0]))
        state = infl.state_dict()
        del state["last_n_deflated"]
        other = MomentumInflation(2)
        other.last_n_deflated = 99
        other.load_state_dict(state)
        assert other.last_n_deflated == 0

    def test_reset_clears_last_n_deflated(self):
        infl = MomentumInflation(3)
        infl.update(np.array([2.0, 2.0, 0.1]))
        infl.update(np.array([0.1, 2.5, 0.2]))
        infl.reset()
        assert infl.last_n_deflated == 0

"""Chaos harness: the supervised sweep under injected process faults.

Each test runs a real (small-scale) Table I sweep through the pooled
:func:`repro.bench.parallel.run_sweep` path while a
:class:`~repro.utils.faults.FaultPlan` SIGKILLs or hangs one specific
design's worker.  The ISSUE acceptance contract under test:

* unfaulted designs complete and report correct rows, in input order;
* the faulted design either succeeds via retry (warm- or cold-start)
  or reports a structured failure — never a lost entry;
* the merged per-design telemetry stream stays schema-valid;
* the supervisor's own ``job.*`` stream records what happened.

Marked ``chaos`` — excluded from the tier-1 run and executed by the
dedicated CI job under a hard per-test timeout.
"""

from __future__ import annotations

import pytest

from repro.bench.parallel import run_sweep
from repro.jobs import CRASHED, DONE, HUNG
from repro.place.config import GPConfig
from repro.utils.faults import FaultPlan
from repro.utils.metrics import validate_stream

pytestmark = pytest.mark.chaos

#: Small-but-real sweep settings (mirrors ``test_bench_parallel``).
FAST = dict(scale=0.12, placers=("Xplace",), gp_config=GPConfig(max_iters=20))
DESIGNS = ["des_perf_1", "des_perf_a", "des_perf_b"]


def _kinds(events: list) -> list:
    return [e["kind"] for e in events]


class TestSigkillChaos:
    def test_sigkill_without_retry_is_isolated(self):
        """A SIGKILLed worker loses its design, never the sweep."""
        result = run_sweep(
            DESIGNS,
            kind="table1",
            jobs=2,
            max_retries=0,
            fault_plans=(
                FaultPlan("bench.design.des_perf_a", mode="sigkill"),
            ),
            **FAST,
        )
        # every design reports, in input order
        assert [r.design for r in result.runs] == DESIGNS
        assert [r.index for r in result.runs] == [0, 1, 2]
        # the unfaulted designs completed with real rows
        survivors = [r for r in result.runs if r.ok]
        assert [r.design for r in survivors] == ["des_perf_1", "des_perf_b"]
        assert [row["design"] for row in result.rows()] == \
            ["des_perf_1", "des_perf_b"]
        # the faulted design carries a structured supervisor verdict
        dead = result.runs[1]
        assert dead.job_state == CRASHED
        assert dead.attempts == 1
        assert dead.error and "without a result" in dead.error
        # merged worker stream is schema-valid (dead design has no segment)
        events = result.events()
        validate_stream(events)
        starts = [e for e in events if e["kind"] == "run.start"]
        assert [s["design"] for s in starts] == ["des_perf_1", "des_perf_b"]
        # supervisor stream recorded the crash
        validate_stream(result.supervisor_events)
        assert "job.crashed" in _kinds(result.supervisor_events)
        assert "job.retry" not in _kinds(result.supervisor_events)

    def test_sigkill_then_retry_recovers_the_design(self):
        """A first-attempt-only SIGKILL is healed by the retry."""
        result = run_sweep(
            DESIGNS,
            kind="table1",
            jobs=2,
            max_retries=1,
            fault_plans=(
                FaultPlan(
                    "bench.design.des_perf_a", mode="sigkill", attempts=1
                ),
            ),
            **FAST,
        )
        assert [r.design for r in result.runs] == DESIGNS
        assert all(r.ok for r in result.runs)
        assert [row["design"] for row in result.rows()] == DESIGNS
        retried = result.runs[1]
        assert retried.attempts == 2
        assert retried.job_state == DONE
        # the healed design's segment came from the retry attempt
        events = result.events()
        validate_stream(events)
        starts = [e for e in events if e["kind"] == "run.start"]
        assert [s["design"] for s in starts] == DESIGNS
        assert starts[1]["attempt"] == 1
        assert "attempt" not in starts[0] and "attempt" not in starts[2]
        kinds = _kinds(result.supervisor_events)
        assert "job.crashed" in kinds and "job.retry" in kinds


class TestHangChaos:
    def test_hung_worker_reaped_at_deadline_and_retried(self):
        """Silence past ``heartbeat_timeout`` is reaped; retry succeeds."""
        result = run_sweep(
            DESIGNS[:2],
            kind="table1",
            jobs=2,
            heartbeat_timeout=4.0,
            max_retries=1,
            fault_plans=(
                FaultPlan(
                    "bench.design.des_perf_a", mode="hang", attempts=1
                ),
            ),
            **FAST,
        )
        assert [r.design for r in result.runs] == DESIGNS[:2]
        assert all(r.ok for r in result.runs)
        retried = result.runs[1]
        assert retried.attempts == 2 and retried.job_state == DONE
        kinds = _kinds(result.supervisor_events)
        assert "job.hung" in kinds and "job.retry" in kinds
        validate_stream(result.events())

    def test_hung_worker_without_retry_reports_hung(self):
        """With retries exhausted the design reports ``hung``."""
        result = run_sweep(
            DESIGNS[:2],
            kind="table1",
            jobs=2,
            heartbeat_timeout=4.0,
            max_retries=0,
            fault_plans=(
                FaultPlan("bench.design.des_perf_a", mode="hang"),
            ),
            **FAST,
        )
        assert [r.design for r in result.runs] == DESIGNS[:2]
        assert result.runs[0].ok
        dead = result.runs[1]
        assert dead.job_state == HUNG
        assert dead.error and "heartbeat" in dead.error
        assert result.error_payload() == [{
            "design": "des_perf_a", "index": 1, "error": dead.error,
        }]


class TestCheckpointedRetry:
    def test_retry_with_checkpoint_dir_still_recovers(self, tmp_path):
        """Retry-with-resume path: checkpointed sweep heals a SIGKILL."""
        result = run_sweep(
            DESIGNS[:2],
            kind="table1",
            jobs=2,
            max_retries=1,
            checkpoint_dir=str(tmp_path / "ckpt"),
            fault_plans=(
                FaultPlan(
                    "bench.design.des_perf_a", mode="sigkill", attempts=1
                ),
            ),
            **FAST,
        )
        assert all(r.ok for r in result.runs)
        assert result.runs[1].attempts == 2
        validate_stream(result.events())
        validate_stream(result.supervisor_events)

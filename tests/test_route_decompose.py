"""Net decomposition (MST) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.route import decompose_net, decompose_netlist
from repro.route.decompose import mst_edges


class TestMST:
    def test_two_points(self):
        edges = mst_edges(np.array([0.0, 3.0]), np.array([0.0, 0.0]))
        assert edges == [(0, 1)]

    def test_single_point(self):
        assert mst_edges(np.array([1.0]), np.array([1.0])) == []

    def test_collinear_chain(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ys = np.zeros(4)
        edges = mst_edges(xs, ys)
        total = sum(abs(xs[a] - xs[b]) for a, b in edges)
        assert total == pytest.approx(3.0)

    def test_duplicate_points_zero_edges(self):
        xs = np.array([1.0, 1.0, 5.0])
        ys = np.array([2.0, 2.0, 2.0])
        edges = mst_edges(xs, ys)
        lengths = sorted(abs(xs[a] - xs[b]) + abs(ys[a] - ys[b]) for a, b in edges)
        assert lengths == [0.0, 4.0]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_spanning_tree_properties(self, pts):
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        edges = mst_edges(xs, ys)
        assert len(edges) == len(pts) - 1
        # connectivity via union-find
        parent = list(range(len(pts)))

        def find(a):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(i) for i in range(len(pts))}) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mst_no_longer_than_star(self, pts):
        xs = np.array([float(p[0]) for p in pts])
        ys = np.array([float(p[1]) for p in pts])
        edges = mst_edges(xs, ys)
        mst_len = sum(abs(xs[a] - xs[b]) + abs(ys[a] - ys[b]) for a, b in edges)
        star_len = sum(abs(xs[0] - xs[i]) + abs(ys[0] - ys[i]) for i in range(1, len(pts)))
        assert mst_len <= star_len + 1e-9


class TestDecompose:
    def test_two_pin_net_single_segment(self, tiny_netlist):
        px, py = tiny_netlist.pin_positions()
        segs = decompose_net(tiny_netlist, 0, px, py)
        assert len(segs) == 1

    def test_three_pin_net_two_segments(self, tiny_netlist):
        px, py = tiny_netlist.pin_positions()
        segs = decompose_net(tiny_netlist, 1, px, py)
        assert len(segs) == 2

    def test_whole_netlist(self, toy120):
        all_segs = decompose_netlist(toy120)
        assert len(all_segs) == toy120.n_nets
        degrees = toy120.net_degrees()
        for e, segs in enumerate(all_segs):
            assert len(segs) == max(degrees[e] - 1, 0)

"""Unit tests for repro.geometry.segment (Eq. 6-7 helpers and normals)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import sample_segment, segment_length, unit_normal

pts = st.tuples(st.floats(-100, 100), st.floats(-100, 100))


class TestLength:
    def test_pythagoras(self):
        assert segment_length((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert segment_length((1, 1), (1, 1)) == 0.0


class TestSampling:
    def test_eq7_positions(self):
        # k interior points at fractions i/(k+1)
        s = sample_segment((0, 0), (10, 0), 4)
        assert s.shape == (4, 2)
        assert np.allclose(s[:, 0], [2, 4, 6, 8])
        assert np.allclose(s[:, 1], 0)

    def test_k_zero_empty(self):
        assert sample_segment((0, 0), (1, 1), 0).shape == (0, 2)

    def test_negative_k_empty(self):
        assert sample_segment((0, 0), (1, 1), -3).shape == (0, 2)

    @given(pts, pts, st.integers(1, 50))
    def test_samples_strictly_interior(self, p1, p2, k):
        s = sample_segment(p1, p2, k)
        assert len(s) == k
        # every sample on the segment: param t in (0, 1)
        for x, y in s:
            tx = np.clip((x - p1[0]) / (p2[0] - p1[0]), 0, 1) if p2[0] != p1[0] else None
            assert min(p1[0], p2[0]) - 1e-9 <= x <= max(p1[0], p2[0]) + 1e-9
            assert min(p1[1], p2[1]) - 1e-9 <= y <= max(p1[1], p2[1]) + 1e-9


class TestNormal:
    def test_perpendicular(self):
        n = unit_normal((0, 0), (2, 0))
        assert abs(n[0]) < 1e-12
        assert abs(abs(n[1]) - 1.0) < 1e-12

    def test_oriented_toward(self):
        n = unit_normal((0, 0), (2, 0), toward=(0.0, -3.0))
        assert n == (0.0, -1.0)
        n = unit_normal((0, 0), (2, 0), toward=(0.0, 3.0))
        assert n == (0.0, 1.0)

    def test_degenerate_segment_uses_toward(self):
        n = unit_normal((1, 1), (1, 1), toward=(3.0, 4.0))
        assert n == pytest.approx((0.6, 0.8))

    def test_fully_degenerate(self):
        assert unit_normal((1, 1), (1, 1)) == (0.0, 0.0)
        assert unit_normal((1, 1), (1, 1), toward=(0.0, 0.0)) == (0.0, 0.0)

    @given(pts, pts)
    def test_unit_length_and_perpendicular(self, p1, p2):
        if p1 == p2:
            return
        if segment_length(p1, p2) < 1e-6:
            return
        n = unit_normal(p1, p2)
        assert math.hypot(*n) == pytest.approx(1.0)
        dx, dy = p2[0] - p1[0], p2[1] - p1[1]
        assert abs(n[0] * dx + n[1] * dy) < 1e-6 * math.hypot(dx, dy)

"""Service soak: concurrent clients, scheduling order, cancellation.

A daemon is only useful if it survives being *used*: several clients
submitting at once, jobs racing through a multi-worker supervisor,
cancels landing at awkward times.  These tests drive a real daemon
over its HTTP API (threads as clients) and then audit the persistent
queue, the artifacts, and the telemetry streams for consistency.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.io import save_design
from repro.service import (
    CANCELLED,
    DONE,
    TERMINAL_STATES,
    PlacementService,
    ServiceClient,
    ServiceConfig,
    execution_order,
)
from repro.synth import SynthConfig, generate_design
from repro.utils.metrics import read_jsonl, validate_stream

pytestmark = pytest.mark.service


def make_design(path, n_cells: int = 110, seed: int = 9) -> str:
    """Write a small synthetic design file; returns its absolute path."""
    save_design(
        generate_design(SynthConfig(name="toy", n_cells=n_cells, seed=seed)),
        str(path),
    )
    return os.path.abspath(str(path))


class TestSoak:
    def test_multi_client_sweep(self, tmp_path):
        """3 client threads x 3 jobs against 2 supervised workers: every
        job completes, every stream validates, the queue drains."""
        design = make_design(tmp_path / "design.bl")
        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="supervised", max_workers=2,
            poll_interval=0.02,
        )
        per_client = 3
        ids: list = []
        errors: list = []
        lock = threading.Lock()

        def client_thread(k: int) -> None:
            try:
                client = ServiceClient(root=root)
                mine = [
                    client.submit(
                        {"input": design, "iters": 25}, priority=k
                    )["job_id"]
                    for _ in range(per_client)
                ]
                done = client.wait_all(mine, timeout=600)
                with lock:
                    ids.extend(mine)
                    for entry in done:
                        if entry["state"] != DONE:
                            errors.append(entry)
            except Exception as exc:  # surfaced after join
                with lock:
                    errors.append(exc)

        with PlacementService(config):
            threads = [
                threading.Thread(target=client_thread, args=(k,))
                for k in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        assert len(ids) == 9

        # queue fully drained, every entry terminal-DONE with a result
        with open(os.path.join(root, "queue", "00000000.json")) as fh:
            assert json.load(fh)["state"] == DONE
        for jid in ids:
            jobdir = Path(root) / "jobs" / jid
            assert (jobdir / "placed.bl").exists()
            events = read_jsonl(str(jobdir / "metrics.jsonl"))
            validate_stream(events)
            assert events[-1]["kind"] == "run.end"
        service_events = read_jsonl(os.path.join(root, "service.jsonl"))
        validate_stream(service_events)
        by_kind: dict = {}
        for event in service_events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        assert by_kind["job.queued"] == 9
        assert by_kind["job.end"] == 9
        assert by_kind["service.stop"] == 1

    def test_paused_service_runs_in_priority_order(self, tmp_path):
        """A staged batch executes in exactly (-priority, seq) order."""
        design = make_design(tmp_path / "design.bl", n_cells=60, seed=2)
        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="supervised", max_workers=1,
            poll_interval=0.02, paused=True,
        )
        priorities = [0, 5, -1, 5, 0]
        with PlacementService(config) as service:
            client = ServiceClient(root=root)
            entries = [
                client.submit({"input": design, "iters": 10}, priority=p)
                for p in priorities
            ]
            ids = [e["job_id"] for e in entries]
            service.resume()
            client.wait_all(ids, timeout=600)

        # expected order from the pure helper: seqs [1, 3, 0, 4, 2]
        expected = [
            e.job_id for e in execution_order(service.queue.entries())
        ]
        started = [
            event["job"]
            for event in read_jsonl(os.path.join(root, "service.jsonl"))
            if event["kind"] == "job.start"
        ]
        assert started == expected
        assert [ids[k] for k in (1, 3, 0, 4, 2)] == expected

    def test_cancel_queued_and_running(self, tmp_path):
        """Cancelling a queued job never runs it; cancelling the running
        one interrupts it; later jobs still complete."""
        design = make_design(tmp_path / "design.bl")
        root = str(tmp_path / "service")
        config = ServiceConfig(
            root=root, execution="supervised", max_workers=1,
            poll_interval=0.02, paused=True,
        )
        with PlacementService(config) as service:
            client = ServiceClient(root=root)
            running = client.submit(
                {"input": design, "routability": True, "iters": 40,
                 "rounds": 8, "iters_per_round": 20},
                priority=1,
            )["job_id"]
            doomed = client.submit({"input": design, "iters": 10})["job_id"]
            survivor = client.submit(
                {"input": design, "iters": 10}
            )["job_id"]
            # cancel the queued one before anything runs
            client.cancel(doomed)
            service.resume()
            # cancel the long job as soon as it starts; if it already
            # finished (timing), the cancel is an accepted no-op
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                state = client.status(running)["state"]
                if state == "RUNNING" or state in TERMINAL_STATES:
                    client.cancel(running)
                    break
                time.sleep(0.02)
            done = client.wait_all(
                [running, doomed, survivor], timeout=600
            )
        states = {e["job_id"]: e["state"] for e in done}
        assert states[doomed] == CANCELLED
        assert states[survivor] == DONE
        assert states[running] in (CANCELLED, DONE)
        doomed_entry = service.queue.get(doomed)
        assert doomed_entry.attempts == 0  # never admitted
        validate_stream(read_jsonl(os.path.join(root, "service.jsonl")))

"""Report rendering on the golden mini-database."""

from __future__ import annotations

from repro.dse.report import (
    lower_is_better,
    render_report,
    render_report_json,
    svg_line_chart,
)
from repro.dse.store import RunDB

from tests.test_dse_store import load_golden


def golden_db() -> RunDB:
    db = RunDB(":memory:")
    load_golden(db)
    return db


class TestSvgChart:
    def test_empty_series_renders_nothing(self):
        assert svg_line_chart([], "t", "x", "y") == ""
        assert svg_line_chart([("a", [])], "t", "x", "y") == ""

    def test_single_series_has_no_legend(self):
        svg = svg_line_chart([("only", [(0, 1), (1, 2)])], "t", "x", "y")
        assert svg.startswith("<svg")
        assert "<polyline" in svg and "<circle" in svg
        assert "<rect" not in svg  # legend swatches only appear for >= 2

    def test_two_series_get_legend_in_palette_order(self):
        svg = svg_line_chart(
            [("a", [(0, 1), (1, 2)]), ("b", [(0, 2), (1, 1)])], "t", "x", "y")
        assert svg.count("<rect") == 2
        assert svg.index("var(--series-1)") < svg.index("var(--series-2)")

    def test_degenerate_flat_series(self):
        svg = svg_line_chart([("a", [(0, 5), (1, 5)])], "t", "x", "y")
        assert "<polyline" in svg and "NaN" not in svg

    def test_markers_carry_tooltips(self):
        svg = svg_line_chart([("a", [(0, 1)])], "t", "x", "y")
        assert "<title>a: 0 → 1</title>" in svg


class TestDirection:
    def test_lower_is_better(self):
        assert lower_is_better("DRWL")
        assert lower_is_better("reference_ms")
        assert not lower_is_better("speedup")
        assert not lower_is_better("density_speedup")


class TestRenderReport:
    def test_golden_render_contents(self, tmp_path):
        with golden_db() as db:
            path = render_report(db, tmp_path / "rep")
        text = path.read_text()
        assert path.name == "index.html"
        assert "<svg" in text and "<table" in text
        assert "Knob trends" in text and "inflation.alpha" in text
        assert "Best runs" in text
        assert "RD round trajectories" in text
        assert "Bench history" in text
        # regression deltas carry a direction glyph, not color alone
        assert "▲" in text or "▼" in text
        # text wears ink tokens; series colors only on marks
        assert 'fill="var(--series-1)"' in text
        assert "--delta-good" in text

    def test_render_is_deterministic(self, tmp_path):
        with golden_db() as db:
            a = render_report(db, tmp_path / "a").read_text()
        with golden_db() as db:
            b = render_report(db, tmp_path / "b").read_text()
        assert a == b

    def test_empty_db_renders_placeholder(self, tmp_path):
        with RunDB(":memory:") as db:
            path = render_report(db, tmp_path / "rep")
        assert "database is empty" in path.read_text()

    def test_json_summary(self):
        with golden_db() as db:
            text = render_report_json(db)
        assert '"inflation.alpha"' in text and '"BENCH_mini_0.json"' in text

"""Parallel experiment runner: ordering, isolation, merged telemetry."""

from __future__ import annotations

import json

import pytest

from repro.bench.parallel import (
    DesignRun,
    SweepResult,
    merge_event_segments,
    run_sweep,
    run_sweep_task,
    SweepTask,
    write_events_jsonl,
)
from repro.place.config import GPConfig
from repro.utils.faults import FaultPlan
from repro.utils.metrics import read_jsonl, validate_stream

#: Small-but-real sweep settings shared by every test here.
FAST = dict(scale=0.12, placers=("Xplace",), gp_config=GPConfig(max_iters=20))
DESIGNS = ["des_perf_1", "des_perf_a", "des_perf_b"]


@pytest.fixture(scope="module")
def pooled_sweep():
    """One pooled sweep with a fault injected into the middle design.

    Module-scoped: the pool spin-up and three placements are the
    expensive part, and every assertion below reads the same result.
    """
    return run_sweep(
        DESIGNS,
        kind="table1",
        jobs=2,
        fault_plans=(FaultPlan("bench.design.des_perf_a", mode="raise"),),
        **FAST,
    )


class TestSequentialSweep:
    def test_rows_and_order(self):
        result = run_sweep(DESIGNS[:2], kind="table1", jobs=1, **FAST)
        assert [r.design for r in result.runs] == DESIGNS[:2]
        assert all(r.ok for r in result.runs)
        rows = result.rows()
        assert [row["design"] for row in rows] == DESIGNS[:2]
        assert all(row["placer"] == "Xplace" for row in rows)
        assert all({"DRWL", "#DRVias", "#DRVs", "PT", "RT"} <= set(row["metrics"])
                   for row in rows)

    def test_merged_stream_is_schema_valid(self, tmp_path):
        result = run_sweep(
            DESIGNS[:2], kind="table1", jobs=1,
            metrics_path=str(tmp_path / "sweep.jsonl"), **FAST,
        )
        events = result.events()
        validate_stream(events)
        # one segment per design, opened in input order
        starts = [e for e in events if e["kind"] == "run.start"]
        assert [s["design"] for s in starts] == DESIGNS[:2]
        assert [s["shard"] for s in starts] == [0, 1]
        # the file round-trips to the same stream
        on_disk = read_jsonl(str(tmp_path / "sweep.jsonl"))
        validate_stream(on_disk)
        assert on_disk == events

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="sweep kind"):
            run_sweep(["des_perf_1"], kind="table3")


@pytest.mark.faultinject
class TestPoolIsolation:
    def test_results_stay_in_input_order(self, pooled_sweep):
        assert [r.design for r in pooled_sweep.runs] == DESIGNS
        assert [r.index for r in pooled_sweep.runs] == [0, 1, 2]

    def test_faulted_design_reports_error_entry(self, pooled_sweep):
        failed = pooled_sweep.errors()
        assert [r.design for r in failed] == ["des_perf_a"]
        assert "InjectedFault" in failed[0].error
        assert failed[0].rows == []
        assert pooled_sweep.error_payload() == [{
            "design": "des_perf_a", "index": 1, "error": failed[0].error,
        }]

    def test_surviving_designs_complete(self, pooled_sweep):
        ok = [r for r in pooled_sweep.runs if r.ok]
        assert [r.design for r in ok] == ["des_perf_1", "des_perf_b"]
        assert [row["design"] for row in pooled_sweep.rows()] == \
            ["des_perf_1", "des_perf_b"]

    def test_merged_metrics_ordering_across_workers(self, pooled_sweep):
        """Segments land in input order even with jobs=2 racing."""
        events = pooled_sweep.events()
        validate_stream(events)
        starts = [e for e in events if e["kind"] == "run.start"]
        assert [s["design"] for s in starts] == DESIGNS
        # the faulted design still contributes a well-formed (short)
        # segment: run.start then run.end, nothing in between
        segments: list = []
        for event in events:
            if event["kind"] == "run.start":
                segments.append([])
            segments[-1].append(event)
        assert [seg[0]["design"] for seg in segments] == DESIGNS
        faulted = segments[1]
        assert [e["kind"] for e in faulted] == ["run.start", "run.end"]


class TestMergeHelpers:
    def _segment(self, design: str, n_body: int) -> list:
        seg = [{"v": 1, "seq": 0, "kind": "run.start", "design": design}]
        for k in range(n_body):
            seg.append({"v": 1, "seq": k + 1, "kind": "gp.guard",
                        "iter": k, "guard": "g", "detail": "d"})
        return seg

    def test_merge_restarts_sequences_per_segment(self):
        merged = merge_event_segments(
            [self._segment("a", 2), self._segment("b", 0), self._segment("c", 1)]
        )
        validate_stream(merged)
        assert [e.get("design") for e in merged if e["kind"] == "run.start"] == \
            ["a", "b", "c"]

    def test_write_events_jsonl_roundtrip(self, tmp_path):
        merged = merge_event_segments([self._segment("a", 1)])
        path = str(tmp_path / "nested" / "events.jsonl")
        write_events_jsonl(path, merged)
        assert read_jsonl(path) == merged
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_sweep_result_helpers(self):
        ok = DesignRun(design="a", index=0, rows=[{"design": "a"}])
        bad = DesignRun(design="b", index=1, error="boom")
        result = SweepResult(runs=[ok, bad], jobs=2, elapsed=1.0)
        assert result.rows() == [{"design": "a"}]
        assert result.errors() == [bad]
        assert not bad.ok and ok.ok


class TestSupervisedIdentity:
    """The supervised pool changes *where* designs run, never the output."""

    def _strip_timings(self, rows: list) -> list:
        # PT/RT are wall-clock metrics — nondeterministic on any path
        return [
            {**row, "metrics": {k: v for k, v in row["metrics"].items()
                                if k not in ("PT", "RT")}}
            for row in rows
        ]

    def test_no_fault_sweep_matches_in_process_bit_for_bit(self):
        seq = run_sweep(DESIGNS[:2], kind="table1", jobs=1, **FAST)
        sup = run_sweep(DESIGNS[:2], kind="table1", jobs=2, **FAST)
        # merged telemetry stream: bit-identical
        assert seq.events() == sup.events()
        # rows: identical up to wall-clock timings
        assert self._strip_timings(seq.rows()) == self._strip_timings(sup.rows())
        # supervisor lifecycle telemetry stays in its own stream
        assert seq.supervisor_events == []
        kinds = {e["kind"] for e in sup.supervisor_events}
        assert {"run.start", "job.submit", "job.start", "job.end",
                "run.end"} <= kinds
        validate_stream(sup.supervisor_events)
        assert all(r.job_state == "done" and r.attempts == 1
                   for r in sup.runs)


@pytest.mark.faultinject
class TestInProcessFaults:
    def test_jobs1_fault_is_isolated_and_uninstalled(self):
        """The in-process path installs/uninstalls the injector cleanly."""
        from repro.utils import faults

        task = SweepTask(
            index=0, kind="table1", name="des_perf_1", scale=0.12,
            placers=("Xplace",), gp_config=GPConfig(max_iters=20),
            fault_plans=(FaultPlan("bench.design.des_perf_1", mode="raise"),),
        )
        run = run_sweep_task(task)
        assert not run.ok and "InjectedFault" in run.error
        assert faults.active() is None
        validate_stream(run.events)

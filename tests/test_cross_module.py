"""Cross-module behavioral tests tying the techniques to their effects."""

import importlib
import pathlib

import numpy as np
import pytest

from repro.core import (
    CongestionField,
    InflationConfig,
    MomentumInflation,
    RDConfig,
    RoutabilityDrivenPlacer,
)
from repro.place import GlobalPlacer, GPConfig, initial_placement
from repro.route import GlobalRouter
from repro.synth import toy_design


class TestInflationDynamics:
    def test_persistent_congestion_saturates_at_rmax(self):
        infl = MomentumInflation(1)
        for _ in range(20):
            rates = infl.update(np.array([1.0]))
        assert rates[0] == pytest.approx(2.0)

    def test_escaped_cell_rate_decays_slower_than_present_mode(self):
        """The momentum keeps rates up after escape — the paper's point."""
        infl = MomentumInflation(2, InflationConfig(alpha=0.4))
        infl.update(np.array([0.9, 0.1]))
        r_hot = infl.rates[0]
        # cell 0 escapes to zero congestion; present-mode would reset
        # its rate to 1.0 immediately
        infl.update(np.array([0.0, 0.9]))
        assert infl.rates[0] >= r_hot  # stays inflated (no growth, no reset)

    def test_oscillating_congestion_bounded(self):
        infl = MomentumInflation(1)
        for k in range(30):
            infl.update(np.array([1.0 if k % 2 == 0 else 0.0]))
            assert 0.9 <= infl.rates[0] <= 2.0


class TestTechniqueEffects:
    @pytest.fixture()
    def congested(self):
        nl = toy_design(400, seed=17, utilization=0.75, bundle_fraction=0.15)
        initial_placement(nl, 0)
        gp = GlobalPlacer(nl, GPConfig(max_iters=300))
        gp.run()
        return nl, gp

    def test_inflation_reduces_peak_density_of_hotspots(self, congested):
        nl, gp = congested
        routing = GlobalRouter(gp.grid).route(nl)
        cong_at = gp.grid.value_at(routing.congestion_map, nl.x, nl.y)
        infl = MomentumInflation(nl.n_cells)
        infl.update(cong_at)
        gp.size_scale = infl.size_scale()
        gp.reset_solver()
        gp.run(max_iters=40, min_iters=40)
        # inflated hotspot cells spread: their local cell density drops
        sol = gp.solve_density()
        assert np.isfinite(sol.density).all()

    def test_congestion_gradient_moves_bundle_nets(self, congested):
        """With only DC active, cells on congested two-pin nets move."""
        nl, gp = congested
        routing = GlobalRouter(gp.grid).route(nl)
        from repro.core.netmove import two_pin_net_gradients

        fld = CongestionField(gp.grid, routing.utilization_map)
        gx, gy, info = two_pin_net_gradients(
            nl, gp.grid, routing.congestion_map, fld, 0.3
        )
        if info["active"].any():
            assert (np.abs(gx) + np.abs(gy)).max() > 0


class TestRDPlacerSafety:
    def test_never_worse_than_seed_in_loop_metric(self):
        """The checkpoint guarantees the in-loop routing score does not
        regress relative to the incoming placement."""
        from repro.wirelength import hpwl

        nl = toy_design(300, seed=23, utilization=0.7)
        cfg = RDConfig(gp=GPConfig(max_iters=250), max_rounds=4, iters_per_round=20)
        placer = RoutabilityDrivenPlacer(nl, cfg)
        result = placer.run()
        if result.rounds:
            # re-route the returned placement and score it
            ref = result.rounds[0].hpwl
            final_score = RoutabilityDrivenPlacer._routing_score(
                placer.router.route(nl), hpwl(nl), ref
            )
            assert final_score >= 0

    def test_best_round_recorded(self):
        nl = toy_design(250, seed=29, utilization=0.7)
        cfg = RDConfig(gp=GPConfig(max_iters=200), max_rounds=3, iters_per_round=15)
        result = RoutabilityDrivenPlacer(nl, cfg).run()
        assert -1 <= result.best_round <= result.n_rounds

    def test_budget_guard_caps_inflated_area(self):
        nl = toy_design(300, seed=31, utilization=0.85)
        cfg = RDConfig(gp=GPConfig(max_iters=150), max_rounds=2, iters_per_round=10)
        placer = RoutabilityDrivenPlacer(nl, cfg)
        rates = np.full(nl.n_cells, 2.0)
        adj = placer._budgeted_rates(rates)
        mv = nl.movable
        inflated = float((nl.cell_area[mv] * adj[mv]).sum())
        fixed_area = float(nl.cell_area[~mv].sum())
        budget = 0.95 * cfg.gp.target_density * (nl.die.area - fixed_area)
        assert inflated <= budget * 1.001


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "routability_flow",
            "congestion_analysis",
            "ablation_study",
            "pin_accessibility",
        ],
    )
    def test_example_module_has_main(self, name):
        root = pathlib.Path(__file__).resolve().parents[1] / "examples"
        spec = importlib.util.spec_from_file_location(name, root / f"{name}.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)

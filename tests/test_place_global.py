"""Global placer tests: convergence, hooks, filler compensation."""

import numpy as np
import pytest

from repro.place import (
    GlobalPlacer,
    GPConfig,
    converge_placement,
    initial_placement,
    scatter_fillers,
)
from repro.place.config import auto_grid_dim
from repro.wirelength import hpwl


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GPConfig(optimizer="sgd")
        with pytest.raises(ValueError):
            GPConfig(target_density=0.0)
        with pytest.raises(ValueError):
            GPConfig(max_iters=0)

    def test_auto_grid_dim(self):
        assert auto_grid_dim(10) == 16
        assert auto_grid_dim(300) == 32
        assert auto_grid_dim(10_000_000) == 256


class TestInitialPlacement:
    def test_centers_cells(self, toy120):
        initial_placement(toy120, seed=0)
        mv = toy120.movable
        cx, cy = toy120.die.center
        assert abs(toy120.x[mv].mean() - cx) < 0.2 * toy120.die.width
        assert abs(toy120.y[mv].mean() - cy) < 0.2 * toy120.die.height

    def test_deterministic(self, toy120):
        a = toy120.copy()
        b = toy120.copy()
        initial_placement(a, seed=5)
        initial_placement(b, seed=5)
        assert np.array_equal(a.x, b.x)

    def test_does_not_move_fixed(self, toy120):
        fixed = ~toy120.movable
        before = toy120.x[fixed].copy()
        initial_placement(toy120, seed=1)
        assert np.array_equal(toy120.x[fixed], before)


class TestFillers:
    def test_budget(self, toy120):
        fx, fy, fw, fh = scatter_fillers(toy120, target_density=0.9, seed=0)
        mv = toy120.movable
        fixed_area = toy120.cell_area[~mv].sum()
        free = toy120.die.area - fixed_area
        budget = free * 0.9 - toy120.cell_area[mv].sum()
        assert (fw * fh).sum() == pytest.approx(budget, rel=0.05)

    def test_no_fillers_when_full(self, toy120):
        fx, *_ = scatter_fillers(toy120, target_density=0.3, seed=0)
        # utilization ~0.6 > 0.3 target: no filler budget
        assert len(fx) == 0

    def test_fillers_inside_die(self, toy120):
        fx, fy, fw, fh = scatter_fillers(toy120, 0.9, 0)
        die = toy120.die
        assert (fx - fw / 2 >= die.xlo).all() and (fx + fw / 2 <= die.xhi).all()
        assert (fy - fh / 2 >= die.ylo).all() and (fy + fh / 2 <= die.yhi).all()


class TestPlacerRun:
    def test_overflow_decreases(self, toy300):
        initial_placement(toy300, 0)
        gp = GlobalPlacer(toy300, GPConfig(max_iters=600))
        hist = gp.run()
        ovfl = hist.series("overflow")
        assert ovfl[-1] < ovfl[0]
        assert ovfl[-1] < 0.25

    def test_history_keys(self, toy120):
        initial_placement(toy120, 0)
        gp = GlobalPlacer(toy120, GPConfig(max_iters=20))
        hist = gp.run()
        assert {"hpwl", "overflow", "energy", "step", "grad_norm"} <= set(hist.records[0])
        assert len(hist) == 20 or hist.final["overflow"] <= 0.07

    def test_adam_also_spreads(self, toy120):
        initial_placement(toy120, 0)
        gp = GlobalPlacer(toy120, GPConfig(max_iters=150, optimizer="adam"))
        hist = gp.run()
        assert hist.final["overflow"] < hist.records[0]["overflow"]

    def test_fixed_cells_never_move(self, toy120):
        fixed = ~toy120.movable
        before = toy120.x[fixed].copy()
        initial_placement(toy120, 0)
        GlobalPlacer(toy120, GPConfig(max_iters=60)).run()
        assert np.array_equal(toy120.x[fixed], before)

    def test_cells_stay_in_die(self, toy300):
        initial_placement(toy300, 0)
        GlobalPlacer(toy300, GPConfig(max_iters=100)).run()
        half_w = toy300.cell_width / 2
        mv = toy300.movable
        assert (toy300.x[mv] - half_w[mv] >= toy300.die.xlo - 1e-6).all()
        assert (toy300.x[mv] + half_w[mv] <= toy300.die.xhi + 1e-6).all()

    def test_run_bursts_keep_quality_once_converged(self, toy300):
        initial_placement(toy300, 0)
        gp = GlobalPlacer(toy300, GPConfig(max_iters=600))
        hist = gp.run()
        assert hist.final["overflow"] <= 0.15  # converged start
        before = hpwl(toy300)
        gp.run_bursts(4, 40)
        # from a converged state, rebalanced bursts must not blow up
        # the wirelength (they usually improve it slightly)
        assert hpwl(toy300) <= before * 1.10

    def test_converge_placement_function(self, toy120):
        initial_placement(toy120, 0)
        iters = converge_placement(toy120, GPConfig(max_iters=150), max_batches=3)
        assert iters > 0


class TestHooks:
    def _ready(self, nl, **cfg):
        initial_placement(nl, 0)
        return GlobalPlacer(nl, GPConfig(max_iters=30, **cfg))

    def test_size_scale_changes_density(self, toy120):
        gp = self._ready(toy120)
        sol1 = gp.solve_density()
        gp.size_scale = np.full(toy120.n_cells, 1.4)
        sol2 = gp.solve_density()
        # inflation raises local density (fillers shrink but cells grow)
        assert sol2.density.max() > sol1.density.max()

    def test_extra_static_charge_included(self, toy120):
        gp = self._ready(toy120)
        base = gp.solve_density().density.sum()
        extra = gp.grid.zeros()
        extra[2, 2] = 5.0
        gp.extra_static_charge = extra
        with_extra = gp.solve_density()
        # charge appears at the bin (filler compensation removes the
        # same total elsewhere, so check locally)
        assert with_extra.density[2, 2] > 0

    def test_extra_grad_fn_called(self, toy120):
        gp = self._ready(toy120)
        calls = []

        def hook():
            calls.append(1)
            return np.zeros(toy120.n_cells), np.zeros(toy120.n_cells)

        gp.extra_grad_fn = hook
        gp.run(max_iters=5, min_iters=5)
        assert len(calls) >= 5

    def test_filler_compensation_shrinks_with_inflation(self, toy120):
        gp = self._ready(toy120)
        s1 = gp._filler_compensation(float(toy120.cell_area[gp.mv_ids].sum()))
        s2 = gp._filler_compensation(float(toy120.cell_area[gp.mv_ids].sum()) * 1.3)
        assert s1 == pytest.approx(1.0)
        assert s2 < 1.0

    def test_reset_solver_reinitializes_weight(self, toy120):
        gp = self._ready(toy120)
        gp.run(max_iters=10, min_iters=10)
        assert gp.density_weight > 0
        gp.reset_solver()
        assert gp.density_weight == 0.0

"""Synthetic design generator and suite tests."""

import numpy as np
import pytest

from repro.netlist import compute_stats, validate_netlist
from repro.synth import SUITE, SynthConfig, generate_design, suite_design, suite_names, toy_design


class TestGenerator:
    def test_deterministic(self):
        a = generate_design(SynthConfig(name="x", n_cells=150, seed=3))
        b = generate_design(SynthConfig(name="x", n_cells=150, seed=3))
        assert np.array_equal(a.x, b.x)
        assert a.net_names == b.net_names
        assert np.array_equal(a.pin_offset_x, b.pin_offset_x)

    def test_name_changes_design(self):
        a = generate_design(SynthConfig(name="x", n_cells=150))
        b = generate_design(SynthConfig(name="y", n_cells=150))
        assert not np.array_equal(a.x, b.x)

    def test_structure_valid(self, toy120):
        validate_netlist(toy120)

    def test_counts(self, toy120):
        s = compute_stats(toy120)
        assert s.n_cells >= 120  # cells + macros + IO pads
        assert s.n_macros == 1
        assert s.n_nets > 120

    def test_utilization_near_target(self):
        cfg = SynthConfig(name="u", n_cells=800, utilization=0.7, n_macros=0)
        s = compute_stats(generate_design(cfg))
        assert s.utilization == pytest.approx(0.7, rel=0.15)

    def test_macros_fixed_and_disjoint(self):
        nl = generate_design(SynthConfig(name="m", n_cells=400, n_macros=4))
        ids = np.flatnonzero(nl.cell_macro)
        assert nl.cell_fixed[ids].all()
        rects = [nl.cell_rect(i) for i in ids]
        for a in range(len(rects)):
            for b in range(a + 1, len(rects)):
                assert not rects[a].intersects(rects[b])

    def test_io_pads_on_periphery(self, toy120):
        nl = toy120
        for i in range(nl.n_cells):
            if nl.cell_names[i].startswith("io"):
                on_edge = (
                    nl.x[i] < nl.die.xlo + 1
                    or nl.x[i] > nl.die.xhi - 1
                    or nl.y[i] < nl.die.ylo + 1
                    or nl.y[i] > nl.die.yhi - 1
                )
                assert on_edge

    def test_pg_rails_exist_and_horizontal(self, toy120):
        assert len(toy120.pg_rails) > 3
        assert all(r.horizontal for r in toy120.pg_rails)
        for r in toy120.pg_rails:
            assert r.rect.xlo == pytest.approx(toy120.die.xlo)
            assert r.rect.xhi == pytest.approx(toy120.die.xhi)

    def test_vertical_rails_option(self):
        nl = generate_design(
            SynthConfig(name="v", n_cells=200, pg_vertical_pitch=5.0)
        )
        assert any(not r.horizontal for r in nl.pg_rails)

    def test_bundles_are_two_pin(self):
        nl = generate_design(SynthConfig(name="b", n_cells=300, bundle_fraction=0.2))
        bundles = [e for e, n in enumerate(nl.net_names) if n.startswith("bundle")]
        assert bundles
        degrees = nl.net_degrees()
        assert all(degrees[e] == 2 for e in bundles)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynthConfig(n_cells=2)
        with pytest.raises(ValueError):
            SynthConfig(utilization=1.5)
        with pytest.raises(ValueError):
            SynthConfig(cluster_affinity=1.5)


class TestSuite:
    def test_twenty_designs(self):
        assert len(suite_names()) == 20
        assert suite_names()[0] == "des_perf_1"
        assert "superblue12" in suite_names()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            suite_design("nonexistent")

    def test_scale(self):
        full = suite_design("fft_1", scale=1.0)
        half = suite_design("fft_1", scale=0.5)
        assert half.n_cells < full.n_cells

    def test_fence_metadata(self):
        assert SUITE["des_perf_a"].fence_removed
        assert not SUITE["fft_1"].fence_removed

    @pytest.mark.parametrize("name", ["fft_1", "pci_bridge32_b", "des_perf_b"])
    def test_small_designs_valid(self, name):
        nl = suite_design(name, scale=0.3)
        validate_netlist(nl)

    def test_toy_overrides(self):
        nl = toy_design(80, n_macros=0, utilization=0.5)
        assert compute_stats(nl).n_macros == 0

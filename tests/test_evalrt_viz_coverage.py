"""Coverage for the evaluation and visualization layers.

Complements ``test_evalrt.py`` / ``test_viz_stt_cli.py`` with the
paths those suites skip: report edge cases (missing rows, zero
references, exclusions), evaluator row plumbing, overlapping-rail band
merging, and deterministic render smoke checks for both viz backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evalrt.config import EvalConfig
from repro.evalrt.evaluator import evaluate_routing, evaluation_grid
from repro.evalrt.pinaccess import (
    PinAccessReport,
    pin_access_violations,
    pins_under_rails,
)
from repro.evalrt.report import MetricRow, format_table, ratio_row
from repro.geometry import Grid2D, Rect
from repro.netlist import CellSpec, Netlist, NetSpec, PGRailSpec, PinSpec
from repro.place.config import auto_grid_dim
from repro.place.initial import initial_placement
from repro.synth import toy_design
from repro.viz import (
    ascii_heatmap,
    placement_svg,
    save_heatmap_ppm,
    save_placement_svg,
)


@pytest.fixture(scope="module")
def placed150():
    nl = toy_design(150, seed=5)
    initial_placement(nl, 0)
    return nl


def _rows():
    return [
        MetricRow("d1", "ref", {"DRWL": 100.0, "#DRVs": 10.0}),
        MetricRow("d1", "new", {"DRWL": 90.0, "#DRVs": 5.0}),
        MetricRow("d2", "ref", {"DRWL": 200.0, "#DRVs": 4.0}),
        MetricRow("d2", "new", {"DRWL": 220.0, "#DRVs": 2.0}),
    ]


class TestReportEdgeCases:
    def test_metric_row_get_coerces_to_float(self):
        row = MetricRow("d", "p", {"DRWL": np.float64(1.5), "n": 3})
        assert row.get("DRWL") == 1.5
        assert isinstance(row.get("n"), float)

    def test_ratio_row_basic(self):
        ratios = ratio_row(_rows(), "ref", keys=("DRWL", "#DRVs"))
        assert ratios["ref"]["DRWL"] == pytest.approx(1.0)
        assert ratios["new"]["DRWL"] == pytest.approx((0.9 + 1.1) / 2)
        assert ratios["new"]["#DRVs"] == pytest.approx((0.5 + 0.5) / 2)

    def test_ratio_row_skips_designs_missing_either_placer(self):
        rows = _rows() + [MetricRow("d3", "new", {"DRWL": 1.0, "#DRVs": 1.0})]
        ratios = ratio_row(rows, "ref", keys=("DRWL",))
        # d3 has no reference row, so the new-placer mean is unchanged
        assert ratios["new"]["DRWL"] == pytest.approx((0.9 + 1.1) / 2)

    def test_ratio_row_zero_reference_yields_nan(self):
        rows = [
            MetricRow("d", "ref", {"#DRVs": 0.0}),
            MetricRow("d", "new", {"#DRVs": 3.0}),
        ]
        ratios = ratio_row(rows, "ref", keys=("#DRVs",))
        assert np.isnan(ratios["new"]["#DRVs"])

    def test_ratio_row_exclusion(self):
        exclude = {"DRWL": {("d2", "new")}}
        ratios = ratio_row(_rows(), "ref", keys=("DRWL",), exclude=exclude)
        assert ratios["new"]["DRWL"] == pytest.approx(0.9)

    def test_format_table_marks_missing_pairs(self):
        rows = _rows()[:3]  # d2 has no "new" row
        text = format_table(rows, keys=("DRWL",))
        d2_line = next(ln for ln in text.splitlines() if ln.startswith("d2"))
        assert "-" in d2_line

    def test_format_table_footer_only_with_reference(self):
        keys = ("DRWL", "#DRVs")
        assert "Avg. Ratio" not in format_table(_rows(), keys=keys)
        with_ref = format_table(_rows(), keys=keys, reference_placer="ref")
        assert "Avg. Ratio" in with_ref.splitlines()[-1]


class TestEvaluatorPlumbing:
    def test_as_row_keys(self, placed150):
        ev = evaluate_routing(placed150)
        row = ev.as_row()
        assert set(row) == {"DRWL", "#DRVias", "#DRVs", "RT"}
        assert row["DRWL"] == ev.drwl

    def test_evaluation_grid_follows_design_size(self, placed150):
        cfg = EvalConfig()
        grid = evaluation_grid(placed150, cfg)
        expected = min(
            auto_grid_dim(placed150.n_cells) * cfg.grid_dim_factor, 512
        )
        assert grid.nx == grid.ny == expected

    def test_explicit_grid_is_used(self, placed150):
        grid = Grid2D(placed150.die, 24, 24)
        ev = evaluate_routing(placed150, grid=grid)
        assert ev.routing.grid.h_cap.shape == (24, 24)

    def test_drv_composition(self, placed150):
        cfg = EvalConfig()
        ev = evaluate_routing(placed150, cfg)
        recomposed = (
            ev.overflow_drvs
            + cfg.covered_pin_drv_weight * ev.pin_report.covered_pin_drvs
            + cfg.crowding_drv_weight * ev.pin_report.crowding_drvs
        )
        assert ev.n_drvs == pytest.approx(round(recomposed))
        assert ev.overflow_drvs >= 0.0

    def test_pin_access_report_total(self):
        report = PinAccessReport(
            covered_pin_drvs=1.5, crowding_drvs=2.5, n_covered_pins=3
        )
        assert report.total == pytest.approx(4.0)


class TestPinAccessBands:
    def _netlist_with_rails(self, rails):
        die = Rect(0, 0, 10, 10)
        cells = [
            CellSpec("a", 1.0, 1.0, x=2.0, y=1.0),
            CellSpec("b", 1.0, 1.0, x=2.0, y=5.0),
        ]
        nets = [NetSpec("n", [PinSpec("a"), PinSpec("b")])]
        return Netlist.from_specs("r", die, cells, nets, pg_rails=rails)

    def test_overlapping_rails_merge_into_one_band(self):
        # two horizontal rails overlapping around y=1; parity search
        # over unmerged bands would wrongly report the overlap as "out"
        rails = [
            PGRailSpec(rect=Rect(0, 0.8, 10, 1.1), horizontal=True),
            PGRailSpec(rect=Rect(0, 1.0, 10, 1.3), horizontal=True),
        ]
        nl = self._netlist_with_rails(rails)
        covered = pins_under_rails(nl, margin_fraction=0.0)
        assert covered[0]  # pin at y=1.0 inside the merged band
        assert not covered[1]

    def test_vertical_rails_cover_by_x(self):
        rails = [PGRailSpec(rect=Rect(1.8, 0, 2.2, 10), horizontal=False)]
        nl = self._netlist_with_rails(rails)
        covered = pins_under_rails(nl, margin_fraction=0.0)
        assert covered.all()  # both pins sit at x=2.0

    def test_no_pins_short_circuits(self):
        die = Rect(0, 0, 10, 10)
        nl = Netlist.from_specs(
            "empty", die, [CellSpec("a", 1.0, 1.0, x=5.0, y=5.0)], []
        )
        grid = Grid2D(die, 4, 4)
        report = pin_access_violations(nl, grid, grid.zeros())
        assert report.total == 0.0 and report.n_covered_pins == 0


class TestVizSmoke:
    def test_ascii_heatmap_flat_map_renders_blank(self):
        art = ascii_heatmap(np.zeros((8, 8)), width=8)
        assert set("".join(art.splitlines())) <= {" "}

    def test_ascii_heatmap_title_and_vmax(self):
        art = ascii_heatmap(np.ones((8, 8)), width=8, vmax=2.0, title="T")
        lines = art.splitlines()
        assert lines[0] == "T"
        assert "@" not in art  # saturation point is vmax, map sits at half

    def test_ppm_header_matches_scaled_dims(self, tmp_path):
        path = tmp_path / "m.ppm"
        save_heatmap_ppm(np.random.default_rng(0).random((6, 4)),
                         str(path), pixel_scale=3)
        data = path.read_bytes()
        header, _, rest = data.partition(b"\n")
        assert header == b"P6 18 12 255"
        assert len(rest) == 18 * 12 * 3

    def test_ppm_flat_map_does_not_divide_by_zero(self, tmp_path):
        path = tmp_path / "flat.ppm"
        save_heatmap_ppm(np.zeros((4, 4)), str(path))
        assert path.read_bytes().startswith(b"P6")

    def test_svg_draws_every_cell_and_rail(self, placed150):
        svg = placement_svg(placed150, show_rails=True)
        n_rects = svg.count("<rect")
        # background + cells + rails (no congestion overlay)
        assert n_rects == 1 + placed150.n_cells + len(placed150.pg_rails)
        assert svg.rstrip().endswith("</svg>")

    def test_svg_rails_toggle(self, placed150):
        with_r = placement_svg(placed150, show_rails=True)
        without = placement_svg(placed150, show_rails=False)
        assert with_r.count("<rect") - without.count("<rect") == len(
            placed150.pg_rails
        )

    def test_svg_congestion_overlay_adds_shading(self, placed150):
        grid = Grid2D(placed150.die, 8, 8)
        cong = grid.zeros()
        cong[3, 3] = 2.0
        base = placement_svg(placed150, show_rails=False)
        shaded = placement_svg(
            placed150, congestion=cong, grid=grid, show_rails=False
        )
        assert shaded.count("<rect") == base.count("<rect") + 1

    def test_save_placement_svg_writes_file(self, placed150, tmp_path):
        path = tmp_path / "p.svg"
        save_placement_svg(placed150, str(path), width_px=200)
        text = path.read_text()
        assert text.startswith("<svg") and text.rstrip().endswith("</svg>")

    def test_render_is_deterministic(self, placed150):
        assert placement_svg(placed150) == placement_svg(placed150)

"""End-to-end sweep runs: determinism, supervision, CLI, service overrides."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dse.grid import parse_spec
from repro.dse.runner import run_grid, run_unit
from repro.dse.store import RunDB

#: Minutes-not-hours settings: one tiny design, short flows.
RAW = {
    "name": "e2e",
    "designs": ["des_perf_1"],
    "grid": {"inflation.alpha": [0.2, 0.6]},
    "paired": {"rd.max_rounds": [1], "rd.iters_per_round": [10],
               "gp.max_iters": [20]},
    "scale": 0.1,
    "placers": ["Xplace"],
}

TIME_METRICS = {"PT", "RT"}


def comparable_rows(payloads: list) -> list:
    """Unit rows with wall-clock metrics stripped (determinism compares)."""
    return [
        {
            "unit_id": p["unit_id"],
            "error": p["error"],
            "rows": [
                {"design": r["design"], "placer": r["placer"],
                 "metrics": {k: v for k, v in r["metrics"].items()
                             if k not in TIME_METRICS}}
                for r in p["rows"]
            ],
        }
        for p in payloads
    ]


@pytest.fixture(scope="module")
def inprocess_result(tmp_path_factory):
    out = tmp_path_factory.mktemp("dse_run")
    spec = parse_spec(RAW)
    return run_grid(spec, jobs=1, out_dir=out / "out", db_path=out / "db.sqlite"), out


class TestRunGrid:
    def test_no_errors_and_outputs_written(self, inprocess_result):
        result, out = inprocess_result
        assert result.errors == []
        assert (out / "out" / "manifest.json").exists()
        assert (out / "out" / "sweep.jsonl").exists()
        assert len(list((out / "out" / "units").glob("*.json"))) == 2

    def test_sweep_events_emitted(self, inprocess_result):
        result, _ = inprocess_result
        kinds = [e["kind"] for e in result.events]
        assert kinds.count("dse.sweep") == 1
        assert kinds.count("dse.shard") == 2

    def test_db_ingested_deterministically(self, inprocess_result, tmp_path):
        result, out = inprocess_result
        again = run_grid(parse_spec(RAW), jobs=1, db_path=tmp_path / "db.sqlite")
        assert comparable_rows(result.payloads) == comparable_rows(again.payloads)
        with RunDB(out / "db.sqlite") as db:
            assert db.summary()["counts"]["units"] == 2
            trend = db.trend("inflation.alpha", "DRWL")
            assert [t["value"] for t in trend] == [0.2, 0.6]

    def test_supervised_matches_inprocess(self, inprocess_result):
        result, _ = inprocess_result
        supervised = run_grid(parse_spec(RAW), jobs=2)
        assert comparable_rows(supervised.payloads) == \
            comparable_rows(result.payloads)
        kinds = {e["kind"] for e in supervised.events}
        assert {"dse.sweep", "dse.shard", "job.submit", "job.end"} <= kinds

    def test_failed_unit_is_captured_not_raised(self):
        spec = parse_spec({**RAW, "grid": {}, "paired": {},
                           "placers": ["NoSuchPlacer"]})
        result = run_grid(spec, jobs=1)
        assert len(result.errors) == 1
        assert "NoSuchPlacer" in result.errors[0][1]

    def test_run_unit_respects_knobs(self, inprocess_result):
        result, _ = inprocess_result
        payload = run_unit(result.units[0])
        assert payload["knobs"]["inflation.alpha"] == 0.2
        assert payload["rows"] and payload["error"] is None


class TestCli:
    def test_run_query_report_round_trip(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps(RAW))
        db = tmp_path / "runs.sqlite"
        assert main(["dse", "run", "--grid", str(grid), "--jobs", "1",
                     "--out-dir", str(tmp_path / "out"),
                     "--db", str(db)]) == 0
        assert main(["dse", "query", "summary", "--db", str(db)]) == 0
        assert '"units": 2' in capsys.readouterr().out
        assert main(["dse", "query", "trend", "--db", str(db),
                     "--knob", "inflation.alpha", "--metric", "DRWL"]) == 0
        assert main(["dse", "ingest", "--db", str(db),
                     str(tmp_path / "out"),
                     "--metrics-out", str(tmp_path / "ingest.jsonl")]) == 0
        lines = (tmp_path / "ingest.jsonl").read_text().splitlines()
        assert any('"kind": "dse.ingest"' in ln or '"kind":"dse.ingest"' in ln
                   for ln in lines)
        assert main(["dse", "report", "--db", str(db),
                     "--out", str(tmp_path / "rep")]) == 0
        assert (tmp_path / "rep" / "index.html").exists()


class TestServiceOverrides:
    def test_payload_validation_accepts_known_knobs(self):
        from repro.service.runner import validate_job_payload

        payload = {"kind": "place", "request": {
            "input": "x.bl", "routability": True,
            "overrides": {"inflation.alpha": 0.3}}}
        assert validate_job_payload(payload) == "place"

    def test_payload_validation_rejects_unknown_knobs(self):
        from repro.service.runner import validate_job_payload

        payload = {"kind": "place", "request": {
            "input": "x.bl", "overrides": {"bogus.knob": 1}}}
        with pytest.raises(ValueError, match="bad 'overrides'"):
            validate_job_payload(payload)

    def test_place_request_applies_overrides(self, tmp_path):
        from repro.io.bookshelf import save_design
        from repro.service.runner import PlaceRequest, run_place_job
        from repro.synth.suite import suite_design

        design = tmp_path / "tiny.bl"
        save_design(suite_design("des_perf_1", scale=0.1, seed=0), str(design))
        req = PlaceRequest(
            input=str(design), out=str(tmp_path / "placed.bl"),
            routability=True, iters=20, rounds=1, iters_per_round=10,
            overrides={"inflation.alpha": 0.3, "rd.iters_per_round": 5},
        )
        outcome = run_place_job(req)
        assert outcome.n_rounds >= 1
        assert (tmp_path / "placed.bl").exists()

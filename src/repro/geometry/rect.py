"""Axis-aligned rectangles.

:class:`Rect` is the basic geometric currency of the library: die area,
cells, macros, bins, G-cells and PG-rail shapes are all rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle with ``xlo <= xhi`` and ``ylo <= yhi``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(f"degenerate Rect bounds: {self}")

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        """``width * height``."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Midpoint ``(cx, cy)``."""
        return (0.5 * (self.xlo + self.xhi), 0.5 * (self.ylo + self.yhi))

    def contains(self, x: float, y: float) -> bool:
        """Whether point ``(x, y)`` lies in the closed rectangle."""
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles overlap with positive area."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or ``None`` when the overlap is empty."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi <= xlo or yhi <= ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection with ``other`` (0 when disjoint)."""
        w = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        h = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def expanded(self, fraction: float) -> "Rect":
        """Rectangle grown by ``fraction`` of its size on every side.

        Used by PG-rail selection, which expands each macro bounding
        box by 10% (``fraction=0.1``) before cutting rails.
        """
        dx = self.width * fraction
        dy = self.height * fraction
        return Rect(self.xlo - dx, self.ylo - dy, self.xhi + dx, self.yhi + dy)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy shifted by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def clipped_to(self, other: "Rect") -> "Rect | None":
        """Alias of :meth:`intersection`, reads better for clipping."""
        return self.intersection(other)

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rect from its center point and dimensions."""
        return Rect(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

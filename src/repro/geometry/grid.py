"""Uniform 2-D grid mapping between continuous coordinates and bins.

Both the placement bin grid and the routing G-cell grid are instances of
:class:`Grid2D`.  The paper predefines G-cells and bins to have the same
dimension (Sec. III-C) so congestion values can be mapped bin-to-bin; we
capture that by sharing a single grid object between the density engine
and the router whenever the paper requires it.

Conventions
-----------
* ``nx`` columns indexed by ``i`` along x, ``ny`` rows indexed by ``j``
  along y.
* Scalar maps are numpy arrays of shape ``(nx, ny)`` indexed ``[i, j]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.utils.contracts import CONTRACTS


def _sanitize_fractional(fx, site: str, axis: str):
    """Replace non-finite fractional bin coordinates deterministically.

    ``np.floor(nan).astype(int64)`` is platform-defined (INT64_MIN on
    x86, 0 on ARM), so the downstream clip used to hide garbage that
    differed between hosts.  NaN maps to 0 (the low-edge bin) and
    +/-Inf saturates to the edge bins on every platform; under active
    contracts the non-finite input is reported first.
    """
    finite = np.isfinite(fx)
    if bool(np.all(finite)):
        return fx
    if CONTRACTS.enabled:
        n_bad = int(np.size(finite) - np.count_nonzero(finite))
        CONTRACTS.violate(
            site,
            "grid.finite_coords",
            f"{n_bad} non-finite {axis}-coordinate(s)",
        )
    # +/-Inf saturate to +/-2^62: far beyond any grid (so the clip maps
    # them to the edge bins) yet exactly castable to int64, unlike
    # float64 max whose int cast overflows platform-dependently
    return np.nan_to_num(fx, nan=0.0, posinf=2.0**62, neginf=-(2.0**62))


@dataclass(frozen=True)
class Grid2D:
    """Uniform grid over a rectangular region."""

    region: Rect
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid must have positive dimensions: {self.nx}x{self.ny}")
        if self.region.width <= 0 or self.region.height <= 0:
            raise ValueError("grid region must have positive area")

    @property
    def dx(self) -> float:
        """Bin width."""
        return self.region.width / self.nx

    @property
    def dy(self) -> float:
        """Bin height."""
        return self.region.height / self.ny

    @property
    def bin_area(self) -> float:
        """Area of one bin, ``dx * dy``."""
        return self.dx * self.dy

    @property
    def shape(self) -> tuple[int, int]:
        """Bin-count tuple ``(nx, ny)``."""
        return (self.nx, self.ny)

    def index_of(self, x, y):
        """Bin indices ``(i, j)`` containing point(s) ``(x, y)``.

        Accepts scalars or numpy arrays; points outside the region are
        clamped to the boundary bins.  Non-finite coordinates are
        sanitized deterministically (NaN -> bin 0, +/-Inf -> the edge
        bins) and reported when contracts are active.
        """
        fx = (np.asarray(x, dtype=np.float64) - self.region.xlo) / self.dx
        fy = (np.asarray(y, dtype=np.float64) - self.region.ylo) / self.dy
        fx = _sanitize_fractional(fx, "grid.index_of", "x")
        fy = _sanitize_fractional(fy, "grid.index_of", "y")
        i = np.clip(np.floor(fx).astype(np.int64), 0, self.nx - 1)
        j = np.clip(np.floor(fy).astype(np.int64), 0, self.ny - 1)
        if np.isscalar(x) or (hasattr(i, "ndim") and i.ndim == 0):
            return int(i), int(j)
        return i, j

    def bin_rect(self, i: int, j: int) -> Rect:
        """Rectangle of bin ``(i, j)``."""
        x0 = self.region.xlo + i * self.dx
        y0 = self.region.ylo + j * self.dy
        return Rect(x0, y0, x0 + self.dx, y0 + self.dy)

    def center_of(self, i, j):
        """Continuous center coordinates of bin(s) ``(i, j)``."""
        cx = self.region.xlo + (np.asarray(i) + 0.5) * self.dx
        cy = self.region.ylo + (np.asarray(j) + 0.5) * self.dy
        return cx, cy

    def centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid arrays (shape ``(nx, ny)``) of all bin centers."""
        xs = self.region.xlo + (np.arange(self.nx) + 0.5) * self.dx
        ys = self.region.ylo + (np.arange(self.ny) + 0.5) * self.dy
        return np.meshgrid(xs, ys, indexing="ij")

    def zeros(self) -> np.ndarray:
        """A float64 scalar map of zeros for this grid."""
        return np.zeros((self.nx, self.ny), dtype=np.float64)

    def value_at(self, scalar_map: np.ndarray, x, y):
        """Sample a scalar map at continuous point(s) ``(x, y)``.

        Nearest-bin (piecewise constant) lookup, which is how the paper
        reads 'the congestion value of the G-cell under which the cell's
        center position is located'.
        """
        if scalar_map.shape != (self.nx, self.ny):
            raise ValueError(
                f"map shape {scalar_map.shape} != grid shape {(self.nx, self.ny)}"
            )
        i, j = self.index_of(x, y)
        return scalar_map[i, j]

    def bilinear_at(self, scalar_map: np.ndarray, x, y):
        """Sample a scalar map with bilinear interpolation between bin centers.

        Used for evaluating smooth field maps (e.g. the congestion
        electric field) at arbitrary cell / virtual-cell positions.
        """
        if scalar_map.shape != (self.nx, self.ny):
            raise ValueError(
                f"map shape {scalar_map.shape} != grid shape {(self.nx, self.ny)}"
            )
        fx = (np.asarray(x, dtype=np.float64) - self.region.xlo) / self.dx - 0.5
        fy = (np.asarray(y, dtype=np.float64) - self.region.ylo) / self.dy - 0.5
        # np.clip passes NaN through and np.floor(nan).astype(int64) is
        # platform-defined; sanitize before clipping
        fx = _sanitize_fractional(fx, "grid.bilinear_at", "x")
        fy = _sanitize_fractional(fy, "grid.bilinear_at", "y")
        fx = np.clip(fx, 0.0, self.nx - 1.0)
        fy = np.clip(fy, 0.0, self.ny - 1.0)
        i0 = np.floor(fx).astype(np.int64)
        j0 = np.floor(fy).astype(np.int64)
        i1 = np.minimum(i0 + 1, self.nx - 1)
        j1 = np.minimum(j0 + 1, self.ny - 1)
        tx = fx - i0
        ty = fy - j0
        v = (
            scalar_map[i0, j0] * (1 - tx) * (1 - ty)
            + scalar_map[i1, j0] * tx * (1 - ty)
            + scalar_map[i0, j1] * (1 - tx) * ty
            + scalar_map[i1, j1] * tx * ty
        )
        return v

"""Planar geometry primitives: rectangles, segments, uniform grids."""

from repro.geometry.rect import Rect
from repro.geometry.grid import Grid2D
from repro.geometry.segment import (
    sample_segment,
    segment_length,
    unit_normal,
)

__all__ = ["Rect", "Grid2D", "sample_segment", "segment_length", "unit_normal"]

"""Segment helpers used by the two-pin net moving technique (Alg. 1).

The paper samples ``k`` candidate points proportionally along the
pin-to-pin segment (Eq. 6-7), then needs the segment length ``L`` and a
unit normal oriented to form an acute angle with the congestion gradient
at the virtual cell (Fig. 3).
"""

from __future__ import annotations

import math

import numpy as np


def segment_length(p1: tuple[float, float], p2: tuple[float, float]) -> float:
    """Euclidean length ``L`` of segment ``p1 p2``."""
    return math.hypot(p2[0] - p1[0], p2[1] - p1[1])


def sample_segment(
    p1: tuple[float, float],
    p2: tuple[float, float],
    k: int,
) -> np.ndarray:
    """``k`` interior points per Eq. (7): ``p1 + i/(k+1) (p2-p1)``, i=1..k.

    Returns an array of shape ``(k, 2)``; empty when ``k <= 0``.
    """
    if k <= 0:
        return np.empty((0, 2), dtype=np.float64)
    t = np.arange(1, k + 1, dtype=np.float64) / (k + 1)
    x = p1[0] + t * (p2[0] - p1[0])
    y = p1[1] + t * (p2[1] - p1[1])
    return np.stack([x, y], axis=1)


def unit_normal(
    p1: tuple[float, float],
    p2: tuple[float, float],
    toward: tuple[float, float] | None = None,
) -> tuple[float, float]:
    """Unit vector perpendicular to segment ``p1 p2``.

    When ``toward`` is given, the normal is oriented to form an acute
    (non-obtuse) angle with that vector, matching line 5 of Alg. 1 where
    the normal must point along the congestion gradient side of the
    segment.  Degenerate (zero-length) segments return the normalized
    ``toward`` direction itself, or ``(0, 0)`` if that is also zero.
    """
    dx = p2[0] - p1[0]
    dy = p2[1] - p1[1]
    norm = math.hypot(dx, dy)
    if norm == 0.0:
        if toward is None:
            return (0.0, 0.0)
        tnorm = math.hypot(toward[0], toward[1])
        if tnorm == 0.0:
            return (0.0, 0.0)
        return (toward[0] / tnorm, toward[1] / tnorm)
    nx, ny = -dy / norm, dx / norm
    if toward is not None and (nx * toward[0] + ny * toward[1]) < 0.0:
        nx, ny = -nx, -ny
    return (nx, ny)

"""Experiment harness regenerating the paper's tables and figures."""

from repro.bench.harness import (
    DesignOutcome,
    bench_payload,
    run_ablation_on_design,
    run_design,
    run_suite,
    table_rows,
    write_bench_json,
)

__all__ = [
    "DesignOutcome",
    "bench_payload",
    "run_design",
    "run_suite",
    "run_ablation_on_design",
    "table_rows",
    "write_bench_json",
]

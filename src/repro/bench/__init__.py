"""Experiment harness regenerating the paper's tables and figures."""

from repro.bench.harness import (
    DesignOutcome,
    run_ablation_on_design,
    run_design,
    run_suite,
    table_rows,
)

__all__ = [
    "DesignOutcome",
    "run_design",
    "run_suite",
    "run_ablation_on_design",
    "table_rows",
]

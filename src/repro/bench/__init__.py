"""Experiment harness regenerating the paper's tables and figures.

:mod:`repro.bench.harness` runs placers and evaluations sequentially;
:mod:`repro.bench.parallel` shards a multi-design sweep across a
process pool with per-design failure isolation and merged telemetry
(CLI: ``python -m repro bench --jobs N``).
"""

from repro.bench.harness import (
    DesignOutcome,
    bench_payload,
    run_ablation_on_design,
    run_design,
    run_suite,
    table_rows,
    write_bench_json,
)
from repro.bench.parallel import (
    TABLE2_DESIGNS,
    DesignRun,
    SweepResult,
    SweepTask,
    merge_event_segments,
    run_sweep,
    run_sweep_task,
    write_events_jsonl,
)

__all__ = [
    "DesignOutcome",
    "DesignRun",
    "SweepResult",
    "SweepTask",
    "TABLE2_DESIGNS",
    "bench_payload",
    "merge_event_segments",
    "run_design",
    "run_suite",
    "run_ablation_on_design",
    "run_sweep",
    "run_sweep_task",
    "table_rows",
    "write_bench_json",
    "write_events_jsonl",
]

"""Run placers over designs and collect Table I / Table II rows.

The evaluation contract mirrors the paper's: every placer runs from the
same input netlist, and every resulting placement is scored by the same
routing-outcome evaluator (same grid, same settings).

Besides the metric rows, every flow carries its per-stage wall-clock
profile (:mod:`repro.utils.profile`); :func:`bench_payload` /
:func:`write_bench_json` serialise metrics *and* stage breakdowns so
``BENCH_*.json`` files track where the time goes, not just how much.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.baselines.flows import (
    ablation_config,
    make_gp_seed,
    run_flow,
    run_ours,
    run_xplace,
    run_xplace_route,
)
from repro.core.rd_placer import RDConfig
from repro.evalrt.config import EvalConfig
from repro.evalrt.evaluator import evaluate_routing, evaluation_grid
from repro.evalrt.report import MetricRow
from repro.netlist.netlist import Netlist
from repro.place.config import GPConfig
from repro.synth.suite import suite_design, suite_names
from repro.utils.logging import get_logger

logger = get_logger("bench.harness")

PLACERS = ("Xplace", "Xplace-Route", "Ours")


@dataclass
class DesignOutcome:
    """All flows and evaluations of one design."""

    design: str
    flows: dict = field(default_factory=dict)  # placer -> FlowResult
    evals: dict = field(default_factory=dict)  # placer -> RoutingEvaluation

    def row(self, placer: str) -> MetricRow:
        """The Table I metric row of one placer on this design."""
        ev = self.evals[placer]
        fl = self.flows[placer]
        return MetricRow(
            design=self.design,
            placer=placer,
            metrics={
                "DRWL": ev.drwl,
                "#DRVias": ev.n_vias,
                "#DRVs": ev.n_drvs,
                "PT": fl.placement_time,
                "RT": ev.routing_time,
            },
        )


def _default_gp() -> GPConfig:
    return GPConfig()


def _default_rd(gp: GPConfig) -> RDConfig:
    return RDConfig(gp=gp)


def flow_checkpoint_path(checkpoint_dir: str | None, label: str) -> str | None:
    """Per-flow checkpoint file inside a design's checkpoint directory.

    ``None`` in, ``None`` out — callers thread an optional directory
    without branching.  The label (placer or ablation-row name) becomes
    the filename, so every flow of a design has its own resume point.
    """
    if not checkpoint_dir:
        return None
    os.makedirs(checkpoint_dir, exist_ok=True)
    return os.path.join(checkpoint_dir, f"{label}.npz")


def run_design(
    netlist: Netlist,
    placers: tuple = PLACERS,
    gp_config: GPConfig | None = None,
    rd_config: RDConfig | None = None,
    eval_config: EvalConfig | None = None,
    metrics=None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> DesignOutcome:
    """Run the requested placers on one design and evaluate each.

    ``metrics`` (a :class:`~repro.utils.metrics.MetricsRegistry`)
    receives the telemetry of every flow run here; one registry can
    span a whole suite so the resulting stream/report covers the full
    bench session.

    With ``checkpoint_dir`` set, each routability-driven flow writes
    its loop state there (one ``<placer>.npz`` per flow) and — with
    ``resume`` — continues from it, which is how supervised sweep
    retries warm-start instead of recomputing finished rounds.
    """
    gp = gp_config or _default_gp()
    rd = rd_config or _default_rd(gp)
    ev_cfg = eval_config or EvalConfig()
    grid = evaluation_grid(netlist, ev_cfg)
    seed_gp = make_gp_seed(netlist, gp, metrics=metrics)

    outcome = DesignOutcome(design=netlist.name)
    for placer in placers:
        logger.info("running %s on %s", placer, netlist.name)
        ckpt = flow_checkpoint_path(checkpoint_dir, placer)
        if placer == "Xplace":
            flow = run_xplace(netlist, gp, seed_gp)
        elif placer == "Xplace-Route":
            flow = run_xplace_route(
                netlist, rd, seed_gp, metrics=metrics,
                checkpoint_path=ckpt, resume=resume,
            )
        elif placer == "Ours":
            flow = run_ours(
                netlist, rd, seed_gp, metrics=metrics,
                checkpoint_path=ckpt, resume=resume,
            )
        else:
            raise ValueError(f"unknown placer {placer!r}")
        outcome.flows[placer] = flow
        outcome.evals[placer] = evaluate_routing(flow.netlist, ev_cfg, grid)
    return outcome


def run_suite(
    names: list | None = None,
    placers: tuple = PLACERS,
    scale: float = 1.0,
    seed: int = 0,
    gp_config: GPConfig | None = None,
    rd_config: RDConfig | None = None,
    eval_config: EvalConfig | None = None,
    metrics=None,
) -> list:
    """Run placers over (a subset of) the Table I suite."""
    outcomes = []
    for name in names or suite_names():
        netlist = suite_design(name, scale=scale, seed=seed)
        outcomes.append(
            run_design(
                netlist, placers, gp_config, rd_config, eval_config, metrics
            )
        )
    return outcomes


def table_rows(outcomes: list) -> list:
    """Flatten outcomes into :class:`MetricRow` lists for reporting."""
    rows = []
    for outcome in outcomes:
        for placer in outcome.flows:
            rows.append(outcome.row(placer))
    return rows


def bench_payload(
    outcomes: list, extra: dict | None = None, metrics=None
) -> dict:
    """JSON-ready bench record: metric rows plus per-flow stage profiles.

    When ``metrics`` is a live registry, its
    :class:`~repro.utils.metrics.MetricsReport` summary is embedded
    under ``"telemetry"``.
    """
    rows = [
        {"design": r.design, "placer": r.placer, "metrics": r.metrics}
        for r in table_rows(outcomes)
    ]
    profiles = {
        outcome.design: {
            placer: flow.profile for placer, flow in outcome.flows.items()
        }
        for outcome in outcomes
    }
    payload = {"rows": rows, "profiles": profiles, "kernels": kernel_info()}
    if metrics is not None and getattr(metrics, "enabled", False):
        from repro.utils.metrics import MetricsReport

        payload["telemetry"] = MetricsReport.from_registry(metrics).as_dict()
    if extra:
        payload.update(extra)
    return payload


def kernel_info() -> dict:
    """Active kernel-backend record for bench payloads.

    Captures the requested name (flag/env), the resolved backend with
    its auto-tune decisions, and numba availability — enough to
    attribute any speed difference between two bench runs to the
    kernel layer.
    """
    from repro import kernels

    return {
        "requested": kernels.requested_backend(),
        "backend": kernels.get_backend().describe(),
        "numba_available": kernels.numba_available(),
    }


def write_bench_json(
    path: str, outcomes: list, extra: dict | None = None, metrics=None
) -> dict:
    """Write :func:`bench_payload` to ``path`` (parent dirs created)."""
    payload = bench_payload(outcomes, extra, metrics)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return payload


ABLATION_ROWS = (
    ("baseline", dict(mci=False, dc=False, dpa=False)),
    ("+MCI", dict(mci=True, dc=False, dpa=False)),
    ("+MCI+DC", dict(mci=True, dc=True, dpa=False)),
    ("+MCI+DC+DPA", dict(mci=True, dc=True, dpa=True)),
)


def run_ablation_on_design(
    netlist: Netlist,
    gp_config: GPConfig | None = None,
    eval_config: EvalConfig | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> list:
    """Run the four Table II configurations on one design.

    Returns :class:`MetricRow` entries whose ``placer`` field names the
    ablation configuration.  ``checkpoint_dir``/``resume`` behave as in
    :func:`run_design` (one checkpoint file per ablation row).
    """
    gp = gp_config or _default_gp()
    base = _default_rd(gp)
    ev_cfg = eval_config or EvalConfig()
    grid = evaluation_grid(netlist, ev_cfg)
    seed_gp = make_gp_seed(netlist, gp)

    rows = []
    for label, flags in ABLATION_ROWS:
        cfg = ablation_config(base=base, **flags)
        flow = run_flow(
            label, netlist, cfg, seed_gp,
            checkpoint_path=flow_checkpoint_path(checkpoint_dir, label),
            resume=resume,
        )
        ev = evaluate_routing(flow.netlist, ev_cfg, grid)
        rows.append(
            MetricRow(
                design=netlist.name,
                placer=label,
                metrics={
                    "DRWL": ev.drwl,
                    "#DRVias": ev.n_vias,
                    "#DRVs": ev.n_drvs,
                    "PT": flow.placement_time,
                    "RT": ev.routing_time,
                },
            )
        )
    return rows

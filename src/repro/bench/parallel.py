"""Sharded parallel experiment runner for the Table I / II sweeps.

Fans the designs of a sweep across a process pool
(:func:`run_sweep`), one design per task, with three contracts the
sequential scripts never had to state:

* **deterministic ordering** — results come back in input order no
  matter which worker finishes first, so the emitted rows, the merged
  metrics stream and the JSON payloads are byte-stable for a given
  design list;
* **per-design failure isolation** — a design that raises (or whose
  worker process dies) produces a :class:`DesignRun` carrying the
  traceback instead of killing the sweep; the remaining designs still
  run and report;
* **merged telemetry** — every worker records its design's events into
  a private in-memory :class:`~repro.utils.metrics.MetricsRegistry`
  segment (``run.start`` … ``run.end``); the parent concatenates the
  segments in input order into one schema-valid stream
  (:func:`merge_event_segments` — ``validate_stream`` accepts the
  result because sequence numbers restart per segment).

Workers regenerate their design from ``(name, scale, seed)`` instead
of receiving a pickled netlist, so task payloads stay tiny.  With
``jobs <= 1`` everything runs in-process (no pool, no pickling), which
is also the deterministic fallback when a pool breaks.

Supervision: the pooled path runs on the :mod:`repro.jobs` runtime —
one supervised process per design with wall-clock deadlines
(``job_timeout``), hung-worker detection (``heartbeat_timeout``
against the flow's progress beats) and retry-with-backoff for
involuntary deaths (``max_retries``); with a ``checkpoint_dir``,
retried designs warm-start their routability loop from the last
atomic checkpoint instead of recomputing.  Supervisor lifecycle
telemetry (``job.*`` events) lands in a *separate* stream
(:attr:`SweepResult.supervisor_events`), never inside the per-design
worker segments, so the merged design stream of an unfaulted sweep is
bit-identical whether or not it was supervised.

Fault-injection hook: each worker fires the ``bench.design.<name>``
fault site before running its design, and installs any
:class:`~repro.utils.faults.FaultPlan` objects carried by the task for
the duration of that design (plans with ``attempts=N`` stop firing on
retries).  Tests use this to crash, hang, SIGKILL or tear one specific
design of a pooled sweep and assert the isolation contract.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import dataclass, field

from repro.utils.logging import get_logger

logger = get_logger("bench.parallel")

#: Default design list of the Table II ablation sweep — the congested
#: half of the suite (congestion techniques only act where congestion
#: exists; see ``scripts/run_table2.py``).
TABLE2_DESIGNS = (
    "des_perf_1",
    "des_perf_a",
    "edit_dist_a",
    "fft_b",
    "matrix_mult_1",
    "matrix_mult_b",
    "superblue12",
    "superblue19",
)


@dataclass
class SweepTask:
    """One design's work order, small enough to pickle cheaply."""

    index: int
    kind: str  # "table1" | "table2"
    name: str
    scale: float = 1.0
    seed: int = 0
    placers: tuple = ()
    gp_config: object = None
    rd_config: object = None
    eval_config: object = None
    fault_plans: tuple = ()
    #: Per-design checkpoint directory (one file per flow); retried
    #: attempts resume from it.  ``None`` disables checkpointing.
    checkpoint_dir: str | None = None


@dataclass
class DesignRun:
    """Outcome of one design: rows + telemetry segment, or an error.

    ``attempts``/``job_state`` describe the supervised execution
    (how many worker attempts the design consumed and the terminal
    job state); ``job_state`` stays ``None`` for unsupervised
    (in-process) runs.
    """

    design: str
    index: int
    rows: list = field(default_factory=list)
    events: list = field(default_factory=list)
    error: str | None = None
    elapsed: float = 0.0
    attempts: int = 1
    job_state: str | None = None

    @property
    def ok(self) -> bool:
        """True when the design completed without an error."""
        return self.error is None


@dataclass
class SweepResult:
    """All design runs of one sweep, in input order.

    ``supervisor_events`` is the supervisor's own ``job.*`` lifecycle
    stream (submit/start/end/timeout/hung/crashed/retry/degrade) —
    kept separate from the per-design worker segments so the merged
    design stream stays bit-identical to an unsupervised run.
    """

    runs: list = field(default_factory=list)
    jobs: int = 1
    elapsed: float = 0.0
    supervisor_events: list = field(default_factory=list)

    def rows(self) -> list:
        """Metric-row dicts of the successful designs, input-ordered."""
        return [row for run in self.runs for row in run.rows]

    def errors(self) -> list:
        """The failed :class:`DesignRun` entries."""
        return [run for run in self.runs if not run.ok]

    def events(self) -> list:
        """One merged, schema-valid event stream across all designs."""
        return merge_event_segments([run.events for run in self.runs])

    def error_payload(self) -> list:
        """JSON-ready error entries for bench payloads."""
        return [
            {"design": run.design, "index": run.index, "error": run.error}
            for run in self.errors()
        ]


def merge_event_segments(segments: list) -> list:
    """Concatenate per-design event segments into one stream.

    Each segment is a complete registry run (``run.start`` at
    ``seq == 0`` through ``run.end``); concatenation in input order is
    exactly the multi-segment stream format the resume path already
    produces, so ``validate_stream`` accepts the result unchanged.
    """
    merged: list = []
    for segment in segments:
        merged.extend(segment)
    return merged


def write_events_jsonl(path: str, events: list) -> None:
    """Write a merged event stream as JSONL (one object per line)."""
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def _metric_rows_as_dicts(rows: list) -> list:
    return [
        {"design": r.design, "placer": r.placer, "metrics": dict(r.metrics)}
        for r in rows
    ]


def run_sweep_task(task: SweepTask, ctx=None) -> DesignRun:
    """Execute one design end to end; never raises (except cancellation).

    Runs in a supervised worker (or in-process for ``jobs <= 1``).
    Telemetry goes to a private in-memory registry whose parsed events
    ride back on the :class:`DesignRun`; any exception — including
    injected faults — is captured as a traceback string.

    ``ctx`` is the supervised runtime's
    :class:`~repro.jobs.spec.JobContext`: on a retry attempt the task's
    fault plans are re-filtered (``attempts``-limited plans stop
    firing), the flows resume from their checkpoints, and the design's
    ``run.start`` event carries an ``attempt`` field — first attempts
    emit the exact pre-supervision stream, bit for bit.
    :class:`~repro.jobs.spec.JobCancelled` is re-raised so the worker
    reports ``cancelled`` instead of masking it as a design failure.
    """
    from repro.jobs.spec import JobCancelled
    from repro.utils import faults
    from repro.utils.metrics import MemorySink, MetricsRegistry

    attempt = ctx.attempt if ctx is not None else 0
    t0 = time.perf_counter()
    sink = MemorySink()
    metrics = MetricsRegistry(sink=sink)
    start_fields = dict(
        command="bench", sweep=task.kind, design=task.name, shard=task.index
    )
    if attempt > 0:
        start_fields["attempt"] = attempt
    metrics.start_run(**start_fields)
    error = None
    rows: list = []
    injector = None
    try:
        plans = faults.plans_for_attempt(task.fault_plans, attempt)
        if plans:
            injector = faults.FaultInjector()
            for plan in plans:
                injector.add(plan)
            faults.install(injector)
        faults.fire(f"bench.design.{task.name}")
        rows = _run_design_task(task, metrics, resume=attempt > 0)
    except JobCancelled:
        raise  # the finally below uninstalls; the worker reports it
    except BaseException:
        error = traceback.format_exc()
    finally:
        if injector is not None:
            faults.uninstall()
    metrics.close()
    events = [json.loads(line) for line in sink.lines]
    return DesignRun(
        design=task.name,
        index=task.index,
        rows=rows,
        events=events,
        error=error,
        elapsed=time.perf_counter() - t0,
    )


def _run_design_task(task: SweepTask, metrics, resume: bool = False) -> list:
    """Generate the design and run the requested sweep kind on it."""
    from repro.bench.harness import (
        PLACERS,
        run_ablation_on_design,
        run_design,
        table_rows,
    )
    from repro.synth.suite import suite_design

    netlist = suite_design(task.name, scale=task.scale, seed=task.seed)
    if task.kind == "table1":
        outcome = run_design(
            netlist,
            placers=task.placers or PLACERS,
            gp_config=task.gp_config,
            rd_config=task.rd_config,
            eval_config=task.eval_config,
            metrics=metrics,
            checkpoint_dir=task.checkpoint_dir,
            resume=resume,
        )
        return _metric_rows_as_dicts(table_rows([outcome]))
    if task.kind == "table2":
        return _metric_rows_as_dicts(
            run_ablation_on_design(
                netlist,
                gp_config=task.gp_config,
                eval_config=task.eval_config,
                checkpoint_dir=task.checkpoint_dir,
                resume=resume,
            )
        )
    raise ValueError(f"unknown sweep kind {task.kind!r}")


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_sweep(
    names: list,
    kind: str = "table1",
    jobs: int = 1,
    scale: float = 1.0,
    seed: int = 0,
    placers: tuple = (),
    gp_config=None,
    rd_config=None,
    eval_config=None,
    fault_plans: tuple = (),
    metrics_path: str | None = None,
    job_timeout: float | None = None,
    heartbeat_timeout: float | None = None,
    max_retries: int = 1,
    checkpoint_dir: str | None = None,
) -> SweepResult:
    """Run a sweep over ``names``, fanning designs across ``jobs`` workers.

    Parameters
    ----------
    names:
        Design names (``repro.synth.suite``) in the order results are
        reported.
    kind:
        ``"table1"`` (placer comparison) or ``"table2"`` (ablation).
    jobs:
        Worker processes.  ``jobs <= 1`` runs in-process.  Wall-clock
        scales with physical cores — a single-core host sees parity,
        not a win.
    fault_plans:
        :class:`~repro.utils.faults.FaultPlan` tuple installed inside
        each worker for its design (tests target one design via the
        ``bench.design.<name>`` site).
    metrics_path:
        When set, the merged per-design telemetry stream is written
        there as JSONL after the sweep.
    job_timeout:
        Per-design wall-clock deadline in seconds, enforced by the
        supervisor (pooled runs only); ``None`` = no limit.
    heartbeat_timeout:
        Maximum silence (seconds without a flow progress beat) before
        a pooled design counts as hung and is reaped; ``None``
        disables hung detection.
    max_retries:
        Replacement attempts after an involuntary worker death
        (crash / hang / timeout).  Design *exceptions* are terminal —
        they are deterministic outcomes, not flakes.
    checkpoint_dir:
        When set, each design checkpoints its flows under
        ``<checkpoint_dir>/<index>_<name>/`` and supervised retries
        resume from there instead of recomputing.

    Returns
    -------
    SweepResult
        Per-design runs in input order; failed designs carry their
        traceback in :attr:`DesignRun.error` instead of raising, and
        designs whose *worker* died carry the supervisor's structured
        reason plus the terminal :attr:`DesignRun.job_state`.
    """
    if kind not in ("table1", "table2"):
        raise ValueError(f"unknown sweep kind {kind!r}")
    tasks = [
        SweepTask(
            index=i,
            kind=kind,
            name=name,
            scale=scale,
            seed=seed,
            placers=tuple(placers),
            gp_config=gp_config,
            rd_config=rd_config,
            eval_config=eval_config,
            fault_plans=tuple(fault_plans),
            checkpoint_dir=(
                os.path.join(checkpoint_dir, f"{i:02d}_{name}")
                if checkpoint_dir
                else None
            ),
        )
        for i, name in enumerate(names)
    ]
    t0 = time.perf_counter()
    supervisor_events: list = []
    if jobs <= 1 or len(tasks) <= 1:
        runs = [run_sweep_task(task) for task in tasks]
    else:
        runs, supervisor_events = _run_supervised(
            tasks,
            jobs,
            job_timeout=job_timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_retries=max_retries,
        )
    result = SweepResult(
        runs=runs,
        jobs=max(1, jobs),
        elapsed=time.perf_counter() - t0,
        supervisor_events=supervisor_events,
    )
    for run in result.runs:
        status = "ok" if run.ok else "FAILED"
        logger.info("%s %s in %.1fs", run.design, status, run.elapsed)
    if metrics_path:
        write_events_jsonl(metrics_path, result.events())
    return result


def _run_supervised(
    tasks: list,
    jobs: int,
    job_timeout: float | None = None,
    heartbeat_timeout: float | None = None,
    max_retries: int = 1,
) -> tuple:
    """Dispatch tasks to the supervised job runtime; returns
    ``(runs, supervisor_events)``.

    One :class:`~repro.jobs.spec.JobSpec` per design, executed by
    :func:`repro.jobs.run_jobs` — which owns deadlines, hung-worker
    reaping, retry-with-backoff (warm-starting from the task's
    checkpoint directory when it has one) and the degradation ladder
    (replacement worker -> fresh supervisor -> in-process).  A design
    exception is already captured *inside* :func:`run_sweep_task`; a
    job that ends in any other state than ``done`` gets a synthesized
    error entry carrying the supervisor's structured reason, so the
    sweep always reports every design in input order.
    """
    from repro.jobs import DONE, JobSpec, SupervisorConfig, run_jobs
    from repro.utils.metrics import MemorySink, MetricsRegistry

    sink = MemorySink()
    sup_metrics = MetricsRegistry(sink=sink)
    sup_metrics.start_run(command="bench.supervise", jobs=jobs)
    specs = [
        JobSpec(
            job_id=f"{task.name}@{task.index}",
            fn=run_sweep_task,
            args=(task,),
            with_context=True,
            checkpoint_path=task.checkpoint_dir,
            index=task.index,
        )
        for task in tasks
    ]
    config = SupervisorConfig(
        max_workers=jobs,
        timeout=job_timeout,
        heartbeat_timeout=heartbeat_timeout,
        max_retries=max_retries,
    )
    job_results = run_jobs(specs, config=config, metrics=sup_metrics)
    sup_metrics.close()

    runs: list = []
    for task, job in zip(tasks, job_results):
        if job is None:  # pragma: no cover — defensive (skipped job)
            runs.append(
                DesignRun(
                    design=task.name,
                    index=task.index,
                    error="job produced no result",
                    job_state="lost",
                )
            )
            continue
        if job.state == DONE and job.value is not None:
            run = job.value
            run.attempts = job.attempts
            run.job_state = job.state
        else:
            logger.warning(
                "design %s ended %s after %d attempt(s): %s",
                task.name, job.state, job.attempts, job.error,
            )
            run = DesignRun(
                design=task.name,
                index=task.index,
                error=job.error or f"job ended in state {job.state!r}",
                elapsed=job.elapsed,
                attempts=job.attempts,
                job_state=job.state,
            )
        runs.append(run)
    return runs, [json.loads(line) for line in sink.lines]

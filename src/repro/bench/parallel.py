"""Sharded parallel experiment runner for the Table I / II sweeps.

Fans the designs of a sweep across a process pool
(:func:`run_sweep`), one design per task, with three contracts the
sequential scripts never had to state:

* **deterministic ordering** — results come back in input order no
  matter which worker finishes first, so the emitted rows, the merged
  metrics stream and the JSON payloads are byte-stable for a given
  design list;
* **per-design failure isolation** — a design that raises (or whose
  worker process dies) produces a :class:`DesignRun` carrying the
  traceback instead of killing the sweep; the remaining designs still
  run and report;
* **merged telemetry** — every worker records its design's events into
  a private in-memory :class:`~repro.utils.metrics.MetricsRegistry`
  segment (``run.start`` … ``run.end``); the parent concatenates the
  segments in input order into one schema-valid stream
  (:func:`merge_event_segments` — ``validate_stream`` accepts the
  result because sequence numbers restart per segment).

Workers regenerate their design from ``(name, scale, seed)`` instead
of receiving a pickled netlist, so task payloads stay tiny.  With
``jobs <= 1`` everything runs in-process (no pool, no pickling), which
is also the deterministic fallback when a pool breaks.

Fault-injection hook: each worker fires the ``bench.design.<name>``
fault site before running its design, and installs any
:class:`~repro.utils.faults.FaultPlan` objects carried by the task for
the duration of that design.  Tests use this to crash one specific
design of a pooled sweep and assert the isolation contract.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field

from repro.utils.logging import get_logger

logger = get_logger("bench.parallel")

#: Default design list of the Table II ablation sweep — the congested
#: half of the suite (congestion techniques only act where congestion
#: exists; see ``scripts/run_table2.py``).
TABLE2_DESIGNS = (
    "des_perf_1",
    "des_perf_a",
    "edit_dist_a",
    "fft_b",
    "matrix_mult_1",
    "matrix_mult_b",
    "superblue12",
    "superblue19",
)


@dataclass
class SweepTask:
    """One design's work order, small enough to pickle cheaply."""

    index: int
    kind: str  # "table1" | "table2"
    name: str
    scale: float = 1.0
    seed: int = 0
    placers: tuple = ()
    gp_config: object = None
    rd_config: object = None
    eval_config: object = None
    fault_plans: tuple = ()


@dataclass
class DesignRun:
    """Outcome of one design: rows + telemetry segment, or an error."""

    design: str
    index: int
    rows: list = field(default_factory=list)
    events: list = field(default_factory=list)
    error: str | None = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the design completed without an error."""
        return self.error is None


@dataclass
class SweepResult:
    """All design runs of one sweep, in input order."""

    runs: list = field(default_factory=list)
    jobs: int = 1
    elapsed: float = 0.0

    def rows(self) -> list:
        """Metric-row dicts of the successful designs, input-ordered."""
        return [row for run in self.runs for row in run.rows]

    def errors(self) -> list:
        """The failed :class:`DesignRun` entries."""
        return [run for run in self.runs if not run.ok]

    def events(self) -> list:
        """One merged, schema-valid event stream across all designs."""
        return merge_event_segments([run.events for run in self.runs])

    def error_payload(self) -> list:
        """JSON-ready error entries for bench payloads."""
        return [
            {"design": run.design, "index": run.index, "error": run.error}
            for run in self.errors()
        ]


def merge_event_segments(segments: list) -> list:
    """Concatenate per-design event segments into one stream.

    Each segment is a complete registry run (``run.start`` at
    ``seq == 0`` through ``run.end``); concatenation in input order is
    exactly the multi-segment stream format the resume path already
    produces, so ``validate_stream`` accepts the result unchanged.
    """
    merged: list = []
    for segment in segments:
        merged.extend(segment)
    return merged


def write_events_jsonl(path: str, events: list) -> None:
    """Write a merged event stream as JSONL (one object per line)."""
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def _metric_rows_as_dicts(rows: list) -> list:
    return [
        {"design": r.design, "placer": r.placer, "metrics": dict(r.metrics)}
        for r in rows
    ]


def run_sweep_task(task: SweepTask) -> DesignRun:
    """Execute one design end to end; never raises.

    Runs in a pool worker (or in-process for ``jobs <= 1``).  Telemetry
    goes to a private in-memory registry whose parsed events ride back
    on the :class:`DesignRun`; any exception — including injected
    faults — is captured as a traceback string.
    """
    from repro.utils import faults
    from repro.utils.metrics import MemorySink, MetricsRegistry

    t0 = time.perf_counter()
    sink = MemorySink()
    metrics = MetricsRegistry(sink=sink)
    metrics.start_run(
        command="bench", sweep=task.kind, design=task.name, shard=task.index
    )
    error = None
    rows: list = []
    injector = None
    try:
        if task.fault_plans:
            injector = faults.FaultInjector()
            for plan in task.fault_plans:
                injector.add(plan)
            faults.install(injector)
        faults.fire(f"bench.design.{task.name}")
        rows = _run_design_task(task, metrics)
    except BaseException:
        error = traceback.format_exc()
    finally:
        if injector is not None:
            faults.uninstall()
    metrics.close()
    events = [json.loads(line) for line in sink.lines]
    return DesignRun(
        design=task.name,
        index=task.index,
        rows=rows,
        events=events,
        error=error,
        elapsed=time.perf_counter() - t0,
    )


def _run_design_task(task: SweepTask, metrics) -> list:
    """Generate the design and run the requested sweep kind on it."""
    from repro.bench.harness import (
        PLACERS,
        run_ablation_on_design,
        run_design,
        table_rows,
    )
    from repro.synth.suite import suite_design

    netlist = suite_design(task.name, scale=task.scale, seed=task.seed)
    if task.kind == "table1":
        outcome = run_design(
            netlist,
            placers=task.placers or PLACERS,
            gp_config=task.gp_config,
            rd_config=task.rd_config,
            eval_config=task.eval_config,
            metrics=metrics,
        )
        return _metric_rows_as_dicts(table_rows([outcome]))
    if task.kind == "table2":
        return _metric_rows_as_dicts(
            run_ablation_on_design(
                netlist,
                gp_config=task.gp_config,
                eval_config=task.eval_config,
            )
        )
    raise ValueError(f"unknown sweep kind {task.kind!r}")


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_sweep(
    names: list,
    kind: str = "table1",
    jobs: int = 1,
    scale: float = 1.0,
    seed: int = 0,
    placers: tuple = (),
    gp_config=None,
    rd_config=None,
    eval_config=None,
    fault_plans: tuple = (),
    metrics_path: str | None = None,
) -> SweepResult:
    """Run a sweep over ``names``, fanning designs across ``jobs`` workers.

    Parameters
    ----------
    names:
        Design names (``repro.synth.suite``) in the order results are
        reported.
    kind:
        ``"table1"`` (placer comparison) or ``"table2"`` (ablation).
    jobs:
        Worker processes.  ``jobs <= 1`` runs in-process.  Wall-clock
        scales with physical cores — a single-core host sees parity,
        not a win.
    fault_plans:
        :class:`~repro.utils.faults.FaultPlan` tuple installed inside
        each worker for its design (tests target one design via the
        ``bench.design.<name>`` site).
    metrics_path:
        When set, the merged per-design telemetry stream is written
        there as JSONL after the sweep.

    Returns
    -------
    SweepResult
        Per-design runs in input order; failed designs carry their
        traceback in :attr:`DesignRun.error` instead of raising.
    """
    if kind not in ("table1", "table2"):
        raise ValueError(f"unknown sweep kind {kind!r}")
    tasks = [
        SweepTask(
            index=i,
            kind=kind,
            name=name,
            scale=scale,
            seed=seed,
            placers=tuple(placers),
            gp_config=gp_config,
            rd_config=rd_config,
            eval_config=eval_config,
            fault_plans=tuple(fault_plans),
        )
        for i, name in enumerate(names)
    ]
    t0 = time.perf_counter()
    if jobs <= 1 or len(tasks) <= 1:
        runs = [run_sweep_task(task) for task in tasks]
    else:
        runs = _run_pooled(tasks, jobs)
    result = SweepResult(
        runs=runs, jobs=max(1, jobs), elapsed=time.perf_counter() - t0
    )
    for run in result.runs:
        status = "ok" if run.ok else "FAILED"
        logger.info("%s %s in %.1fs", run.design, status, run.elapsed)
    if metrics_path:
        write_events_jsonl(metrics_path, result.events())
    return result


def _run_pooled(tasks: list, jobs: int) -> list:
    """Dispatch tasks to a process pool; degrade per design, not per sweep.

    A worker exception is already captured inside :func:`run_sweep_task`;
    this layer handles the harder failure — a worker *process* dying
    (``BrokenProcessPool``) — by recording an error entry for the
    design whose future broke first and re-running the not-yet-finished
    remainder in a fresh pool (never in the parent process: whatever
    killed the worker must stay isolated).  Each retry consumes at
    least the broken design, so the recursion terminates.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    runs: dict = {}
    broken_task = None
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [(task, pool.submit(run_sweep_task, task)) for task in tasks]
        for task, future in futures:
            try:
                runs[task.index] = future.result()
            except BrokenProcessPool:
                broken_task = task
                break
            except Exception:  # pragma: no cover — defensive
                runs[task.index] = DesignRun(
                    design=task.name,
                    index=task.index,
                    error=traceback.format_exc(),
                )
    if broken_task is not None:
        logger.warning(
            "worker process died on %s; error entry recorded, "
            "restarting pool for the remaining designs", broken_task.name,
        )
        runs[broken_task.index] = DesignRun(
            design=broken_task.name,
            index=broken_task.index,
            error="worker process died (BrokenProcessPool)",
        )
        remaining = [t for t in tasks if t.index not in runs]
        for run in _run_pooled(remaining, jobs) if remaining else []:
            runs[run.index] = run
    return [runs[task.index] for task in tasks]

"""Charge rasterization: scatter cell rectangles into a bin grid.

Implements the ePlace density model ingredients:

* each cell carries charge equal to its (possibly inflated) area;
* cells narrower/shorter than ``sqrt(2) x`` the bin pitch are stretched
  to that size with the charge preserved (local smoothing), which keeps
  the density function differentiable as cells cross bin boundaries;
* the same overlap weights used for scattering are reused to *gather*
  a field map back onto cells, yielding the electrostatic force
  ``F_i = q_i * average field over the cell footprint``.

Cells spanning few bins (after smoothing, standard cells span at most
3x3) take a fully vectorized broadcast path; the handful of macros and
large fixed blocks take an exact per-cell loop.  The vectorized overlap
build dispatches through the pluggable kernel layer
(:mod:`repro.kernels`, ``raster_overlaps``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid import Grid2D
from repro.kernels import get_backend

_SQRT2 = math.sqrt(2.0)
_MAX_VECTOR_SPAN = 6  # cells spanning more bins than this go to the slow path


class CellRasterizer:
    """Overlap structure of a set of rectangles against a grid.

    Build once per set of positions/sizes, then call :meth:`scatter`
    and :meth:`gather` any number of times.

    Parameters
    ----------
    grid:
        Target bin grid.
    x, y:
        Rectangle centers.
    width, height:
        Rectangle sizes *before* smoothing.
    smooth:
        Apply the ePlace small-cell stretch (default True).  Disable
        for exact-area accounting (e.g. utilization maps).
    """

    def __init__(
        self,
        grid: Grid2D,
        x: np.ndarray,
        y: np.ndarray,
        width: np.ndarray,
        height: np.ndarray,
        smooth: bool = True,
    ) -> None:
        self.grid = grid
        self.n = len(x)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        width = np.asarray(width, dtype=np.float64)
        height = np.asarray(height, dtype=np.float64)

        if smooth:
            w_eff = np.maximum(width, _SQRT2 * grid.dx)
            h_eff = np.maximum(height, _SQRT2 * grid.dy)
        else:
            w_eff = width
            h_eff = height
        area = width * height
        eff_area = w_eff * h_eff
        # charge-preserving density scale
        self._scale = np.where(eff_area > 0, area / np.maximum(eff_area, 1e-300), 0.0)

        xlo = x - 0.5 * w_eff
        xhi = x + 0.5 * w_eff
        ylo = y - 0.5 * h_eff
        yhi = y + 0.5 * h_eff
        # clip to the region so off-die parts are not dropped silently,
        # they are squeezed to the boundary bins by the clip below.
        r = grid.region
        xlo = np.clip(xlo, r.xlo, r.xhi)
        xhi = np.clip(xhi, r.xlo, r.xhi)
        ylo = np.clip(ylo, r.ylo, r.yhi)
        yhi = np.clip(yhi, r.ylo, r.yhi)
        self._xlo, self._xhi, self._ylo, self._yhi = xlo, xhi, ylo, yhi

        eps = 1e-12
        self._i0 = np.clip(((xlo - r.xlo) / grid.dx).astype(np.int64), 0, grid.nx - 1)
        self._i1 = np.clip(
            np.ceil((xhi - r.xlo) / grid.dx - eps).astype(np.int64) - 1, 0, grid.nx - 1
        )
        self._j0 = np.clip(((ylo - r.ylo) / grid.dy).astype(np.int64), 0, grid.ny - 1)
        self._j1 = np.clip(
            np.ceil((yhi - r.ylo) / grid.dy - eps).astype(np.int64) - 1, 0, grid.ny - 1
        )
        self._i1 = np.maximum(self._i1, self._i0)
        self._j1 = np.maximum(self._j1, self._j0)

        span_x = self._i1 - self._i0 + 1
        span_y = self._j1 - self._j0 + 1
        small = (span_x <= _MAX_VECTOR_SPAN) & (span_y <= _MAX_VECTOR_SPAN)
        self._small_ids = np.flatnonzero(small)
        self._large_ids = np.flatnonzero(~small)

        self._bin_idx, self._weights = self._build_small_overlaps()

    # ------------------------------------------------------------------
    def _overlap_1d(self, lo, hi, base, pitch, k0, offset):
        """Overlap length of [lo, hi] with bin (k0 + offset) along one axis."""
        left = base + (k0 + offset) * pitch
        return np.clip(np.minimum(hi, left + pitch) - np.maximum(lo, left), 0.0, pitch)

    def _build_small_overlaps(self):
        """Flattened bin indices and charge weights for the vectorized set.

        Delegates the overlap build to the active kernel backend; the
        reference backend is the original chunked di/dj loop moved
        verbatim, so the entry order (di outer, dj inner, cells within)
        is unchanged.
        """
        ids = self._small_ids
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64), np.empty((0,), dtype=np.float64)
        g = self.grid
        i0 = self._i0[ids]
        j0 = self._j0[ids]
        kx = int((self._i1[ids] - i0).max()) + 1
        ky = int((self._j1[ids] - j0).max()) + 1
        bin_idx, weights, cell_of_entry = get_backend().raster_overlaps(
            ids,
            self._xlo[ids],
            self._xhi[ids],
            self._ylo[ids],
            self._yhi[ids],
            i0,
            j0,
            kx,
            ky,
            self._scale[ids],
            g.region.xlo,
            g.region.ylo,
            g.dx,
            g.dy,
            g.nx,
            g.ny,
        )
        self._small_cell_of_entry = cell_of_entry
        return bin_idx, weights

    # ------------------------------------------------------------------
    def charge_map(self) -> np.ndarray:
        """Total charge per bin (area units), shape = grid shape."""
        g = self.grid
        flat = np.bincount(self._bin_idx, weights=self._weights, minlength=g.nx * g.ny)
        out = flat.astype(np.float64, copy=False).reshape(g.nx, g.ny)
        for cid in self._large_ids:
            self._scatter_large(out, cid)
        return out

    def density_map(self) -> np.ndarray:
        """Charge normalized by bin area (a pure occupancy ratio)."""
        return self.charge_map() / self.grid.bin_area

    def _cell_bin_overlaps(self, cid: int):
        """Exact (i, j, overlap_charge) arrays for one large cell."""
        g = self.grid
        i = np.arange(self._i0[cid], self._i1[cid] + 1)
        j = np.arange(self._j0[cid], self._j1[cid] + 1)
        lx = self._overlap_1d(
            self._xlo[cid], self._xhi[cid], g.region.xlo, g.dx, i, 0
        )
        ly = self._overlap_1d(
            self._ylo[cid], self._yhi[cid], g.region.ylo, g.dy, j, 0
        )
        w = np.outer(lx, ly) * self._scale[cid]
        return i, j, w

    def _scatter_large(self, out: np.ndarray, cid: int) -> None:
        i, j, w = self._cell_bin_overlaps(cid)
        out[np.ix_(i, j)] += w

    # ------------------------------------------------------------------
    def gather(self, field: np.ndarray) -> np.ndarray:
        """Charge-weighted field sum per cell: ``sum_b q_ib * field_b``.

        With ``field`` the electric field map this is the force; with
        the potential map it is twice the cell's electrostatic energy
        contribution.
        """
        g = self.grid
        if field.shape != g.shape:
            raise ValueError(f"field shape {field.shape} != grid {g.shape}")
        if len(self._bin_idx):
            flat = field.reshape(-1)
            out = np.bincount(
                self._small_cell_of_entry,
                weights=self._weights * flat[self._bin_idx],
                minlength=self.n,
            )
        else:
            out = np.zeros(self.n, dtype=np.float64)
        for cid in self._large_ids:
            i, j, w = self._cell_bin_overlaps(cid)
            out[cid] = float((w * field[np.ix_(i, j)]).sum())
        return out

    def total_charge(self) -> float:
        """Sum of all scattered charge (equals total clipped cell area)."""
        total = float(self._weights.sum())
        for cid in self._large_ids:
            _, _, w = self._cell_bin_overlaps(cid)
            total += float(w.sum())
        return total

"""Spectral solver for Poisson's equation with Neumann boundaries.

Solves Eq. (1) of the paper on a uniform grid::

    laplacian(psi) = -rho   in R,
    n . grad(psi)  = 0      on dR,
    integral(rho) = integral(psi) = 0

following ePlace [15]: expand ``rho`` in the cosine basis (DCT-II over
bin centers, which satisfies the Neumann condition), divide by the
Laplacian eigenvalues ``w_u^2 + w_v^2`` and transform back.  The
electric field ``E = -grad(psi)`` is obtained by spectral
differentiation: the x-derivative of the cosine basis is a sine series,
evaluated by a DST-III based "IDXST" transform.

All transforms use unnormalized scipy conventions; correctness of the
bookkeeping is pinned by tests against a brute-force basis evaluation
and against finite differences.

Two code paths produce **bit-identical** results (asserted by
``tests/test_spectral_workspace.py`` at ``atol=0``):

* the *reference* path — the original straight-line implementation,
  kept as :meth:`PoissonSolver.solve_reference` for equivalence tests
  and before/after benchmarking;
* the *workspace* path — :class:`SpectralWorkspace`, one cached
  instance per grid geometry, which memoizes the eigenvalue
  denominators, reuses preallocated scratch buffers for every
  elementwise step (the transforms' outputs are the only per-solve
  allocations, and two of them *are* the returned arrays), and
  optionally fans the 1-D transforms out over ``scipy.fft`` worker
  threads.

Every fusion trick in the workspace preserves the exact floating-point
operation sequence of the reference: ``out=`` variants of the same
ufuncs, slice copies instead of ``np.roll``, in-place division into
scipy-owned output arrays.  Nothing reorders a reduction or merges a
transform, which is why the golden suite passes unchanged.

Three of the solve's stages additionally have *two* interchangeable
implementations each — a strided/direct form and a
transposed-contiguous form — that are bitwise equal (pocketfft's 1-D
kernels are layout-independent, and the forward ``dctn`` composes
exactly from per-axis ``dct`` passes).  Which form is faster depends
on grid size and on the host's cache/allocator state, and the ranking
is not stable enough to hard-code; the workspace therefore
**auto-tunes**: its first solves alternate the variants of each stage
under a timer and then lock in the fastest.  Because every variant is
bit-identical, tuning only ever affects wall-clock, never results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import fft as sfft

from repro.geometry.grid import Grid2D

# The workspace path calls straight into scipy's pocketfft backend when
# available, skipping the public API's uarray dispatch layer (~8us per
# call — a measurable slice of a small-grid solve that issues seven
# transforms).  The backend functions are the exact implementations the
# public wrappers dispatch to, so results are bitwise unchanged; the
# reference path keeps the public API either way.
try:  # pragma: no cover — depends on scipy internals
    from scipy.fft._pocketfft.realtransforms import dct as _dct
    from scipy.fft._pocketfft.realtransforms import dctn as _dctn
    from scipy.fft._pocketfft.realtransforms import dst as _dst
    from scipy.fft._pocketfft.realtransforms import idct as _idct
    from scipy.fft._pocketfft.realtransforms import idctn as _idctn
except ImportError:  # pragma: no cover — scipy moved its internals
    _dct, _dctn, _dst, _idct, _idctn = (
        sfft.dct, sfft.dctn, sfft.dst, sfft.idct, sfft.idctn,
    )


def _idxst(coeffs: np.ndarray, axis: int) -> np.ndarray:
    """Inverse sine transform matching scipy's unnormalized ``idct``.

    Given DCT-style coefficients ``c`` along ``axis``, returns::

        out[i] = (1/M) * sum_{u=1}^{M-1} c[u] sin(pi u (2i+1) / (2M))

    which is exactly the series obtained by differentiating the
    ``idct``-normalized cosine expansion term-by-term (the ``u = 0``
    term vanishes).
    """
    m = coeffs.shape[axis]
    shifted = np.roll(coeffs, -1, axis=axis)
    # zero the (now trailing) former u=0 slot
    idx = [slice(None)] * coeffs.ndim
    idx[axis] = m - 1
    shifted[tuple(idx)] = 0.0
    return sfft.dst(shifted, type=3, axis=axis) / (2.0 * m)


#: Source-row block width for transposed copies.  The grids of interest
#: have power-of-two pitches, so a naive ``dst[...] = src.T`` walks the
#: destination at a stride that aliases into a handful of cache sets
#: and thrashes; copying a block of rows at a time keeps the working
#: set resident (measured 2-4x faster at 512-1024 grids, identical
#: data movement).
_T_BLOCK = 64


def _t_blocks(n: int):
    """Yield ``(lo, hi)`` source-row block bounds covering ``range(n)``.

    Grids small enough to sit in cache skip the blocking (one bound
    pair) — the aliasing pathology only appears once a row outgrows a
    4KB page.
    """
    if n <= 256:
        if n > 0:
            yield 0, n
        return
    for lo in range(0, n, _T_BLOCK):
        yield lo, min(lo + _T_BLOCK, n)


#: Timed samples collected per stage variant before the workspace
#: locks in the faster one.
_TUNE_SAMPLES = 3


class SpectralWorkspace:
    """Reusable spectral scratch space bound to one grid geometry.

    Holds everything a Poisson solve needs that does not depend on the
    charge map: the Laplacian eigenvalue denominators ``w_u^2 + w_v^2``
    (the expensive part of solver construction), the frequency row and
    column vectors, and nine preallocated scratch arrays for the
    elementwise stages between transforms.  One workspace per grid
    geometry is cached process-wide (:meth:`for_grid`), so the density
    engine and the per-round congestion field share buffers instead of
    each reallocating and recomputing them.

    Three stages (forward transform, x-field, y-field) each carry two
    bitwise-identical implementations; the workspace's first solves
    time them alternately and lock in the faster per stage (see
    :attr:`variants` and the module docstring).

    Thread safety: a workspace's scratch buffers make :meth:`solve`
    non-reentrant.  The flow is single-threaded per process (the
    parallel experiment runner isolates designs in worker *processes*),
    so this costs nothing; callers that do want concurrent solves on
    one grid must construct private instances instead of
    :meth:`for_grid`.

    Parameters
    ----------
    nx, ny:
        Grid dimensions (bins).
    dx, dy:
        Bin pitches.  Together with ``nx``/``ny`` they form the cache
        key: two grids with equal geometry share one workspace.
    """

    def __init__(self, nx: int, ny: int, dx: float, dy: float) -> None:
        self.key = (nx, ny, float(dx), float(dy))
        self.shape = (nx, ny)
        wu = np.pi * np.arange(nx) / (nx * dx)
        wv = np.pi * np.arange(ny) / (ny * dy)
        self._wu = wu[:, None]
        self._wv = wv[None, :]
        denom = self._wu**2 + self._wv**2
        denom[0, 0] = 1.0  # the DC mode is projected out, value unused
        self._inv_denom = 1.0 / denom
        self._wvt = self._wv.T  # column view for transposed-layout stages
        # scratch for the elementwise stages; reused across solves.
        # The (ny, nx) buffers hold transposed-layout intermediates: the
        # transposed variants route strided axis-0 transforms through
        # contiguous axis-1 transforms on transposed data.
        self._bal = np.empty((nx, ny))
        self._balt = np.empty((ny, nx))
        self._coef = np.empty((nx, ny))
        self._cx = np.empty((nx, ny))
        self._cy = np.empty((nx, ny))
        self._cyt = np.empty((ny, nx))
        self._shift_x = np.empty((nx, ny))
        self._shift_xt = np.empty((ny, nx))
        self._shift_y = np.empty((nx, ny))
        self.n_solves = 0
        # per-stage variant choice: None = still tuning.  All variants
        # of a stage are bitwise identical, so the choice (and the
        # alternation while tuning) never affects results.
        self._variant: dict = {"fwd": None, "ex": None, "ey": None}
        self._tune: dict = {
            "fwd": {"direct": [], "transposed": []},
            "ex": {"strided": [], "transposed": []},
            "ey": {"strided": [], "transposed": []},
        }
        self._stages = {
            "fwd": {"direct": self._fwd_direct,
                    "transposed": self._fwd_transposed},
            "ex": {"strided": self._ex_strided,
                   "transposed": self._ex_transposed},
            "ey": {"strided": self._ey_strided,
                   "transposed": self._ey_transposed},
        }

    @property
    def variants(self) -> dict:
        """Current per-stage variant choice (``None`` = still tuning)."""
        return dict(self._variant)

    # ------------------------------------------------------------- cache
    @classmethod
    def for_grid(cls, grid: Grid2D) -> "SpectralWorkspace":
        """Return the process-wide cached workspace for ``grid``.

        The cache is keyed on ``(nx, ny, dx, dy)``; distinct grid
        objects with equal geometry (e.g. the placement grid rebuilt
        each round) resolve to the same workspace, so denominators and
        scratch are computed once per process and shape.
        """
        key = (grid.nx, grid.ny, float(grid.dx), float(grid.dy))
        ws = _WORKSPACES.get(key)
        if ws is None:
            ws = _WORKSPACES[key] = cls(grid.nx, grid.ny, grid.dx, grid.dy)
        return ws

    # ------------------------------------------------------ stage variants
    #
    # Each stage's variants are bitwise identical (pinned at atol=0 by
    # tests/test_spectral_workspace.py across all eight combinations):
    # the transposed forms route pocketfft's strided axis-0 transforms
    # through contiguous axis-1 transforms on transposed scratch
    # (pocketfft's 1-D kernels are layout-independent), and the forward
    # dctn composes exactly from per-axis dct passes because the
    # forward transform carries no normalization.

    def _fwd_direct(self, rho, mean, workers):
        """Forward 2-D DCT of the balanced charge, as one dctn call."""
        np.subtract(rho, mean, out=self._bal)
        return _dctn(self._bal, type=2, overwrite_x=True, workers=workers)

    def _fwd_transposed(self, rho, mean, workers):
        """Forward 2-D DCT as two contiguous axis-1 passes."""
        nx, ny = self.shape
        for lo, hi in _t_blocks(nx):
            np.subtract(rho[lo:hi, :].T, mean, out=self._balt[:, lo:hi])
        d1t = _dct(self._balt, type=2, axis=1, overwrite_x=True,
                   workers=workers)
        for lo, hi in _t_blocks(ny):
            self._coef[:, lo:hi] = d1t[lo:hi, :].T
        return _dct(self._coef, type=2, axis=1, overwrite_x=True,
                    workers=workers)

    def _ex_strided(self, workers):
        """x-field exactly as the reference orders it (DST along axis 0)."""
        nx = self.shape[0]
        bx = _idct(self._cx, type=2, axis=1, overwrite_x=True,
                   workers=workers)
        # IDXST shift: slice copy instead of the reference's np.roll
        self._shift_x[:-1, :] = bx[1:, :]
        self._shift_x[-1, :] = 0.0
        ex = _dst(self._shift_x, type=3, axis=0, workers=workers)
        np.divide(ex, 2.0 * nx, out=ex)
        return ex

    def _ex_transposed(self, workers):
        """x-field with the axis-0 DST rerouted through transposed scratch."""
        nx, ny = self.shape
        bx = _idct(self._cx, type=2, axis=1, overwrite_x=True,
                   workers=workers)
        # IDXST shift fused with the transpose: row u+1 of bx lands in
        # column u, the former u=0 slot (now trailing) is zeroed
        for lo, hi in _t_blocks(nx - 1):
            self._shift_xt[:, lo:hi] = bx[lo + 1:hi + 1, :].T
        self._shift_xt[:, -1] = 0.0
        ext = _dst(self._shift_xt, type=3, axis=1, overwrite_x=True,
                   workers=workers)
        # transpose back and normalize in one pass into the fresh
        # caller-owned array
        ex = np.empty((nx, ny))
        for lo, hi in _t_blocks(ny):
            np.divide(ext[lo:hi, :].T, 2.0 * nx, out=ex[:, lo:hi])
        return ex

    def _ey_strided(self, coef, workers):
        """y-field exactly as the reference orders it (IDCT along axis 0)."""
        ny = self.shape[1]
        np.multiply(coef, self._wv, out=self._cy)
        by = _idct(self._cy, type=2, axis=0, overwrite_x=True,
                   workers=workers)
        self._shift_y[:, :-1] = by[:, 1:]
        self._shift_y[:, -1] = 0.0
        ey = _dst(self._shift_y, type=3, axis=1, workers=workers)
        np.divide(ey, 2.0 * ny, out=ey)
        return ey

    def _ey_transposed(self, coef, workers):
        """y-field with the axis-0 IDCT rerouted through transposed scratch."""
        nx, ny = self.shape
        for lo, hi in _t_blocks(nx):
            np.multiply(coef[lo:hi, :].T, self._wvt, out=self._cyt[:, lo:hi])
        byt = _idct(self._cyt, type=2, axis=1, overwrite_x=True,
                    workers=workers)
        # back to row-major with the axis-1 IDXST shift fused in
        for lo, hi in _t_blocks(ny - 1):
            self._shift_y[:, lo:hi] = byt[lo + 1:hi + 1, :].T
        self._shift_y[:, -1] = 0.0
        ey = _dst(self._shift_y, type=3, axis=1, workers=workers)
        np.divide(ey, 2.0 * ny, out=ey)
        return ey

    def _run(self, stage: str, *args):
        """Run ``stage`` via its locked variant, or time one while tuning.

        While a stage is untuned, calls alternate between its variants
        (least-sampled first) under a ``perf_counter`` timer; once every
        variant has :data:`_TUNE_SAMPLES` samples the variant with the
        best (minimum) sample is locked in.  Min-of-samples is the
        robust statistic here: timing noise on a busy host only ever
        inflates samples.
        """
        methods = self._stages[stage]
        locked = self._variant[stage]
        if locked is not None:
            return methods[locked](*args)
        samples = self._tune[stage]
        name = min(samples, key=lambda k: len(samples[k]))
        t0 = time.perf_counter()
        out = methods[name](*args)
        samples[name].append(time.perf_counter() - t0)
        if all(len(v) >= _TUNE_SAMPLES for v in samples.values()):
            self._variant[stage] = min(samples, key=lambda k: min(samples[k]))
        return out

    # ------------------------------------------------------------- solve
    def solve(
        self, rho: np.ndarray, workers: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve Eq. (1) for ``rho``; returns fresh ``(psi, ex, ey)``.

        Bit-identical to :meth:`PoissonSolver.solve_reference` — same
        transforms, same ufuncs, same operation order — but every
        elementwise intermediate lands in workspace scratch, and the
        transforms whose outputs feed straight back into scratch run
        in-place (``overwrite_x=True``; scipy then returns the input
        buffer itself).  Only the returned arrays allocate:
        ``psi``/``ex``/``ey`` are fresh and owned by the caller —
        deliberately **not** aliased to scratch, so a later solve on
        the same workspace never mutates them (asserted by the
        cache-reuse test).

        The forward and field stages dispatch through the auto-tuner
        (:meth:`_run`): the first few solves sample both bitwise-equal
        implementations of each stage and lock in the faster.

        ``workers`` is forwarded to ``scipy.fft`` and parallelizes the
        independent 1-D transforms across threads (identical results —
        each line is computed by the same kernel).  ``None`` keeps
        scipy's single-threaded default.
        """
        if rho.shape != self.shape:
            raise ValueError(f"rho shape {rho.shape} != grid {self.shape}")
        self.n_solves += 1
        mean = rho.mean()
        a = self._run("fwd", rho, mean, workers)
        coef = np.multiply(a, self._inv_denom, out=self._coef)
        coef[0, 0] = 0.0

        # E = -grad(psi): differentiating cos(w_u x)cos(w_v y) gives
        # -w_u sin cos (x) and -w_v cos sin (y); the minus signs cancel.
        np.multiply(coef, self._wu, out=self._cx)
        psi = _idctn(coef, type=2, workers=workers)
        ex = self._run("ex", workers)
        ey = self._run("ey", coef, workers)
        return psi, ex, ey


#: Process-wide workspace cache, keyed on grid geometry.
_WORKSPACES: dict = {}


def clear_spectral_cache() -> None:
    """Drop every cached :class:`SpectralWorkspace` (tests, long runs)."""
    _WORKSPACES.clear()


def spectral_cache_size() -> int:
    """Number of grid geometries currently cached."""
    return len(_WORKSPACES)


@dataclass
class PoissonSolver:
    """Reusable spectral Poisson solver bound to one grid.

    By default delegates to the process-wide cached
    :class:`SpectralWorkspace` for the grid's geometry; construct with
    ``use_workspace=False`` for a self-contained instance running the
    original reference implementation (used by the equivalence tests
    and the before/after benchmark).
    """

    grid: Grid2D
    use_workspace: bool = True
    workers: int | None = None
    _ws: SpectralWorkspace = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.use_workspace:
            self._ws = SpectralWorkspace.for_grid(self.grid)
        else:
            g = self.grid
            self._ws = SpectralWorkspace(g.nx, g.ny, g.dx, g.dy)
        # kept as attributes for the reference path and introspection
        self._wu = self._ws._wu
        self._wv = self._ws._wv
        self._inv_denom = self._ws._inv_denom

    def solve(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve for potential and field.

        Parameters
        ----------
        rho:
            Charge density map of the grid's shape.  Its mean is
            removed internally (compatibility condition of Eq. 1).

        Returns
        -------
        (psi, ex, ey):
            Potential and the field components ``E = -grad(psi)``,
            all of the grid's shape.  ``psi`` has zero mean.
        """
        if self.use_workspace:
            return self._ws.solve(rho, workers=self.workers)
        return self.solve_reference(rho)

    def solve_reference(
        self, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Original straight-line solve (fresh temporaries every call).

        The numeric ground truth the workspace path is pinned against:
        ``tests/test_spectral_workspace.py`` asserts exact (``atol=0``)
        agreement, and ``scripts/bench_spectral.py`` uses it as the
        "before" timing.
        """
        if rho.shape != self.grid.shape:
            raise ValueError(f"rho shape {rho.shape} != grid {self.grid.shape}")
        balanced = rho - rho.mean()
        a = sfft.dctn(balanced, type=2)
        coef = a * self._inv_denom
        coef[0, 0] = 0.0
        psi = sfft.idctn(coef, type=2)

        # E = -grad(psi): differentiating cos(w_u x)cos(w_v y) gives
        # -w_u sin cos (x) and -w_v cos sin (y); the minus signs cancel.
        cx = coef * self._wu
        cy = coef * self._wv
        ex = _idxst(sfft.idct(cx, type=2, axis=1), axis=0)
        ey = _idxst(sfft.idct(cy, type=2, axis=0), axis=1)
        return psi, ex, ey


def solve_poisson_fd(grid: Grid2D, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference solve: spectral potential + finite-difference field.

    Used in tests to cross-check the spectral differentiation path.
    """
    psi, _, _ = PoissonSolver(grid).solve(rho)
    gy, gx = None, None
    gx, gy = np.gradient(psi, grid.dx, grid.dy, edge_order=2)
    return psi, -gx, -gy

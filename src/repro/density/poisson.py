"""Spectral solver for Poisson's equation with Neumann boundaries.

Solves Eq. (1) of the paper on a uniform grid::

    laplacian(psi) = -rho   in R,
    n . grad(psi)  = 0      on dR,
    integral(rho) = integral(psi) = 0

following ePlace [15]: expand ``rho`` in the cosine basis (DCT-II over
bin centers, which satisfies the Neumann condition), divide by the
Laplacian eigenvalues ``w_u^2 + w_v^2`` and transform back.  The
electric field ``E = -grad(psi)`` is obtained by spectral
differentiation: the x-derivative of the cosine basis is a sine series,
evaluated by a DST-III based "IDXST" transform.

All transforms use unnormalized scipy conventions; correctness of the
bookkeeping is pinned by tests against a brute-force basis evaluation
and against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import fft as sfft

from repro.geometry.grid import Grid2D


def _idxst(coeffs: np.ndarray, axis: int) -> np.ndarray:
    """Inverse sine transform matching scipy's unnormalized ``idct``.

    Given DCT-style coefficients ``c`` along ``axis``, returns::

        out[i] = (1/M) * sum_{u=1}^{M-1} c[u] sin(pi u (2i+1) / (2M))

    which is exactly the series obtained by differentiating the
    ``idct``-normalized cosine expansion term-by-term (the ``u = 0``
    term vanishes).
    """
    m = coeffs.shape[axis]
    shifted = np.roll(coeffs, -1, axis=axis)
    # zero the (now trailing) former u=0 slot
    idx = [slice(None)] * coeffs.ndim
    idx[axis] = m - 1
    shifted[tuple(idx)] = 0.0
    return sfft.dst(shifted, type=3, axis=axis) / (2.0 * m)


@dataclass
class PoissonSolver:
    """Reusable spectral Poisson solver bound to one grid."""

    grid: Grid2D

    def __post_init__(self) -> None:
        nx, ny = self.grid.nx, self.grid.ny
        wu = np.pi * np.arange(nx) / (nx * self.grid.dx)
        wv = np.pi * np.arange(ny) / (ny * self.grid.dy)
        self._wu = wu[:, None]
        self._wv = wv[None, :]
        denom = self._wu**2 + self._wv**2
        denom[0, 0] = 1.0  # the DC mode is projected out, value unused
        self._inv_denom = 1.0 / denom

    def solve(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve for potential and field.

        Parameters
        ----------
        rho:
            Charge density map of the grid's shape.  Its mean is
            removed internally (compatibility condition of Eq. 1).

        Returns
        -------
        (psi, ex, ey):
            Potential and the field components ``E = -grad(psi)``,
            all of the grid's shape.  ``psi`` has zero mean.
        """
        if rho.shape != self.grid.shape:
            raise ValueError(f"rho shape {rho.shape} != grid {self.grid.shape}")
        balanced = rho - rho.mean()
        a = sfft.dctn(balanced, type=2)
        coef = a * self._inv_denom
        coef[0, 0] = 0.0
        psi = sfft.idctn(coef, type=2)

        # E = -grad(psi): differentiating cos(w_u x)cos(w_v y) gives
        # -w_u sin cos (x) and -w_v cos sin (y); the minus signs cancel.
        cx = coef * self._wu
        cy = coef * self._wv
        ex = _idxst(sfft.idct(cx, type=2, axis=1), axis=0)
        ey = _idxst(sfft.idct(cy, type=2, axis=0), axis=1)
        return psi, ex, ey


def solve_poisson_fd(grid: Grid2D, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference solve: spectral potential + finite-difference field.

    Used in tests to cross-check the spectral differentiation path.
    """
    psi, _, _ = PoissonSolver(grid).solve(rho)
    gy, gx = None, None
    gx, gy = np.gradient(psi, grid.dx, grid.dy, edge_order=2)
    return psi, -gx, -gy

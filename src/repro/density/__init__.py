"""Electrostatics-based density engine (ePlace [15] substrate).

Pipeline: cell rectangles are rasterized into a bin grid as charge
(:mod:`repro.density.rasterize`), Poisson's equation (Eq. 1 of the
paper) is solved spectrally (:mod:`repro.density.poisson`), and
:class:`ElectrostaticSystem` ties both together to produce the density
penalty, per-cell energies and gradient forces.
"""

from repro.density.rasterize import CellRasterizer
from repro.density.poisson import (
    PoissonSolver,
    SpectralWorkspace,
    clear_spectral_cache,
    solve_poisson_fd,
    spectral_cache_size,
)
from repro.density.electrostatic import ElectrostaticSystem, FieldSolution

__all__ = [
    "CellRasterizer",
    "PoissonSolver",
    "SpectralWorkspace",
    "clear_spectral_cache",
    "spectral_cache_size",
    "solve_poisson_fd",
    "ElectrostaticSystem",
    "FieldSolution",
]

"""Electrostatic system: density penalty D(x, y), energy and forces.

Ties the rasterizer and the Poisson solver together, exactly as ePlace
does for the density term of Eq. (2) and as the paper re-uses for the
congestion term C(x, y) of Eq. (5):

* scatter charges (cell areas, or congestion demand) into the grid;
* solve Poisson's equation for potential ``psi`` and field ``E``;
* energy = ``1/2 * sum_i q_i psi_i``  (Eq. 2 / Sec. II-B);
* force on cell i = ``q_i * E`` averaged over the footprint, which is
  the negative gradient of the energy with respect to the position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.density.poisson import PoissonSolver
from repro.density.rasterize import CellRasterizer
from repro.geometry.grid import Grid2D
from repro.utils.contracts import CONTRACTS


@dataclass
class FieldSolution:
    """Everything one electrostatic solve produces."""

    density: np.ndarray
    potential: np.ndarray
    field_x: np.ndarray
    field_y: np.ndarray
    energy: float
    grad_x: np.ndarray
    grad_y: np.ndarray
    overflow: float


class ElectrostaticSystem:
    """Density engine bound to a grid, with optional static obstacles.

    Parameters
    ----------
    grid:
        Placement bin grid.
    target_density:
        Allowed occupancy ratio per bin (``D_b`` of the constraint in
        the wirelength-driven formulation); used for the overflow
        metric.
    static_charge:
        Optional precomputed charge map of fixed cells/macros added to
        every solve (they repel movable cells but feel no force).
    fft_workers:
        Optional ``scipy.fft`` thread count for the spectral solve
        (forwarded to :class:`~repro.density.poisson.PoissonSolver`);
        ``None`` keeps scipy's single-threaded default.
    """

    def __init__(
        self,
        grid: Grid2D,
        target_density: float = 1.0,
        static_charge: np.ndarray | None = None,
        fft_workers: int | None = None,
    ) -> None:
        if not 0.0 < target_density <= 1.0 + 1e-9:
            raise ValueError("target_density must be in (0, 1]")
        self.grid = grid
        self.target_density = target_density
        self.solver = PoissonSolver(grid, workers=fft_workers)
        if static_charge is not None and static_charge.shape != grid.shape:
            raise ValueError("static_charge shape mismatch")
        self.static_charge = static_charge

    @staticmethod
    def static_charge_from(
        grid: Grid2D,
        x: np.ndarray,
        y: np.ndarray,
        width: np.ndarray,
        height: np.ndarray,
    ) -> np.ndarray:
        """Rasterize fixed geometry once (no smoothing: exact areas)."""
        return CellRasterizer(grid, x, y, width, height, smooth=False).charge_map()

    def solve(
        self,
        x: np.ndarray,
        y: np.ndarray,
        width: np.ndarray,
        height: np.ndarray,
    ) -> FieldSolution:
        """Solve the electrostatic system for movable rectangles.

        ``width``/``height`` may already include inflation.  Returns
        density map (occupancy ratio incl. static charge), potential,
        field, total energy and per-rectangle forces (gradients of the
        energy w.r.t. centers are ``-force``; we return the *descent*
        gradient, i.e. ``grad = -q E`` so that ``pos -= step * grad``
        moves cells downhill).
        """
        raster = CellRasterizer(self.grid, x, y, width, height, smooth=True)
        charge = raster.charge_map()
        if self.static_charge is not None:
            charge = charge + self.static_charge
        density = charge / self.grid.bin_area

        psi, ex, ey = self.solver.solve(density)
        energy = 0.5 * float(raster.gather(psi).sum())
        # Descent gradient of the energy: dD/dx_i = -q_i * E_x(i)
        grad_x = -raster.gather(ex)
        grad_y = -raster.gather(ey)

        overflow = self.overflow(density, movable_area=float(raster.total_charge()))
        if CONTRACTS.enabled:
            site = "electrostatic.solve"
            CONTRACTS.check_array(site, "density", density, finite=True)
            CONTRACTS.check_array(site, "potential", psi, finite=True)
            CONTRACTS.check_array(site, "grad_x", grad_x, finite=True)
            CONTRACTS.check_array(site, "grad_y", grad_y, finite=True)
            CONTRACTS.check_charge_neutrality(site, psi)
            CONTRACTS.check_field_energy(site, density, psi)
        return FieldSolution(
            density=density,
            potential=psi,
            field_x=ex,
            field_y=ey,
            energy=energy,
            grad_x=grad_x,
            grad_y=grad_y,
            overflow=overflow,
        )

    def overflow(self, density: np.ndarray, movable_area: float) -> float:
        """Density overflow ratio: spilled area / total movable area."""
        if movable_area <= 0:
            return 0.0
        spill = np.maximum(density - self.target_density, 0.0).sum() * self.grid.bin_area
        return float(spill / movable_area)

"""First-order optimizers used by the placement engines."""

from repro.optim.nesterov import NesterovOptimizer
from repro.optim.adam import AdamOptimizer

__all__ = ["NesterovOptimizer", "AdamOptimizer"]

"""Nesterov's accelerated gradient method with Lipschitz step estimation.

This is the solver ePlace [15] proposes for analytical placement and the
one the paper plugs its routability-augmented objective into (Fig. 2,
"Nesterov solver").  Implementation follows the ePlace/DREAMPlace
scheme:

* iterate on a *reference* point ``v`` (lookahead) and a *major* point
  ``u``;
* the inverse Lipschitz constant is estimated from successive reference
  gradients, ``alpha = ||v_k - v_{k-1}|| / ||g_k - g_{k-1}||`` (a
  Barzilai-Borwein-flavoured secant estimate), clamped for safety;
* the momentum coefficient follows the classic
  ``a_{k+1} = (1 + sqrt(4 a_k^2 + 1)) / 2`` recursion.

The optimizer is objective-agnostic: it receives a gradient callback
over a flat parameter vector, so the placer composes wirelength,
density and congestion gradients outside.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils import faults
from repro.utils.guards import (
    GuardConfig,
    GuardEvent,
    GuardLog,
    NumericalFault,
    all_finite,
    scrub_nonfinite,
)


class NesterovOptimizer:
    """Accelerated gradient descent over a flat parameter vector."""

    def __init__(
        self,
        x0: np.ndarray,
        grad_fn: Callable[[np.ndarray], np.ndarray],
        initial_step: float = 1.0,
        max_step: float | None = None,
        min_step: float = 1e-12,
        max_move: float | None = None,
        guard: GuardConfig | None = None,
    ) -> None:
        """
        Parameters
        ----------
        x0:
            Initial parameter vector (copied).
        grad_fn:
            Callback returning the gradient at a parameter vector.
        initial_step:
            Step length for the very first iteration, before a secant
            estimate exists.  In placement this is typically set so the
            first move is a fraction of a bin.
        max_step / min_step:
            Clamp range for the secant step estimate.
        max_move:
            Trust region: cap on the infinity-norm displacement of any
            coordinate in one step.  Prevents the secant estimate from
            exploding when successive gradients become nearly equal
            (e.g. when cells pile against the die boundary).
        guard:
            NaN/Inf sentinel policy.  A non-finite gradient triggers a
            solver restart (momentum cleared, reference point pulled
            back to the major point) with a shrunken step, retried up
            to ``guard.max_backoffs`` times; a gradient that stays
            corrupted afterwards has its bad entries scrubbed to zero
            so the trajectory continues on the healthy coordinates.
            Checks are read-only on the healthy path.
        """
        self.u = np.array(x0, dtype=np.float64, copy=True)
        self.v = self.u.copy()
        self.grad_fn = grad_fn
        self.a = 1.0
        self.step = float(initial_step)
        self.max_step = max_step
        self.min_step = min_step
        self.max_move = max_move
        self.guard = guard or GuardConfig()
        self.guard_log = GuardLog()
        self._prev_v: np.ndarray | None = None
        self._prev_g: np.ndarray | None = None
        self.iteration = 0

    def _estimate_step(self, g: np.ndarray) -> float:
        if self._prev_v is None or self._prev_g is None:
            return self.step
        dv = self.v - self._prev_v
        dg = g - self._prev_g
        dg_norm = float(np.linalg.norm(dg))
        if dg_norm <= 1e-30:
            return self.step
        est = float(np.linalg.norm(dv)) / dg_norm
        if est <= 0.0 or not np.isfinite(est):
            return self.step
        est = max(est, self.min_step)
        if self.max_step is not None:
            est = min(est, self.max_step)
        return est

    def _backoff(self) -> None:
        """Solver restart with a shrunken step (guard trip response)."""
        self.a = 1.0
        self.v = self.u.copy()
        self._prev_v = None
        self._prev_g = None
        self.step = max(self.step * self.guard.backoff_factor, self.min_step)

    def _eval_gradient(self) -> np.ndarray:
        """Gradient at ``v`` with the NaN/Inf sentinel applied.

        Non-finite entries (or an arithmetic error inside the
        callback) trigger backoff-and-retry; a gradient that is still
        corrupted after ``max_backoffs`` attempts is scrubbed so the
        healthy coordinates keep descending.
        """
        guard = self.guard
        attempts = guard.max_backoffs if guard.enabled else 0
        g: np.ndarray | None = None
        error: str = ""
        for attempt in range(attempts + 1):
            if attempt:
                self.guard_log.record(
                    GuardEvent(
                        site="optim.gradient",
                        kind="nonfinite",
                        iteration=self.iteration,
                        detail=error,
                        action="backoff",
                    )
                )
                self._backoff()
            try:
                g = faults.fire("optim.gradient", self.grad_fn(self.v))
            except (ArithmeticError, faults.InjectedFault) as exc:
                g = None
                error = f"gradient raised {type(exc).__name__}: {exc}"
                continue
            if all_finite(g):
                return g
            error = f"{int((~np.isfinite(g)).sum())} non-finite gradient entries"
            if not guard.enabled:
                return g
        if g is None:
            raise NumericalFault(
                f"gradient callback failed {attempts + 1} times: {error}"
            )
        _, n_bad = scrub_nonfinite(g)
        self.guard_log.record(
            GuardEvent(
                site="optim.gradient",
                kind="nonfinite",
                iteration=self.iteration,
                detail=f"scrubbed {n_bad} entries after {attempts} backoffs",
                action="scrub",
            )
        )
        return g

    def do_step(self) -> dict:
        """One Nesterov iteration; returns diagnostics.

        The new major point is ``u_new = v - step * g(v)``; the next
        reference extrapolates along the momentum direction.
        """
        g = self._eval_gradient()
        self.step = self._estimate_step(g)
        if self.max_move is not None:
            g_inf = float(np.abs(g).max()) if len(g) else 0.0
            if g_inf > 0.0:
                self.step = min(self.step, self.max_move / g_inf)

        u_new = self.v - self.step * g
        a_new = (1.0 + np.sqrt(4.0 * self.a * self.a + 1.0)) / 2.0
        coef = (self.a - 1.0) / a_new
        v_new = u_new + coef * (u_new - self.u)

        self._prev_v = self.v
        self._prev_g = g
        self.u = u_new
        self.v = v_new
        self.a = a_new
        self.iteration += 1
        return {
            "iteration": self.iteration,
            "step": self.step,
            "grad_norm": float(np.linalg.norm(g)),
            "guard_trips": len(self.guard_log),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable snapshot of the full solver state (arrays copied)."""
        return {
            "u": self.u.copy(),
            "v": self.v.copy(),
            "a": self.a,
            "step": self.step,
            "iteration": self.iteration,
            "prev_v": None if self._prev_v is None else self._prev_v.copy(),
            "prev_g": None if self._prev_g is None else self._prev_g.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact resume)."""
        self.u = np.array(state["u"], dtype=np.float64, copy=True)
        self.v = np.array(state["v"], dtype=np.float64, copy=True)
        self.a = float(state["a"])
        self.step = float(state["step"])
        self.iteration = int(state["iteration"])
        pv, pg = state.get("prev_v"), state.get("prev_g")
        self._prev_v = None if pv is None else np.array(pv, dtype=np.float64)
        self._prev_g = None if pg is None else np.array(pg, dtype=np.float64)

    def reset_momentum(self) -> None:
        """Restart acceleration (used when the objective changes shape,

        e.g. after a cell-inflation or congestion-map update the
        landscape shifts and stale momentum can overshoot).
        """
        self.a = 1.0
        self.v = self.u.copy()
        self._prev_v = None
        self._prev_g = None

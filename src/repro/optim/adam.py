"""Adam optimizer — an alternative first-order solver.

Xplace's open-source implementation drives placement with
gradient-descent variants; we provide Adam both as an ablation
reference and because it is robust for the small synthetic designs in
the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class AdamOptimizer:
    """Standard Adam over a flat parameter vector."""

    def __init__(
        self,
        x0: np.ndarray,
        grad_fn: Callable[[np.ndarray], np.ndarray],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.u = np.array(x0, dtype=np.float64, copy=True)
        self.grad_fn = grad_fn
        self.lr = float(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = np.zeros_like(self.u)
        self.s = np.zeros_like(self.u)
        self.iteration = 0

    def do_step(self) -> dict:
        """One Adam update of ``u``; returns step diagnostics."""
        g = self.grad_fn(self.u)
        self.iteration += 1
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * g
        self.s = self.beta2 * self.s + (1.0 - self.beta2) * g * g
        m_hat = self.m / (1.0 - self.beta1**self.iteration)
        s_hat = self.s / (1.0 - self.beta2**self.iteration)
        self.u -= self.lr * m_hat / (np.sqrt(s_hat) + self.eps)
        return {
            "iteration": self.iteration,
            "step": self.lr,
            "grad_norm": float(np.linalg.norm(g)),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable snapshot of the full solver state (arrays copied)."""
        return {
            "u": self.u.copy(),
            "m": self.m.copy(),
            "s": self.s.copy(),
            "iteration": self.iteration,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact resume)."""
        self.u = np.array(state["u"], dtype=np.float64, copy=True)
        self.m = np.array(state["m"], dtype=np.float64, copy=True)
        self.s = np.array(state["s"], dtype=np.float64, copy=True)
        self.iteration = int(state["iteration"])

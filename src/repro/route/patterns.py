"""Congestion-aware L/Z-shape pattern routing for two-pin segments.

This is the route family of the "Z-shape routing algorithm" [18] the
paper uses for congestion estimation: each segment is realised as a
straight run, an L (one bend) or a Z (two bends), whichever has the
lowest congestion cost.  Candidate bend positions are evaluated in
closed form with prefix sums of the cost maps, so choosing among
``O(nx + ny)`` candidates costs a handful of vector operations.

Two evaluation paths share the same candidate generator and cost
algebra:

* :meth:`PatternRouter.route` — one segment, returns a
  :class:`RoutedPath` (reference implementation);
* :meth:`PatternRouter.route_batch` — arrays of segments, stacks the
  closed-form candidate costs over segments and returns a
  struct-of-arrays :class:`RoutedPathBatch`.  Identical results to the
  scalar path, one numpy dispatch per candidate family instead of one
  per segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import get_backend

# RoutedPathBatch.family codes
FAMILY_EMPTY = 0  # degenerate segment, both endpoints in one G-cell
FAMILY_H = 1  # single horizontal run
FAMILY_V = 2  # single vertical run
FAMILY_HVH = 3  # horizontal-vertical-horizontal, bend column ``bend``
FAMILY_VHV = 4  # vertical-horizontal-vertical, bend row ``bend``


@dataclass
class RoutedPath:
    """A committed route: axis-aligned runs plus bend locations.

    ``runs`` entries are ``('h', j, i0, i1)`` or ``('v', i, j0, j1)``
    with inclusive G-cell index ranges; ``bends`` are the G-cells where
    the direction changes (each costs a via).
    """

    runs: list
    bends: list
    cost: float

    @property
    def n_bends(self) -> int:
        """Number of bend points on the path."""
        return len(self.bends)

    def _run_arrays(self):
        """Runs as ``(is_h, fixed, lo, hi)`` numpy arrays."""
        is_h = np.fromiter(
            (kind == "h" for kind, *_ in self.runs), dtype=bool, count=len(self.runs)
        )
        fixed = np.fromiter(
            (r[1] for r in self.runs), dtype=np.int64, count=len(self.runs)
        )
        a = np.fromiter((r[2] for r in self.runs), dtype=np.int64, count=len(self.runs))
        b = np.fromiter((r[3] for r in self.runs), dtype=np.int64, count=len(self.runs))
        return is_h, fixed, np.minimum(a, b), np.maximum(a, b)

    def wire_cells(self) -> int:
        """Total G-cells crossed by wire runs (counting overlaps)."""
        if not self.runs:
            return 0
        _, _, lo, hi = self._run_arrays()
        return int((hi - lo + 1).sum())

    def wirelength(self, dx: float, dy: float) -> float:
        """Physical length: run spans scaled by the G-cell pitch."""
        if not self.runs:
            return 0.0
        is_h, _, lo, hi = self._run_arrays()
        span = hi - lo
        return float((span * np.where(is_h, dx, dy)).sum())

    def covered_cells(self) -> list:
        """All (i, j) G-cells on the path, in run order."""
        if not self.runs:
            return []
        is_h, fixed, lo, hi = self._run_arrays()
        spans = hi - lo + 1
        starts = np.concatenate(([0], np.cumsum(spans)[:-1]))
        # concatenated aranges lo_k..hi_k without a Python loop
        moving = np.arange(int(spans.sum())) + np.repeat(lo - starts, spans)
        fix = np.repeat(fixed, spans)
        h = np.repeat(is_h, spans)
        i = np.where(h, moving, fix)
        j = np.where(h, fix, moving)
        return list(zip(i.tolist(), j.tolist()))


@dataclass
class RunArrays:
    """Flattened axis-aligned runs and bends of many paths.

    ``h_*`` arrays describe horizontal runs (``h_demand[lo:hi+1, j]``),
    ``v_*`` vertical runs, ``b_*`` bend locations.  ``*_seg`` maps each
    run/bend back to the owning segment index.
    """

    h_seg: np.ndarray
    h_j: np.ndarray
    h_lo: np.ndarray
    h_hi: np.ndarray
    v_seg: np.ndarray
    v_i: np.ndarray
    v_lo: np.ndarray
    v_hi: np.ndarray
    b_seg: np.ndarray
    b_i: np.ndarray
    b_j: np.ndarray


@dataclass
class RoutedPathBatch:
    """Struct-of-arrays result of :meth:`PatternRouter.route_batch`.

    Every L/Z pattern is fully described by its family code and a
    single bend coordinate (column ``m`` for HVH, row ``r`` for VHV),
    so a batch of N paths is five flat arrays instead of N Python
    objects.  :meth:`path` materialises one :class:`RoutedPath` when
    object-level interop (maze fallback, debugging) is needed.
    """

    i1: np.ndarray
    j1: np.ndarray
    i2: np.ndarray
    j2: np.ndarray
    family: np.ndarray
    bend: np.ndarray
    cost: np.ndarray

    def __len__(self) -> int:
        return len(self.family)

    # ------------------------------------------------------------------
    def path(self, k: int) -> RoutedPath:
        """Materialise segment ``k`` as a :class:`RoutedPath`."""
        i1, j1 = int(self.i1[k]), int(self.j1[k])
        i2, j2 = int(self.i2[k]), int(self.j2[k])
        fam = int(self.family[k])
        cost = float(self.cost[k])
        if fam == FAMILY_EMPTY:
            return RoutedPath(runs=[], bends=[], cost=cost)
        if fam == FAMILY_H:
            return RoutedPath(runs=[("h", j1, i1, i2)], bends=[], cost=cost)
        if fam == FAMILY_V:
            return RoutedPath(runs=[("v", i1, j1, j2)], bends=[], cost=cost)
        runs: list = []
        bends: list = []
        if fam == FAMILY_HVH:
            m = int(self.bend[k])
            if m != i1:
                runs.append(("h", j1, i1, m))
                bends.append((m, j1))
            runs.append(("v", m, j1, j2))
            if m != i2:
                runs.append(("h", j2, m, i2))
                bends.append((m, j2))
        else:
            r = int(self.bend[k])
            if r != j1:
                runs.append(("v", i1, j1, r))
                bends.append((i1, r))
            runs.append(("h", r, i1, i2))
            if r != j2:
                runs.append(("v", i2, r, j2))
                bends.append((i2, r))
        return RoutedPath(runs=runs, bends=bends, cost=cost)

    # ------------------------------------------------------------------
    def runs(self, idx: np.ndarray | None = None) -> RunArrays:
        """Flattened runs/bends of segments ``idx`` (all when None)."""
        if idx is None:
            idx = np.arange(len(self), dtype=np.int64)
        else:
            idx = np.asarray(idx, dtype=np.int64)
        fam = self.family[idx]
        i1, j1 = self.i1[idx], self.j1[idx]
        i2, j2 = self.i2[idx], self.j2[idx]
        bend = self.bend[idx]

        h_seg, h_j, h_a, h_b = [], [], [], []
        v_seg, v_i, v_a, v_b = [], [], [], []
        b_seg, b_i, b_j = [], [], []

        def _h(mask, j, a, b):
            h_seg.append(idx[mask])
            h_j.append(j[mask])
            h_a.append(a[mask])
            h_b.append(b[mask])

        def _v(mask, i, a, b):
            v_seg.append(idx[mask])
            v_i.append(i[mask])
            v_a.append(a[mask])
            v_b.append(b[mask])

        def _bend(mask, i, j):
            b_seg.append(idx[mask])
            b_i.append(i[mask])
            b_j.append(j[mask])

        _h(fam == FAMILY_H, j1, i1, i2)
        _v(fam == FAMILY_V, i1, j1, j2)

        hvh = fam == FAMILY_HVH
        _h(hvh & (bend != i1), j1, i1, bend)
        _v(hvh, bend, j1, j2)
        _h(hvh & (bend != i2), j2, bend, i2)
        _bend(hvh & (bend != i1), bend, j1)
        _bend(hvh & (bend != i2), bend, j2)

        vhv = fam == FAMILY_VHV
        _v(vhv & (bend != j1), i1, j1, bend)
        _h(vhv, bend, i1, i2)
        _v(vhv & (bend != j2), i2, bend, j2)
        _bend(vhv & (bend != j1), i1, bend)
        _bend(vhv & (bend != j2), i2, bend)

        ha = np.concatenate(h_a)
        hb = np.concatenate(h_b)
        va = np.concatenate(v_a)
        vb = np.concatenate(v_b)
        return RunArrays(
            h_seg=np.concatenate(h_seg),
            h_j=np.concatenate(h_j),
            h_lo=np.minimum(ha, hb),
            h_hi=np.maximum(ha, hb),
            v_seg=np.concatenate(v_seg),
            v_i=np.concatenate(v_i),
            v_lo=np.minimum(va, vb),
            v_hi=np.maximum(va, vb),
            b_seg=np.concatenate(b_seg),
            b_i=np.concatenate(b_i),
            b_j=np.concatenate(b_j),
        )

    # ------------------------------------------------------------------
    def wirelengths(self, dx: float, dy: float) -> np.ndarray:
        """Physical wirelength per segment (vectorized)."""
        fam = self.family
        dxspan = np.abs(self.i2 - self.i1).astype(np.float64)
        dyspan = np.abs(self.j2 - self.j1).astype(np.float64)
        # straight and single-bend/Z families all cover the Manhattan
        # span exactly once per axis, plus the detour of the bend
        # coordinate outside the endpoint interval
        m = self.bend
        hvh = fam == FAMILY_HVH
        vhv = fam == FAMILY_VHV
        detour_x = np.where(
            hvh,
            np.abs(m - self.i1) + np.abs(self.i2 - m) - np.abs(self.i2 - self.i1),
            0,
        )
        detour_y = np.where(
            vhv,
            np.abs(m - self.j1) + np.abs(self.j2 - m) - np.abs(self.j2 - self.j1),
            0,
        )
        length = (dxspan + detour_x) * dx + (dyspan + detour_y) * dy
        return np.where(fam == FAMILY_EMPTY, 0.0, length)


class PatternRouter:
    """Pattern route segments against a pair of cost maps.

    Rebuild (or :meth:`refresh`) whenever the cost maps change; routing
    itself never mutates them.
    """

    def __init__(
        self,
        h_cost: np.ndarray,
        v_cost: np.ndarray,
        via_cost: float = 1.0,
        z_samples: int = 16,
        detour_margin: int = 2,
    ) -> None:
        self.via_cost = via_cost
        self.z_samples = max(z_samples, 2)
        self.detour_margin = detour_margin
        self.refresh(h_cost, v_cost)

    def refresh(self, h_cost: np.ndarray, v_cost: np.ndarray) -> None:
        """Update prefix sums after the cost maps changed."""
        nx, ny = h_cost.shape
        self.nx, self.ny = nx, ny
        self._hpre = np.zeros((nx + 1, ny))
        np.cumsum(h_cost, axis=0, out=self._hpre[1:])
        self._vpre = np.zeros((nx, ny + 1))
        np.cumsum(v_cost, axis=1, out=self._vpre[:, 1:])

    # ------------------------------------------------------------------
    def _h_run_cost(self, j, i0, i1):
        lo = np.minimum(i0, i1)
        hi = np.maximum(i0, i1)
        return self._hpre[hi + 1, j] - self._hpre[lo, j]

    def _v_run_cost(self, i, j0, j1):
        lo = np.minimum(j0, j1)
        hi = np.maximum(j0, j1)
        return self._vpre[i, hi + 1] - self._vpre[i, lo]

    def _candidate_matrix(
        self, a: np.ndarray, b: np.ndarray, limit: int
    ) -> np.ndarray:
        """Bend-candidate matrix ``(n, z_samples)``, rows sorted ascending.

        Row ``k`` holds the candidate coordinates of segment ``k``:
        the dense range ``lo..hi`` when it fits in ``z_samples``
        (right-padded by repeating ``hi``, which is harmless for an
        argmin because the first occurrence wins), else ``z_samples``
        evenly spaced positions.  The subsampled row reproduces
        ``np.linspace(lo, hi, z).round()`` operation-for-operation so
        scalar and batched routing see identical candidates.
        """
        lo = np.maximum(np.minimum(a, b) - self.detour_margin, 0)
        hi = np.minimum(np.maximum(a, b) + self.detour_margin, limit - 1)
        k = self.z_samples
        t = np.arange(k, dtype=np.float64)
        step = (hi - lo).astype(np.float64) / (k - 1)
        sub = np.round(t[None, :] * step[:, None] + lo[:, None]).astype(np.int64)
        sub[:, -1] = hi
        dense = np.minimum(lo[:, None] + np.arange(k, dtype=np.int64), hi[:, None])
        return np.where((hi - lo < k)[:, None], dense, sub)

    def _candidates(self, a: int, b: int, limit: int) -> np.ndarray:
        row = self._candidate_matrix(
            np.array([a], dtype=np.int64), np.array([b], dtype=np.int64), limit
        )[0]
        lo = max(min(a, b) - self.detour_margin, 0)
        hi = min(max(a, b) + self.detour_margin, limit - 1)
        return row[: min(hi - lo + 1, self.z_samples)]

    # ------------------------------------------------------------------
    def route(self, i1: int, j1: int, i2: int, j2: int) -> RoutedPath:
        """Best L/Z path between two G-cells."""
        if i1 == i2 and j1 == j2:
            return RoutedPath(runs=[], bends=[], cost=0.0)
        if j1 == j2:
            cost = float(self._h_run_cost(j1, i1, i2))
            return RoutedPath(runs=[("h", j1, i1, i2)], bends=[], cost=cost)
        if i1 == i2:
            cost = float(self._v_run_cost(i1, j1, j2))
            return RoutedPath(runs=[("v", i1, j1, j2)], bends=[], cost=cost)

        best = self._best_hvh(i1, j1, i2, j2)
        other = self._best_vhv(i1, j1, i2, j2)
        return best if best.cost <= other.cost else other

    def route_one(self, i1: int, j1: int, i2: int, j2: int) -> tuple:
        """Scalar ``(family, bend, cost)`` — the batch-representation
        twin of :meth:`route`.

        The per-chunk fallback of the batched routing engine uses this
        to fill :class:`RoutedPathBatch` entries one segment at a time
        when :meth:`route_batch` fails; candidates, cost arithmetic and
        tie-breaking mirror the batch path operation-for-operation, so
        the fallback is bit-identical to a healthy batched chunk.
        """
        if i1 == i2 and j1 == j2:
            return FAMILY_EMPTY, 0, 0.0
        if j1 == j2:
            return FAMILY_H, 0, float(self._h_run_cost(j1, i1, i2))
        if i1 == i2:
            return FAMILY_V, 0, float(self._v_run_cost(i1, j1, j2))

        best_m, best_hvh = 0, np.inf
        for m in self._candidates(i1, i2, self.nx):
            c = (
                self._h_run_cost(j1, i1, m)
                + self._v_run_cost(m, j1, j2)
                + self._h_run_cost(j2, m, i2)
                + self.via_cost * (float(m != i1) + (m != i2))
            )
            if c < best_hvh:
                best_hvh, best_m = c, int(m)
        best_r, best_vhv = 0, np.inf
        for r in self._candidates(j1, j2, self.ny):
            c = (
                self._v_run_cost(i1, j1, r)
                + self._h_run_cost(r, i1, i2)
                + self._v_run_cost(i2, r, j2)
                + self.via_cost * (float(r != j1) + (r != j2))
            )
            if c < best_vhv:
                best_vhv, best_r = c, int(r)
        if best_vhv < best_hvh:  # batch keeps HVH on ties
            return FAMILY_VHV, best_r, float(best_vhv)
        return FAMILY_HVH, best_m, float(best_hvh)

    def route_batch(
        self,
        i1: np.ndarray,
        j1: np.ndarray,
        i2: np.ndarray,
        j2: np.ndarray,
    ) -> RoutedPathBatch:
        """Best L/Z paths for arrays of segments in one shot.

        Produces exactly the paths :meth:`route` would return for each
        segment (same candidates, same tie-breaking: HVH wins cost
        ties, the lowest-coordinate bend wins within a family), using
        a constant number of numpy dispatches.
        """
        i1 = np.asarray(i1, dtype=np.int64)
        j1 = np.asarray(j1, dtype=np.int64)
        i2 = np.asarray(i2, dtype=np.int64)
        j2 = np.asarray(j2, dtype=np.int64)
        n = len(i1)
        family = np.zeros(n, dtype=np.int8)
        bend = np.zeros(n, dtype=np.int64)
        cost = np.zeros(n, dtype=np.float64)

        same_i = i1 == i2
        same_j = j1 == j2
        m_h = same_j & ~same_i
        m_v = same_i & ~same_j
        m_lz = ~same_i & ~same_j

        if m_h.any():
            family[m_h] = FAMILY_H
            cost[m_h] = self._h_run_cost(j1[m_h], i1[m_h], i2[m_h])
        if m_v.any():
            family[m_v] = FAMILY_V
            cost[m_v] = self._v_run_cost(i1[m_v], j1[m_v], j2[m_v])
        if m_lz.any():
            idx = np.flatnonzero(m_lz)
            a, b, c, d = i1[idx], j1[idx], i2[idx], j2[idx]
            c_hvh, m_best = self._best_hvh_batch(a, b, c, d)
            c_vhv, r_best = self._best_vhv_batch(a, b, c, d)
            use_vhv = c_vhv < c_hvh  # scalar route keeps HVH on ties
            family[idx] = np.where(use_vhv, FAMILY_VHV, FAMILY_HVH)
            bend[idx] = np.where(use_vhv, r_best, m_best)
            cost[idx] = np.where(use_vhv, c_vhv, c_hvh)

        return RoutedPathBatch(
            i1=i1, j1=j1, i2=i2, j2=j2, family=family, bend=bend, cost=cost
        )

    def _best_hvh_batch(self, i1, j1, i2, j2):
        """Vector form of :meth:`_best_hvh`: per-segment (cost, bend).

        The candidate-cost evaluation and arg-min run in the active
        kernel backend (the candidate matrix itself is cheap integer
        bookkeeping and stays here).
        """
        ms = self._candidate_matrix(i1, i2, self.nx)
        return get_backend().route_best_bends(
            self._hpre, self._vpre, ms, i1, j1, i2, j2, self.via_cost, "hvh"
        )

    def _best_vhv_batch(self, i1, j1, i2, j2):
        """Vector form of :meth:`_best_vhv`: per-segment (cost, bend)."""
        rs = self._candidate_matrix(j1, j2, self.ny)
        return get_backend().route_best_bends(
            self._hpre, self._vpre, rs, i1, j1, i2, j2, self.via_cost, "vhv"
        )

    def _best_hvh(self, i1, j1, i2, j2) -> RoutedPath:
        """Horizontal - vertical - horizontal, bend column ``m``."""
        ms = self._candidates(i1, i2, self.nx)
        c = (
            self._h_run_cost(j1, np.full_like(ms, i1), ms)
            + self._v_run_cost(ms, j1, j2)
            + self._h_run_cost(j2, ms, np.full_like(ms, i2))
            + self.via_cost * ((ms != i1).astype(float) + (ms != i2))
        )
        k = int(np.argmin(c))
        m = int(ms[k])
        runs = []
        bends = []
        if m != i1:
            runs.append(("h", j1, i1, m))
            bends.append((m, j1))
        runs.append(("v", m, j1, j2))
        if m != i2:
            runs.append(("h", j2, m, i2))
            bends.append((m, j2))
        return RoutedPath(runs=runs, bends=bends, cost=float(c[k]))

    def _best_vhv(self, i1, j1, i2, j2) -> RoutedPath:
        """Vertical - horizontal - vertical, bend row ``r``."""
        rs = self._candidates(j1, j2, self.ny)
        c = (
            self._v_run_cost(np.full_like(rs, i1), j1, rs)
            + self._h_run_cost(rs, i1, i2)
            + self._v_run_cost(np.full_like(rs, i2), rs, np.full_like(rs, j2))
            + self.via_cost * ((rs != j1).astype(float) + (rs != j2))
        )
        k = int(np.argmin(c))
        r = int(rs[k])
        runs = []
        bends = []
        if r != j1:
            runs.append(("v", i1, j1, r))
            bends.append((i1, r))
        runs.append(("h", r, i1, i2))
        if r != j2:
            runs.append(("v", i2, r, j2))
            bends.append((i2, r))
        return RoutedPath(runs=runs, bends=bends, cost=float(c[k]))

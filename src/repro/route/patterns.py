"""Congestion-aware L/Z-shape pattern routing for one two-pin segment.

This is the route family of the "Z-shape routing algorithm" [18] the
paper uses for congestion estimation: each segment is realised as a
straight run, an L (one bend) or a Z (two bends), whichever has the
lowest congestion cost.  Candidate bend positions are evaluated in
closed form with prefix sums of the cost maps, so choosing among
``O(nx + ny)`` candidates costs a handful of vector operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RoutedPath:
    """A committed route: axis-aligned runs plus bend locations.

    ``runs`` entries are ``('h', j, i0, i1)`` or ``('v', i, j0, j1)``
    with inclusive G-cell index ranges; ``bends`` are the G-cells where
    the direction changes (each costs a via).
    """

    runs: list
    bends: list
    cost: float

    @property
    def n_bends(self) -> int:
        return len(self.bends)

    def wire_cells(self) -> int:
        """Total G-cells crossed by wire runs (counting overlaps)."""
        total = 0
        for run in self.runs:
            _, _, a, b = run
            total += abs(b - a) + 1
        return total

    def wirelength(self, dx: float, dy: float) -> float:
        """Physical length: run spans scaled by the G-cell pitch."""
        length = 0.0
        for kind, _, a, b in self.runs:
            length += abs(b - a) * (dx if kind == "h" else dy)
        return length

    def covered_cells(self) -> list:
        """All (i, j) G-cells on the path."""
        cells = []
        for kind, fixed, a, b in self.runs:
            lo, hi = (a, b) if a <= b else (b, a)
            if kind == "h":
                cells.extend((i, fixed) for i in range(lo, hi + 1))
            else:
                cells.extend((fixed, j) for j in range(lo, hi + 1))
        return cells


class PatternRouter:
    """Pattern route segments against a pair of cost maps.

    Rebuild (or :meth:`refresh`) whenever the cost maps change; routing
    itself never mutates them.
    """

    def __init__(
        self,
        h_cost: np.ndarray,
        v_cost: np.ndarray,
        via_cost: float = 1.0,
        z_samples: int = 16,
        detour_margin: int = 2,
    ) -> None:
        self.via_cost = via_cost
        self.z_samples = max(z_samples, 2)
        self.detour_margin = detour_margin
        self.refresh(h_cost, v_cost)

    def refresh(self, h_cost: np.ndarray, v_cost: np.ndarray) -> None:
        """Update prefix sums after the cost maps changed."""
        nx, ny = h_cost.shape
        self.nx, self.ny = nx, ny
        self._hpre = np.zeros((nx + 1, ny))
        np.cumsum(h_cost, axis=0, out=self._hpre[1:])
        self._vpre = np.zeros((nx, ny + 1))
        np.cumsum(v_cost, axis=1, out=self._vpre[:, 1:])

    # ------------------------------------------------------------------
    def _h_run_cost(self, j, i0, i1):
        lo = np.minimum(i0, i1)
        hi = np.maximum(i0, i1)
        return self._hpre[hi + 1, j] - self._hpre[lo, j]

    def _v_run_cost(self, i, j0, j1):
        lo = np.minimum(j0, j1)
        hi = np.maximum(j0, j1)
        return self._vpre[i, hi + 1] - self._vpre[i, lo]

    def _candidates(self, a: int, b: int, limit: int) -> np.ndarray:
        lo = max(min(a, b) - self.detour_margin, 0)
        hi = min(max(a, b) + self.detour_margin, limit - 1)
        span = hi - lo + 1
        if span <= self.z_samples:
            return np.arange(lo, hi + 1)
        return np.unique(np.linspace(lo, hi, self.z_samples).round().astype(np.int64))

    # ------------------------------------------------------------------
    def route(self, i1: int, j1: int, i2: int, j2: int) -> RoutedPath:
        """Best L/Z path between two G-cells."""
        if i1 == i2 and j1 == j2:
            return RoutedPath(runs=[], bends=[], cost=0.0)
        if j1 == j2:
            cost = float(self._h_run_cost(j1, i1, i2))
            return RoutedPath(runs=[("h", j1, i1, i2)], bends=[], cost=cost)
        if i1 == i2:
            cost = float(self._v_run_cost(i1, j1, j2))
            return RoutedPath(runs=[("v", i1, j1, j2)], bends=[], cost=cost)

        best = self._best_hvh(i1, j1, i2, j2)
        other = self._best_vhv(i1, j1, i2, j2)
        return best if best.cost <= other.cost else other

    def _best_hvh(self, i1, j1, i2, j2) -> RoutedPath:
        """Horizontal - vertical - horizontal, bend column ``m``."""
        ms = self._candidates(i1, i2, self.nx)
        c = (
            self._h_run_cost(j1, np.full_like(ms, i1), ms)
            + self._v_run_cost(ms, j1, j2)
            + self._h_run_cost(j2, ms, np.full_like(ms, i2))
            + self.via_cost * ((ms != i1).astype(float) + (ms != i2))
        )
        k = int(np.argmin(c))
        m = int(ms[k])
        runs = []
        bends = []
        if m != i1:
            runs.append(("h", j1, i1, m))
            bends.append((m, j1))
        runs.append(("v", m, j1, j2))
        if m != i2:
            runs.append(("h", j2, m, i2))
            bends.append((m, j2))
        return RoutedPath(runs=runs, bends=bends, cost=float(c[k]))

    def _best_vhv(self, i1, j1, i2, j2) -> RoutedPath:
        """Vertical - horizontal - vertical, bend row ``r``."""
        rs = self._candidates(j1, j2, self.ny)
        c = (
            self._v_run_cost(np.full_like(rs, i1), j1, rs)
            + self._h_run_cost(rs, i1, i2)
            + self._v_run_cost(np.full_like(rs, i2), rs, np.full_like(rs, j2))
            + self.via_cost * ((rs != j1).astype(float) + (rs != j2))
        )
        k = int(np.argmin(c))
        r = int(rs[k])
        runs = []
        bends = []
        if r != j1:
            runs.append(("v", i1, j1, r))
            bends.append((i1, r))
        runs.append(("h", r, i1, i2))
        if r != j2:
            runs.append(("v", i2, r, j2))
            bends.append((i2, r))
        return RoutedPath(runs=runs, bends=bends, cost=float(c[k]))

"""Configuration of the global router."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RouterConfig:
    """Router knobs.

    Attributes
    ----------
    n_layers:
        Number of routing layers; alternating preferred directions
        (layer 0 horizontal).  The 2-D maps the placer consumes are
        layer sums, as in Sec. II-B of the paper.
    wire_pitch:
        Track pitch in the same length unit as the die.  Per-G-cell
        directional capacity is ``extent / pitch`` tracks per layer of
        that direction.
    via_weight:
        Contribution of one via to the demand of its G-cell, relative
        to one wire crossing.
    pin_via_demand:
        Via demand added at each pin's G-cell (layer-access cost).
    macro_blockage:
        Fraction of capacity blocked in G-cells covered by macros.
    z_samples:
        Max number of intermediate bend positions evaluated per
        Z-shape family (subsampled evenly when the span is larger).
    congestion_exponent / congestion_weight:
        Path cost per G-cell is ``1 + weight * utilization^exponent``;
        steers segments away from nearly-full cells.
    history_weight:
        Extra cost per accumulated overflow event (rip-up rounds).
    rrr_rounds:
        Number of rip-up-and-reroute rounds after initial routing.
    cost_refresh_interval:
        Number of segments routed between cost-map refreshes.
    maze_fallback:
        After the rip-up rounds, re-route still-overflowed segments
        with a Dijkstra maze router that can take arbitrary detours
        (extension beyond the paper's Z-shape estimator).
    maze_window:
        Bounding-box expansion margin for the maze search.
    engine:
        ``"batched"`` routes whole cost-refresh chunks as vectorized
        array operations (default); ``"scalar"`` is the one-segment-
        at-a-time reference implementation.  Both produce identical
        demand maps (the batched path evaluates the same candidates
        against the same stale-within-chunk cost maps), so the switch
        only trades speed — keep ``"scalar"`` around for equivalence
        tests and debugging.
    """

    n_layers: int = 4
    wire_pitch: float = 0.17
    via_weight: float = 0.25
    pin_via_demand: float = 0.5
    macro_blockage: float = 0.5
    z_samples: int = 16
    congestion_exponent: float = 4.0
    congestion_weight: float = 3.0
    history_weight: float = 1.5
    rrr_rounds: int = 2
    cost_refresh_interval: int = 256
    maze_fallback: bool = False
    maze_window: int = 8
    topology: str = "mst"  # multi-pin decomposition: "mst" | "stt"
    engine: str = "batched"  # segment evaluation: "batched" | "scalar"

    def __post_init__(self) -> None:
        if self.topology not in ("mst", "stt"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.engine not in ("batched", "scalar"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.n_layers < 2:
            raise ValueError("need at least 2 routing layers (one H, one V)")
        if self.wire_pitch <= 0:
            raise ValueError("wire_pitch must be positive")
        if self.rrr_rounds < 0:
            raise ValueError("rrr_rounds must be >= 0")

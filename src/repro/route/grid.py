"""Layered routing grid: capacities, demand accumulation, cost maps.

The 3-D G-cell space of the paper (``R_r x R_c x L``) is represented by
per-direction 2-D maps: layers of the same preferred direction are
summed, exactly the reduction of Sec. II-B (``Dmd_{m,n} = sum_l ...``).
A :class:`RoutingGrid` owns

* static horizontal/vertical capacity maps (macro blockage subtracted);
* mutable horizontal/vertical wire demand and via demand maps;
* history maps for negotiated-congestion rip-up-and-reroute.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.route.config import RouterConfig


class RoutingGrid:
    """Demand/capacity state for one routing pass."""

    def __init__(
        self,
        grid: Grid2D,
        config: RouterConfig | None = None,
        netlist: Netlist | None = None,
    ) -> None:
        """
        Parameters
        ----------
        grid:
            G-cell grid; the paper maps it one-to-one onto placement
            bins, so callers typically pass the placer's grid.
        netlist:
            When given, macro blockage is carved out of the capacity.
        """
        self.grid = grid
        self.config = config or RouterConfig()
        cfg = self.config

        n_h_layers = (cfg.n_layers + 1) // 2  # layers 0, 2, ... are horizontal
        n_v_layers = cfg.n_layers // 2
        tracks_h = grid.dy / cfg.wire_pitch  # horizontal wires stack vertically
        tracks_v = grid.dx / cfg.wire_pitch
        self.h_cap = np.full(grid.shape, tracks_h * n_h_layers, dtype=np.float64)
        self.v_cap = np.full(grid.shape, tracks_v * n_v_layers, dtype=np.float64)

        if netlist is not None:
            self._apply_macro_blockage(netlist)
            self._apply_rail_blockage(netlist)

        self.h_demand = grid.zeros()
        self.v_demand = grid.zeros()
        self.via_demand = grid.zeros()
        self.history = grid.zeros()

    def _apply_macro_blockage(self, netlist: Netlist) -> None:
        """Reduce capacity under macros by the blockage fraction."""
        from repro.density.rasterize import CellRasterizer

        macro_ids = np.flatnonzero(netlist.cell_macro & netlist.cell_fixed)
        if len(macro_ids) == 0:
            return
        raster = CellRasterizer(
            self.grid,
            netlist.x[macro_ids],
            netlist.y[macro_ids],
            netlist.cell_width[macro_ids],
            netlist.cell_height[macro_ids],
            smooth=False,
        )
        coverage = np.clip(raster.charge_map() / self.grid.bin_area, 0.0, 1.0)
        factor = 1.0 - self.config.macro_blockage * coverage
        self.h_cap *= factor
        self.v_cap *= factor

    def _apply_rail_blockage(self, netlist: Netlist) -> None:
        """Subtract the tracks PG rails occupy from routing capacity.

        A rail running through a G-cell permanently consumes
        ``thickness / pitch`` tracks of its direction over the covered
        span — this is why cells under M2 rails are hard to reach
        (Sec. III-C) and gives the pin-accessibility techniques their
        physical lever.
        """
        if not netlist.pg_rails:
            return
        from repro.density.rasterize import CellRasterizer

        for horizontal in (True, False):
            rails = [r for r in netlist.pg_rails if r.horizontal == horizontal]
            if not rails:
                continue
            cx = np.array([r.rect.center[0] for r in rails])
            cy = np.array([r.rect.center[1] for r in rails])
            w = np.array([r.rect.width for r in rails])
            h = np.array([r.rect.height for r in rails])
            area = CellRasterizer(self.grid, cx, cy, w, h, smooth=False).charge_map()
            if horizontal:
                blocked = area / (self.config.wire_pitch * self.grid.dx)
                self.h_cap = np.maximum(self.h_cap - blocked, 0.25 * self.h_cap)
            else:
                blocked = area / (self.config.wire_pitch * self.grid.dy)
                self.v_cap = np.maximum(self.v_cap - blocked, 0.25 * self.v_cap)

    # ------------------------------------------------------------------
    # demand bookkeeping
    # ------------------------------------------------------------------
    def reset_demand(self) -> None:
        """Zero all demand maps (start of a routing pass)."""
        self.h_demand.fill(0.0)
        self.v_demand.fill(0.0)
        self.via_demand.fill(0.0)

    def add_h_run(self, j: int, i0: int, i1: int, sign: float = 1.0) -> None:
        """Add wire demand for a horizontal run through row ``j``.

        Covers G-cells ``min(i0,i1) .. max(i0,i1)`` inclusive.
        """
        lo, hi = (i0, i1) if i0 <= i1 else (i1, i0)
        self.h_demand[lo : hi + 1, j] += sign

    def add_v_run(self, i: int, j0: int, j1: int, sign: float = 1.0) -> None:
        """Add wire demand for a vertical run through column ``i``."""
        lo, hi = (j0, j1) if j0 <= j1 else (j1, j0)
        self.v_demand[i, lo : hi + 1] += sign

    def add_via(self, i: int, j: int, amount: float = 1.0) -> None:
        """Add via demand at G-cell ``(i, j)``."""
        self.via_demand[i, j] += amount

    # ------------------------------------------------------------------
    # batched demand scatter (one call per chunk instead of one Python
    # slice-add per run; exact integer counts, so bit-identical to the
    # scalar adders)
    # ------------------------------------------------------------------
    def _scatter_runs(
        self,
        target: np.ndarray,
        fixed: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        sign: float,
        axis: int,
    ) -> None:
        """Add ``sign`` over spans ``lo..hi`` along ``axis`` at ``fixed``.

        Expands all spans into flat G-cell indices with arange/repeat
        arithmetic and accumulates them with one ``np.bincount``.
        """
        if len(fixed) == 0:
            return
        spans = hi - lo + 1
        total = int(spans.sum())
        starts = np.concatenate(([0], np.cumsum(spans)[:-1]))
        moving = np.arange(total) + np.repeat(lo - starts, spans)
        fix = np.repeat(fixed, spans)
        ny = target.shape[1]
        flat = moving * ny + fix if axis == 0 else fix * ny + moving
        counts = np.bincount(flat, minlength=target.size)
        target += sign * counts.reshape(target.shape)

    def add_h_runs(
        self, j: np.ndarray, lo: np.ndarray, hi: np.ndarray, sign: float = 1.0
    ) -> None:
        """Batch of horizontal runs: ``h_demand[lo_k:hi_k+1, j_k] += sign``."""
        self._scatter_runs(self.h_demand, j, lo, hi, sign, axis=0)

    def add_v_runs(
        self, i: np.ndarray, lo: np.ndarray, hi: np.ndarray, sign: float = 1.0
    ) -> None:
        """Batch of vertical runs: ``v_demand[i_k, lo_k:hi_k+1] += sign``."""
        self._scatter_runs(self.v_demand, i, lo, hi, sign, axis=1)

    def add_vias(self, i: np.ndarray, j: np.ndarray, sign: float = 1.0) -> None:
        """Batch of unit vias at G-cells ``(i_k, j_k)``."""
        if len(i) == 0:
            return
        counts = np.bincount(i * self.grid.ny + j, minlength=self.via_demand.size)
        self.via_demand += sign * counts.reshape(self.via_demand.shape)

    # ------------------------------------------------------------------
    # aggregate views (Sec. II-B reductions)
    # ------------------------------------------------------------------
    def total_demand(self) -> np.ndarray:
        """``Dmd_{m,n}``: wire demand plus weighted via demand."""
        return (
            self.h_demand
            + self.v_demand
            + self.config.via_weight * self.via_demand
        )

    def total_capacity(self) -> np.ndarray:
        """``Cap_{m,n}``: sum of directional capacities."""
        return self.h_cap + self.v_cap

    def utilization(self) -> np.ndarray:
        """``rho = Dmd / Cap`` (the Poisson charge of Sec. II-B)."""
        return self.total_demand() / np.maximum(self.total_capacity(), 1e-12)

    def overflow_map(self) -> np.ndarray:
        """Per-direction overflow summed (demand above capacity)."""
        return np.maximum(self.h_demand - self.h_cap, 0.0) + np.maximum(
            self.v_demand - self.v_cap, 0.0
        )

    def accumulate_history(self) -> None:
        """Record one unit of history where any direction overflows."""
        self.history += (self.h_demand > self.h_cap) | (self.v_demand > self.v_cap)

    # ------------------------------------------------------------------
    # path cost maps
    # ------------------------------------------------------------------
    def cost_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-G-cell crossing costs (horizontal, vertical).

        ``1 + w * util^p + history`` — convex in utilization so paths
        spread around hotspots before they overflow.
        """
        cfg = self.config
        h_util = self.h_demand / np.maximum(self.h_cap, 1e-12)
        v_util = self.v_demand / np.maximum(self.v_cap, 1e-12)
        hist = cfg.history_weight * self.history
        h_cost = 1.0 + cfg.congestion_weight * h_util**cfg.congestion_exponent + hist
        v_cost = 1.0 + cfg.congestion_weight * v_util**cfg.congestion_exponent + hist
        return h_cost, v_cost

"""Maze routing: congestion-aware shortest paths on the G-cell graph.

Pattern routing explores only L/Z shapes; when a region is saturated,
those 0-2-bend paths may all be overflowed while a longer detour is
free.  This Dijkstra-based maze router finds the cheapest arbitrary
monotone-or-not path and is used as a *fallback* for segments that the
rip-up-and-reroute rounds cannot fix (an extension beyond the paper's
Z-shape estimator, off by default).

Graph model: nodes are (G-cell, direction) pairs so that bends can be
charged a via cost; moving to a horizontal neighbour pays that cell's
horizontal crossing cost, etc.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.route.patterns import RoutedPath

_H, _V = 0, 1


def maze_route(
    h_cost: np.ndarray,
    v_cost: np.ndarray,
    i1: int,
    j1: int,
    i2: int,
    j2: int,
    via_cost: float = 1.0,
    window: int = 8,
) -> RoutedPath:
    """Cheapest path between two G-cells with per-direction costs.

    Parameters
    ----------
    h_cost / v_cost:
        Per-G-cell crossing costs (same arrays pattern routing uses).
    window:
        Search is restricted to the segment bounding box expanded by
        this margin, keeping the worst case bounded.

    Returns
    -------
    RoutedPath with the same run/bend representation pattern routing
    produces, so commitment code is shared.
    """
    nx, ny = h_cost.shape
    if (i1, j1) == (i2, j2):
        return RoutedPath(runs=[], bends=[], cost=0.0)

    ilo = max(min(i1, i2) - window, 0)
    ihi = min(max(i1, i2) + window, nx - 1)
    jlo = max(min(j1, j2) - window, 0)
    jhi = min(max(j1, j2) + window, ny - 1)
    wx = ihi - ilo + 1
    wy = jhi - jlo + 1

    dist = np.full((wx, wy, 2), np.inf)
    parent = np.full((wx, wy, 2), -1, dtype=np.int64)  # encoded predecessor

    def enc(i, j, d):
        return ((i - ilo) * wy + (j - jlo)) * 2 + d

    def dec(code):
        d = code % 2
        rest = code // 2
        return rest // wy + ilo, rest % wy + jlo, d

    heap: list[tuple[float, int]] = []
    for d in (_H, _V):
        dist[i1 - ilo, j1 - jlo, d] = 0.0
        heapq.heappush(heap, (0.0, enc(i1, j1, d)))

    target_codes = {enc(i2, j2, _H), enc(i2, j2, _V)}
    found = -1
    while heap:
        cost, code = heapq.heappop(heap)
        i, j, d = dec(code)
        if cost > dist[i - ilo, j - jlo, d]:
            continue
        if code in target_codes:
            found = code
            break
        # neighbours: straight moves keep direction, turns pay a via
        moves = (
            (i - 1, j, _H, h_cost),
            (i + 1, j, _H, h_cost),
            (i, j - 1, _V, v_cost),
            (i, j + 1, _V, v_cost),
        )
        for (ni, nj, nd, cmap) in moves:
            if not (ilo <= ni <= ihi and jlo <= nj <= jhi):
                continue
            step = cmap[ni, nj] + (via_cost if nd != d else 0.0)
            ncost = cost + step
            if ncost < dist[ni - ilo, nj - jlo, nd]:
                dist[ni - ilo, nj - jlo, nd] = ncost
                parent[ni - ilo, nj - jlo, nd] = code
                heapq.heappush(heap, (ncost, enc(ni, nj, nd)))

    if found < 0:
        # unreachable within the window (cannot happen with window>=0
        # and positive costs, but guard anyway)
        return RoutedPath(runs=[], bends=[], cost=float("inf"))

    # trace back the cell sequence
    cells = []
    code = found
    while code >= 0:
        i, j, d = dec(code)
        cells.append((i, j))
        code = parent[i - ilo, j - jlo, d]
    cells.reverse()
    # drop consecutive duplicates ((i1,j1) appears once per direction)
    dedup = [cells[0]]
    for c in cells[1:]:
        if c != dedup[-1]:
            dedup.append(c)
    return _cells_to_path(dedup, float(dist[i2 - ilo, j2 - jlo].min()))


def _cells_to_path(cells: list, cost: float) -> RoutedPath:
    """Compress a cell sequence into axis-aligned runs + bends."""
    if len(cells) < 2:
        return RoutedPath(runs=[], bends=[], cost=cost)
    runs = []
    bends = []
    start = cells[0]
    prev = cells[0]
    direction = None  # 'h' or 'v'
    for cur in cells[1:]:
        step_dir = "h" if cur[1] == prev[1] else "v"
        if direction is None:
            direction = step_dir
        elif step_dir != direction:
            runs.append(_run(direction, start, prev))
            bends.append(prev)
            start = prev
            direction = step_dir
        prev = cur
    runs.append(_run(direction, start, prev))
    return RoutedPath(runs=runs, bends=bends, cost=cost)


def _run(direction: str, a: tuple, b: tuple):
    if direction == "h":
        return ("h", a[1], a[0], b[0])
    return ("v", a[0], a[1], b[1])

"""Congestion map construction (Eq. 3) and derived statistics.

Two distinct views of the same demand/capacity data feed different
parts of the paper's framework:

* the **congestion map** ``C = max(Dmd/Cap - 1, 0)`` (Eq. 3) drives
  momentum-based cell inflation and the PG-rail density adjustment;
* the **utilization** ``rho = Dmd/Cap`` is the charge density of the
  congestion Poisson system (Sec. II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.route.grid import RoutingGrid


@dataclass
class CongestionData:
    """Congestion views plus the statistics the algorithms consume."""

    congestion: np.ndarray
    utilization: np.ndarray

    @property
    def mean_congestion(self) -> float:
        """``C-bar``: average congestion over all G-cells (Eq. 12/15)."""
        return float(self.congestion.mean())

    @property
    def max_congestion(self) -> float:
        """Peak of the congestion map."""
        return float(self.congestion.max())

    def congested_mask(self, threshold: float = 0.0) -> np.ndarray:
        """G-cells with congestion strictly above ``threshold``."""
        return self.congestion > threshold

    def value_at_cells(self, grid, x, y) -> np.ndarray:
        """Congestion of the G-cell under each cell center (Alg. 2/Eq. 11)."""
        return grid.value_at(self.congestion, x, y)


def congestion_from_demand(rgrid: RoutingGrid) -> CongestionData:
    """Build :class:`CongestionData` from a routed grid."""
    utilization = rgrid.utilization()
    congestion = np.maximum(utilization - 1.0, 0.0)
    return CongestionData(congestion=congestion, utilization=utilization)

"""Global routing substrate (stand-in for the GPU router of [18]).

Estimates routing congestion for placement: nets are decomposed into
two-pin segments (:mod:`repro.route.decompose`), each segment is routed
with congestion-aware L/Z-shape pattern routing over a layered G-cell
grid (:mod:`repro.route.patterns`), a few rip-up-and-reroute rounds
clean up hotspots (:mod:`repro.route.router`), and the resulting
demand/capacity maps yield the congestion map of Eq. (3)
(:mod:`repro.route.congestion`).  :mod:`repro.route.rudy` provides the
classic RUDY estimator as a cheap baseline.
"""

from repro.route.config import RouterConfig
from repro.route.grid import RoutingGrid
from repro.route.decompose import decompose_net, decompose_netlist, segment_endpoints
from repro.route.patterns import PatternRouter, RoutedPath, RoutedPathBatch
from repro.route.router import DemandSnapshot, GlobalRouter, RoutingResult
from repro.route.congestion import CongestionData, congestion_from_demand
from repro.route.maze import maze_route
from repro.route.rudy import pin_rudy_map, rudy_map
from repro.route.stt import single_trunk_segments, stt_length

__all__ = [
    "RouterConfig",
    "RoutingGrid",
    "decompose_net",
    "decompose_netlist",
    "segment_endpoints",
    "PatternRouter",
    "RoutedPath",
    "RoutedPathBatch",
    "DemandSnapshot",
    "GlobalRouter",
    "RoutingResult",
    "CongestionData",
    "congestion_from_demand",
    "maze_route",
    "rudy_map",
    "pin_rudy_map",
    "single_trunk_segments",
    "stt_length",
]

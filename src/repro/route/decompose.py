"""Net decomposition into two-pin segments.

Multi-pin nets are broken into a rectilinear minimum spanning tree
(Prim's algorithm over pin locations in the Manhattan metric), the
standard topology generator for pattern routers when a Steiner-tree
package is unavailable.  Two-pin nets map to a single segment.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


def mst_edges(px: np.ndarray, py: np.ndarray) -> list[tuple[int, int]]:
    """Prim MST edge list over points in the Manhattan metric.

    ``O(d^2)`` — fine for net degrees up to a few dozen.  Duplicate
    points get zero-length edges, which routers treat as via-only.
    """
    d = len(px)
    if d < 2:
        return []
    in_tree = np.zeros(d, dtype=bool)
    best_dist = np.full(d, np.inf)
    best_from = np.zeros(d, dtype=np.int64)
    in_tree[0] = True
    dist0 = np.abs(px - px[0]) + np.abs(py - py[0])
    best_dist = np.where(in_tree, np.inf, dist0)
    edges: list[tuple[int, int]] = []
    for _ in range(d - 1):
        nxt = int(np.argmin(best_dist))
        edges.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        best_dist[nxt] = np.inf
        dist_new = np.abs(px - px[nxt]) + np.abs(py - py[nxt])
        improved = (~in_tree) & (dist_new < best_dist)
        best_dist[improved] = dist_new[improved]
        best_from[improved] = nxt
    return edges


def decompose_net(
    netlist: Netlist,
    net_id: int,
    px: np.ndarray,
    py: np.ndarray,
    topology: str = "mst",
) -> list[tuple[float, float, float, float]]:
    """Two-pin segments ``(x1, y1, x2, y2)`` of one net.

    ``px``/``py`` are the full pin-position arrays (precomputed once
    per routing pass for speed).  ``topology`` selects the multi-pin
    decomposition: ``"mst"`` (Prim, default) or ``"stt"``
    (single-trunk Steiner tree, see :mod:`repro.route.stt`).
    """
    pins = netlist.net_pins(net_id)
    if len(pins) < 2:
        return []
    sx = px[pins]
    sy = py[pins]
    if len(pins) == 2:
        return [(float(sx[0]), float(sy[0]), float(sx[1]), float(sy[1]))]
    if topology == "stt":
        from repro.route.stt import single_trunk_segments

        return single_trunk_segments(sx, sy)
    if topology != "mst":
        raise ValueError(f"unknown topology {topology!r}")
    return [
        (float(sx[a]), float(sy[a]), float(sx[b]), float(sy[b]))
        for a, b in mst_edges(sx, sy)
    ]


def decompose_netlist(
    netlist: Netlist, topology: str = "mst"
) -> list[list[tuple[float, float, float, float]]]:
    """Segments of every net, indexed by net id."""
    px, py = netlist.pin_positions()
    return [
        decompose_net(netlist, e, px, py, topology)
        for e in range(netlist.n_nets)
    ]


def segment_endpoints(
    netlist: Netlist, topology: str = "mst"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Endpoint arrays ``(net_id, x1, y1, x2, y2)`` of every segment.

    Array form of :func:`decompose_netlist`, in the same segment order
    (net id ascending, per-net segment order preserved).  Two-pin nets
    — the bulk of any netlist — are extracted with pure array indexing
    from the CSR structure; only nets of degree >= 3 fall back to the
    per-net topology generator.
    """
    px, py = netlist.pin_positions()
    deg = netlist.net_degrees()
    starts = netlist.net_pin_starts
    order = netlist.net_pin_order

    two = np.flatnonzero(deg == 2)
    pa = order[starts[two]]
    pb = order[starts[two] + 1]
    net_id = [two]
    x1, y1 = [px[pa]], [py[pa]]
    x2, y2 = [px[pb]], [py[pb]]

    multi_ids: list[int] = []
    mx1: list[float] = []
    my1: list[float] = []
    mx2: list[float] = []
    my2: list[float] = []
    for e in np.flatnonzero(deg >= 3):
        for (sx1, sy1, sx2, sy2) in decompose_net(netlist, int(e), px, py, topology):
            multi_ids.append(int(e))
            mx1.append(sx1)
            my1.append(sy1)
            mx2.append(sx2)
            my2.append(sy2)
    net_id.append(np.asarray(multi_ids, dtype=np.int64))
    x1.append(np.asarray(mx1, dtype=np.float64))
    y1.append(np.asarray(my1, dtype=np.float64))
    x2.append(np.asarray(mx2, dtype=np.float64))
    y2.append(np.asarray(my2, dtype=np.float64))

    nets = np.concatenate(net_id)
    # merge the two blocks back into global net order; the sort is
    # stable, so each net's internal segment order is untouched
    perm = np.argsort(nets, kind="stable")
    return (
        nets[perm],
        np.concatenate(x1)[perm],
        np.concatenate(y1)[perm],
        np.concatenate(x2)[perm],
        np.concatenate(y2)[perm],
    )

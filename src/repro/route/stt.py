"""Single-trunk rectilinear Steiner trees.

A lightweight alternative to MST decomposition: a *trunk* runs through
the pin cloud's median (vertically or horizontally, whichever is
cheaper) and every pin connects to it with a perpendicular branch.
For the bus-like nets that dominate routing demand this matches the
classic Steiner topology and beats the MST total length; the router
treats the resulting trunk pieces and branches as ordinary two-pin
segments.
"""

from __future__ import annotations

import numpy as np


def _trunk_cost(primary: np.ndarray, secondary: np.ndarray) -> float:
    """Total length of a median trunk plus perpendicular branches.

    ``primary`` are the coordinates along the trunk direction,
    ``secondary`` across it.
    """
    med = float(np.median(secondary))
    trunk = float(primary.max() - primary.min())
    branches = float(np.abs(secondary - med).sum())
    return trunk + branches


def single_trunk_segments(px: np.ndarray, py: np.ndarray) -> list:
    """Two-pin segments of the best single-trunk Steiner tree.

    Returns ``[(x1, y1, x2, y2), ...]`` covering the branches and the
    trunk pieces between consecutive branch taps.
    """
    d = len(px)
    if d < 2:
        return []
    if d == 2:
        return [(float(px[0]), float(py[0]), float(px[1]), float(py[1]))]

    horizontal = _trunk_cost(px, py) <= _trunk_cost(py, px)
    segments: list[tuple[float, float, float, float]] = []
    if horizontal:
        ty = float(np.median(py))
        taps = np.sort(px)
        for x, y in zip(px, py):
            if abs(y - ty) > 1e-12:
                segments.append((float(x), float(y), float(x), ty))
        for a, b in zip(taps, taps[1:]):
            if b - a > 1e-12:
                segments.append((float(a), ty, float(b), ty))
    else:
        tx = float(np.median(px))
        taps = np.sort(py)
        for x, y in zip(px, py):
            if abs(x - tx) > 1e-12:
                segments.append((float(x), float(y), tx, float(y)))
        for a, b in zip(taps, taps[1:]):
            if b - a > 1e-12:
                segments.append((tx, float(a), tx, float(b)))
    return segments


def stt_length(px: np.ndarray, py: np.ndarray) -> float:
    """Total wirelength of the single-trunk tree."""
    return sum(
        abs(x2 - x1) + abs(y2 - y1)
        for (x1, y1, x2, y2) in single_trunk_segments(px, py)
    )

"""Global router: initial pattern routing + rip-up-and-reroute.

Produces the demand, capacity and congestion maps the placement
framework consumes each routability iteration (the "GPU-accelerated
3D Z-shape routing" box of Fig. 2, on CPU).  The router is stateless
across calls: every :meth:`GlobalRouter.route` starts from the current
cell positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.route.config import RouterConfig
from repro.route.congestion import CongestionData, congestion_from_demand
from repro.route.decompose import decompose_net
from repro.route.grid import RoutingGrid
from repro.route.patterns import PatternRouter, RoutedPath
from repro.utils.logging import get_logger

logger = get_logger("route.router")


@dataclass
class _Segment:
    net_id: int
    i1: int
    j1: int
    i2: int
    j2: int
    path: RoutedPath | None = None

    @property
    def bbox_span(self) -> int:
        return abs(self.i2 - self.i1) + abs(self.j2 - self.j1)


@dataclass
class RoutingResult:
    """Outcome of one global routing pass."""

    grid: RoutingGrid
    congestion: CongestionData
    wirelength: float
    n_vias: float
    total_overflow: float
    n_segments: int

    @property
    def congestion_map(self) -> np.ndarray:
        """Eq. (3) map ``max(Dmd/Cap - 1, 0)``."""
        return self.congestion.congestion

    @property
    def utilization_map(self) -> np.ndarray:
        """``rho = Dmd / Cap`` (Poisson charge, Sec. II-B)."""
        return self.congestion.utilization


class GlobalRouter:
    """Route a netlist over a G-cell grid and report congestion."""

    def __init__(self, grid: Grid2D, config: RouterConfig | None = None) -> None:
        self.grid = grid
        self.config = config or RouterConfig()

    # ------------------------------------------------------------------
    def route(self, netlist: Netlist) -> RoutingResult:
        """Full routing pass at the current cell positions."""
        cfg = self.config
        rgrid = RoutingGrid(self.grid, cfg, netlist)
        segments = self._collect_segments(netlist)
        self._add_pin_via_demand(rgrid, netlist)

        # short segments first: they have no routing freedom anyway and
        # longer segments then see realistic congestion
        segments.sort(key=lambda s: s.bbox_span)
        self._route_all(rgrid, segments, initial=True)

        for round_id in range(cfg.rrr_rounds):
            rgrid.accumulate_history()
            victims = self._overflow_victims(rgrid, segments)
            if not victims:
                break
            logger.info("RRR round %d: rerouting %d segments", round_id, len(victims))
            for seg in victims:
                self._uncommit(rgrid, seg)
            self._route_all(rgrid, victims, initial=False)

        if cfg.maze_fallback:
            self._maze_cleanup(rgrid, segments)

        return self._result(rgrid, segments)

    def _maze_cleanup(self, rgrid: RoutingGrid, segments: list) -> None:
        """Detour-route segments still crossing overflowed G-cells."""
        from repro.route.maze import maze_route

        victims = self._overflow_victims(rgrid, segments)
        if not victims:
            return
        logger.info("maze fallback: rerouting %d segments", len(victims))
        for seg in victims:
            old_path = seg.path
            before = float(rgrid.overflow_map().sum())
            self._uncommit(rgrid, seg)
            # fresh costs per segment: maze paths gladly share a cheap
            # corridor and would re-create the overflow on stale maps
            h_cost, v_cost = rgrid.cost_maps()
            seg.path = maze_route(
                h_cost,
                v_cost,
                seg.i1,
                seg.j1,
                seg.i2,
                seg.j2,
                via_cost=1.0,
                window=self.config.maze_window,
            )
            self._commit(rgrid, seg)
            after = float(rgrid.overflow_map().sum())
            if after >= before - 1e-9:
                # admission control: a detour that does not reduce the
                # total overflow only burns wirelength — keep the old
                # path (in a saturated region every cell is expensive
                # and Dijkstra wanders without actually helping)
                self._commit(rgrid, seg, sign=-1.0)
                seg.path = old_path
                self._commit(rgrid, seg)

    # ------------------------------------------------------------------
    def _collect_segments(self, netlist: Netlist) -> list:
        px, py = netlist.pin_positions()
        segments: list[_Segment] = []
        for e in range(netlist.n_nets):
            for (x1, y1, x2, y2) in decompose_net(
                netlist, e, px, py, self.config.topology
            ):
                i1, j1 = self.grid.index_of(x1, y1)
                i2, j2 = self.grid.index_of(x2, y2)
                segments.append(_Segment(e, i1, j1, i2, j2))
        return segments

    def _add_pin_via_demand(self, rgrid: RoutingGrid, netlist: Netlist) -> None:
        if self.config.pin_via_demand <= 0 or netlist.n_pins == 0:
            return
        px, py = netlist.pin_positions()
        i, j = self.grid.index_of(px, py)
        flat = np.bincount(
            i * self.grid.ny + j,
            minlength=self.grid.nx * self.grid.ny,
        ).astype(np.float64)
        rgrid.via_demand += self.config.pin_via_demand * flat.reshape(self.grid.shape)

    def _route_all(self, rgrid: RoutingGrid, segments: list, initial: bool) -> None:
        cfg = self.config
        h_cost, v_cost = rgrid.cost_maps()
        router = PatternRouter(
            h_cost, v_cost, via_cost=1.0, z_samples=cfg.z_samples
        )
        for k, seg in enumerate(segments):
            if k and k % cfg.cost_refresh_interval == 0:
                router.refresh(*rgrid.cost_maps())
            seg.path = router.route(seg.i1, seg.j1, seg.i2, seg.j2)
            self._commit(rgrid, seg)

    def _commit(self, rgrid: RoutingGrid, seg: _Segment, sign: float = 1.0) -> None:
        path = seg.path
        if path is None:
            return
        for kind, fixed, a, b in path.runs:
            if kind == "h":
                rgrid.add_h_run(fixed, a, b, sign)
            else:
                rgrid.add_v_run(fixed, a, b, sign)
        for (i, j) in path.bends:
            rgrid.add_via(i, j, sign)

    def _uncommit(self, rgrid: RoutingGrid, seg: _Segment) -> None:
        self._commit(rgrid, seg, sign=-1.0)
        seg.path = None

    def _overflow_victims(self, rgrid: RoutingGrid, segments: list) -> list:
        """Segments whose path crosses an overflowed G-cell."""
        h_over = rgrid.h_demand > rgrid.h_cap
        v_over = rgrid.v_demand > rgrid.v_cap
        if not (h_over.any() or v_over.any()):
            return []
        victims = []
        for seg in segments:
            path = seg.path
            if path is None:
                continue
            hit = False
            for kind, fixed, a, b in path.runs:
                lo, hi = (a, b) if a <= b else (b, a)
                if kind == "h":
                    if h_over[lo : hi + 1, fixed].any():
                        hit = True
                        break
                else:
                    if v_over[fixed, lo : hi + 1].any():
                        hit = True
                        break
            if hit:
                victims.append(seg)
        return victims

    def _result(self, rgrid: RoutingGrid, segments: list) -> RoutingResult:
        wirelength = 0.0
        n_vias = float(rgrid.via_demand.sum())
        for seg in segments:
            if seg.path is not None:
                wirelength += seg.path.wirelength(self.grid.dx, self.grid.dy)
        congestion = congestion_from_demand(rgrid)
        return RoutingResult(
            grid=rgrid,
            congestion=congestion,
            wirelength=wirelength,
            n_vias=n_vias,
            total_overflow=float(rgrid.overflow_map().sum()),
            n_segments=len(segments),
        )

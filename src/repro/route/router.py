"""Global router: initial pattern routing + rip-up-and-reroute.

Produces the demand, capacity and congestion maps the placement
framework consumes each routability iteration (the "GPU-accelerated
3D Z-shape routing" box of Fig. 2, on CPU).  The router is stateless
across calls: every :meth:`GlobalRouter.route` starts from the current
cell positions.

Two engines implement the same algorithm (``RouterConfig.engine``):

``"batched"`` (default)
    Routes whole cost-refresh chunks as array operations: segments
    within a chunk all see the same (stale) cost maps — exactly the
    semantics of the scalar loop, which only refreshes costs every
    ``cost_refresh_interval`` segments — so evaluating a chunk with
    :meth:`PatternRouter.route_batch` and committing its demand with
    one bincount scatter per direction is bit-identical to routing the
    chunk one segment at a time.  Overflow victims are detected with
    2-D prefix sums of the overflow masks instead of per-run slicing.

``"scalar"``
    The one-segment-at-a-time reference implementation, kept for
    equivalence tests and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.route.config import RouterConfig
from repro.route.congestion import CongestionData, congestion_from_demand
from repro.route.decompose import segment_endpoints
from repro.route.grid import RoutingGrid
from repro.route.patterns import PatternRouter, RoutedPath, RoutedPathBatch
from repro.utils import faults
from repro.utils.contracts import CONTRACTS
from repro.utils.logging import get_logger
from repro.utils.metrics import NULL
from repro.utils.profile import StageProfiler

logger = get_logger("route.router")


@dataclass
class _Segment:
    net_id: int
    i1: int
    j1: int
    i2: int
    j2: int
    path: RoutedPath | None = None

    @property
    def bbox_span(self) -> int:
        return abs(self.i2 - self.i1) + abs(self.j2 - self.j1)


@dataclass
class DemandSnapshot:
    """Frozen demand maps from a prior routing pass.

    Used as the *base load* of a partial (ECO) pass: the snapshot's
    demand is pre-committed into the fresh :class:`RoutingGrid` before
    any segment routes, so the routed subset sees the frozen nets'
    congestion in its cost maps without re-routing them.
    """

    h: np.ndarray
    v: np.ndarray
    via: np.ndarray

    @classmethod
    def from_result(cls, result: "RoutingResult") -> "DemandSnapshot":
        """Copy the demand maps out of a finished pass."""
        g = result.grid
        return cls(h=g.h_demand.copy(), v=g.v_demand.copy(), via=g.via_demand.copy())


@dataclass
class RoutingResult:
    """Outcome of one global routing pass.

    ``n_fallbacks`` counts recoveries during the pass: chunks the
    batched engine handed to the scalar per-segment path, plus 1 when
    the whole pass fell back to the scalar reference engine.
    """

    grid: RoutingGrid
    congestion: CongestionData
    wirelength: float
    n_vias: float
    total_overflow: float
    n_segments: int
    n_fallbacks: int = 0

    @property
    def congestion_map(self) -> np.ndarray:
        """Eq. (3) map ``max(Dmd/Cap - 1, 0)``."""
        return self.congestion.congestion

    @property
    def utilization_map(self) -> np.ndarray:
        """``rho = Dmd / Cap`` (Poisson charge, Sec. II-B)."""
        return self.congestion.utilization


class GlobalRouter:
    """Route a netlist over a G-cell grid and report congestion."""

    def __init__(
        self,
        grid: Grid2D,
        config: RouterConfig | None = None,
        profiler: StageProfiler | None = None,
        metrics=None,
    ) -> None:
        self.grid = grid
        self.config = config or RouterConfig()
        self.profiler = profiler or StageProfiler()
        self.metrics = metrics if metrics is not None else NULL
        self._pass_fallbacks = 0

    # ------------------------------------------------------------------
    def route(
        self,
        netlist: Netlist,
        net_ids: np.ndarray | None = None,
        base_demand: DemandSnapshot | None = None,
    ) -> RoutingResult:
        """Routing pass at the current cell positions.

        With the defaults this is a full pass over every net.  The ECO
        flow uses the two optional arguments for partial
        rip-up-and-reroute: ``net_ids`` restricts decomposition (and
        pin-via demand) to the given nets, and ``base_demand`` pre-loads
        a :class:`DemandSnapshot` of the frozen nets so the routed
        subset competes against their congestion.  Only routed segments
        are ever ripped up in RRR rounds; the base load is immutable.

        The batched engine never aborts the flow: a chunk that raises
        is retried segment-by-segment (see :meth:`_route_chunks`), and
        if the batched pass fails outside a chunk the whole pass is
        re-run on the scalar reference engine.  Both recoveries are
        logged and reported in ``RoutingResult.n_fallbacks``.
        """
        self.profiler.count("route.calls")
        self._pass_fallbacks = 0
        with self.profiler.timer("route.total"):
            if self.config.engine == "scalar":
                result = self._route_scalar(netlist, net_ids, base_demand)
            else:
                try:
                    faults.fire("route.batched")
                    result = self._route_batched(netlist, net_ids, base_demand)
                except Exception:
                    logger.exception(
                        "batched routing engine failed; falling back to the "
                        "scalar engine for this pass"
                    )
                    self.profiler.count("route.engine_fallbacks")
                    self._pass_fallbacks += 1
                    result = self._route_scalar(netlist, net_ids, base_demand)
                    result.n_fallbacks = self._pass_fallbacks
        if CONTRACTS.enabled:
            # both engines commit demand through the same accounting;
            # whatever path produced the maps, demand must stay finite
            # and non-negative after all rip-up/uncommit cycles
            CONTRACTS.check_demand_conservation(
                "router.route", result.grid.h_demand, result.grid.v_demand
            )
            CONTRACTS.check_array(
                "router.route", "congestion", result.congestion_map,
                finite=True, min_value=0.0,
            )
        self._emit_pass(result)
        return result

    def _emit_pass(self, result: RoutingResult) -> None:
        """Per-pass demand/capacity/overflow telemetry summary."""
        m = self.metrics
        if not m.enabled:
            return
        rgrid = result.grid
        util = result.utilization_map
        m.inc("route.passes")
        m.observe("route.overflow", result.total_overflow)
        m.emit(
            "route.pass",
            n_segments=result.n_segments,
            wirelength=result.wirelength,
            vias=result.n_vias,
            total_overflow=result.total_overflow,
            h_demand=float(rgrid.h_demand.sum()),
            v_demand=float(rgrid.v_demand.sum()),
            h_cap=float(rgrid.h_cap.sum()),
            v_cap=float(rgrid.v_cap.sum()),
            max_utilization=float(util.max()) if util.size else 0.0,
            n_fallbacks=result.n_fallbacks,
            engine=self.config.engine,
        )

    # ==================================================================
    # batched engine
    # ==================================================================
    def _route_batched(
        self,
        netlist: Netlist,
        net_ids: np.ndarray | None = None,
        base_demand: DemandSnapshot | None = None,
    ) -> RoutingResult:
        cfg = self.config
        prof = self.profiler
        rgrid = RoutingGrid(self.grid, cfg, netlist)
        self._apply_base_demand(rgrid, base_demand)

        with prof.timer("route.decompose"):
            batch = self._collect_segment_batch(netlist, net_ids)
        prof.count("route.segments", len(batch))
        self._add_pin_via_demand(rgrid, netlist, net_ids)

        with prof.timer("route.initial"):
            self._route_chunks(rgrid, batch, np.arange(len(batch), dtype=np.int64))

        with prof.timer("route.rrr"):
            for round_id in range(cfg.rrr_rounds):
                rgrid.accumulate_history()
                victims = self._overflow_victims_batched(rgrid, batch)
                if len(victims) == 0:
                    break
                logger.info(
                    "RRR round %d: rerouting %d segments", round_id, len(victims)
                )
                prof.count("route.rerouted", len(victims))
                self._commit_idx(rgrid, batch, victims, sign=-1.0)
                self._route_chunks(rgrid, batch, victims)

        overrides: dict[int, RoutedPath] = {}
        if cfg.maze_fallback:
            with prof.timer("route.maze"):
                overrides = self._maze_cleanup_batched(rgrid, batch)

        return self._result_batched(rgrid, batch, overrides)

    @staticmethod
    def _apply_base_demand(
        rgrid: RoutingGrid, base_demand: DemandSnapshot | None
    ) -> None:
        """Pre-commit a frozen-net demand snapshot into a fresh grid."""
        if base_demand is None:
            return
        rgrid.h_demand += base_demand.h
        rgrid.v_demand += base_demand.v
        rgrid.via_demand += base_demand.via

    def _collect_segment_batch(
        self, netlist: Netlist, net_ids: np.ndarray | None = None
    ) -> RoutedPathBatch:
        """Two-pin segments as arrays, sorted by bbox span.

        Short segments first: they have no routing freedom anyway and
        longer segments then see realistic congestion.  The sort is
        stable, so equal-span segments keep net order, matching the
        scalar engine's ``list.sort``.  ``net_ids`` restricts the batch
        to segments of the given nets (partial ECO pass).
        """
        nets, x1, y1, x2, y2 = segment_endpoints(netlist, self.config.topology)
        if net_ids is not None:
            keep = np.isin(nets, net_ids)
            nets, x1, y1, x2, y2 = nets[keep], x1[keep], y1[keep], x2[keep], y2[keep]
        i1, j1 = self.grid.index_of(x1, y1)
        i2, j2 = self.grid.index_of(x2, y2)
        span = np.abs(i2 - i1) + np.abs(j2 - j1)
        order = np.argsort(span, kind="stable")
        n = len(order)
        return RoutedPathBatch(
            i1=i1[order],
            j1=j1[order],
            i2=i2[order],
            j2=j2[order],
            family=np.full(n, -1, dtype=np.int8),
            bend=np.zeros(n, dtype=np.int64),
            cost=np.zeros(n, dtype=np.float64),
        )

    def _route_chunks(
        self, rgrid: RoutingGrid, batch: RoutedPathBatch, idx: np.ndarray
    ) -> None:
        """Route segments ``idx`` in cost-refresh chunks and commit each.

        Mirrors the scalar loop: costs refresh every
        ``cost_refresh_interval`` segments, demand committed as we go.
        """
        cfg = self.config
        router = PatternRouter(
            *rgrid.cost_maps(), via_cost=1.0, z_samples=cfg.z_samples
        )
        step = cfg.cost_refresh_interval
        for s in range(0, len(idx), step):
            if s:
                router.refresh(*rgrid.cost_maps())
            chunk = idx[s : s + step]
            try:
                faults.fire("route.batched_chunk")
                sub = router.route_batch(
                    batch.i1[chunk],
                    batch.j1[chunk],
                    batch.i2[chunk],
                    batch.j2[chunk],
                )
                batch.family[chunk] = sub.family
                batch.bend[chunk] = sub.bend
                batch.cost[chunk] = sub.cost
            except Exception:
                # graceful degradation: route the chunk one segment at
                # a time against the same (stale) cost maps — slower,
                # bit-identical, and the flow keeps running
                logger.exception(
                    "batched chunk of %d segments failed; retrying with "
                    "the scalar per-segment path",
                    len(chunk),
                )
                self.profiler.count("route.chunk_fallbacks")
                self._pass_fallbacks += 1
                for k in chunk:
                    fam, bend, cost = router.route_one(
                        int(batch.i1[k]),
                        int(batch.j1[k]),
                        int(batch.i2[k]),
                        int(batch.j2[k]),
                    )
                    batch.family[k] = fam
                    batch.bend[k] = bend
                    batch.cost[k] = cost
            self._commit_idx(rgrid, batch, chunk, sign=1.0)

    @staticmethod
    def _commit_idx(
        rgrid: RoutingGrid, batch: RoutedPathBatch, idx: np.ndarray, sign: float
    ) -> None:
        """Scatter the demand of segments ``idx`` into the grid maps."""
        runs = batch.runs(idx)
        rgrid.add_h_runs(runs.h_j, runs.h_lo, runs.h_hi, sign)
        rgrid.add_v_runs(runs.v_i, runs.v_lo, runs.v_hi, sign)
        rgrid.add_vias(runs.b_i, runs.b_j, sign)

    def _overflow_victims_batched(
        self, rgrid: RoutingGrid, batch: RoutedPathBatch
    ) -> np.ndarray:
        """Indices of segments whose path crosses an overflowed G-cell.

        2-D prefix sums of the overflow masks turn the per-run "any
        overflowed cell in this span?" test into two gathers per run.
        """
        h_over = rgrid.h_demand > rgrid.h_cap
        v_over = rgrid.v_demand > rgrid.v_cap
        if not (h_over.any() or v_over.any()):
            return np.zeros(0, dtype=np.int64)
        nx, ny = rgrid.grid.nx, rgrid.grid.ny
        hpre = np.zeros((nx + 1, ny))
        np.cumsum(h_over, axis=0, out=hpre[1:])
        vpre = np.zeros((nx, ny + 1))
        np.cumsum(v_over, axis=1, out=vpre[:, 1:])

        runs = batch.runs()
        h_hit = (hpre[runs.h_hi + 1, runs.h_j] - hpre[runs.h_lo, runs.h_j]) > 0
        v_hit = (vpre[runs.v_i, runs.v_hi + 1] - vpre[runs.v_i, runs.v_lo]) > 0
        mask = np.zeros(len(batch), dtype=bool)
        mask[runs.h_seg[h_hit]] = True
        mask[runs.v_seg[v_hit]] = True
        return np.flatnonzero(mask)

    def _maze_cleanup_batched(
        self, rgrid: RoutingGrid, batch: RoutedPathBatch
    ) -> dict:
        """Detour-route still-overflowed segments; returns path overrides."""
        from repro.route.maze import maze_route

        victims = self._overflow_victims_batched(rgrid, batch)
        overrides: dict[int, RoutedPath] = {}
        if len(victims) == 0:
            return overrides
        logger.info("maze fallback: rerouting %d segments", len(victims))
        one = np.empty(1, dtype=np.int64)
        for k in victims:
            one[0] = k
            before = float(rgrid.overflow_map().sum())
            self._commit_idx(rgrid, batch, one, sign=-1.0)
            # fresh costs per segment: maze paths gladly share a cheap
            # corridor and would re-create the overflow on stale maps
            h_cost, v_cost = rgrid.cost_maps()
            path = maze_route(
                h_cost,
                v_cost,
                int(batch.i1[k]),
                int(batch.j1[k]),
                int(batch.i2[k]),
                int(batch.j2[k]),
                via_cost=1.0,
                window=self.config.maze_window,
            )
            self._commit_path(rgrid, path, sign=1.0)
            after = float(rgrid.overflow_map().sum())
            if after >= before - 1e-9:
                # admission control: a detour that does not reduce the
                # total overflow only burns wirelength — keep the old
                # path (in a saturated region every cell is expensive
                # and Dijkstra wanders without actually helping)
                self._commit_path(rgrid, path, sign=-1.0)
                self._commit_idx(rgrid, batch, one, sign=1.0)
            else:
                overrides[int(k)] = path
        return overrides

    def _result_batched(
        self, rgrid: RoutingGrid, batch: RoutedPathBatch, overrides: dict
    ) -> RoutingResult:
        wl = batch.wirelengths(self.grid.dx, self.grid.dy)
        for k, path in overrides.items():
            wl[k] = path.wirelength(self.grid.dx, self.grid.dy)
        congestion = congestion_from_demand(rgrid)
        return RoutingResult(
            grid=rgrid,
            congestion=congestion,
            wirelength=float(wl.sum()),
            n_vias=float(rgrid.via_demand.sum()),
            total_overflow=float(rgrid.overflow_map().sum()),
            n_segments=len(batch),
            n_fallbacks=self._pass_fallbacks,
        )

    # ==================================================================
    # scalar reference engine
    # ==================================================================
    def _route_scalar(
        self,
        netlist: Netlist,
        net_ids: np.ndarray | None = None,
        base_demand: DemandSnapshot | None = None,
    ) -> RoutingResult:
        cfg = self.config
        prof = self.profiler
        rgrid = RoutingGrid(self.grid, cfg, netlist)
        self._apply_base_demand(rgrid, base_demand)
        with prof.timer("route.decompose"):
            segments = self._collect_segments(netlist, net_ids)
        prof.count("route.segments", len(segments))
        self._add_pin_via_demand(rgrid, netlist, net_ids)

        # short segments first: they have no routing freedom anyway and
        # longer segments then see realistic congestion
        segments.sort(key=lambda s: s.bbox_span)
        with prof.timer("route.initial"):
            self._route_all(rgrid, segments, initial=True)

        with prof.timer("route.rrr"):
            for round_id in range(cfg.rrr_rounds):
                rgrid.accumulate_history()
                victims = self._overflow_victims(rgrid, segments)
                if not victims:
                    break
                logger.info(
                    "RRR round %d: rerouting %d segments", round_id, len(victims)
                )
                prof.count("route.rerouted", len(victims))
                for seg in victims:
                    self._uncommit(rgrid, seg)
                self._route_all(rgrid, victims, initial=False)

        if cfg.maze_fallback:
            with prof.timer("route.maze"):
                self._maze_cleanup(rgrid, segments)

        return self._result(rgrid, segments)

    def _maze_cleanup(self, rgrid: RoutingGrid, segments: list) -> None:
        """Detour-route segments still crossing overflowed G-cells."""
        from repro.route.maze import maze_route

        victims = self._overflow_victims(rgrid, segments)
        if not victims:
            return
        logger.info("maze fallback: rerouting %d segments", len(victims))
        for seg in victims:
            old_path = seg.path
            before = float(rgrid.overflow_map().sum())
            self._uncommit(rgrid, seg)
            # fresh costs per segment: maze paths gladly share a cheap
            # corridor and would re-create the overflow on stale maps
            h_cost, v_cost = rgrid.cost_maps()
            seg.path = maze_route(
                h_cost,
                v_cost,
                seg.i1,
                seg.j1,
                seg.i2,
                seg.j2,
                via_cost=1.0,
                window=self.config.maze_window,
            )
            self._commit(rgrid, seg)
            after = float(rgrid.overflow_map().sum())
            if after >= before - 1e-9:
                # admission control: a detour that does not reduce the
                # total overflow only burns wirelength — keep the old
                # path (in a saturated region every cell is expensive
                # and Dijkstra wanders without actually helping)
                self._commit(rgrid, seg, sign=-1.0)
                seg.path = old_path
                self._commit(rgrid, seg)

    # ------------------------------------------------------------------
    def _collect_segments(
        self, netlist: Netlist, net_ids: np.ndarray | None = None
    ) -> list:
        nets, x1, y1, x2, y2 = segment_endpoints(netlist, self.config.topology)
        if net_ids is not None:
            keep = np.isin(nets, net_ids)
            nets, x1, y1, x2, y2 = nets[keep], x1[keep], y1[keep], x2[keep], y2[keep]
        i1, j1 = self.grid.index_of(x1, y1)
        i2, j2 = self.grid.index_of(x2, y2)
        return [
            _Segment(int(e), int(a), int(b), int(c), int(d))
            for e, a, b, c, d in zip(nets, i1, j1, i2, j2)
        ]

    def _add_pin_via_demand(
        self,
        rgrid: RoutingGrid,
        netlist: Netlist,
        net_ids: np.ndarray | None = None,
    ) -> None:
        if self.config.pin_via_demand <= 0 or netlist.n_pins == 0:
            return
        px, py = netlist.pin_positions()
        if net_ids is not None:
            keep = np.isin(netlist.pin_net, net_ids)
            px, py = px[keep], py[keep]
            if px.size == 0:
                return
        i, j = self.grid.index_of(px, py)
        flat = np.bincount(
            i * self.grid.ny + j,
            minlength=self.grid.nx * self.grid.ny,
        ).astype(np.float64)
        rgrid.via_demand += self.config.pin_via_demand * flat.reshape(self.grid.shape)

    def _route_all(self, rgrid: RoutingGrid, segments: list, initial: bool) -> None:
        cfg = self.config
        h_cost, v_cost = rgrid.cost_maps()
        router = PatternRouter(
            h_cost, v_cost, via_cost=1.0, z_samples=cfg.z_samples
        )
        for k, seg in enumerate(segments):
            if k and k % cfg.cost_refresh_interval == 0:
                router.refresh(*rgrid.cost_maps())
            seg.path = router.route(seg.i1, seg.j1, seg.i2, seg.j2)
            self._commit(rgrid, seg)

    @staticmethod
    def _commit_path(rgrid: RoutingGrid, path: RoutedPath | None, sign: float) -> None:
        if path is None:
            return
        for kind, fixed, a, b in path.runs:
            if kind == "h":
                rgrid.add_h_run(fixed, a, b, sign)
            else:
                rgrid.add_v_run(fixed, a, b, sign)
        for (i, j) in path.bends:
            rgrid.add_via(i, j, sign)

    def _commit(self, rgrid: RoutingGrid, seg: _Segment, sign: float = 1.0) -> None:
        self._commit_path(rgrid, seg.path, sign)

    def _uncommit(self, rgrid: RoutingGrid, seg: _Segment) -> None:
        self._commit(rgrid, seg, sign=-1.0)
        seg.path = None

    def _overflow_victims(self, rgrid: RoutingGrid, segments: list) -> list:
        """Segments whose path crosses an overflowed G-cell."""
        h_over = rgrid.h_demand > rgrid.h_cap
        v_over = rgrid.v_demand > rgrid.v_cap
        if not (h_over.any() or v_over.any()):
            return []
        victims = []
        for seg in segments:
            path = seg.path
            if path is None:
                continue
            hit = False
            for kind, fixed, a, b in path.runs:
                lo, hi = (a, b) if a <= b else (b, a)
                if kind == "h":
                    if h_over[lo : hi + 1, fixed].any():
                        hit = True
                        break
                else:
                    if v_over[fixed, lo : hi + 1].any():
                        hit = True
                        break
            if hit:
                victims.append(seg)
        return victims

    def _result(self, rgrid: RoutingGrid, segments: list) -> RoutingResult:
        wirelength = 0.0
        n_vias = float(rgrid.via_demand.sum())
        for seg in segments:
            if seg.path is not None:
                wirelength += seg.path.wirelength(self.grid.dx, self.grid.dy)
        congestion = congestion_from_demand(rgrid)
        return RoutingResult(
            grid=rgrid,
            congestion=congestion,
            wirelength=wirelength,
            n_vias=n_vias,
            total_overflow=float(rgrid.overflow_map().sum()),
            n_segments=len(segments),
        )

"""RUDY routing-demand estimation [10] (baseline congestion estimator).

RUDY spreads each net's expected wirelength uniformly over its bounding
box: a net with box ``w x h`` contributes density ``(w + h) / (w * h)``
to every point of the box.  The paper criticises exactly this
uniform-over-BB treatment (Sec. I, Fig. 1b); we provide it both as a
comparison baseline and for tests contrasting it with the router-based
map.

Implemented with the integral-image trick: each net adds +/-1 weighted
corners, a double cumulative sum turns the corners into filled boxes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist


def rudy_map(netlist: Netlist, grid: Grid2D) -> np.ndarray:
    """RUDY demand-density map on ``grid``.

    Returns a map in demand-per-area units (same shape as the grid);
    divide by per-area capacity for a utilization estimate.
    """
    px, py = netlist.pin_positions()
    order = netlist.net_pin_order
    starts = netlist.net_pin_starts[:-1]
    degrees = netlist.net_degrees()
    if netlist.n_nets == 0 or len(order) == 0:
        return grid.zeros()

    ox = px[order]
    oy = py[order]
    safe = np.minimum(starts, len(order) - 1)
    xmax = np.maximum.reduceat(ox, safe)
    xmin = np.minimum.reduceat(ox, safe)
    ymax = np.maximum.reduceat(oy, safe)
    ymin = np.minimum.reduceat(oy, safe)
    valid = degrees >= 2

    # clip boxes to the die and give degenerate boxes one G-cell extent
    r = grid.region
    xmin = np.clip(xmin, r.xlo, r.xhi)
    xmax = np.clip(xmax, r.xlo, r.xhi)
    ymin = np.clip(ymin, r.ylo, r.yhi)
    ymax = np.clip(ymax, r.ylo, r.yhi)
    w = np.maximum(xmax - xmin, grid.dx)
    h = np.maximum(ymax - ymin, grid.dy)
    density = (w + h) / (w * h)

    i0, j0 = grid.index_of(xmin, ymin)
    i1, j1 = grid.index_of(xmax, ymax)
    i0, j0 = np.atleast_1d(i0), np.atleast_1d(j0)
    i1, j1 = np.atleast_1d(i1), np.atleast_1d(j1)

    nx, ny = grid.nx, grid.ny
    corners = np.zeros((nx + 1, ny + 1))
    d = np.where(valid, density, 0.0)
    np.add.at(corners, (i0, j0), d)
    np.add.at(corners, (i1 + 1, j1 + 1), d)
    np.add.at(corners, (i0, j1 + 1), -d)
    np.add.at(corners, (i1 + 1, j0), -d)
    filled = corners.cumsum(axis=0).cumsum(axis=1)[:nx, :ny]
    return filled


def pin_rudy_map(netlist: Netlist, grid: Grid2D) -> np.ndarray:
    """PinRUDY [Liu et al., DATE'21]: pin-weighted demand density.

    Each pin deposits its net's RUDY density at the pin's own G-cell —
    a sharper feature than plain RUDY for predicting pin-access-driven
    congestion, used by the learning-based estimator the paper cites.
    """
    if netlist.n_nets == 0 or netlist.n_pins == 0:
        return grid.zeros()
    px, py = netlist.pin_positions()
    order = netlist.net_pin_order
    starts = netlist.net_pin_starts[:-1]
    degrees = netlist.net_degrees()
    ox = px[order]
    oy = py[order]
    safe = np.minimum(starts, len(order) - 1)
    w = np.maximum.reduceat(ox, safe) - np.minimum.reduceat(ox, safe)
    h = np.maximum.reduceat(oy, safe) - np.minimum.reduceat(oy, safe)
    w = np.maximum(w, grid.dx)
    h = np.maximum(h, grid.dy)
    density = np.where(degrees >= 2, (w + h) / (w * h), 0.0)

    i, j = grid.index_of(px, py)
    weights = density[netlist.pin_net]
    flat = np.bincount(
        i * grid.ny + j, weights=weights, minlength=grid.nx * grid.ny
    )
    return flat.reshape(grid.nx, grid.ny)

"""Reference kernel backend: the original numpy hot-path code, verbatim.

Every method body here is the pre-refactor implementation moved out of
its call site (``wirelength/wa.py``, ``density/rasterize.py``,
``core/netmove.py`` / ``core/multipin.py``, ``route/patterns.py``) with
only the surrounding state turned into explicit arguments.  Same
ufuncs, same operation order, same dtypes — outputs are bit-identical
to the pre-backend repository, which the golden suite and the e2e
bit-determinism test pin down.  Fast backends are tested against this
one.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend, register_backend


def _segment_sums(values: np.ndarray, seg_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``seg_ids`` (already net-sorted pins)."""
    return np.bincount(seg_ids, weights=values, minlength=n_segments)


def _axis_wa(
    coords: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    seg_of_ordered: np.ndarray,
    degrees: np.ndarray,
    gamma: float,
    n_nets: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-net WA wirelength and per-pin gradient along one axis.

    Returns ``(wl_per_net, grad_per_pin)`` where ``grad_per_pin`` is in
    original pin order.
    """
    c = coords[order]
    safe_starts = np.minimum(starts, max(len(order) - 1, 0))
    if len(order):
        mx = np.maximum.reduceat(c, safe_starts)
        mn = np.minimum.reduceat(c, safe_starts)
    else:
        mx = np.zeros(n_nets)
        mn = np.zeros(n_nets)

    a = np.exp((c - mx[seg_of_ordered]) / gamma)
    b = np.exp(-(c - mn[seg_of_ordered]) / gamma)

    s_plus = _segment_sums(a, seg_of_ordered, n_nets)
    p_plus = _segment_sums(c * a, seg_of_ordered, n_nets)
    s_minus = _segment_sums(b, seg_of_ordered, n_nets)
    p_minus = _segment_sums(c * b, seg_of_ordered, n_nets)

    valid = degrees >= 2
    s_plus_safe = np.where(s_plus > 0, s_plus, 1.0)
    s_minus_safe = np.where(s_minus > 0, s_minus, 1.0)
    wa_plus = p_plus / s_plus_safe
    wa_minus = p_minus / s_minus_safe
    wl = np.where(valid, wa_plus - wa_minus, 0.0)

    grad_plus = a * (1.0 + (c - wa_plus[seg_of_ordered]) / gamma) / s_plus_safe[seg_of_ordered]
    grad_minus = b * (1.0 - (c - wa_minus[seg_of_ordered]) / gamma) / s_minus_safe[seg_of_ordered]
    grad_ordered = np.where(valid[seg_of_ordered], grad_plus - grad_minus, 0.0)

    grad = np.zeros_like(grad_ordered)
    grad[order] = grad_ordered
    return wl, grad


def _overlap_1d(lo, hi, base, pitch, k0, offset):
    """Overlap length of [lo, hi] with bin (k0 + offset) along one axis."""
    left = base + (k0 + offset) * pitch
    return np.clip(np.minimum(hi, left + pitch) - np.maximum(lo, left), 0.0, pitch)


def _h_run_cost(hpre, j, i0, i1):
    """Prefix-sum cost of the horizontal run ``[min,max](i0,i1)`` at row j."""
    lo = np.minimum(i0, i1)
    hi = np.maximum(i0, i1)
    return hpre[hi + 1, j] - hpre[lo, j]


def _v_run_cost(vpre, i, j0, j1):
    """Prefix-sum cost of the vertical run ``[min,max](j0,j1)`` at column i."""
    lo = np.minimum(j0, j1)
    hi = np.maximum(j0, j1)
    return vpre[i, hi + 1] - vpre[i, lo]


@register_backend
class ReferenceBackend(KernelBackend):
    """The numeric ground truth: original numpy implementations."""

    name = "reference"

    # ------------------------------------------------------------ WA
    def wa_axes(self, px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets):
        """Both WA axes via two passes of the original ``_axis_wa``."""
        wl_x, gpin_x = _axis_wa(px, order, starts, seg_of_ordered, degrees, gamma, n_nets)
        wl_y, gpin_y = _axis_wa(py, order, starts, seg_of_ordered, degrees, gamma, n_nets)
        return wl_x, gpin_x, wl_y, gpin_y

    # ------------------------------------------------------ rasterize
    def raster_overlaps(
        self, ids, xlo, xhi, ylo, yhi, i0, j0, kx, ky, scale,
        base_x, base_y, dx, dy, nx, ny,
    ):
        """Original chunked di/dj overlap loop of ``CellRasterizer``."""
        idx_chunks = []
        w_chunks = []
        for di in range(kx):
            lx = _overlap_1d(xlo, xhi, base_x, dx, i0, di)
            col = np.clip(i0 + di, 0, nx - 1)
            for dj in range(ky):
                ly = _overlap_1d(ylo, yhi, base_y, dy, j0, dj)
                row = np.clip(j0 + dj, 0, ny - 1)
                idx_chunks.append(col * ny + row)
                w_chunks.append(lx * ly * scale)
        cell_of_entry = np.tile(ids, kx * ky)
        return np.concatenate(idx_chunks), np.concatenate(w_chunks), cell_of_entry

    # -------------------------------------------------------- netmove
    def netmove_virtual(self, x1, y1, x2, y2, k, congestion, grid):
        """Eq. (7)-(8) sampling matrix, congestion lookup, arg-max."""
        n = len(x1)
        s_max = int(k.max())
        steps = np.arange(1, s_max + 1)[None, :]  # (1, S)
        valid = steps <= k[:, None]
        t = steps / (k[:, None] + 1.0)
        sx = x1[:, None] + t * (x2 - x1)[:, None]
        sy = y1[:, None] + t * (y2 - y1)[:, None]

        ii, jj = grid.index_of(sx.ravel(), sy.ravel())
        cval = congestion[ii, jj].reshape(n, s_max)
        cval = np.where(valid, cval, -np.inf)
        best = np.argmax(cval, axis=1)
        rows = np.arange(n)
        return sx[rows, best], sy[rows, best], cval[rows, best]

    def scatter_add_pair(self, grad_x, grad_y, cells, vx, vy):
        """Unbuffered fancy-index accumulation (``np.add.at``)."""
        np.add.at(grad_x, cells, vx)
        np.add.at(grad_y, cells, vy)

    def sample_nearest(self, scalar_map, grid, x, y):
        """Nearest-bin lookup through ``Grid2D.value_at``."""
        return grid.value_at(scalar_map, x, y)

    # ---------------------------------------------------------- route
    def route_best_bends(self, hpre, vpre, cand, i1, j1, i2, j2, via_cost, family):
        """Original broadcast candidate evaluation of ``PatternRouter``."""
        if family == "hvh":
            j1c, j2c = j1[:, None], j2[:, None]
            c = (
                _h_run_cost(hpre, j1c, i1[:, None], cand)
                + _v_run_cost(vpre, cand, j1c, j2c)
                + _h_run_cost(hpre, j2c, cand, i2[:, None])
                + via_cost
                * ((cand != i1[:, None]).astype(float) + (cand != i2[:, None]))
            )
        elif family == "vhv":
            i1c, i2c = i1[:, None], i2[:, None]
            c = (
                _v_run_cost(vpre, i1c, j1[:, None], cand)
                + _h_run_cost(hpre, cand, i1c, i2c)
                + _v_run_cost(vpre, i2c, cand, j2[:, None])
                + via_cost
                * ((cand != j1[:, None]).astype(float) + (cand != j2[:, None]))
            )
        else:
            raise ValueError(f"unknown candidate family {family!r}")
        k = np.argmin(c, axis=1)
        rows = np.arange(len(k))
        return c[rows, k], cand[rows, k]

"""Restructured-numpy fast backend (bit-identical to the reference).

Every kernel here reproduces the reference backend's floating-point
operation sequence exactly — same ufuncs applied to the same values in
the same order — so outputs are bitwise equal (asserted by
``tests/test_kernel_backends.py``).  The speed comes from *structure*,
not from reassociating arithmetic:

* ``wa_axes``: a *colmax* variant replaces the two
  ``np.{maximum,minimum}.reduceat`` calls (the measured hotspot — the
  generic reduceat pays per-segment dispatch for tens of thousands of
  tiny nets) with a column-sweep over the net-sorted pin layout: column
  ``d`` updates the running max/min of every net with more than ``d``
  pins in one vectorized step.  Max/min are order-independent *exact*
  reductions, so any evaluation order gives the bitwise-identical
  result — including the reference's ``safe_starts`` clamp quirk, which
  the precomputed segment widths reproduce.  The shifted-exp / bincount
  / gradient chain then runs through preallocated scratch buffers with
  ``out=`` ufuncs (identical op sequence, zero temporaries).  The
  per-netlist column structure is cached by input-array identity.
* ``raster_overlaps``: a *broadcast* variant builds the ``(kx, ky, n)``
  overlap tensor in a handful of vector ops instead of ``kx * ky``
  chunked loop iterations; its C-order ravel reproduces the reference
  chunk concatenation order entry for entry.
* ``netmove_virtual``: the Eq. (7)-(8) sampling matrix, bin-index
  computation and congestion gather run through cached scratch buffers
  — the bin indices replicate ``Grid2D.index_of`` op for op (subtract,
  divide, floor, int64 cast, clip) on the all-finite fast path and
  delegate to the real ``index_of`` (contract reporting included) when
  any sample coordinate is non-finite.
* ``scatter_add_pair``: ``np.bincount`` vs ``np.add.at`` — both
  accumulate strictly in entry order onto a zero-initialised target, so
  the sums are bit-identical; which is faster depends on the
  entries-per-cell ratio, so the choice is tuned at runtime.
* ``sample_nearest``: flat ``np.take`` gather (a pure permutation).
* ``route_best_bends``: a *flat* variant fuses the candidate-cost
  accumulation in place over flat prefix-sum gathers (``c = t1;
  c += t2; ...`` matches numpy's left-associative ``t1 + t2 + t3 +
  t4``); it competes with the reference broadcast shape, which wins on
  the small candidate batches of lightly-congested designs.

Variant-carrying kernels go through a
:class:`~repro.kernels.base.KernelTuner` (SpectralWorkspace precedent):
a few timed calls per variant, then the fastest is locked in for the
rest of the process.  Because variants are bit-identical the tuning
only ever affects wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelTuner, register_backend
from repro.kernels.reference import ReferenceBackend


class _WAStructure:
    """Cached per-netlist column layout + scratch for the colmax WA pass.

    Everything here is a pure function of the immutable net topology
    (``order``/``starts``/``seg_of_ordered``/``degrees``), so it is
    computed once per netlist and reused across iterations; scratch
    buffers are sized once and overwritten every call.
    """

    def __init__(self, order, starts, seg_of_ordered, degrees, n_nets):
        self.order = order
        self.starts = starts
        self.seg = seg_of_ordered
        self.degrees = degrees
        m = len(order)
        self.m = m
        # reduceat-equivalent segmentation: net i covers
        # [safe[i], safe[i+1]) and an empty segment yields c[safe[i]]
        # (numpy reduceat semantics) — exactly one column of width >= 1.
        # This reproduces the reference's start clamp bit for bit,
        # including the trailing-empty-net case where the clamp shortens
        # the previous net's segment.
        safe = np.minimum(starts, max(m - 1, 0))
        ends = np.append(safe[1:], m)
        width = np.maximum(ends - safe, 1)
        self.safe = safe
        # column d (d >= 1) updates nets whose segment has > d entries
        self.columns = []
        for col in range(1, int(width.max(initial=1))):
            ids = np.flatnonzero(width > col)
            self.columns.append((ids, safe[ids] + col))
        self.valid = degrees >= 2
        self.valid_seg = self.valid[self.seg]
        # m-sized scratch: coordinate gather, shifted exps, two temps,
        # and the two gradient accumulators
        self.c, self.a, self.b, self.t1, self.t2, self.ga, self.gb = (
            np.empty(m) for _ in range(7)
        )

    def matches(self, order, starts, seg_of_ordered, degrees) -> bool:
        """True when the cached layout was built from these exact arrays."""
        return (
            self.order is order
            and self.starts is starts
            and self.seg is seg_of_ordered
            and self.degrees is degrees
        )

    def segment_max_min(self, c):
        """Per-net max and min of net-sorted ``c`` via the column sweep.

        Exact reductions: every column step applies ``np.maximum`` /
        ``np.minimum`` to the true values, so the result equals the
        reference reduceat bitwise regardless of evaluation order.
        """
        mx = np.take(c, self.safe)
        mn = mx.copy()
        for ids, pos in self.columns:
            v = np.take(c, pos)
            cur = mx[ids]
            np.maximum(cur, v, out=cur)
            mx[ids] = cur
            cur = mn[ids]
            np.minimum(cur, v, out=cur)
            mn[ids] = cur
        return mx, mn


class _NetmoveScratch:
    """Preallocated buffers for one ``(n, s_max)`` netmove shape."""

    def __init__(self, n, s_max):
        self.shape = (n, s_max)
        self.t = np.empty((n, s_max))
        self.sx = np.empty((n, s_max))
        self.sy = np.empty((n, s_max))
        self.cval = np.empty((n, s_max))
        self.valid = np.empty((n, s_max), dtype=bool)
        self.invalid = np.empty((n, s_max), dtype=bool)
        self.kp1 = np.empty((n, 1))
        self.fx = np.empty(n * s_max)
        self.fy = np.empty(n * s_max)
        self.ib = np.empty(n * s_max, dtype=np.int64)
        self.jb = np.empty(n * s_max, dtype=np.int64)
        self.isteps = np.arange(1, s_max + 1)[None, :]
        self.fsteps = self.isteps.astype(np.float64)
        self.rows = np.arange(n)


@register_backend
class FastNumpyBackend(ReferenceBackend):
    """Dispatch-lean numpy kernels, auto-tuned where two layouts exist."""

    name = "fastnp"

    #: Cached WA structures kept alive (and therefore identity-stable).
    _MAX_STRUCTS = 4

    def __init__(self) -> None:
        ref = ReferenceBackend()
        self._wa_structs: list = []
        self._nm_scratch: _NetmoveScratch | None = None
        self._wa_tuner = KernelTuner(
            "wa_axes",
            {"colmax": self._wa_colmax, "per_axis": ref.wa_axes},
        )
        self._raster_tuner = KernelTuner(
            "raster_overlaps",
            {"broadcast": self._raster_broadcast, "chunked": ref.raster_overlaps},
        )
        self._scatter_tuner = KernelTuner(
            "scatter_add_pair",
            {"bincount": self._scatter_bincount, "add_at": ref.scatter_add_pair},
        )
        self._route_tuner = KernelTuner(
            "route_best_bends",
            {"flat": self._route_flat, "broadcast": ref.route_best_bends},
        )

    def tuning_report(self) -> dict:
        """Tuner state of the variant-carrying kernels."""
        return {
            "wa_axes": self._wa_tuner.report(),
            "raster_overlaps": self._raster_tuner.report(),
            "scatter_add_pair": self._scatter_tuner.report(),
            "route_best_bends": self._route_tuner.report(),
        }

    # ------------------------------------------------------------ WA
    def wa_axes(self, px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets):
        """Auto-tuned WA: column-sweep scratch pass vs per-axis reference."""
        return self._wa_tuner(
            px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets
        )

    def _wa_structure(self, order, starts, seg_of_ordered, degrees, n_nets):
        """Fetch (or build) the cached column layout for this topology.

        Keyed by *object identity* of the four structure arrays — the
        call site caches them on the netlist and :meth:`Netlist.copy`
        shares topology, so one RD flow hits a single entry.  Holding
        the arrays in the cache keeps their ids stable; the list is
        bounded to :data:`_MAX_STRUCTS` entries (oldest evicted).
        """
        for struct in self._wa_structs:
            if struct.matches(order, starts, seg_of_ordered, degrees):
                return struct
        struct = _WAStructure(order, starts, seg_of_ordered, degrees, n_nets)
        self._wa_structs.append(struct)
        if len(self._wa_structs) > self._MAX_STRUCTS:
            self._wa_structs.pop(0)
        return struct

    def _wa_colmax(self, px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets):
        """Column-sweep max/min + scratch-buffer exp/bincount chain.

        The elementwise chain applies the reference's exact op sequence
        through ``out=`` buffers; the only reorderings are FP-exact
        (``x + 1.0`` for ``1.0 + x``, ``(1+g)*a`` for ``a*(1+g)``,
        ``(-x)/gamma`` for ``-(x/gamma)`` — commutativity of +/* and
        sign symmetry of IEEE division round-to-nearest).
        """
        m = len(order)
        if m == 0:
            return ReferenceBackend.wa_axes(
                self, px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets
            )
        struct = self._wa_structure(order, starts, seg_of_ordered, degrees, n_nets)
        wl_x, gpin_x = self._wa_axis_colmax(px, struct, gamma, n_nets)
        wl_y, gpin_y = self._wa_axis_colmax(py, struct, gamma, n_nets)
        return wl_x, gpin_x, wl_y, gpin_y

    def _wa_axis_colmax(self, coords, struct, gamma, n_nets):
        """One axis of the WA objective through the cached scratch."""
        seg = struct.seg
        c = struct.c
        np.take(coords, struct.order, out=c)
        mx, mn = struct.segment_max_min(c)

        # a = exp((c - mx[seg]) / gamma)
        a = struct.a
        np.take(mx, seg, out=a)
        np.subtract(c, a, out=a)
        a /= gamma
        np.exp(a, out=a)
        # b = exp(-(c - mn[seg]) / gamma)
        b = struct.b
        np.take(mn, seg, out=b)
        np.subtract(c, b, out=b)
        np.negative(b, out=b)
        b /= gamma
        np.exp(b, out=b)

        t1 = struct.t1
        np.multiply(c, a, out=t1)
        s_plus = np.bincount(seg, weights=a, minlength=n_nets)
        p_plus = np.bincount(seg, weights=t1, minlength=n_nets)
        np.multiply(c, b, out=t1)
        s_minus = np.bincount(seg, weights=b, minlength=n_nets)
        p_minus = np.bincount(seg, weights=t1, minlength=n_nets)

        s_plus_safe = np.where(s_plus > 0, s_plus, 1.0)
        s_minus_safe = np.where(s_minus > 0, s_minus, 1.0)
        wa_plus = p_plus / s_plus_safe
        wa_minus = p_minus / s_minus_safe
        wl = np.where(struct.valid, wa_plus - wa_minus, 0.0)

        # grad_plus = a * (1 + (c - wa_plus[seg]) / gamma) / s_plus_safe[seg]
        ga = struct.ga
        np.take(wa_plus, seg, out=ga)
        np.subtract(c, ga, out=ga)
        ga /= gamma
        ga += 1.0
        np.multiply(ga, a, out=ga)
        t2 = struct.t2
        np.take(s_plus_safe, seg, out=t2)
        np.divide(ga, t2, out=ga)
        # grad_minus = b * (1 - (c - wa_minus[seg]) / gamma) / s_minus_safe[seg]
        gb = struct.gb
        np.take(wa_minus, seg, out=gb)
        np.subtract(c, gb, out=gb)
        gb /= gamma
        np.subtract(1.0, gb, out=gb)
        np.multiply(gb, b, out=gb)
        np.take(s_minus_safe, seg, out=t2)
        np.divide(gb, t2, out=gb)

        np.subtract(ga, gb, out=ga)
        grad_ordered = np.where(struct.valid_seg, ga, 0.0)
        grad = np.zeros(struct.m)
        grad[struct.order] = grad_ordered
        return wl, grad

    # ------------------------------------------------------ rasterize
    def raster_overlaps(
        self, ids, xlo, xhi, ylo, yhi, i0, j0, kx, ky, scale,
        base_x, base_y, dx, dy, nx, ny,
    ):
        """Auto-tuned overlap build: broadcast tensor vs chunked loop."""
        return self._raster_tuner(
            ids, xlo, xhi, ylo, yhi, i0, j0, kx, ky, scale,
            base_x, base_y, dx, dy, nx, ny,
        )

    def _raster_broadcast(
        self, ids, xlo, xhi, ylo, yhi, i0, j0, kx, ky, scale,
        base_x, base_y, dx, dy, nx, ny,
    ):
        """One ``(kx, ky, n)`` broadcast instead of ``kx * ky`` chunks.

        The C-order ravel of the ``(di, dj, cell)`` tensor reproduces
        the reference's di-outer / dj-inner chunk concatenation order
        exactly, and every overlap/weight is computed by the same op
        sequence (``clip(min - max)`` then ``(lx * ly) * scale``), so
        the flattened arrays are bitwise equal.
        """
        di = np.arange(kx, dtype=np.int64)[:, None]
        dj = np.arange(ky, dtype=np.int64)[:, None]
        left_x = base_x + (i0 + di) * dx  # (kx, n)
        lx = np.clip(np.minimum(xhi, left_x + dx) - np.maximum(xlo, left_x), 0.0, dx)
        col = np.clip(i0 + di, 0, nx - 1)
        left_y = base_y + (j0 + dj) * dy  # (ky, n)
        ly = np.clip(np.minimum(yhi, left_y + dy) - np.maximum(ylo, left_y), 0.0, dy)
        row = np.clip(j0 + dj, 0, ny - 1)
        bin_idx = (col[:, None, :] * ny + row[None, :, :]).reshape(-1)
        weights = ((lx[:, None, :] * ly[None, :, :]) * scale).reshape(-1)
        return bin_idx, weights, np.tile(ids, kx * ky)

    # -------------------------------------------------------- netmove
    def netmove_virtual(self, x1, y1, x2, y2, k, congestion, grid):
        """Reference sampling math through preallocated scratch buffers.

        Bit-identity: every ufunc of the reference runs on the same
        values in the same order, just with ``out=`` targets.  The
        fast-path bin-index computation repeats ``Grid2D.index_of``
        exactly — ``(x - xlo) / dx``, ``floor``, int64 cast (``copyto``
        with unsafe casting == ``astype``), ``clip`` — and bails out to
        the real ``index_of`` when any fractional coordinate is
        non-finite so the sanitize semantics (and the contract
        violation report) are preserved.
        """
        n = len(x1)
        s_max = int(k.max())
        s = self._nm_scratch
        if s is None or s.shape != (n, s_max):
            s = self._nm_scratch = _NetmoveScratch(n, s_max)
        kcol = k[:, None]
        np.less_equal(s.isteps, kcol, out=s.valid)
        np.add(kcol, 1.0, out=s.kp1)
        np.divide(s.fsteps, s.kp1, out=s.t)
        np.multiply(s.t, (x2 - x1)[:, None], out=s.sx)
        np.add(x1[:, None], s.sx, out=s.sx)
        np.multiply(s.t, (y2 - y1)[:, None], out=s.sy)
        np.add(y1[:, None], s.sy, out=s.sy)

        region = grid.region
        fx, fy = s.fx, s.fy
        np.subtract(s.sx.reshape(-1), region.xlo, out=fx)
        fx /= grid.dx
        np.subtract(s.sy.reshape(-1), region.ylo, out=fy)
        fy /= grid.dy
        # min/max see every NaN/Inf, so finite extrema <=> all finite
        finite = np.isfinite(min(fx.min(), fy.min())) and np.isfinite(
            max(fx.max(), fy.max())
        )
        if finite:
            np.floor(fx, out=fx)
            np.copyto(s.ib, fx, casting="unsafe")
            np.floor(fy, out=fy)
            np.copyto(s.jb, fy, casting="unsafe")
            np.clip(s.ib, 0, grid.nx - 1, out=s.ib)
            np.clip(s.jb, 0, grid.ny - 1, out=s.jb)
            s.ib *= grid.ny
            s.ib += s.jb
            flat = s.ib
        else:  # delegate sanitize + contract reporting to the grid
            ii, jj = grid.index_of(s.sx.reshape(-1), s.sy.reshape(-1))
            flat = ii * grid.ny + jj
        np.take(congestion.reshape(-1), flat, out=s.cval.reshape(-1))
        np.logical_not(s.valid, out=s.invalid)
        s.cval[s.invalid] = -np.inf
        best = np.argmax(s.cval, axis=1)
        # advanced indexing returns fresh arrays — no scratch escapes
        return s.sx[s.rows, best], s.sy[s.rows, best], s.cval[s.rows, best]

    def scatter_add_pair(self, grad_x, grad_y, cells, vx, vy):
        """Auto-tuned entry-order accumulation: bincount vs ``add.at``."""
        self._scatter_tuner(grad_x, grad_y, cells, vx, vy)

    def _scatter_bincount(self, grad_x, grad_y, cells, vx, vy):
        """Entry-order ``bincount`` accumulation (== ``np.add.at`` sums).

        ``bincount`` adds each entry's weight in input order, the same
        summation sequence ``np.add.at`` performs onto the
        zero-initialised accumulators, so adding its result is bitwise
        identical (``0 + s == s``).
        """
        n = len(grad_x)
        grad_x += np.bincount(cells, weights=vx, minlength=n)
        grad_y += np.bincount(cells, weights=vy, minlength=n)

    def sample_nearest(self, scalar_map, grid, x, y):
        """Nearest-bin lookup via one flat ``np.take`` gather."""
        if scalar_map.shape != (grid.nx, grid.ny):
            raise ValueError(
                f"map shape {scalar_map.shape} != grid shape {(grid.nx, grid.ny)}"
            )
        i, j = grid.index_of(x, y)
        return np.take(scalar_map.reshape(-1), i * grid.ny + j)

    # ---------------------------------------------------------- route
    def route_best_bends(self, hpre, vpre, cand, i1, j1, i2, j2, via_cost, family):
        """Auto-tuned candidate evaluation: flat gathers vs broadcast."""
        return self._route_tuner(
            hpre, vpre, cand, i1, j1, i2, j2, via_cost, family
        )

    def _route_flat(self, hpre, vpre, cand, i1, j1, i2, j2, via_cost, family):
        """Fused candidate-cost evaluation with flat prefix gathers.

        Each run cost becomes two ``np.take`` gathers from the raveled
        prefix arrays; the four terms accumulate in place
        (``c = t1; c += t2; ...``), matching numpy's left-associative
        ``t1 + t2 + t3 + t4`` of the reference bitwise.  The via term
        ``np.add(bool, bool, dtype=f8)`` yields the exact 0/1/2 floats
        of ``b1.astype(float) + b2``.
        """
        hflat = hpre.reshape(-1)
        vflat = vpre.reshape(-1)
        nyh = hpre.shape[1]  # ny
        nyv = vpre.shape[1]  # ny + 1
        if family == "hvh":
            i1c, i2c = i1[:, None], i2[:, None]
            j1c, j2c = j1[:, None], j2[:, None]
            lo = np.minimum(i1c, cand)
            hi = np.maximum(i1c, cand)
            c = np.take(hflat, (hi + 1) * nyh + j1c) - np.take(hflat, lo * nyh + j1c)
            lov = np.minimum(j1c, j2c)
            hiv = np.maximum(j1c, j2c)
            c += np.take(vflat, cand * nyv + (hiv + 1)) - np.take(vflat, cand * nyv + lov)
            lo = np.minimum(cand, i2c)
            hi = np.maximum(cand, i2c)
            c += np.take(hflat, (hi + 1) * nyh + j2c) - np.take(hflat, lo * nyh + j2c)
            c += via_cost * np.add(cand != i1c, cand != i2c, dtype=np.float64)
        elif family == "vhv":
            i1c, i2c = i1[:, None], i2[:, None]
            j1c, j2c = j1[:, None], j2[:, None]
            lo = np.minimum(j1c, cand)
            hi = np.maximum(j1c, cand)
            c = np.take(vflat, i1c * nyv + (hi + 1)) - np.take(vflat, i1c * nyv + lo)
            loh = np.minimum(i1c, i2c)
            hih = np.maximum(i1c, i2c)
            c += np.take(hflat, (hih + 1) * nyh + cand) - np.take(hflat, loh * nyh + cand)
            lo = np.minimum(cand, j2c)
            hi = np.maximum(cand, j2c)
            c += np.take(vflat, i2c * nyv + (hi + 1)) - np.take(vflat, i2c * nyv + lo)
            c += via_cost * np.add(cand != j1c, cand != j2c, dtype=np.float64)
        else:
            raise ValueError(f"unknown candidate family {family!r}")
        k = np.argmin(c, axis=1)
        rows = np.arange(len(k))
        return c[rows, k], cand[rows, k]

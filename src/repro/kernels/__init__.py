"""Pluggable kernel backends for the hot gradient paths.

Importing this package registers the ``reference``, ``fastnp`` and
``numba`` backends; call sites fetch the active one with
:func:`get_backend` and the CLI selects it via :func:`configure`
(``--kernel-backend`` / ``REPRO_KERNEL_BACKEND``, default ``auto``).
See :mod:`repro.kernels.base` for the protocol and selection rules.
"""

from repro.kernels import fastnp, numba_backend, reference  # noqa: F401  (registration)
from repro.kernels.base import (
    ENV_VAR,
    TUNE_SAMPLES,
    KernelBackend,
    KernelTuner,
    available_backends,
    configure,
    get_backend,
    numba_available,
    register_backend,
    requested_backend,
    reset,
)

__all__ = [
    "ENV_VAR",
    "TUNE_SAMPLES",
    "KernelBackend",
    "KernelTuner",
    "available_backends",
    "configure",
    "get_backend",
    "numba_available",
    "register_backend",
    "requested_backend",
    "reset",
]

"""Backend protocol and registry for the hot numeric kernels.

The four gradient paths the RD loop spends its time in — WA wirelength
(:mod:`repro.wirelength.wa`), density rasterization
(:mod:`repro.density.rasterize`), the Alg. 1/2 net-moving gradients
(:mod:`repro.core.netmove` / :mod:`repro.core.multipin`) and the batched
router's candidate evaluation (:mod:`repro.route.patterns`) — dispatch
their inner array work through a process-wide :class:`KernelBackend`.

Backends registered here:

``reference``
    The original numpy implementations, moved verbatim from the call
    sites.  Bit-identical to the pre-refactor code by construction
    (same ufuncs, same operation order) — the numeric ground truth
    every other backend is tested against.

``fastnp``
    Restructured numpy: scratch-buffer reuse, fused in-place ufuncs,
    ``bincount`` scatters instead of ``np.add.at``, flat-gather
    indexing, and broadcast-batched overlap builds.  Every restructure
    preserves the reference's floating-point operation sequence (the
    SpectralWorkspace discipline), so outputs are bit-identical; two
    kernels additionally carry interchangeable layout variants that the
    backend auto-tunes at runtime (see :class:`KernelTuner`).

``numba``
    Optional JIT backend compiling the tightest loops with numba when
    the package is importable; kernels it does not cover inherit the
    ``fastnp`` implementations.  Requesting it without numba installed
    logs one warning and falls back to ``reference``.

Selection order for :func:`get_backend`: an explicit
:func:`configure` call (the ``--kernel-backend`` CLI flag), then the
``REPRO_KERNEL_BACKEND`` environment variable, then ``auto``.  ``auto``
resolves to ``numba`` when importable and otherwise **silently** to
``reference`` — the conservative default keeps the shipped flow
bit-identical to the pre-backend code on hosts without numba; opt into
the restructured-numpy fast path with ``fastnp``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("kernels")

#: Environment variable naming the default backend (same values as the
#: ``--kernel-backend`` CLI flag).
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Timed samples collected per kernel variant before the tuner locks in
#: (mirrors ``repro.density.poisson._TUNE_SAMPLES``).
TUNE_SAMPLES = 3


class KernelTuner:
    """Runtime chooser between interchangeable kernel variants.

    Same contract as the SpectralWorkspace stage tuner: every variant
    of a kernel must be *bit-identical*, so the choice (and the
    alternation while tuning) only ever affects wall-clock, never
    results.  The first :data:`TUNE_SAMPLES` calls per variant run
    under a ``perf_counter`` timer (least-sampled variant first); once
    every variant has its samples, the one with the best (minimum)
    sample is locked in.  Min-of-samples is the robust statistic on a
    noisy host — interference only ever inflates a sample.
    """

    def __init__(self, kernel: str, variants: dict) -> None:
        self.kernel = kernel
        self._methods = dict(variants)
        self._samples: dict = {name: [] for name in variants}
        self.choice: str | None = None

    def __call__(self, *args):
        """Run the locked variant, or time one while still tuning."""
        if self.choice is not None:
            return self._methods[self.choice](*args)
        name = min(self._samples, key=lambda k: len(self._samples[k]))
        t0 = time.perf_counter()
        out = self._methods[name](*args)
        self._samples[name].append(time.perf_counter() - t0)
        if all(len(v) >= TUNE_SAMPLES for v in self._samples.values()):
            self.choice = min(self._samples, key=lambda k: min(self._samples[k]))
            logger.debug("kernel %s tuned to variant %s", self.kernel, self.choice)
        return out

    def report(self) -> dict:
        """Tuning state: locked choice (or None) and samples per variant."""
        return {
            "choice": self.choice,
            "samples": {k: len(v) for k, v in self._samples.items()},
        }


class KernelBackend:
    """Abstract kernel set one backend implements.

    Array arguments follow the conventions of the original call sites;
    every method is a pure function of its inputs except
    :meth:`scatter_add_pair`, which accumulates into its first two
    arguments.  Subclasses must set :attr:`name`.
    """

    #: Registry key (``reference`` / ``fastnp`` / ``numba``).
    name = "abstract"

    # ------------------------------------------------------------ info
    def describe(self) -> dict:
        """Backend identity plus auto-tune state for telemetry/bench."""
        return {"name": self.name, "autotune": self.tuning_report()}

    def tuning_report(self) -> dict:
        """Per-kernel tuner decisions (empty for untuned backends)."""
        return {}

    # ------------------------------------------------------------ WA
    def wa_axes(
        self,
        px: np.ndarray,
        py: np.ndarray,
        order: np.ndarray,
        starts: np.ndarray,
        seg_of_ordered: np.ndarray,
        degrees: np.ndarray,
        gamma: float,
        n_nets: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-net WA wirelength and per-pin gradients for both axes.

        Returns ``(wl_x, gpin_x, wl_y, gpin_y)`` with gradients in
        original pin order (see :mod:`repro.wirelength.wa` for the
        math).  Nets with ``degrees < 2`` yield zero wirelength and
        gradient.
        """
        raise NotImplementedError

    # ------------------------------------------------------ rasterize
    def raster_overlaps(
        self,
        ids: np.ndarray,
        xlo: np.ndarray,
        xhi: np.ndarray,
        ylo: np.ndarray,
        yhi: np.ndarray,
        i0: np.ndarray,
        j0: np.ndarray,
        kx: int,
        ky: int,
        scale: np.ndarray,
        base_x: float,
        base_y: float,
        dx: float,
        dy: float,
        nx: int,
        ny: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened bin indices/weights of the vectorized raster set.

        All per-cell arrays are already sliced to the small-cell subset
        ``ids``.  Returns ``(bin_idx, weights, cell_of_entry)`` in the
        canonical ``(di, dj, cell)`` entry order the reference
        implementation established (the scatter/gather bincounts
        consume entries in this order, so it is part of the numeric
        contract).
        """
        raise NotImplementedError

    # -------------------------------------------------------- netmove
    def netmove_virtual(
        self,
        x1: np.ndarray,
        y1: np.ndarray,
        x2: np.ndarray,
        y2: np.ndarray,
        k: np.ndarray,
        congestion: np.ndarray,
        grid,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Virtual-cell positions of two-pin nets (Eq. 7-8 inner step).

        Samples each segment at ``k[e]`` interior points, looks up the
        congestion map and arg-maxes per net.  Returns
        ``(xv, yv, best_congestion)``.
        """
        raise NotImplementedError

    def scatter_add_pair(
        self,
        grad_x: np.ndarray,
        grad_y: np.ndarray,
        cells: np.ndarray,
        vx: np.ndarray,
        vy: np.ndarray,
    ) -> None:
        """Accumulate ``(vx, vy)`` onto ``grad_*[cells]`` (duplicates sum).

        ``grad_x``/``grad_y`` are freshly zeroed accumulators; entry
        order of ``cells`` defines the floating-point summation order.
        """
        raise NotImplementedError

    def sample_nearest(
        self, scalar_map: np.ndarray, grid, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Nearest-bin map lookup at continuous points (Alg. 2 line 10)."""
        raise NotImplementedError

    # ---------------------------------------------------------- route
    def route_best_bends(
        self,
        hpre: np.ndarray,
        vpre: np.ndarray,
        cand: np.ndarray,
        i1: np.ndarray,
        j1: np.ndarray,
        i2: np.ndarray,
        j2: np.ndarray,
        via_cost: float,
        family: str,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Best bend per segment for one candidate family.

        ``cand`` is the ``(n, z)`` bend-candidate matrix, ``hpre`` /
        ``vpre`` the router's cost prefix sums.  ``family`` is
        ``"hvh"`` (bend column) or ``"vhv"`` (bend row).  Returns
        ``(cost, bend)`` arrays; ties keep the first (lowest) candidate
        exactly like ``np.argmin``.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry / selection
# ----------------------------------------------------------------------

#: name -> backend class, filled by :func:`register_backend`.
_REGISTRY: dict = {}

#: Explicitly requested backend name (CLI/configure); None = env/auto.
_requested: str | None = None

#: Cached resolved instance for the current request.
_active: KernelBackend | None = None


def register_backend(cls) -> type:
    """Class decorator adding a backend to the registry under its name."""
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> list:
    """Registered backend names (static list; ``numba`` may be a stub)."""
    return sorted(_REGISTRY) + ["auto"]


def numba_available() -> bool:
    """True when the optional numba JIT backend can actually compile."""
    from repro.kernels.numba_backend import HAVE_NUMBA

    return HAVE_NUMBA


def _resolve(name: str) -> KernelBackend:
    """Instantiate the backend for ``name``, applying fallback rules."""
    if name == "auto":
        if numba_available():
            return _REGISTRY["numba"]()
        # silent conservative fallback: auto without numba keeps the
        # flow on the bit-identical reference implementations
        return _REGISTRY["reference"]()
    if name == "numba" and not numba_available():
        logger.warning(
            "kernel backend 'numba' requested but numba is not importable; "
            "falling back to 'reference'"
        )
        return _REGISTRY["reference"]()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from "
            f"{', '.join(available_backends())}"
        ) from None
    return cls()


def requested_backend() -> str:
    """The currently requested backend name (before fallback rules)."""
    if _requested is not None:
        return _requested
    return os.environ.get(ENV_VAR, "auto") or "auto"


def get_backend() -> KernelBackend:
    """The process-wide active kernel backend (resolving lazily).

    Resolution order: :func:`configure` argument, then the
    :data:`ENV_VAR` environment variable, then ``auto``.  The resolved
    instance is cached so kernel scratch buffers and tuner state
    persist across calls; :func:`configure` (or :func:`reset`) drops
    the cache.
    """
    global _active
    if _active is None:
        _active = _resolve(requested_backend())
    return _active


def configure(name: str | None = None, metrics=None) -> KernelBackend:
    """Select the kernel backend process-wide and emit telemetry.

    ``name=None`` keeps the environment/auto default (useful to attach
    ``metrics`` without overriding a user's env var).  The chosen name
    is exported back into :data:`ENV_VAR` so worker subprocesses
    (parallel sweeps, bench subshells) inherit the selection.  When a
    :class:`~repro.utils.metrics.MetricsRegistry` is passed and
    enabled, one ``kernel.backend`` event records the requested and
    resolved names plus numba availability.
    """
    global _requested, _active
    if name is not None:
        if name != "auto" and name not in _REGISTRY:
            raise ValueError(
                f"unknown kernel backend {name!r}; choose from "
                f"{', '.join(available_backends())}"
            )
        _requested = name
        os.environ[ENV_VAR] = name
    _active = None
    backend = get_backend()
    if metrics is not None and getattr(metrics, "enabled", False):
        metrics.emit(
            "kernel.backend",
            requested=requested_backend(),
            resolved=backend.name,
            numba_available=numba_available(),
        )
    return backend


def reset() -> None:
    """Drop the selection and cached instance (tests, long runs)."""
    global _requested, _active
    _requested = None
    _active = None

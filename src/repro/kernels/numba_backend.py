"""Optional numba-JIT kernel backend (graceful import-or-fallback).

When numba is importable, :class:`NumbaBackend` compiles the two
kernels where an explicit loop beats vectorised numpy on a warm cache —
the per-net WA wirelength/gradient pass and the endpoint scatter — and
inherits the restructured-numpy :class:`~repro.kernels.fastnp.
FastNumpyBackend` implementations everywhere else.  Without numba the
module still imports cleanly (``HAVE_NUMBA = False``, ``njit`` becomes
an identity decorator) and the registry's resolution logic falls back
to the reference backend, so the tier-1 suite stays dependency-free.

Numeric contract: the JIT scatter accumulates in exactly the entry
order of ``np.add.at`` (bit-identical); the JIT WA pass uses
``math.exp`` (libm), which may differ from numpy's vectorised ``exp``
by an ULP, so its equivalence tests run at rtol 1e-12 instead of
bitwise (see ``tests/test_kernel_backends.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.base import register_backend
from repro.kernels.fastnp import FastNumpyBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the tier-1 container path
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity stand-in so the module imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            """Return the function unchanged."""
            return fn

        return wrap


@njit(cache=True)
def _wa_axis_jit(c, starts, degrees, gamma, n_nets, m, wl_out, grad_out):  # pragma: no cover
    """Per-net WA pass over net-sorted coordinates ``c`` (one axis).

    Fills ``wl_out`` (per net) and ``grad_out`` (per ordered pin).
    Accumulation runs in pin order, matching the reference bincounts;
    only the libm ``exp`` may differ from numpy's by an ULP.
    """
    for e in range(n_nets):
        s = starts[e]
        t = starts[e + 1] if e + 1 < n_nets else m
        if degrees[e] < 2:
            wl_out[e] = 0.0
            for p in range(s, t):
                grad_out[p] = 0.0
            continue
        mx = c[s]
        mn = c[s]
        for p in range(s + 1, t):
            v = c[p]
            if v > mx:
                mx = v
            if v < mn:
                mn = v
        s_plus = 0.0
        p_plus = 0.0
        s_minus = 0.0
        p_minus = 0.0
        for p in range(s, t):
            v = c[p]
            a = math.exp((v - mx) / gamma)
            b = math.exp(-(v - mn) / gamma)
            s_plus += a
            p_plus += v * a
            s_minus += b
            p_minus += v * b
        wa_plus = p_plus / s_plus
        wa_minus = p_minus / s_minus
        wl_out[e] = wa_plus - wa_minus
        for p in range(s, t):
            v = c[p]
            a = math.exp((v - mx) / gamma)
            b = math.exp(-(v - mn) / gamma)
            gp = a * (1.0 + (v - wa_plus) / gamma) / s_plus
            gm = b * (1.0 - (v - wa_minus) / gamma) / s_minus
            grad_out[p] = gp - gm


@njit(cache=True)
def _scatter_pair_jit(grad_x, grad_y, cells, vx, vy):  # pragma: no cover
    """Entry-order dual scatter-add (the ``np.add.at`` summation order)."""
    for e in range(len(cells)):
        grad_x[cells[e]] += vx[e]
        grad_y[cells[e]] += vy[e]


@register_backend
class NumbaBackend(FastNumpyBackend):
    """JIT WA/scatter kernels; fastnp implementations elsewhere."""

    name = "numba"

    def wa_axes(self, px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets):
        """Two JIT per-net passes (x then y) plus the original scatter."""
        m = len(order)
        if m == 0:
            return super().wa_axes(
                px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets
            )
        wl_x = np.empty(n_nets)
        wl_y = np.empty(n_nets)
        gox = np.empty(m)
        goy = np.empty(m)
        deg = np.ascontiguousarray(degrees, dtype=np.int64)
        _wa_axis_jit(px[order], starts, deg, gamma, n_nets, m, wl_x, gox)
        _wa_axis_jit(py[order], starts, deg, gamma, n_nets, m, wl_y, goy)
        gpin_x = np.zeros(m)
        gpin_y = np.zeros(m)
        gpin_x[order] = gox
        gpin_y[order] = goy
        return wl_x, gpin_x, wl_y, gpin_y

    def scatter_add_pair(self, grad_x, grad_y, cells, vx, vy):
        """Bit-identical JIT loop replacement for ``np.add.at``."""
        _scatter_pair_jit(
            grad_x,
            grad_y,
            np.ascontiguousarray(cells, dtype=np.int64),
            np.ascontiguousarray(vx, dtype=np.float64),
            np.ascontiguousarray(vy, dtype=np.float64),
        )

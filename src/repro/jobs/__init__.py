"""Supervised job runtime: specs, workers, and the supervisor.

Public API of the execution layer under :mod:`repro.bench.parallel`:
build :class:`JobSpec` work orders, hand them to :func:`run_jobs` (or
a long-lived :class:`Supervisor`), and get :class:`JobResult` outcomes
back in submission order — with timeouts, hung-worker reaping, retry
from checkpoint, and graceful degradation handled here rather than in
every caller.
"""

from repro.jobs.spec import (
    CANCELLED,
    CRASHED,
    DONE,
    FAILED,
    HUNG,
    PENDING,
    RETRYABLE_STATES,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    JobCancelled,
    JobContext,
    JobResult,
    JobSpec,
)
from repro.jobs.supervisor import (
    Supervisor,
    SupervisorConfig,
    SupervisorError,
    compute_backoff,
    run_job_in_process,
    run_jobs,
)

__all__ = [
    "CANCELLED",
    "CRASHED",
    "DONE",
    "FAILED",
    "HUNG",
    "PENDING",
    "RETRYABLE_STATES",
    "RUNNING",
    "TERMINAL_STATES",
    "TIMEOUT",
    "JobCancelled",
    "JobContext",
    "JobResult",
    "JobSpec",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorError",
    "compute_backoff",
    "run_job_in_process",
    "run_jobs",
]

"""Worker-side runtime of the supervised job executor.

:func:`worker_main` is the ``multiprocessing.Process`` target: it runs
one job attempt in a fresh process and communicates with the
supervisor through three files in the attempt's scratch directory —

``heartbeat``
    Touched (mtime-updated) whenever the job reaches a progress point
    (:func:`repro.utils.heartbeat.beat` sites in the flow loops).  The
    supervisor reads staleness off the mtime, so a SIGKILL'd or
    C-looping worker needs no cooperation to be detected.
``cancel``
    Created by the supervisor to request cooperative cancellation; the
    beat handler notices it at the next progress point and raises
    :class:`~repro.jobs.spec.JobCancelled`.  SIGTERM takes the same
    path for workers that stopped beating.
``result``
    The attempt's outcome, pickled and written atomically (temp file +
    ``os.replace``), so a worker killed mid-write leaves *no* result
    file rather than a torn one — the supervisor treats absence as a
    crash.

Files survive where pipes do not: a SIGKILL'd worker cannot flush a
pipe, but everything it already wrote to disk remains observable.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import traceback

from repro.jobs.spec import (
    CANCELLED,
    DONE,
    FAILED,
    JobCancelled,
    JobContext,
    JobSpec,
)
from repro.utils import faults, heartbeat

#: Scratch-file names inside one attempt directory.
HEARTBEAT_FILE = "heartbeat"
CANCEL_FILE = "cancel"
RESULT_FILE = "result"


class WorkerRuntime:
    """Per-attempt in-worker state: throttled beats + cancel polling."""

    def __init__(self, workdir: str, interval: float = 0.1) -> None:
        self.heartbeat_path = os.path.join(workdir, HEARTBEAT_FILE)
        self.cancel_path = os.path.join(workdir, CANCEL_FILE)
        self.interval = interval
        self._last = float("-inf")
        self._beats = 0

    def beat(self, force: bool = False) -> None:
        """Record progress and poll for cancellation (throttled).

        Installed as the process-wide :mod:`repro.utils.heartbeat`
        handler; the throttle keeps hot flow loops from paying a
        syscall per iteration.
        """
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        self._beats += 1
        with open(self.heartbeat_path, "w") as fh:
            fh.write(str(self._beats))
        if os.path.exists(self.cancel_path):
            raise JobCancelled("cancel requested by supervisor")

    def handle_sigterm(self, signum, frame) -> None:
        """SIGTERM → cooperative cancellation of the running attempt."""
        raise JobCancelled("SIGTERM from supervisor")


def write_result(workdir: str, payload: dict) -> None:
    """Atomically persist an attempt outcome for the supervisor."""
    path = os.path.join(workdir, RESULT_FILE)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def read_result(workdir: str):
    """Load an attempt outcome; ``None`` when absent or unreadable.

    An unreadable file is equivalent to a missing one — both mean the
    worker did not complete a clean handoff (crash semantics).
    """
    path = os.path.join(workdir, RESULT_FILE)
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


def worker_main(
    spec: JobSpec, attempt: int, workdir: str, heartbeat_interval: float
) -> None:
    """Process entry point: run one attempt of ``spec`` to completion.

    Never raises (the process exit code stays 0 for every cooperative
    outcome); the result file carries ``state`` = ``done`` | ``failed``
    | ``cancelled`` plus the value or traceback.  Involuntary deaths
    (SIGKILL, hard timeouts) leave no result file at all — that is the
    supervisor's crash signal.
    """
    runtime = WorkerRuntime(workdir, interval=heartbeat_interval)
    heartbeat.set_handler(runtime.beat)
    try:
        signal.signal(signal.SIGTERM, runtime.handle_sigterm)
    except ValueError:  # pragma: no cover — non-main-thread embedding
        pass
    runtime.beat(force=True)

    injector = None
    plans = faults.plans_for_attempt(spec.fault_plans, attempt)
    if plans:
        injector = faults.FaultInjector()
        for plan in plans:
            injector.add(plan)
        faults.install(injector)

    state, value, error = DONE, None, None
    try:
        kwargs = dict(spec.kwargs)
        if spec.with_context:
            kwargs["ctx"] = JobContext(
                job_id=spec.job_id,
                attempt=attempt,
                checkpoint_path=spec.checkpoint_path,
            )
        value = spec.fn(*spec.args, **kwargs)
    except JobCancelled as exc:
        state, error = CANCELLED, f"cancelled: {exc}"
    except BaseException:
        state, error = FAILED, traceback.format_exc()
    finally:
        if injector is not None:
            faults.uninstall()
        heartbeat.clear_handler()
    write_result(workdir, {"state": state, "value": value, "error": error})

"""Job lifecycle types of the supervised execution runtime.

A *job* is one unit of flow work — one design placement/route, one
sweep shard — described by a :class:`JobSpec` and finishing as a
:class:`JobResult`.  The state machine (enforced by
:class:`~repro.jobs.supervisor.Supervisor`)::

    PENDING --start--> RUNNING --+--> DONE        (fn returned)
       ^                         +--> FAILED      (fn raised)
       |                         +--> CRASHED     (worker died: SIGKILL,
       |                         |                 segfault, lost result)
       |                         +--> HUNG        (heartbeats stopped)
       |                         +--> TIMEOUT     (wall-clock deadline)
       |                         +--> CANCELLED   (cooperative or reaped)
       +------- retry (CRASHED/HUNG/TIMEOUT, with backoff) ------+

``FAILED`` is deliberately terminal by default: an exception is a
deterministic outcome the caller wants reported, not masked by
recomputation; the involuntary deaths (``CRASHED``/``HUNG``/
``TIMEOUT``) are the retryable ones.  A retried job whose spec carries
``checkpoint_path`` warm-starts from its last atomic checkpoint (the
:class:`JobContext` tells the function it is attempt ``>= 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Lifecycle states (also the ``state`` field of ``job.end`` events).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CRASHED = "crashed"
HUNG = "hung"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

#: States a job can end in.
TERMINAL_STATES = (DONE, FAILED, CRASHED, HUNG, TIMEOUT, CANCELLED)
#: Involuntary-death states the supervisor retries by default.
RETRYABLE_STATES = (CRASHED, HUNG, TIMEOUT)


class JobCancelled(BaseException):
    """Cooperative-cancellation signal raised inside a worker.

    A ``BaseException`` on purpose: flow-level recovery code catches
    ``Exception`` (round rollback, per-design isolation) and must not
    swallow a cancellation on its way out of the worker.
    """


@dataclass
class JobContext:
    """What a context-aware job function learns about its execution.

    Passed as the ``ctx`` keyword argument when
    :attr:`JobSpec.with_context` is set.  ``attempt`` is 0-based;
    ``attempt > 0`` means this is a retry and the function should
    resume from ``checkpoint_path`` when one exists.
    """

    job_id: str
    attempt: int = 0
    checkpoint_path: str | None = None

    @property
    def is_retry(self) -> bool:
        """True on the second and later attempts."""
        return self.attempt > 0


@dataclass
class JobSpec:
    """One unit of work, small enough to pickle cheaply.

    Attributes
    ----------
    job_id:
        Stable identifier used in telemetry and for deterministic
        retry jitter.
    fn:
        Module-level callable executed in the worker.  Its return
        value becomes :attr:`JobResult.value` and must be picklable.
    args / kwargs:
        Positional/keyword payload for ``fn``.
    with_context:
        When True, ``fn`` additionally receives ``ctx=``
        :class:`JobContext` (attempt number, checkpoint path).
    timeout:
        Per-job wall-clock deadline in seconds, enforced by the
        supervisor (SIGKILL past the deadline).  ``None`` = no limit.
    heartbeat_timeout:
        Maximum silence (seconds since the worker's last progress
        beat) before the job counts as hung.  ``None`` disables hung
        detection; slow-but-beating workers are never reaped by this.
    max_retries:
        Replacement attempts after an involuntary death (the first
        attempt is not a retry).
    checkpoint_path:
        Warm-start location forwarded through :class:`JobContext`;
        retried attempts resume from it instead of recomputing.
    fault_plans:
        :class:`~repro.utils.faults.FaultPlan` tuple installed inside
        the worker for this job (chaos testing); plans with
        ``attempts >= 0`` stop firing on later attempts.
    index:
        Caller ordering hint carried through to :class:`JobResult`.
    """

    job_id: str
    fn: object = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    with_context: bool = False
    timeout: float | None = None
    heartbeat_timeout: float | None = None
    max_retries: int | None = None
    checkpoint_path: str | None = None
    fault_plans: tuple = ()
    index: int = 0


@dataclass
class JobResult:
    """Terminal outcome of one job across all its attempts."""

    job_id: str
    state: str = PENDING
    value: object = None
    error: str | None = None
    attempts: int = 0
    elapsed: float = 0.0
    exitcode: int | None = None
    index: int = 0

    @property
    def ok(self) -> bool:
        """True when the job finished with a returned value."""
        return self.state == DONE

"""Supervised job execution: deadlines, heartbeats, retries, degradation.

The :class:`Supervisor` runs :class:`~repro.jobs.spec.JobSpec` work
orders in child processes (one process per attempt, up to
``max_workers`` concurrently) and enforces the lifecycle contract the
workers themselves cannot be trusted with:

* **wall-clock deadlines** — a job past its ``timeout`` is SIGKILLed
  by the supervisor; no cooperation required;
* **hung vs slow** — workers touch a heartbeat file at flow progress
  points (:mod:`repro.utils.heartbeat`); a worker that stops beating
  for ``heartbeat_timeout`` seconds is *hung* and reaped immediately,
  while a slow-but-progressing worker runs until its deadline;
* **retry with backoff** — involuntary deaths (crash/hang/timeout)
  are retried up to ``max_retries`` times with exponential backoff and
  deterministic jitter; a retried job whose spec names a
  ``checkpoint_path`` warm-starts from its last atomic checkpoint;
* **cooperative cancellation** — :meth:`Supervisor.cancel` flags the
  job's cancel file (picked up at the next heartbeat), escalating to
  SIGTERM and finally SIGKILL after a grace period;
* **graceful degradation** — a dead worker gets a replacement process
  (retry); a supervisor that cannot run processes at all is rebuilt
  once by :func:`run_jobs`, and as the last rung the remaining jobs
  run in-process sequentially.  Every rung emits a ``job.degrade``
  telemetry event.

Results come back in submission order, every job reporting a
structured :class:`~repro.jobs.spec.JobResult` — the supervisor never
raises because of anything a *job* did.

This is the execution skeleton the bench sweep runner
(:mod:`repro.bench.parallel`) sits on, and the worker-pool layer a
placement-as-a-service daemon plugs into.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass

from repro.jobs.spec import (
    CANCELLED,
    CRASHED,
    DONE,
    FAILED,
    HUNG,
    PENDING,
    RETRYABLE_STATES,
    RUNNING,
    TIMEOUT,
    JobCancelled,
    JobContext,
    JobResult,
    JobSpec,
)
from repro.jobs.worker import CANCEL_FILE, HEARTBEAT_FILE, read_result, worker_main
from repro.utils.logging import get_logger
from repro.utils.metrics import NULL

logger = get_logger("jobs.supervisor")


class SupervisorError(RuntimeError):
    """The supervisor itself (not a job) cannot make progress.

    Raised when worker processes cannot be started at all;
    :func:`run_jobs` reacts by climbing the degradation ladder instead
    of failing the batch.
    """


@dataclass
class SupervisorConfig:
    """Supervision policy knobs (per-spec fields override the defaults).

    Attributes
    ----------
    max_workers:
        Concurrent worker processes.
    timeout / heartbeat_timeout:
        Defaults for specs that leave theirs ``None`` — see
        :class:`~repro.jobs.spec.JobSpec`.
    heartbeat_interval:
        Worker-side throttle between heartbeat file updates; keep well
        under ``heartbeat_timeout``.
    max_retries:
        Default replacement attempts after involuntary deaths.
    backoff_base / backoff_factor / backoff_jitter:
        Retry delay: ``base * factor**(attempt-1)``, stretched by up
        to ``jitter`` fraction using a jitter stream seeded from the
        job id (deterministic across runs, decorrelated across jobs).
    poll_interval:
        Supervisor tick period.
    cancel_grace:
        Seconds between cancellation escalation steps (cooperative
        flag -> SIGTERM -> SIGKILL).
    """

    max_workers: int = 1
    timeout: float | None = None
    heartbeat_timeout: float | None = None
    heartbeat_interval: float = 0.1
    max_retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    poll_interval: float = 0.02
    cancel_grace: float = 0.5


def compute_backoff(config: SupervisorConfig, job_id: str, attempt: int) -> float:
    """Deterministic exponential backoff with per-job jitter.

    ``attempt`` is the 1-based retry number.  Seeding the jitter from
    ``(job_id, attempt)`` keeps reruns reproducible while spreading
    simultaneous retries of different jobs apart.
    """
    base = config.backoff_base * config.backoff_factor ** max(0, attempt - 1)
    jitter = random.Random(f"{job_id}:{attempt}").random()
    return base * (1.0 + config.backoff_jitter * jitter)


@dataclass
class _Job:
    """Supervisor-internal tracking record of one submitted job."""

    spec: JobSpec
    order: int
    state: str = PENDING
    attempt: int = 0
    proc: object = None
    workdir: str = ""
    started: float = 0.0
    first_started: float | None = None
    not_before: float = 0.0
    last_beat: float = 0.0
    beat_stamp: str = ""
    cancel_requested: bool = False
    cancel_since: float = 0.0
    sigterm_sent: bool = False
    result: JobResult | None = None

    @property
    def timeout(self) -> float | None:
        """Effective wall-clock limit (spec overrides config default)."""
        return self.spec.timeout

    @property
    def done(self) -> bool:
        """True once a terminal :class:`JobResult` is recorded."""
        return self.result is not None


class Supervisor:
    """Run job specs under deadlines, heartbeats and retry policy.

    Use as a context manager, or call :meth:`close` to reap any
    still-running workers and delete the scratch directory.  The
    incremental API (:meth:`submit` / :meth:`poll` / :meth:`wait` /
    :meth:`cancel`) exists so a long-running service can feed jobs in
    over time; :meth:`run` is the batch convenience used by the sweep
    runner.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        metrics=NULL,
        mp_context=None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.metrics = metrics
        self._ctx = mp_context or multiprocessing.get_context()
        self._jobs: dict = {}
        self._order: list = []
        self._delivered: set = set()
        self._root = tempfile.mkdtemp(prefix="repro-jobs-")
        self._closed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """SIGKILL any still-running workers and remove scratch files."""
        if self._closed:
            return
        self._closed = True
        for job in self._jobs.values():
            if job.proc is not None and job.proc.is_alive():
                job.proc.kill()
                job.proc.join(timeout=5)
        shutil.rmtree(self._root, ignore_errors=True)

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Queue one job; returns its id.  Ids must be unique."""
        if spec.job_id in self._jobs:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        job = _Job(spec=spec, order=len(self._order))
        self._jobs[spec.job_id] = job
        self._order.append(spec.job_id)
        if self.metrics.enabled:
            self.metrics.emit("job.submit", job=spec.job_id, index=spec.index)
        return spec.job_id

    def cancel(self, job_id: str) -> None:
        """Request cancellation (cooperative first, forced eventually)."""
        job = self._jobs[job_id]
        if job.done:
            return
        if self.metrics.enabled:
            self.metrics.emit("job.cancel", job=job_id)
        if job.state == PENDING:
            self._finalize(job, CANCELLED, "cancelled before start")
            return
        if not job.cancel_requested:
            job.cancel_requested = True
            job.cancel_since = time.monotonic()
            self._touch(os.path.join(job.workdir, CANCEL_FILE))

    def results(self) -> list:
        """Terminal :class:`JobResult` entries so far, submission order."""
        return [
            self._jobs[jid].result
            for jid in self._order
            if self._jobs[jid].result is not None
        ]

    def take_completed(self) -> list:
        """Newly terminal :class:`JobResult` entries since the last call.

        Incremental companion to :meth:`results` for long-lived callers
        (the service daemon drains this from its scheduler tick): each
        terminal result is returned exactly once, submission order
        within a call.
        """
        fresh = []
        for jid in self._order:
            job = self._jobs[jid]
            if job.result is not None and jid not in self._delivered:
                self._delivered.add(jid)
                fresh.append(job.result)
        return fresh

    def job_state(self, job_id: str) -> str:
        """The current lifecycle state of one submitted job."""
        return self._jobs[job_id].state

    def worker_pid(self, job_id: str) -> int | None:
        """Pid of the job's live worker process (``None`` if none)."""
        proc = self._jobs[job_id].proc
        return proc.pid if proc is not None else None

    def unfinished_specs(self) -> list:
        """Specs of jobs without a terminal result (for ladder rebuilds)."""
        return [
            self._jobs[jid].spec
            for jid in self._order
            if self._jobs[jid].result is None
        ]

    def run(self, specs) -> list:
        """Submit ``specs`` and block until every job is terminal."""
        for spec in specs:
            self.submit(spec)
        return self.wait()

    def wait(self) -> list:
        """Drive the state machine until all submitted jobs finish."""
        while not all(job.done for job in self._jobs.values()):
            self.poll()
            time.sleep(self.config.poll_interval)
        return self.results()

    # ------------------------------------------------------------------
    # one scheduling tick
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Advance every job one step: reap, enforce, retry, start."""
        now = time.monotonic()
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state == RUNNING:
                self._check_running(job, now)
        self._start_pending(now)

    def _check_running(self, job: _Job, now: float) -> None:
        proc = job.proc
        if proc.exitcode is not None:
            self._reap(job)
            return
        self._refresh_beat(job, now)
        if job.cancel_requested:
            waited = now - job.cancel_since
            if waited > 2 * self.config.cancel_grace:
                proc.kill()
                proc.join(timeout=5)
                self._reap(job)
            elif waited > self.config.cancel_grace and not job.sigterm_sent:
                job.sigterm_sent = True
                proc.terminate()
            return
        timeout = job.spec.timeout
        timeout = self.config.timeout if timeout is None else timeout
        if timeout is not None and now - job.started > timeout:
            if self.metrics.enabled:
                self.metrics.emit(
                    "job.timeout",
                    job=job.spec.job_id,
                    attempt=job.attempt,
                    timeout_s=timeout,
                )
            logger.warning(
                "%s exceeded its %.1fs deadline; killing worker",
                job.spec.job_id, timeout,
            )
            proc.kill()
            proc.join(timeout=5)
            self._attempt_ended(job, TIMEOUT, f"deadline exceeded ({timeout}s)")
            return
        hb_timeout = job.spec.heartbeat_timeout
        if hb_timeout is None:
            hb_timeout = self.config.heartbeat_timeout
        if hb_timeout is not None and now - job.last_beat > hb_timeout:
            silent = now - job.last_beat
            if self.metrics.enabled:
                self.metrics.emit(
                    "job.hung",
                    job=job.spec.job_id,
                    attempt=job.attempt,
                    silent_s=silent,
                )
            logger.warning(
                "%s silent for %.1fs (heartbeat limit %.1fs); killing "
                "hung worker", job.spec.job_id, silent, hb_timeout,
            )
            proc.kill()
            proc.join(timeout=5)
            self._attempt_ended(
                job, HUNG, f"no heartbeat for {silent:.1f}s"
            )

    def _refresh_beat(self, job: _Job, now: float) -> None:
        """Track progress via the heartbeat file's *content* change.

        Comparing content stamps instead of mtimes keeps the check in
        one clock domain (the supervisor's monotonic clock).
        """
        try:
            with open(os.path.join(job.workdir, HEARTBEAT_FILE)) as fh:
                stamp = fh.read()
        except OSError:
            return
        if stamp != job.beat_stamp:
            job.beat_stamp = stamp
            job.last_beat = now

    # ------------------------------------------------------------------
    # attempt/job termination
    # ------------------------------------------------------------------
    def _reap(self, job: _Job) -> None:
        """Classify a worker that exited on its own (or was killed)."""
        job.proc.join(timeout=5)
        payload = read_result(job.workdir)
        if payload is not None:
            self._attempt_ended(
                job, payload["state"], payload["error"], value=payload["value"]
            )
            return
        exitcode = job.proc.exitcode
        if job.cancel_requested:
            self._attempt_ended(
                job, CANCELLED, f"killed after cancel (exitcode {exitcode})",
                exitcode=exitcode,
            )
            return
        if self.metrics.enabled:
            self.metrics.emit(
                "job.crashed",
                job=job.spec.job_id,
                attempt=job.attempt,
                exitcode=exitcode,
            )
        logger.warning(
            "%s worker died without a result (exitcode %s)",
            job.spec.job_id, exitcode,
        )
        self._attempt_ended(
            job, CRASHED, f"worker died without a result (exitcode {exitcode})",
            exitcode=exitcode,
        )

    def _attempt_ended(
        self,
        job: _Job,
        state: str,
        error: str | None,
        value=None,
        exitcode: int | None = None,
    ) -> None:
        now = time.monotonic()
        if exitcode is None and job.proc is not None:
            exitcode = job.proc.exitcode
        if self.metrics.enabled:
            self.metrics.emit(
                "job.end",
                job=job.spec.job_id,
                attempt=job.attempt,
                state=state,
                elapsed_s=now - job.started,
            )
        job.proc = None
        max_retries = job.spec.max_retries
        if max_retries is None:
            max_retries = self.config.max_retries
        retryable = (
            state in RETRYABLE_STATES
            and not job.cancel_requested
            and job.attempt < max_retries
        )
        if retryable:
            backoff = compute_backoff(
                self.config, job.spec.job_id, job.attempt + 1
            )
            resume = bool(
                job.spec.checkpoint_path
                and os.path.exists(job.spec.checkpoint_path)
            )
            if self.metrics.enabled:
                self.metrics.emit(
                    "job.retry",
                    job=job.spec.job_id,
                    attempt=job.attempt + 1,
                    backoff_s=backoff,
                    resume=resume,
                )
            logger.warning(
                "replacing dead worker for %s (attempt %d, backoff %.2fs, "
                "%s)", job.spec.job_id, job.attempt + 1, backoff,
                "resuming from checkpoint" if resume else "cold restart",
            )
            job.attempt += 1
            job.state = PENDING
            job.not_before = now + backoff
            return
        self._finalize(job, state, error, value=value, exitcode=exitcode)

    def _finalize(
        self,
        job: _Job,
        state: str,
        error: str | None,
        value=None,
        exitcode: int | None = None,
    ) -> None:
        elapsed = 0.0
        if job.first_started is not None:
            elapsed = time.monotonic() - job.first_started
        job.state = state
        job.result = JobResult(
            job_id=job.spec.job_id,
            state=state,
            value=value,
            error=error,
            attempts=job.attempt + 1 if job.first_started is not None else 0,
            elapsed=elapsed,
            exitcode=exitcode,
            index=job.spec.index,
        )

    # ------------------------------------------------------------------
    # starting workers
    # ------------------------------------------------------------------
    def _start_pending(self, now: float) -> None:
        running = sum(
            1 for j in self._jobs.values() if j.state == RUNNING
        )
        for job_id in self._order:
            if running >= self.config.max_workers:
                return
            job = self._jobs[job_id]
            if job.done or job.state != PENDING or now < job.not_before:
                continue
            self._start(job, now)
            running += 1

    def _start(self, job: _Job, now: float) -> None:
        job.workdir = os.path.join(
            self._root, f"{job.spec.index}-{job.attempt}"
        )
        os.makedirs(job.workdir, exist_ok=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                job.spec,
                job.attempt,
                job.workdir,
                self.config.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-job-{job.spec.job_id}-{job.attempt}",
        )
        try:
            proc.start()
        except OSError as exc:
            raise SupervisorError(
                f"cannot start worker process for {job.spec.job_id!r}: {exc}"
            ) from exc
        job.proc = proc
        job.state = RUNNING
        job.started = now
        job.last_beat = now
        job.beat_stamp = ""
        if job.first_started is None:
            job.first_started = now
        if self.metrics.enabled:
            self.metrics.emit(
                "job.start",
                job=job.spec.job_id,
                attempt=job.attempt,
                pid=proc.pid,
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _touch(path: str) -> None:
        with open(path, "w") as fh:
            fh.write("1")


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
def run_job_in_process(spec: JobSpec) -> JobResult:
    """Last-rung execution: run ``spec`` in this process, no isolation.

    Deadlines and heartbeat reaping cannot be enforced here (there is
    no supervisor left to do the killing); the trade is availability —
    a sweep still completes on a host where processes cannot be
    spawned at all.
    """
    t0 = time.monotonic()
    kwargs = dict(spec.kwargs)
    if spec.with_context:
        kwargs["ctx"] = JobContext(
            job_id=spec.job_id, attempt=0, checkpoint_path=spec.checkpoint_path
        )
    try:
        value = spec.fn(*spec.args, **kwargs)
        state, error = DONE, None
    except JobCancelled as exc:
        state, error, value = CANCELLED, f"cancelled: {exc}", None
    except Exception:
        import traceback

        state, error, value = FAILED, traceback.format_exc(), None
    return JobResult(
        job_id=spec.job_id,
        state=state,
        value=value,
        error=error,
        attempts=1,
        elapsed=time.monotonic() - t0,
        index=spec.index,
    )


def run_jobs(
    specs,
    max_workers: int = 1,
    config: SupervisorConfig | None = None,
    metrics=NULL,
    mp_context=None,
) -> list:
    """Run ``specs`` supervised, degrading gracefully, results in order.

    The ladder: a normal :class:`Supervisor` first; if it breaks (its
    own machinery, never a job), a **fresh supervisor** takes over the
    unfinished jobs; if that breaks too, the remainder runs
    **in-process sequentially**.  Each step emits a ``job.degrade``
    event, so a degraded sweep is visible in telemetry rather than
    silently slower.
    """
    specs = list(specs)
    cfg = config if config is not None else SupervisorConfig(
        max_workers=max_workers
    )
    results: dict = {}
    remaining = specs
    for rung in ("supervisor", "fresh-supervisor"):
        if not remaining:
            break
        sup = Supervisor(cfg, metrics=metrics, mp_context=mp_context)
        try:
            for result in sup.run(remaining):
                results[result.job_id] = result
            remaining = []
        except SupervisorError as exc:
            for result in sup.results():
                results[result.job_id] = result
            remaining = [s for s in remaining if s.job_id not in results]
            next_rung = (
                "fresh-supervisor" if rung == "supervisor" else "in-process"
            )
            if metrics.enabled:
                metrics.emit("job.degrade", rung=next_rung, reason=str(exc))
            logger.error(
                "supervisor broke (%s); degrading to %s for %d jobs",
                exc, next_rung, len(remaining),
            )
        finally:
            sup.close()
    if remaining:
        for spec in remaining:
            results[spec.job_id] = run_job_in_process(spec)
    return [results[s.job_id] for s in specs]

"""Bookshelf-lite design serialization.

Format (line-oriented, ``#`` comments)::

    design <name>
    die <xlo> <ylo> <xhi> <yhi>
    rows <row_height> <site_width>
    cell <name> <width> <height> <x> <y> <flags>   # flags: m=macro f=fixed -
    net <name> <pin_count>
    pin <cell> <offset_x> <offset_y>               # pin_count times
    rail <xlo> <ylo> <xhi> <yhi> <h|v>

All coordinates are cell centers, matching the in-memory convention.

Malformed input raises :class:`BookshelfParseError` naming the source
(file path when known), the 1-based line number, the offending line and
what went wrong — enough to fix the file without reading this parser.
"""

from __future__ import annotations

import io

from repro.geometry.rect import Rect
from repro.netlist.data import CellSpec, NetSpec, PGRailSpec, PinSpec
from repro.netlist.netlist import Netlist


class BookshelfParseError(ValueError):
    """Malformed Bookshelf-lite input, located by source and line."""

    def __init__(self, source: str, line_no: int, line: str, reason: str) -> None:
        self.source = source
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"{source}:{line_no}: {reason} (in line {line!r})")


def dumps_design(netlist: Netlist) -> str:
    """Serialize a netlist to the Bookshelf-lite text format."""
    out = io.StringIO()
    out.write(f"design {netlist.name}\n")
    d = netlist.die
    out.write(f"die {float(d.xlo)!r} {float(d.ylo)!r} {float(d.xhi)!r} {float(d.yhi)!r}\n")
    out.write(f"rows {float(netlist.row_height)!r} {float(netlist.site_width)!r}\n")
    for i in range(netlist.n_cells):
        flags = ""
        if netlist.cell_macro[i]:
            flags += "m"
        if netlist.cell_fixed[i]:
            flags += "f"
        out.write(
            f"cell {netlist.cell_names[i]} {float(netlist.cell_width[i])!r} "
            f"{float(netlist.cell_height[i])!r} {float(netlist.x[i])!r} "
            f"{float(netlist.y[i])!r} {flags or '-'}\n"
        )
    for e in range(netlist.n_nets):
        pins = netlist.net_pins(e)
        out.write(f"net {netlist.net_names[e]} {len(pins)}\n")
        for p in pins:
            out.write(
                f"pin {netlist.cell_names[netlist.pin_cell[p]]} "
                f"{float(netlist.pin_offset_x[p])!r} {float(netlist.pin_offset_y[p])!r}\n"
            )
    for rail in netlist.pg_rails:
        r = rail.rect
        out.write(
            f"rail {float(r.xlo)!r} {float(r.ylo)!r} {float(r.xhi)!r} {float(r.yhi)!r} "
            f"{'h' if rail.horizontal else 'v'}\n"
        )
    return out.getvalue()


def loads_design(text: str, source: str = "<string>") -> Netlist:
    """Parse a Bookshelf-lite string back into a :class:`Netlist`.

    ``source`` names the input in error messages (the file path when
    called through :func:`load_design`).
    """
    name = "design"
    die: Rect | None = None
    row_height, site_width = 1.0, 0.25
    cells: list[CellSpec] = []
    nets: list[NetSpec] = []
    rails: list[PGRailSpec] = []
    pending_net: NetSpec | None = None
    pending_pins = 0
    line_no = 0
    raw = ""

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "pin":
                if pending_net is None or pending_pins <= 0:
                    raise ValueError("pin line outside a net block")
                pending_net.pins.append(
                    PinSpec(tokens[1], float(tokens[2]), float(tokens[3]))
                )
                pending_pins -= 1
                continue
            if pending_pins > 0:
                raise ValueError(
                    f"expected {pending_pins} more pin lines for net {pending_net.name}"
                )
            if kind == "design":
                name = tokens[1]
            elif kind == "die":
                die = Rect(*(float(t) for t in tokens[1:5]))
            elif kind == "rows":
                row_height, site_width = float(tokens[1]), float(tokens[2])
            elif kind == "cell":
                flags = tokens[6]
                cells.append(
                    CellSpec(
                        name=tokens[1],
                        width=float(tokens[2]),
                        height=float(tokens[3]),
                        x=float(tokens[4]),
                        y=float(tokens[5]),
                        macro="m" in flags,
                        fixed="f" in flags,
                    )
                )
            elif kind == "net":
                pending_net = NetSpec(name=tokens[1])
                pending_pins = int(tokens[2])
                nets.append(pending_net)
            elif kind == "rail":
                rails.append(
                    PGRailSpec(
                        rect=Rect(*(float(t) for t in tokens[1:5])),
                        horizontal=tokens[5] == "h",
                    )
                )
            else:
                raise ValueError(f"unknown record {kind!r}")
        except IndexError as exc:
            raise BookshelfParseError(
                source, line_no, raw, f"too few fields for {kind!r} record"
            ) from exc
        except ValueError as exc:
            raise BookshelfParseError(source, line_no, raw, str(exc)) from exc

    if pending_pins > 0:
        raise BookshelfParseError(
            source,
            line_no,
            raw,
            f"net {pending_net.name} missing {pending_pins} pins at end of input",
        )
    if die is None:
        raise BookshelfParseError(source, line_no, raw, "missing die record")
    try:
        return Netlist.from_specs(
            name=name,
            die=die,
            cells=cells,
            nets=nets,
            row_height=row_height,
            site_width=site_width,
            pg_rails=rails,
        )
    except ValueError as exc:
        # construction-level inconsistencies (e.g. duplicate cell
        # names, pins naming unknown cells) have no single line — name
        # the source at least
        raise ValueError(f"{source}: {exc}") from exc


def save_design(netlist: Netlist, path: str) -> None:
    """Write a design file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_design(netlist))


def load_design(path: str) -> Netlist:
    """Read a design file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_design(handle.read(), source=path)

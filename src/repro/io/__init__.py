"""Design file I/O: a Bookshelf-lite text format.

The ISPD 2015 benchmarks ship as LEF/DEF; this repo's synthetic suite
uses a compact single-file text format carrying the same information
the algorithms need (die, rows, cells, nets with pin offsets, PG
rails).  Round-trips exactly through :func:`save_design` /
:func:`load_design`.
"""

from repro.io.bookshelf import load_design, save_design, dumps_design, loads_design

__all__ = ["load_design", "save_design", "dumps_design", "loads_design"]

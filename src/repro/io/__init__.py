"""Design file I/O: a Bookshelf-lite text format.

The ISPD 2015 benchmarks ship as LEF/DEF; this repo's synthetic suite
uses a compact single-file text format carrying the same information
the algorithms need (die, rows, cells, nets with pin offsets, PG
rails).  Round-trips exactly through :func:`save_design` /
:func:`load_design`.
"""

from repro.io.bookshelf import (
    BookshelfParseError,
    dumps_design,
    load_design,
    loads_design,
    save_design,
)

__all__ = [
    "BookshelfParseError",
    "load_design",
    "save_design",
    "dumps_design",
    "loads_design",
]

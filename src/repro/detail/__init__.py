"""Detailed placement refinement on legalized rows.

Stand-in for the routability-driven detailed placement of
Xplace-Route [8]: legality-preserving local moves (in-row shifts toward
the connected-pin median, adjacent equal-width swaps) that reduce HPWL,
with an optional congestion gate that refuses moves into congested
G-cells.
"""

from repro.detail.incremental import IncrementalWirelength
from repro.detail.refine import DetailStats, detailed_place

__all__ = ["IncrementalWirelength", "DetailStats", "detailed_place"]

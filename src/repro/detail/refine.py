"""Detailed placement passes: in-row shifts and adjacent swaps.

Both passes preserve legality by construction: shifts stay within the
slack between a cell's row neighbours (snapped to sites), swaps only
exchange equal-width cells.  An optional congestion map vetoes moves
whose destination G-cell is congested — the detailed-placement analogue
of not moving cells back into trouble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detail.incremental import IncrementalWirelength
from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.utils.logging import get_logger

logger = get_logger("detail.refine")


@dataclass
class DetailStats:
    """Summary of one detailed placement run."""

    passes: int
    shifts_applied: int
    swaps_applied: int
    hpwl_before: float
    hpwl_after: float

    @property
    def improvement(self) -> float:
        """HPWL reduction achieved by the refinement pass."""
        return self.hpwl_before - self.hpwl_after


def _row_groups(netlist: Netlist) -> tuple[dict, set]:
    """Cells grouped by row band, sorted by x.

    Fixed cells (macros, pads) overlapping a row are included as
    immovable boundary members so shifts cannot slide into them; the
    returned set holds the frozen ids.
    """
    rh = netlist.row_height
    die = netlist.die
    n_rows = max(int(np.floor(die.height / rh + 1e-9)), 1)
    groups: dict[int, list[int]] = {}
    frozen: set[int] = set()

    eligible = netlist.movable & (netlist.cell_height <= rh + 1e-9)
    for i in np.flatnonzero(eligible):
        r = int(np.floor((netlist.y[i] - die.ylo) / rh + 1e-9))
        groups.setdefault(r, []).append(i)

    for i in np.flatnonzero(~eligible):
        frozen.add(int(i))
        ylo = netlist.y[i] - netlist.cell_height[i] / 2
        yhi = netlist.y[i] + netlist.cell_height[i] / 2
        r0 = int(np.floor((ylo - die.ylo) / rh + 1e-6))
        r1 = int(np.ceil((yhi - die.ylo) / rh - 1e-6)) - 1
        for r in range(max(r0, 0), min(r1, n_rows - 1) + 1):
            if r in groups:
                groups[r].append(int(i))

    for members in groups.values():
        members.sort(key=lambda i: netlist.x[i])
    return groups, frozen


def _median_target(netlist: Netlist, oracle: IncrementalWirelength, cell: int) -> float:
    """Median x of the other pins on the cell's nets (optimal-region center)."""
    nl = netlist
    xs: list[float] = []
    for pin in nl.cell_pins(cell):
        net = int(nl.pin_net[pin])
        for q in nl.net_pins(net):
            if nl.pin_cell[q] != cell:
                xs.append(float(nl.x[nl.pin_cell[q]] + nl.pin_offset_x[q]))
    if not xs:
        return float(nl.x[cell])
    return float(np.median(xs))


def detailed_place(
    netlist: Netlist,
    passes: int = 2,
    grid: Grid2D | None = None,
    congestion: np.ndarray | None = None,
    congestion_threshold: float = 0.0,
) -> DetailStats:
    """Run shift + swap passes; mutates positions in place.

    Parameters
    ----------
    grid, congestion:
        When both given, a move into a G-cell with congestion above
        ``congestion_threshold`` is rejected even if it improves HPWL.
    """
    oracle = IncrementalWirelength(netlist)
    from repro.wirelength.hpwl import hpwl

    before = hpwl(netlist)
    shifts = swaps = 0
    sw = netlist.site_width

    def congested(x: float, y: float) -> bool:
        if grid is None or congestion is None:
            return False
        return bool(grid.value_at(congestion, x, y) > congestion_threshold)

    for _ in range(passes):
        groups, frozen = _row_groups(netlist)
        for members in groups.values():
            # shift pass: move each cell toward its pin median within slack
            for idx, cell in enumerate(members):
                if cell in frozen:
                    continue
                w = netlist.cell_width[cell]
                left = (
                    netlist.x[members[idx - 1]] + netlist.cell_width[members[idx - 1]] / 2
                    if idx > 0
                    else netlist.die.xlo
                )
                right = (
                    netlist.x[members[idx + 1]] - netlist.cell_width[members[idx + 1]] / 2
                    if idx + 1 < len(members)
                    else netlist.die.xhi
                )
                lo = left + w / 2
                hi = right - w / 2
                if hi <= lo:
                    continue
                target = np.clip(_median_target(netlist, oracle, cell), lo, hi)
                # snap left edge to sites, keep inside the slack
                x_left = round((target - w / 2) / sw) * sw
                x_new = np.clip(x_left + w / 2, lo, hi)
                x_left = np.floor((x_new - w / 2) / sw + 0.5) * sw
                x_new = x_left + w / 2
                if not lo - 1e-9 <= x_new <= hi + 1e-9:
                    continue
                if abs(x_new - netlist.x[cell]) < 1e-12:
                    continue
                if congested(x_new, netlist.y[cell]):
                    continue
                if oracle.delta_for_move(cell, x_new, netlist.y[cell]) < -1e-12:
                    netlist.x[cell] = x_new
                    shifts += 1

            # swap pass: adjacent equal-width cells
            for idx in range(len(members) - 1):
                a, b = members[idx], members[idx + 1]
                if a in frozen or b in frozen:
                    continue
                if abs(netlist.cell_width[a] - netlist.cell_width[b]) > 1e-9:
                    continue
                if congested(netlist.x[b], netlist.y[b]) or congested(
                    netlist.x[a], netlist.y[a]
                ):
                    continue
                if oracle.delta_for_swap(a, b) < -1e-12:
                    netlist.x[a], netlist.x[b] = netlist.x[b], netlist.x[a]
                    members[idx], members[idx + 1] = b, a
                    swaps += 1

    after = hpwl(netlist)
    logger.info(
        "detailed placement: %d shifts, %d swaps, hpwl %.4e -> %.4e",
        shifts,
        swaps,
        before,
        after,
    )
    return DetailStats(
        passes=passes,
        shifts_applied=shifts,
        swaps_applied=swaps,
        hpwl_before=before,
        hpwl_after=after,
    )

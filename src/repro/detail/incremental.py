"""Incremental HPWL evaluation for local moves.

Detailed placement evaluates thousands of candidate moves; recomputing
the whole-design HPWL each time would dominate runtime.
:class:`IncrementalWirelength` re-evaluates only the nets incident to
the cells that moved.

Degenerate nets
---------------
Nets with fewer than two pins have **zero** HPWL by definition, in both
this oracle (:meth:`IncrementalWirelength.nets_hpwl` skips them) and the
full-design evaluator (:func:`repro.wirelength.hpwl.hpwl_per_net` masks
``degrees < 2`` to ``0.0``).  The two evaluators therefore agree exactly
on every netlist, including ones with floating pins or single-pin stub
nets, and ``delta_for_move`` equals the full-recompute HPWL delta (a
property test in ``tests/test_detail.py`` pins this down).
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


class IncrementalWirelength:
    """HPWL oracle with per-net re-evaluation."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist

    def nets_of_cells(self, cell_ids) -> np.ndarray:
        """Unique net ids incident to the given cells."""
        nl = self.netlist
        pin_lists = [nl.cell_pins(c) for c in np.atleast_1d(cell_ids)]
        if not pin_lists:
            return np.zeros(0, dtype=np.int64)
        pins = np.concatenate(pin_lists)
        if len(pins) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(nl.pin_net[pins])

    def nets_hpwl(self, net_ids: np.ndarray) -> float:
        """Total HPWL of the given nets at current positions.

        Degree-<2 nets contribute ``0.0``, matching
        :func:`repro.wirelength.hpwl.hpwl_per_net` (see module docstring).
        """
        nl = self.netlist
        total = 0.0
        for e in net_ids:
            pins = nl.net_pins(int(e))
            if len(pins) < 2:
                continue
            px = nl.x[nl.pin_cell[pins]] + nl.pin_offset_x[pins]
            py = nl.y[nl.pin_cell[pins]] + nl.pin_offset_y[pins]
            total += (px.max() - px.min()) + (py.max() - py.min())
        return total

    def delta_for_move(self, cell_id: int, new_x: float, new_y: float) -> float:
        """HPWL change if ``cell_id`` moved to ``(new_x, new_y)``.

        The trial position is applied in place and restored under
        ``finally``: even if the evaluation raises (e.g. a contracts
        ``raise``-mode violation), the netlist is left exactly as found.
        """
        nl = self.netlist
        nets = self.nets_of_cells([cell_id])
        before = self.nets_hpwl(nets)
        old = (nl.x[cell_id], nl.y[cell_id])
        nl.x[cell_id], nl.y[cell_id] = new_x, new_y
        try:
            after = self.nets_hpwl(nets)
        finally:
            nl.x[cell_id], nl.y[cell_id] = old
        return after - before

    def delta_for_swap(self, a: int, b: int) -> float:
        """HPWL change if cells ``a`` and ``b`` exchanged positions.

        Like :meth:`delta_for_move`, the trial swap is restored under
        ``finally`` so a mid-evaluation exception cannot corrupt the
        netlist.
        """
        nl = self.netlist
        nets = self.nets_of_cells([a, b])
        before = self.nets_hpwl(nets)
        ax, ay, bx, by = nl.x[a], nl.y[a], nl.x[b], nl.y[b]
        nl.x[a], nl.y[a], nl.x[b], nl.y[b] = bx, by, ax, ay
        try:
            after = self.nets_hpwl(nets)
        finally:
            nl.x[a], nl.y[a], nl.x[b], nl.y[b] = ax, ay, bx, by
        return after - before

"""Reproduction of "Differentiable Net-Moving and Local Congestion
Mitigation for Routability-Driven Global Placement" (DAC 2025).

Layered packages, substrate to frontend: ``utils``/``geometry`` ->
``netlist``/``io``/``synth`` -> ``wirelength``/``density`` -> ``optim``
-> ``place`` -> ``route`` -> ``core`` (the paper's techniques) ->
``legalize``/``detail`` -> ``evalrt``/``baselines``/``bench`` ->
``cli``/``viz``.  See ``docs/architecture.md`` for the module map,
the RD-loop data flow and the paper <-> code cross-reference.
"""

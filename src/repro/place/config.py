"""Configuration for the analytical global placer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.guards import GuardConfig


@dataclass
class GPConfig:
    """Knobs of the electrostatic global placement engine.

    Attributes
    ----------
    grid_nx, grid_ny:
        Bin grid dimensions; 0 means choose automatically from the
        design size (a power of two near ``sqrt(n_cells)``, clamped to
        [16, 256]).  The paper maps G-cells and bins one-to-one
        (Sec. II-B), so the routing grid reuses these dimensions.
    target_density:
        Maximum allowed bin occupancy ``D_b``.
    gamma0:
        WA smoothness base factor (scaled by bin size).
    max_iters:
        Iteration cap for one placement run.
    stop_overflow:
        Convergence threshold on the density overflow ratio.
    density_force_cap:
        Upper clamp on the density-to-wirelength force ratio used by
        the per-iteration force balancing.
    use_fillers:
        Insert filler cells to occupy whitespace (standard for
        electrostatic placers; required for proper spreading).
    optimizer:
        ``"nesterov"`` (ePlace solver, default) or ``"adam"``.
    initial_move_fraction:
        First-step displacement target, as a fraction of a bin.
    seed:
        RNG seed for initial placement jitter and filler scatter.
    guard:
        Divergence/NaN sentinel policy shared by the solver and the
        placement loop (see :class:`repro.utils.guards.GuardConfig`).
    """

    grid_nx: int = 0
    grid_ny: int = 0
    target_density: float = 0.9
    gamma0: float = 0.5
    max_iters: int = 1000
    stop_overflow: float = 0.07
    density_force_cap: float = 100.0
    use_fillers: bool = True
    optimizer: str = "nesterov"
    initial_move_fraction: float = 0.1
    seed: int = 0
    verbose: bool = False
    guard: GuardConfig = field(default_factory=GuardConfig)

    def __post_init__(self) -> None:
        if self.optimizer not in ("nesterov", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if not 0.0 < self.target_density <= 1.0 + 1e-9:
            raise ValueError("target_density must be in (0, 1]")
        if self.max_iters < 1:
            raise ValueError("max_iters must be >= 1")


def auto_grid_dim(n_cells: int) -> int:
    """Power-of-two grid dimension adapted to the design size."""
    import math

    approx = int(math.sqrt(max(n_cells, 1)))
    dim = 16
    while dim < approx and dim < 256:
        dim *= 2
    return dim

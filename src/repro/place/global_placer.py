"""Wirelength-driven electrostatic global placer (Xplace/ePlace stand-in).

Solves Eq. (2) of the paper::

    min_{x,y}  sum_e WA_e(x, y) + lambda_1 * D(x, y)

with the WA wirelength model, the FFT-based electrostatic density
penalty and Nesterov's solver.  Three extension hooks let the
routability-driven placer of :mod:`repro.core.rd_placer` turn this into
the full Eq. (5) engine without duplicating the machinery:

* ``size_scale`` — per-cell multiplicative inflation of the footprint
  used in the *density* system only (momentum-based cell inflation);
* ``extra_static_charge`` — an additional charge map added to the
  density (dynamic PG-rail density of Eq. 14);
* ``extra_grad_fn`` — a callback returning an additional per-cell
  gradient, already weighted (the lambda_2-scaled congestion gradient
  of Alg. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.density.electrostatic import ElectrostaticSystem, FieldSolution
from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.optim.adam import AdamOptimizer
from repro.optim.nesterov import NesterovOptimizer
from repro.place.config import GPConfig, auto_grid_dim
from repro.place.initial import initial_placement, scatter_fillers
from repro.utils import heartbeat
from repro.utils.contracts import CONTRACTS
from repro.utils.guards import (
    DivergenceSentinel,
    GuardEvent,
    GuardLog,
    NumericalFault,
    scrub_nonfinite,
)
from repro.utils.logging import get_logger
from repro.utils.metrics import NULL
from repro.utils.profile import StageProfiler
from repro.wirelength.hpwl import hpwl
from repro.wirelength.wa import WAWirelength

logger = get_logger("place.global_placer")


@dataclass
class PlacementHistory:
    """Per-iteration metric trace of one placement run."""

    records: list = field(default_factory=list)

    def append(self, **kwargs) -> None:
        """Record one iteration's metrics."""
        self.records.append(dict(kwargs))

    def series(self, key: str) -> list:
        """Trajectory of one recorded metric across iterations."""
        return [r[key] for r in self.records]

    @property
    def final(self) -> dict:
        """The last record (empty dict before the first iteration)."""
        return self.records[-1] if self.records else {}

    def __len__(self) -> int:
        return len(self.records)


class GlobalPlacer:
    """Electrostatic analytical placer over a :class:`Netlist`.

    Mutates ``netlist.x`` / ``netlist.y`` in place; :meth:`run` returns
    the metric history.
    """

    # reference relative HPWL growth per iteration for the mu feedback
    _MU_REF_DELTA = 2e-3

    def __init__(
        self,
        netlist: Netlist,
        config: GPConfig | None = None,
        profiler: StageProfiler | None = None,
        metrics=None,
    ) -> None:
        self.netlist = netlist
        self.config = config or GPConfig()
        self.profiler = profiler or StageProfiler()
        self.metrics = metrics if metrics is not None else NULL
        cfg = self.config

        nx = cfg.grid_nx or auto_grid_dim(netlist.n_cells)
        ny = cfg.grid_ny or auto_grid_dim(netlist.n_cells)
        self.grid = Grid2D(netlist.die, nx, ny)

        mv = netlist.movable
        self.mv_ids = np.flatnonzero(mv)
        self.n_mv = len(self.mv_ids)

        fixed_ids = np.flatnonzero(~mv)
        if len(fixed_ids):
            self.fixed_charge = ElectrostaticSystem.static_charge_from(
                self.grid,
                netlist.x[fixed_ids],
                netlist.y[fixed_ids],
                netlist.cell_width[fixed_ids],
                netlist.cell_height[fixed_ids],
            )
        else:
            self.fixed_charge = self.grid.zeros()

        if cfg.use_fillers:
            fx, fy, fw, fh = scatter_fillers(netlist, cfg.target_density, cfg.seed)
        else:
            fx = fy = fw = fh = np.zeros(0)
        self.filler_x, self.filler_y = fx.copy(), fy.copy()
        self.filler_w, self.filler_h = fw, fh
        self.n_fill = len(fx)

        self.system = ElectrostaticSystem(
            self.grid, cfg.target_density, static_charge=self.fixed_charge
        )
        base_unit = 0.5 * (self.grid.dx + self.grid.dy)
        self.wa = WAWirelength(base_unit=base_unit, gamma0=cfg.gamma0)

        # extension hooks (see module docstring)
        self.size_scale = np.ones(netlist.n_cells, dtype=np.float64)
        self.extra_static_charge: np.ndarray | None = None
        self.extra_grad_fn: Callable[[], tuple[np.ndarray, np.ndarray]] | None = None

        self.density_weight = 0.0  # lambda_1, initialised on first gradient
        self._prev_hpwl: float | None = None
        self.last_solution: FieldSolution | None = None
        self.last_wl_grad_l1 = 0.0
        self.last_density_grad_l1 = 0.0
        self.history = PlacementHistory()
        self._optimizer = None

        # divergence guard: rolling HPWL watchdog plus the last known
        # healthy parameter vector the loop can roll back to
        self.guard_log = GuardLog()
        self._sentinel = DivergenceSentinel(cfg.guard)
        self._last_good: np.ndarray | None = None

    # ------------------------------------------------------------------
    # parameter vector packing: [x_cells, x_fill, y_cells, y_fill]
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Movable cells plus fillers — the optimization vector length."""
        return self.n_mv + self.n_fill

    def _pack(self) -> np.ndarray:
        nl = self.netlist
        return np.concatenate(
            [
                nl.x[self.mv_ids],
                self.filler_x,
                nl.y[self.mv_ids],
                self.filler_y,
            ]
        )

    def _unpack(self, pos: np.ndarray) -> None:
        n, m = self.n_mv, self.n_fill
        nl = self.netlist
        nl.x[self.mv_ids] = pos[:n]
        self.filler_x = pos[n : n + m]
        nl.y[self.mv_ids] = pos[n + m : 2 * n + m]
        self.filler_y = pos[2 * n + m :]
        self._clamp_entries()

    def _clamp_entries(self) -> None:
        self.netlist.clamp_to_die()
        if self.n_fill:
            die = self.netlist.die
            np.clip(
                self.filler_x,
                die.xlo + self.filler_w / 2,
                die.xhi - self.filler_w / 2,
                out=self.filler_x,
            )
            np.clip(
                self.filler_y,
                die.ylo + self.filler_h / 2,
                die.yhi - self.filler_h / 2,
                out=self.filler_y,
            )

    # ------------------------------------------------------------------
    # objective pieces
    # ------------------------------------------------------------------
    def _filler_compensation(self, inflated_area: float) -> float:
        """Shrink factor for filler dimensions.

        Inflation and extra static charge (PG density) add charge the
        die was not budgeted for; without compensation the total charge
        exceeds the target capacity and the overflow can never resolve.
        Fillers give that budget back: their total area is reduced by
        the surplus (standard practice when placers inflate cells).
        """
        base_filler_area = float((self.filler_w * self.filler_h).sum())
        if base_filler_area <= 0.0:
            return 1.0
        base_movable = float(
            (
                self.netlist.cell_width[self.mv_ids]
                * self.netlist.cell_height[self.mv_ids]
            ).sum()
        )
        surplus = inflated_area - base_movable
        if self.extra_static_charge is not None:
            surplus += float(self.extra_static_charge.sum())
        remaining = max(base_filler_area - max(surplus, 0.0), 0.0)
        return float(np.sqrt(remaining / base_filler_area))

    def _entry_geometry(self):
        """Positions and (inflated) sizes of all density participants."""
        nl = self.netlist
        ids = self.mv_ids
        w = nl.cell_width[ids] * self.size_scale[ids]
        h = nl.cell_height[ids] * self.size_scale[ids]
        shrink = self._filler_compensation(float((w * h).sum()))
        x = np.concatenate([nl.x[ids], self.filler_x])
        y = np.concatenate([nl.y[ids], self.filler_y])
        w = np.concatenate([w, self.filler_w * shrink])
        h = np.concatenate([h, self.filler_h * shrink])
        return x, y, w, h

    def solve_density(self) -> FieldSolution:
        """One electrostatic solve at the current positions."""
        self.system.static_charge = (
            self.fixed_charge
            if self.extra_static_charge is None
            else self.fixed_charge + self.extra_static_charge
        )
        with self.profiler.timer("gp.poisson"):
            sol = self.system.solve(*self._entry_geometry())
        self.last_solution = sol
        return sol

    def _gradient(self, pos: np.ndarray) -> np.ndarray:
        self._unpack(pos)
        nl = self.netlist
        n, m = self.n_mv, self.n_fill

        with self.profiler.timer("gp.wirelength"):
            _, wl_gx, wl_gy = self.wa(nl)
        self.last_wl_grad_l1 = float(
            np.abs(wl_gx[self.mv_ids]).sum() + np.abs(wl_gy[self.mv_ids]).sum()
        )
        sol = self.solve_density()

        d_l1 = float(np.abs(sol.grad_x).sum() + np.abs(sol.grad_y).sum())
        self.last_density_grad_l1 = d_l1
        if self.density_weight == 0.0:
            # ePlace initialisation: equal L1 force norms
            self.density_weight = self.last_wl_grad_l1 / max(d_l1, 1e-12)
        else:
            # never let the density force exceed cap x the wirelength
            # force (numerical guard; the mu feedback in run() is the
            # real controller)
            ratio_unit = self.last_wl_grad_l1 / max(d_l1, 1e-12)
            cap = self.config.density_force_cap * ratio_unit
            self.density_weight = min(self.density_weight, cap)
            # ...and never let it collapse while the placement is far
            # from legal: repeated mu-shrinks can trap the trajectory
            # in a clump/spread limit cycle where cells pile up 10x
            # over capacity yet the wirelength term dominates forever
            if sol.overflow > 0.4:
                self.density_weight = max(self.density_weight, ratio_unit)
        if CONTRACTS.enabled:
            CONTRACTS.check_finite_scalar(
                "global_placer.gradient",
                "density_weight",
                self.density_weight,
                nonneg=True,
            )

        gx = np.zeros(n + m)
        gy = np.zeros(n + m)
        gx += self.density_weight * sol.grad_x
        gy += self.density_weight * sol.grad_y
        gx[:n] += wl_gx[self.mv_ids]
        gy[:n] += wl_gy[self.mv_ids]

        if self.extra_grad_fn is not None:
            with self.profiler.timer("gp.congestion_grad"):
                cgx, cgy = self.extra_grad_fn()
            gx[:n] += cgx[self.mv_ids]
            gy[:n] += cgy[self.mv_ids]

        return np.concatenate([gx, gy])

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _make_optimizer(self) -> None:
        pos0 = self._pack()
        g0 = self._gradient(pos0)
        gmax = float(np.abs(g0).max())
        bin_unit = 0.5 * (self.grid.dx + self.grid.dy)
        step0 = self.config.initial_move_fraction * bin_unit / max(gmax, 1e-12)
        if self.config.optimizer == "nesterov":
            self._optimizer = NesterovOptimizer(
                pos0,
                self._gradient,
                initial_step=step0,
                max_move=1.0 * bin_unit,
                guard=self.config.guard,
            )
            # one shared log: optimizer-level gradient trips and
            # placement-level divergence trips read as one stream
            self._optimizer.guard_log = self.guard_log
        else:
            self._optimizer = AdamOptimizer(pos0, self._gradient, lr=0.5 * bin_unit)

    def prepare(self, reinitialize_positions: bool = False) -> None:
        """Build the optimizer (optionally re-centering cells first)."""
        if reinitialize_positions:
            initial_placement(self.netlist, self.config.seed)
        if self._optimizer is None:
            self._make_optimizer()

    def reset_solver(self) -> None:
        """Restart after the objective landscape changed.

        Clears Nesterov momentum and re-initialises the density weight
        at the current point (inflation, PG charge or congestion
        gradients shift the force balance, so the old lambda_1 and the
        old momentum direction are both stale).
        """
        if isinstance(self._optimizer, NesterovOptimizer):
            self._optimizer.reset_momentum()
        self.density_weight = 0.0
        self._prev_hpwl = None
        self._sentinel.reset()

    def run(self, max_iters: int | None = None, min_iters: int = 10) -> PlacementHistory:
        """Iterate until the overflow target or the iteration cap.

        Can be called repeatedly (e.g. once per routability round);
        state persists across calls.
        """
        cfg = self.config
        self.prepare()
        iters = max_iters if max_iters is not None else cfg.max_iters

        consecutive_trips = 0
        for it in range(iters):
            # supervised-job progress marker (one attribute read when
            # unsupervised); a hung solver iteration stops beating
            heartbeat.beat()
            # inclusive of gp.wirelength / gp.poisson / gp.congestion_grad
            try:
                with self.profiler.timer("gp.step"):
                    info = self._optimizer.do_step()
            except NumericalFault as exc:
                consecutive_trips += 1
                self._recover_from_trip("exception", str(exc))
                if consecutive_trips > cfg.guard.max_backoffs:
                    break
                continue
            # project both optimizer points back into the die (clamp
            # happens inside _unpack); without projecting the reference
            # point v, the momentum extrapolation diverges when cells
            # press against the boundary.  u is projected last so the
            # netlist state reflects the major point.
            if isinstance(self._optimizer, NesterovOptimizer):
                self._unpack(self._optimizer.v)
                self._optimizer.v = self._pack()
            self._unpack(self._optimizer.u)
            self._optimizer.u = self._pack()

            sol = self.last_solution
            overflow = sol.overflow if sol is not None else 1.0
            cur_hpwl = hpwl(self.netlist)
            verdict = self._sentinel.observe(cur_hpwl)
            if cfg.guard.enabled and verdict != "ok":
                consecutive_trips += 1
                self._recover_from_trip(
                    verdict,
                    f"hpwl={cur_hpwl:.4e} vs baseline "
                    f"{self._sentinel.baseline:.4e}",
                )
                if consecutive_trips > cfg.guard.max_backoffs:
                    break
                continue
            consecutive_trips = 0
            self._last_good = self._optimizer.u.copy()
            self.wa.update_gamma(overflow)
            self._update_mu(cur_hpwl)
            self.history.append(
                hpwl=cur_hpwl,
                overflow=overflow,
                energy=sol.energy if sol else 0.0,
                step=info["step"],
                grad_norm=info["grad_norm"],
                density_weight=self.density_weight,
            )
            # disabled telemetry must stay off the hot path: one
            # attribute read, no dict building
            if self.metrics.enabled:
                self.metrics.emit(
                    "gp.iter",
                    iter=len(self.history),
                    hpwl=cur_hpwl,
                    overflow=overflow,
                    density_weight=self.density_weight,
                    step=info["step"],
                    grad_norm=info["grad_norm"],
                )
            if cfg.verbose and it % 20 == 0:
                logger.warning(
                    "iter %4d  hpwl %.4e  ovfl %.4f  lambda %.3e",
                    it,
                    cur_hpwl,
                    overflow,
                    self.density_weight,
                )
            if it >= min_iters and overflow <= cfg.stop_overflow:
                break
        self._unpack(self._optimizer.u)
        return self.history


    def run_to_convergence(
        self,
        max_restarts: int = 30,
        restart_iters: int = 50,
        hpwl_tol: float = 0.005,
        patience: int = 2,
    ) -> PlacementHistory:
        """Run, then iterate short rebalanced bursts until stable.

        A single long Nesterov trajectory lets the mu feedback drift
        the wirelength/density balance; short bursts with a weight
        re-initialisation (equal force norms) and a momentum restart
        between them descend much further.  Bursts stop after
        ``patience`` consecutive rounds with relative HPWL change
        below ``hpwl_tol``.
        """
        self.run()
        prev = self.hpwl()
        stable = 0
        for _ in range(max_restarts):
            self.reset_solver()
            # run the full burst: stopping early at the overflow
            # target would hide wirelength still on the table
            self.run(max_iters=restart_iters, min_iters=restart_iters)
            cur = self.hpwl()
            if prev > 0 and abs(prev - cur) / prev < hpwl_tol:
                stable += 1
                if stable >= patience:
                    break
            else:
                stable = 0
            prev = cur
        return self.history

    def run_bursts(self, n_bursts: int, burst_iters: int = 50) -> None:
        """Short rebalanced bursts: reset + fixed-length run, repeated."""
        for _ in range(n_bursts):
            self.reset_solver()
            self.run(max_iters=burst_iters, min_iters=burst_iters)

    def _recover_from_trip(self, kind: str, detail: str) -> None:
        """Roll the solver back to the last healthy point and back off.

        Used when an iteration produced a non-finite or blown-up HPWL
        (or the optimizer exhausted its own gradient backoffs): the
        major point is restored to the last iterate the sentinel
        accepted, momentum is cleared, the step length is shrunk and
        the force balance re-initialised, so the next iteration
        descends again from known-good coordinates instead of
        propagating garbage.
        """
        self.guard_log.record(
            GuardEvent(
                site="gp.run",
                kind=kind,
                iteration=len(self.history),
                detail=detail,
                action="rollback",
            )
        )
        self.profiler.count("gp.guard_trips")
        if self.metrics.enabled:
            self.metrics.inc("gp.guard_trips")
            self.metrics.emit(
                "gp.guard", iter=len(self.history), guard=kind, detail=detail
            )
        logger.warning("divergence guard tripped (%s): %s", kind, detail)
        opt = self._optimizer
        if self._last_good is not None:
            opt.u = self._last_good.copy()
        else:
            scrub_nonfinite(opt.u)
        if isinstance(opt, NesterovOptimizer):
            opt._backoff()  # clears momentum, v <- u, shrinks step
        self._unpack(opt.u)
        opt.u = self._pack()
        opt.v = opt.u.copy()
        self.density_weight = 0.0
        self._prev_hpwl = None
        self._sentinel.reset()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable snapshot of the placer's mutable state.

        Together with the netlist positions (owned by the caller) this
        captures everything :meth:`run` reads across iterations, so a
        placer reconstructed from the same config + netlist and fed
        this state continues bit-identically.
        """
        return {
            "filler_x": self.filler_x.copy(),
            "filler_y": self.filler_y.copy(),
            "size_scale": self.size_scale.copy(),
            "extra_static_charge": (
                None
                if self.extra_static_charge is None
                else self.extra_static_charge.copy()
            ),
            "density_weight": self.density_weight,
            "prev_hpwl": self._prev_hpwl,
            "wa_gamma": self.wa.gamma,
            "optimizer": (
                None if self._optimizer is None else self._optimizer.state_dict()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Rebuilds the optimizer directly from the serialized vectors
        (no extra gradient evaluation, so no side effects that would
        diverge from an uninterrupted run).
        """
        self.filler_x = np.array(state["filler_x"], dtype=np.float64, copy=True)
        self.filler_y = np.array(state["filler_y"], dtype=np.float64, copy=True)
        self.size_scale = np.array(state["size_scale"], dtype=np.float64, copy=True)
        extra = state.get("extra_static_charge")
        self.extra_static_charge = (
            None if extra is None else np.array(extra, dtype=np.float64, copy=True)
        )
        self.density_weight = float(state["density_weight"])
        prev = state.get("prev_hpwl")
        self._prev_hpwl = None if prev is None else float(prev)
        self.wa.gamma = float(state["wa_gamma"])
        opt_state = state.get("optimizer")
        if opt_state is None:
            self._optimizer = None
        else:
            bin_unit = 0.5 * (self.grid.dx + self.grid.dy)
            if self.config.optimizer == "nesterov":
                opt = NesterovOptimizer(
                    opt_state["u"],
                    self._gradient,
                    initial_step=float(opt_state["step"]),
                    max_move=1.0 * bin_unit,
                    guard=self.config.guard,
                )
                opt.guard_log = self.guard_log
            else:
                opt = AdamOptimizer(opt_state["u"], self._gradient, lr=0.5 * bin_unit)
            opt.load_state_dict(opt_state)
            self._optimizer = opt
        self._last_good = None
        self._sentinel.reset()

    def _update_mu(self, cur_hpwl: float) -> None:
        """ePlace lambda feedback: ``mu = 1.1^(1 - dHPWL/ref)``.

        When HPWL holds or improves, the density weight grows by up to
        1.1x; when it degrades faster than the reference rate the
        weight *shrinks* (down to 0.75x), handing force back to
        wirelength.  This bidirectional control is what keeps the
        trajectory near the Pareto front instead of running away into
        pure spreading.
        """
        if self._prev_hpwl is not None and self._prev_hpwl > 0:
            delta_rel = (cur_hpwl - self._prev_hpwl) / self._prev_hpwl
            mu = 1.1 ** (1.0 - delta_rel / self._MU_REF_DELTA)
            mu = float(np.clip(mu, 0.75, 1.1))
            self.density_weight *= mu
        self._prev_hpwl = cur_hpwl

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def overflow(self) -> float:
        """Current density overflow (solves the density system)."""
        sol = self.solve_density()
        return sol.overflow

    def hpwl(self) -> float:
        """Current half-perimeter wirelength of the netlist."""
        return hpwl(self.netlist)


def converge_placement(
    netlist: Netlist,
    config: GPConfig | None = None,
    max_batches: int = 8,
    bursts_per_batch: int = 8,
    burst_iters: int = 50,
    hpwl_tol: float = 0.01,
    profiler: StageProfiler | None = None,
    metrics=None,
) -> int:
    """Drive a wirelength-driven GP to its practical fixed point.

    One long run alone leaves substantial wirelength on the table: the
    gamma/lambda trajectories drift and Nesterov momentum goes stale.
    Re-instantiating the placer (fresh gamma annealing, fresh filler
    scatter, fresh step estimate) and running short rebalanced bursts
    recovers it.  Batches of such bursts repeat, each from a brand-new
    placer instance, until the HPWL change between batches falls below
    ``hpwl_tol``.  Returns the total iteration count.

    This is the placement every benchmark flow starts from, so the
    routability techniques are measured against a *converged* baseline
    rather than against leftover optimization slack.
    """
    cfg = config or GPConfig()
    prev: float | None = None
    total = 0
    for batch in range(max_batches):
        placer = GlobalPlacer(netlist, cfg, profiler=profiler, metrics=metrics)
        if batch == 0:
            placer.run()
        placer.run_bursts(bursts_per_batch, burst_iters)
        total += len(placer.history)
        cur = hpwl(netlist)
        if prev is not None and prev > 0 and abs(prev - cur) / prev < hpwl_tol:
            break
        prev = cur
    return total

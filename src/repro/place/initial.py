"""Initial placement and filler-cell generation.

The flow of Fig. 2 starts from a wirelength-driven placement whose own
starting point is the classic analytical-placer initialisation: movable
cells gathered near the die center (with a small jitter to break
symmetry) so the quadratic-like early iterations can spread them under
the density force.  Filler cells, which represent whitespace so the
electrostatic system can reach a uniform target density, are scattered
uniformly over the free area.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.rng import make_rng


def initial_placement(netlist: Netlist, seed: int = 0, spread: float = 0.05) -> None:
    """Move all movable cells near the die center, in place.

    Parameters
    ----------
    spread:
        Standard deviation of the jitter as a fraction of die extent.
    """
    rng = make_rng(seed)
    mv = netlist.movable
    n = int(mv.sum())
    if n == 0:
        return
    cx, cy = netlist.die.center
    netlist.x[mv] = cx + rng.normal(0.0, spread * netlist.die.width, n)
    netlist.y[mv] = cy + rng.normal(0.0, spread * netlist.die.height, n)
    netlist.clamp_to_die()


def scatter_fillers(
    netlist: Netlist,
    target_density: float,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Create filler cells filling the whitespace budget.

    Total filler area is ``free_area * target_density - movable_area``
    where free area excludes fixed cells.  Fillers get the average
    movable standard-cell footprint and uniform random positions.

    Returns ``(x, y, w, h)`` arrays (possibly empty).
    """
    rng = make_rng(seed + 7919)
    mv = netlist.movable
    std = mv & ~netlist.cell_macro
    fixed_area = float(netlist.cell_area[~mv].sum())
    movable_area = float(netlist.cell_area[mv].sum())
    free_area = max(netlist.die.area - fixed_area, 0.0)
    filler_budget = free_area * target_density - movable_area
    if filler_budget <= 0.0:
        z = np.zeros(0, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()

    if std.any():
        fw = float(np.mean(netlist.cell_width[std]))
        fh = float(np.mean(netlist.cell_height[std]))
    else:
        fh = netlist.row_height
        fw = 2.0 * netlist.site_width
    unit = max(fw * fh, 1e-12)
    count = int(np.floor(filler_budget / unit))
    if count == 0:
        z = np.zeros(0, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()

    die = netlist.die
    x = rng.uniform(die.xlo + fw / 2, die.xhi - fw / 2, count)
    y = rng.uniform(die.ylo + fh / 2, die.yhi - fh / 2, count)
    w = np.full(count, fw)
    h = np.full(count, fh)
    return x, y, w, h

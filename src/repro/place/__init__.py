"""Analytical global placement engines.

:class:`GlobalPlacer` is the wirelength-driven electrostatic placer
(the Xplace [16] stand-in of Eq. 2).  It exposes the extension hooks —
per-cell size inflation, extra static density charge, and an extra
gradient term — through which the routability-driven placer of
:mod:`repro.core` injects the paper's three techniques.
"""

from repro.place.config import GPConfig
from repro.place.initial import initial_placement, scatter_fillers
from repro.place.global_placer import (
    GlobalPlacer,
    PlacementHistory,
    converge_placement,
)

__all__ = [
    "GPConfig",
    "initial_placement",
    "scatter_fillers",
    "GlobalPlacer",
    "PlacementHistory",
    "converge_placement",
]

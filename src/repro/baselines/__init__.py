"""Comparison placers and flow runners.

Three complete place-legalize-refine flows mirror the three columns of
Table I:

* :func:`run_xplace` — wirelength-driven only (Xplace [16]);
* :func:`run_xplace_route` — routability via present-congestion cell
  inflation and a static pre-placement PG-rail density (the
  Xplace-Route [8] recipe the paper compares against);
* :func:`run_ours` — the paper's framework (MCI + DC + DPA).

:func:`ablation_config` produces the four Table II configurations.
"""

from repro.baselines.flows import (
    FlowResult,
    GPSeed,
    ablation_config,
    make_gp_seed,
    run_flow,
    run_ours,
    run_xplace,
    run_xplace_route,
    xplace_route_config,
)

__all__ = [
    "FlowResult",
    "GPSeed",
    "ablation_config",
    "make_gp_seed",
    "run_flow",
    "run_ours",
    "run_xplace",
    "run_xplace_route",
    "xplace_route_config",
]

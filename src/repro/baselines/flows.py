"""Complete placement flows: global place -> legalize -> detailed place.

Each flow mutates a *copy* of the input netlist and reports its
placement wall time (the PT column of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.rd_placer import RDConfig, RDResult, RoutabilityDrivenPlacer
from repro.detail.refine import DetailStats, detailed_place
from repro.legalize.api import LegalizeStats, legalize
from repro.netlist.netlist import Netlist
from repro.place.config import GPConfig
from repro.place.global_placer import converge_placement
from repro.place.initial import initial_placement
from repro.utils.profile import StageProfiler
from repro.utils.timer import Timer


@dataclass
class FlowResult:
    """A finished placement plus provenance."""

    name: str
    netlist: Netlist
    placement_time: float
    legalize_stats: LegalizeStats
    detail_stats: DetailStats
    rd_result: RDResult | None = None
    profile: dict = field(default_factory=dict)


@dataclass
class GPSeed:
    """A shared wirelength-driven global placement.

    The paper's flow (Fig. 2) obtains one Xplace placement and feeds
    it to the routability stage; benchmarks share a single seed across
    all compared placers so differences come from the routability
    techniques, not from separately-run initial placements.
    """

    netlist: Netlist
    time: float


def make_gp_seed(
    netlist: Netlist,
    gp_config: GPConfig | None = None,
    metrics=None,
) -> GPSeed:
    """Run the wirelength-driven GP once, for all flows to start from."""
    nl = netlist.copy()
    timer = Timer().start()
    initial_placement(nl, (gp_config or GPConfig()).seed)
    converge_placement(nl, gp_config, metrics=metrics)
    timer.stop()
    return GPSeed(netlist=nl, time=timer.elapsed)


def run_xplace(
    netlist: Netlist,
    gp_config: GPConfig | None = None,
    seed_gp: GPSeed | None = None,
) -> FlowResult:
    """Wirelength-driven flow (no routability optimization)."""
    if seed_gp is None:
        seed_gp = make_gp_seed(netlist, gp_config)
    nl = seed_gp.netlist.copy()
    timer = Timer().start()
    profiler = StageProfiler()
    with profiler.timer("flow.legalize"):
        lstats = legalize(nl)
    with profiler.timer("flow.detail"):
        dstats = detailed_place(nl, passes=2)
    timer.stop()
    return FlowResult(
        name="Xplace",
        netlist=nl,
        placement_time=seed_gp.time + timer.elapsed,
        legalize_stats=lstats,
        detail_stats=dstats,
        profile=profiler.as_dict(),
    )


def run_flow(
    name: str,
    netlist: Netlist,
    rd_config: RDConfig,
    seed_gp: GPSeed | None = None,
    metrics=None,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> FlowResult:
    """Routability-driven flow with an arbitrary :class:`RDConfig`.

    ``checkpoint_path``/``resume`` pass straight through to
    :meth:`RoutabilityDrivenPlacer.run` — a supervised retry resumes
    the routability loop from its last atomic checkpoint instead of
    recomputing finished rounds.
    """
    seed_time = 0.0
    if seed_gp is not None:
        nl = seed_gp.netlist.copy()
        seed_time = seed_gp.time
    else:
        nl = netlist.copy()
    timer = Timer().start()
    profiler = StageProfiler()
    placer = RoutabilityDrivenPlacer(
        nl, rd_config, profiler=profiler, metrics=metrics
    )
    rd_result = placer.run(
        skip_initial_gp=seed_gp is not None,
        checkpoint_path=checkpoint_path,
        resume=resume,
    )
    with profiler.timer("flow.legalize"):
        lstats = legalize(nl)
    # congestion-aware detailed placement: do not move cells into the
    # G-cells the final routing pass reports as congested
    with profiler.timer("flow.detail"):
        dstats = detailed_place(
            nl,
            passes=2,
            grid=placer.gp.grid,
            congestion=rd_result.final_routing.congestion_map,
        )
    timer.stop()
    return FlowResult(
        name=name,
        netlist=nl,
        placement_time=seed_time + timer.elapsed,
        legalize_stats=lstats,
        detail_stats=dstats,
        rd_result=rd_result,
        profile=profiler.as_dict(),
    )


def xplace_route_config(base: RDConfig | None = None) -> RDConfig:
    """Xplace-Route [8] recipe: present-congestion inflation, static
    PG density, no differentiable congestion term."""
    cfg = base or RDConfig()
    return replace(
        cfg, inflation_mode="present", pg_mode="static", enable_dc=False
    )


def ablation_config(
    mci: bool, dc: bool, dpa: bool, base: RDConfig | None = None
) -> RDConfig:
    """One Table II row.

    Row (-,-,-) equals the Xplace-Route recipe; each flag upgrades one
    technique to the paper's version.
    """
    cfg = base or RDConfig()
    return replace(
        cfg,
        inflation_mode="momentum" if mci else "present",
        pg_mode="dynamic" if dpa else "static",
        enable_dc=dc,
    )


def run_xplace_route(
    netlist: Netlist,
    base: RDConfig | None = None,
    seed_gp: GPSeed | None = None,
    metrics=None,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> FlowResult:
    """The leading routability-driven baseline of Table I."""
    return run_flow(
        "Xplace-Route", netlist, xplace_route_config(base), seed_gp, metrics,
        checkpoint_path=checkpoint_path, resume=resume,
    )


def run_ours(
    netlist: Netlist,
    base: RDConfig | None = None,
    seed_gp: GPSeed | None = None,
    metrics=None,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> FlowResult:
    """The paper's full framework (MCI + DC + DPA)."""
    return run_flow(
        "Ours", netlist, base or RDConfig(), seed_gp, metrics,
        checkpoint_path=checkpoint_path, resume=resume,
    )

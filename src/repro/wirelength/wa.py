"""Weighted-average (WA) smooth wirelength model [Hsu et al., DAC'11].

The paper (Sec. II-A) minimizes, per net ``e`` and direction ``x``::

    WA_e = sum_i x_i e^{x_i/gamma} / sum_i e^{x_i/gamma}
         - sum_i x_i e^{-x_i/gamma} / sum_i e^{-x_i/gamma}

which smoothly approximates ``max_i x_i - min_i x_i`` (HPWL per axis).
This module evaluates the objective and its analytic gradient with
respect to cell centers in a fully vectorized, numerically stable way
(exponentials are shifted by the per-net max/min before exponentiation).

Gradient formulas (derived by differentiating the quotient; the shift
cancels)::

    d WA+/d x_i = a_i (1 + (x_i - WA+)/gamma) / S,   a_i = e^{(x_i-mx)/gamma}
    d WA-/d x_i = b_i (1 - (x_i - WA-)/gamma) / T,   b_i = e^{-(x_i-mn)/gamma}
    d WA /d x_i = d WA+/d x_i - d WA-/d x_i

The inner per-axis pass lives in the pluggable kernel layer
(:mod:`repro.kernels`): this module prepares the net-sorted pin
structure (cached per netlist — topology is immutable) and dispatches
to the active backend's ``wa_axes`` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import get_backend
from repro.netlist.netlist import Netlist


def _wa_structure(netlist: Netlist):
    """Net-sorted pin structure ``(order, starts, seg, degrees)``, cached.

    All four arrays are pure functions of the immutable netlist
    topology, so they are computed once and attached to the instance;
    :meth:`Netlist.copy` creates a fresh object, which rebuilds the
    cache.  Reusing the identical arrays cannot change any numerics.
    """
    cache = getattr(netlist, "_wa_structure_cache", None)
    if cache is None:
        order = netlist.net_pin_order
        starts = netlist.net_pin_starts[:-1]
        degrees = netlist.net_degrees()
        seg_of_ordered = netlist.pin_net[order]
        cache = (order, starts, seg_of_ordered, degrees)
        netlist._wa_structure_cache = cache
    return cache


def wa_wirelength_and_grad(
    netlist: Netlist,
    gamma: float,
    net_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Total WA wirelength and its gradient w.r.t. cell centers.

    Returns ``(wl, grad_x, grad_y)`` with per-cell gradient arrays.
    Fixed cells receive zero gradient.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    n_nets = netlist.n_nets
    px, py = netlist.pin_positions()
    order, starts, seg_of_ordered, degrees = _wa_structure(netlist)

    wl_x, gpin_x, wl_y, gpin_y = get_backend().wa_axes(
        px, py, order, starts, seg_of_ordered, degrees, gamma, n_nets
    )

    if net_weights is not None:
        wl = float((net_weights * (wl_x + wl_y)).sum())
        wpin = net_weights[netlist.pin_net]
        gpin_x = gpin_x * wpin
        gpin_y = gpin_y * wpin
    else:
        wl = float(wl_x.sum() + wl_y.sum())

    grad_x = np.bincount(netlist.pin_cell, weights=gpin_x, minlength=netlist.n_cells)
    grad_y = np.bincount(netlist.pin_cell, weights=gpin_y, minlength=netlist.n_cells)
    grad_x[netlist.cell_fixed] = 0.0
    grad_y[netlist.cell_fixed] = 0.0
    return wl, grad_x, grad_y


@dataclass
class WAWirelength:
    """Stateful WA objective with the ePlace-style gamma schedule.

    ``gamma`` shrinks as density overflow decreases, tightening the
    HPWL approximation toward convergence:
    ``gamma = gamma_0 * base_unit * 10^(k*overflow + b)`` following the
    piecewise-linear schedule of ePlace.
    """

    base_unit: float
    gamma0: float = 0.5
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.gamma <= 0.0:
            self.gamma = 8.0 * self.gamma0 * self.base_unit

    def update_gamma(self, overflow: float) -> float:
        """Adapt gamma to the current density overflow (in [0, ~1])."""
        k, b = 20.0 / 9.0, -11.0 / 9.0
        coef = 10.0 ** (k * min(max(overflow, 0.0), 1.0) + b)
        self.gamma = self.gamma0 * self.base_unit * 8.0 * coef
        return self.gamma

    def __call__(
        self, netlist: Netlist, net_weights: np.ndarray | None = None
    ) -> tuple[float, np.ndarray, np.ndarray]:
        return wa_wirelength_and_grad(netlist, self.gamma, net_weights)

"""Weighted-average (WA) smooth wirelength model [Hsu et al., DAC'11].

The paper (Sec. II-A) minimizes, per net ``e`` and direction ``x``::

    WA_e = sum_i x_i e^{x_i/gamma} / sum_i e^{x_i/gamma}
         - sum_i x_i e^{-x_i/gamma} / sum_i e^{-x_i/gamma}

which smoothly approximates ``max_i x_i - min_i x_i`` (HPWL per axis).
This module evaluates the objective and its analytic gradient with
respect to cell centers in a fully vectorized, numerically stable way
(exponentials are shifted by the per-net max/min before exponentiation).

Gradient formulas (derived by differentiating the quotient; the shift
cancels)::

    d WA+/d x_i = a_i (1 + (x_i - WA+)/gamma) / S,   a_i = e^{(x_i-mx)/gamma}
    d WA-/d x_i = b_i (1 - (x_i - WA-)/gamma) / T,   b_i = e^{-(x_i-mn)/gamma}
    d WA /d x_i = d WA+/d x_i - d WA-/d x_i
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist


def _segment_sums(values: np.ndarray, seg_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``seg_ids`` (already net-sorted pins)."""
    return np.bincount(seg_ids, weights=values, minlength=n_segments)


def _axis_wa(
    coords: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    seg_of_ordered: np.ndarray,
    degrees: np.ndarray,
    gamma: float,
    n_nets: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-net WA wirelength and per-pin gradient along one axis.

    Returns ``(wl_per_net, grad_per_pin)`` where ``grad_per_pin`` is in
    original pin order.
    """
    c = coords[order]
    safe_starts = np.minimum(starts, max(len(order) - 1, 0))
    if len(order):
        mx = np.maximum.reduceat(c, safe_starts)
        mn = np.minimum.reduceat(c, safe_starts)
    else:
        mx = np.zeros(n_nets)
        mn = np.zeros(n_nets)

    a = np.exp((c - mx[seg_of_ordered]) / gamma)
    b = np.exp(-(c - mn[seg_of_ordered]) / gamma)

    s_plus = _segment_sums(a, seg_of_ordered, n_nets)
    p_plus = _segment_sums(c * a, seg_of_ordered, n_nets)
    s_minus = _segment_sums(b, seg_of_ordered, n_nets)
    p_minus = _segment_sums(c * b, seg_of_ordered, n_nets)

    valid = degrees >= 2
    s_plus_safe = np.where(s_plus > 0, s_plus, 1.0)
    s_minus_safe = np.where(s_minus > 0, s_minus, 1.0)
    wa_plus = p_plus / s_plus_safe
    wa_minus = p_minus / s_minus_safe
    wl = np.where(valid, wa_plus - wa_minus, 0.0)

    grad_plus = a * (1.0 + (c - wa_plus[seg_of_ordered]) / gamma) / s_plus_safe[seg_of_ordered]
    grad_minus = b * (1.0 - (c - wa_minus[seg_of_ordered]) / gamma) / s_minus_safe[seg_of_ordered]
    grad_ordered = np.where(valid[seg_of_ordered], grad_plus - grad_minus, 0.0)

    grad = np.zeros_like(grad_ordered)
    grad[order] = grad_ordered
    return wl, grad


def wa_wirelength_and_grad(
    netlist: Netlist,
    gamma: float,
    net_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Total WA wirelength and its gradient w.r.t. cell centers.

    Returns ``(wl, grad_x, grad_y)`` with per-cell gradient arrays.
    Fixed cells receive zero gradient.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    n_nets = netlist.n_nets
    px, py = netlist.pin_positions()
    order = netlist.net_pin_order
    starts = netlist.net_pin_starts[:-1]
    degrees = netlist.net_degrees()
    seg_of_ordered = netlist.pin_net[order]

    wl_x, gpin_x = _axis_wa(px, order, starts, seg_of_ordered, degrees, gamma, n_nets)
    wl_y, gpin_y = _axis_wa(py, order, starts, seg_of_ordered, degrees, gamma, n_nets)

    if net_weights is not None:
        wl = float((net_weights * (wl_x + wl_y)).sum())
        wpin = net_weights[netlist.pin_net]
        gpin_x = gpin_x * wpin
        gpin_y = gpin_y * wpin
    else:
        wl = float(wl_x.sum() + wl_y.sum())

    grad_x = np.bincount(netlist.pin_cell, weights=gpin_x, minlength=netlist.n_cells)
    grad_y = np.bincount(netlist.pin_cell, weights=gpin_y, minlength=netlist.n_cells)
    grad_x[netlist.cell_fixed] = 0.0
    grad_y[netlist.cell_fixed] = 0.0
    return wl, grad_x, grad_y


@dataclass
class WAWirelength:
    """Stateful WA objective with the ePlace-style gamma schedule.

    ``gamma`` shrinks as density overflow decreases, tightening the
    HPWL approximation toward convergence:
    ``gamma = gamma_0 * base_unit * 10^(k*overflow + b)`` following the
    piecewise-linear schedule of ePlace.
    """

    base_unit: float
    gamma0: float = 0.5
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.gamma <= 0.0:
            self.gamma = 8.0 * self.gamma0 * self.base_unit

    def update_gamma(self, overflow: float) -> float:
        """Adapt gamma to the current density overflow (in [0, ~1])."""
        k, b = 20.0 / 9.0, -11.0 / 9.0
        coef = 10.0 ** (k * min(max(overflow, 0.0), 1.0) + b)
        self.gamma = self.gamma0 * self.base_unit * 8.0 * coef
        return self.gamma

    def __call__(
        self, netlist: Netlist, net_weights: np.ndarray | None = None
    ) -> tuple[float, np.ndarray, np.ndarray]:
        return wa_wirelength_and_grad(netlist, self.gamma, net_weights)

"""Half-perimeter wirelength (HPWL).

The non-smooth ground-truth objective that the WA model approximates;
used for reporting and for testing the WA upper bound property.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


def hpwl_per_net(netlist: Netlist, net_weights: np.ndarray | None = None) -> np.ndarray:
    """HPWL of every net at the current cell positions.

    Nets with fewer than two pins have zero wirelength.
    """
    if netlist.n_nets == 0:
        return np.zeros(0, dtype=np.float64)
    px, py = netlist.pin_positions()
    order = netlist.net_pin_order
    starts = netlist.net_pin_starts[:-1]
    degrees = netlist.net_degrees()

    ox = px[order]
    oy = py[order]
    # reduceat over the starts of the NON-empty nets only: their starts
    # partition ``order`` exactly, because empty nets contribute no
    # pins.  (Clamping an empty net's out-of-range start backwards —
    # the previous implementation — split the preceding net's segment
    # and silently dropped its pins from the max/min.)
    wl = np.zeros(netlist.n_nets, dtype=np.float64)
    nonempty = degrees > 0
    if nonempty.any():
        idx = starts[nonempty]
        xspan = np.maximum.reduceat(ox, idx) - np.minimum.reduceat(ox, idx)
        yspan = np.maximum.reduceat(oy, idx) - np.minimum.reduceat(oy, idx)
        wl[nonempty] = xspan + yspan
    wl[degrees < 2] = 0.0
    if net_weights is not None:
        wl = wl * net_weights
    return wl


def hpwl(netlist: Netlist, net_weights: np.ndarray | None = None) -> float:
    """Total (optionally weighted) HPWL of the design."""
    return float(hpwl_per_net(netlist, net_weights).sum())

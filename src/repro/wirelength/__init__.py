"""Wirelength objectives: exact HPWL and the smooth WA approximation."""

from repro.wirelength.hpwl import hpwl, hpwl_per_net
from repro.wirelength.wa import WAWirelength, wa_wirelength_and_grad

__all__ = ["hpwl", "hpwl_per_net", "WAWirelength", "wa_wirelength_and_grad"]

"""Structural consistency checks for :class:`~repro.netlist.Netlist`.

Run after construction, after parsing, and in integration tests; raises
``ValueError`` with a precise message on the first inconsistency found.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


def validate_netlist(netlist: Netlist, require_inside_die: bool = False) -> None:
    """Validate array shapes, index ranges and CSR structure.

    Parameters
    ----------
    netlist:
        Design to check.
    require_inside_die:
        When True, additionally require every cell rectangle to lie
        within the die area (useful after legalization).
    """
    n_cells, n_nets, n_pins = netlist.n_cells, netlist.n_nets, netlist.n_pins

    per_cell = [
        ("cell_width", netlist.cell_width),
        ("cell_height", netlist.cell_height),
        ("cell_fixed", netlist.cell_fixed),
        ("cell_macro", netlist.cell_macro),
        ("x", netlist.x),
        ("y", netlist.y),
    ]
    for label, arr in per_cell:
        if len(arr) != n_cells:
            raise ValueError(f"{label} has length {len(arr)}, expected {n_cells}")
    if len(netlist.cell_names) != n_cells:
        raise ValueError("cell_names length mismatch")
    if len(netlist.net_names) != n_nets:
        raise ValueError("net_names length mismatch")

    per_pin = [
        ("pin_cell", netlist.pin_cell),
        ("pin_offset_x", netlist.pin_offset_x),
        ("pin_offset_y", netlist.pin_offset_y),
        ("pin_net", netlist.pin_net),
    ]
    for label, arr in per_pin:
        if len(arr) != n_pins:
            raise ValueError(f"{label} has length {len(arr)}, expected {n_pins}")

    if n_pins:
        if netlist.pin_cell.min() < 0 or netlist.pin_cell.max() >= n_cells:
            raise ValueError("pin_cell index out of range")
        if netlist.pin_net.min() < 0 or netlist.pin_net.max() >= n_nets:
            raise ValueError("pin_net index out of range")

    if (netlist.cell_width <= 0).any() or (netlist.cell_height <= 0).any():
        raise ValueError("cells must have positive dimensions")

    _validate_csr("net", netlist.net_pin_starts, netlist.net_pin_order, netlist.pin_net, n_nets)
    _validate_csr(
        "cell", netlist.cell_pin_starts, netlist.cell_pin_order, netlist.pin_cell, n_cells
    )

    if require_inside_die:
        half_w = netlist.cell_width * 0.5
        half_h = netlist.cell_height * 0.5
        eps = 1e-6
        inside = (
            (netlist.x - half_w >= netlist.die.xlo - eps)
            & (netlist.x + half_w <= netlist.die.xhi + eps)
            & (netlist.y - half_h >= netlist.die.ylo - eps)
            & (netlist.y + half_h <= netlist.die.yhi + eps)
        )
        if not inside.all():
            bad = int(np.flatnonzero(~inside)[0])
            raise ValueError(
                f"cell {netlist.cell_names[bad]} lies outside the die area"
            )


def _validate_csr(
    label: str,
    starts: np.ndarray,
    order: np.ndarray,
    group_of_item: np.ndarray,
    n_groups: int,
) -> None:
    if len(starts) != n_groups + 1:
        raise ValueError(f"{label} CSR starts has wrong length")
    if starts[0] != 0 or starts[-1] != len(order):
        raise ValueError(f"{label} CSR starts endpoints invalid")
    if (np.diff(starts) < 0).any():
        raise ValueError(f"{label} CSR starts not monotone")
    if len(order) != len(group_of_item):
        raise ValueError(f"{label} CSR order length mismatch")
    if len(order) and (
        np.sort(order) != np.arange(len(order), dtype=order.dtype)
    ).any():
        raise ValueError(f"{label} CSR order is not a permutation")
    for g in range(n_groups):
        members = order[starts[g] : starts[g + 1]]
        if len(members) and (group_of_item[members] != g).any():
            raise ValueError(f"{label} CSR group {g} contains foreign items")

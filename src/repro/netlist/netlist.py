"""Structure-of-arrays netlist used by all numerical kernels.

A :class:`Netlist` owns

* per-cell arrays: size, position (centers), fixed/macro flags;
* per-pin arrays: owning cell, offset from cell center, owning net;
* CSR indexes net->pins and cell->pins;
* die area, standard row height / site width, and PG rails.

Positions ``x``/``y`` are the mutable state a placer optimizes; all
other arrays are immutable after construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rect import Rect


def _csr_from_groups(group_of_item: np.ndarray, n_groups: int):
    """Build a CSR (start, items) index mapping group -> member items.

    ``group_of_item[k]`` is the group id of item ``k``.  Returns
    ``(starts, order)`` where group ``g`` owns items
    ``order[starts[g]:starts[g + 1]]``.
    """
    order = np.argsort(group_of_item, kind="stable").astype(np.int64)
    counts = np.bincount(group_of_item, minlength=n_groups)
    starts = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return starts, order


@dataclass
class Netlist:
    """Immutable-topology, mutable-position netlist."""

    name: str
    die: Rect
    row_height: float
    site_width: float

    cell_names: list
    cell_width: np.ndarray
    cell_height: np.ndarray
    cell_fixed: np.ndarray
    cell_macro: np.ndarray
    x: np.ndarray
    y: np.ndarray

    pin_cell: np.ndarray
    pin_offset_x: np.ndarray
    pin_offset_y: np.ndarray
    pin_net: np.ndarray

    net_names: list
    net_pin_starts: np.ndarray
    net_pin_order: np.ndarray

    cell_pin_starts: np.ndarray
    cell_pin_order: np.ndarray

    pg_rails: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_specs(
        cls,
        name: str,
        die: Rect,
        cells: list,
        nets: list,
        row_height: float = 1.0,
        site_width: float = 0.25,
        pg_rails: list | None = None,
    ) -> "Netlist":
        """Assemble a netlist from :class:`CellSpec` / :class:`NetSpec` lists."""
        n_cells = len(cells)
        cell_index = {c.name: i for i, c in enumerate(cells)}
        if len(cell_index) != n_cells:
            raise ValueError("duplicate cell names in design")

        pin_cell: list[int] = []
        pin_ox: list[float] = []
        pin_oy: list[float] = []
        pin_net: list[int] = []
        net_names: list[str] = []
        for net_id, net in enumerate(nets):
            net_names.append(net.name)
            for pin in net.pins:
                if pin.cell not in cell_index:
                    raise ValueError(f"net {net.name} references unknown cell {pin.cell}")
                pin_cell.append(cell_index[pin.cell])
                pin_ox.append(pin.offset_x)
                pin_oy.append(pin.offset_y)
                pin_net.append(net_id)

        pin_cell_arr = np.asarray(pin_cell, dtype=np.int64)
        pin_net_arr = np.asarray(pin_net, dtype=np.int64)
        net_starts, net_order = _csr_from_groups(pin_net_arr, len(nets))
        cell_starts, cell_order = _csr_from_groups(pin_cell_arr, n_cells)

        return cls(
            name=name,
            die=die,
            row_height=row_height,
            site_width=site_width,
            cell_names=[c.name for c in cells],
            cell_width=np.asarray([c.width for c in cells], dtype=np.float64),
            cell_height=np.asarray([c.height for c in cells], dtype=np.float64),
            cell_fixed=np.asarray([c.fixed for c in cells], dtype=bool),
            cell_macro=np.asarray([c.macro for c in cells], dtype=bool),
            x=np.asarray([c.x for c in cells], dtype=np.float64),
            y=np.asarray([c.y for c in cells], dtype=np.float64),
            pin_cell=pin_cell_arr,
            pin_offset_x=np.asarray(pin_ox, dtype=np.float64),
            pin_offset_y=np.asarray(pin_oy, dtype=np.float64),
            pin_net=pin_net_arr,
            net_names=net_names,
            net_pin_starts=net_starts,
            net_pin_order=net_order,
            cell_pin_starts=cell_starts,
            cell_pin_order=cell_order,
            pg_rails=list(pg_rails or []),
        )

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells (movable + macros)."""
        return len(self.cell_width)

    @property
    def n_nets(self) -> int:
        """Number of nets."""
        return len(self.net_names)

    @property
    def n_pins(self) -> int:
        """Number of pins across all nets."""
        return len(self.pin_cell)

    @property
    def movable(self) -> np.ndarray:
        """Boolean mask of movable (non-fixed) cells."""
        return ~self.cell_fixed

    @property
    def cell_area(self) -> np.ndarray:
        """Per-cell area array, ``width * height``."""
        return self.cell_width * self.cell_height

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    def pin_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates at the current cell positions."""
        px = self.x[self.pin_cell] + self.pin_offset_x
        py = self.y[self.pin_cell] + self.pin_offset_y
        return px, py

    def net_pins(self, net_id: int) -> np.ndarray:
        """Pin indices of one net."""
        s, e = self.net_pin_starts[net_id], self.net_pin_starts[net_id + 1]
        return self.net_pin_order[s:e]

    def cell_pins(self, cell_id: int) -> np.ndarray:
        """Pin indices on one cell."""
        s, e = self.cell_pin_starts[cell_id], self.cell_pin_starts[cell_id + 1]
        return self.cell_pin_order[s:e]

    def net_degrees(self) -> np.ndarray:
        """Pin count per net."""
        return np.diff(self.net_pin_starts)

    def cell_pin_counts(self) -> np.ndarray:
        """Pin count per cell (the quantity compared to n-bar in Alg. 2)."""
        return np.diff(self.cell_pin_starts)

    def cell_rect(self, cell_id: int) -> Rect:
        """The cell's bounding rect at its current position."""
        return Rect.from_center(
            self.x[cell_id],
            self.y[cell_id],
            self.cell_width[cell_id],
            self.cell_height[cell_id],
        )

    def set_positions(self, x: np.ndarray, y: np.ndarray) -> None:
        """Overwrite cell centers (copies, preserving array identity)."""
        self.x[:] = x
        self.y[:] = y

    def clamp_to_die(self) -> None:
        """Clamp movable cell centers so cells stay inside the die."""
        mv = self.movable
        half_w = self.cell_width * 0.5
        half_h = self.cell_height * 0.5
        self.x[mv] = np.clip(
            self.x[mv],
            self.die.xlo + half_w[mv],
            np.maximum(self.die.xhi - half_w[mv], self.die.xlo + half_w[mv]),
        )
        self.y[mv] = np.clip(
            self.y[mv],
            self.die.ylo + half_h[mv],
            np.maximum(self.die.yhi - half_h[mv], self.die.ylo + half_h[mv]),
        )

    def copy(self) -> "Netlist":
        """Deep copy of positions and rails; topology arrays are shared."""
        return Netlist(
            name=self.name,
            die=self.die,
            row_height=self.row_height,
            site_width=self.site_width,
            cell_names=self.cell_names,
            cell_width=self.cell_width,
            cell_height=self.cell_height,
            cell_fixed=self.cell_fixed,
            cell_macro=self.cell_macro,
            x=self.x.copy(),
            y=self.y.copy(),
            pin_cell=self.pin_cell,
            pin_offset_x=self.pin_offset_x,
            pin_offset_y=self.pin_offset_y,
            pin_net=self.pin_net,
            net_names=self.net_names,
            net_pin_starts=self.net_pin_starts,
            net_pin_order=self.net_pin_order,
            cell_pin_starts=self.cell_pin_starts,
            cell_pin_order=self.cell_pin_order,
            pg_rails=list(self.pg_rails),
        )

"""Plain-data building blocks for netlist construction and I/O.

These specs mirror what a Bookshelf/LEF-DEF front-end would produce:
cells with sizes and fixed/macro attributes, pins as (cell, offset)
pairs, nets as pin lists, and M2 power/ground rail shapes.
Coordinates follow the library-wide convention that a cell position is
its *center*; pin offsets are relative to that center.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.rect import Rect


@dataclass
class CellSpec:
    """One cell (standard cell or macro) of a design."""

    name: str
    width: float
    height: float
    x: float = 0.0
    y: float = 0.0
    fixed: bool = False
    macro: bool = False

    @property
    def area(self) -> float:
        """Footprint area, ``width * height``."""
        return self.width * self.height

    def rect(self) -> Rect:
        """Occupied rectangle at the current center position."""
        return Rect.from_center(self.x, self.y, self.width, self.height)


@dataclass
class PinSpec:
    """A pin on a cell, referenced by nets.

    ``offset_x`` / ``offset_y`` are displacements from the owning
    cell's center.
    """

    cell: str
    offset_x: float = 0.0
    offset_y: float = 0.0


@dataclass
class NetSpec:
    """A net as an ordered list of pins."""

    name: str
    pins: list[PinSpec] = field(default_factory=list)

    @property
    def degree(self) -> int:
        """Number of pins on the net."""
        return len(self.pins)


@dataclass
class PGRailSpec:
    """An M2-layer power/ground rail segment projected onto the 2-D plane.

    Rails are thin rectangles; ``horizontal`` distinguishes the running
    direction, which matters for the 0.2x-span selection rule
    (Sec. III-C step 1).
    """

    rect: Rect
    horizontal: bool = True

    @property
    def length(self) -> float:
        """Rail run length along its orientation."""
        return self.rect.width if self.horizontal else self.rect.height

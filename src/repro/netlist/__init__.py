"""Circuit netlist model: cells, pins, nets as a hypergraph.

The central class is :class:`Netlist`, a structure-of-arrays container
holding cell geometry, pin offsets and net connectivity in CSR form, so
wirelength/density/routing kernels can be fully vectorized.  The small
``*Spec`` dataclasses exist for human-friendly construction and I/O.
"""

from repro.netlist.data import CellSpec, NetSpec, PinSpec, PGRailSpec
from repro.netlist.netlist import Netlist
from repro.netlist.stats import NetlistStats, compute_stats
from repro.netlist.validate import validate_netlist

__all__ = [
    "CellSpec",
    "NetSpec",
    "PinSpec",
    "PGRailSpec",
    "Netlist",
    "NetlistStats",
    "compute_stats",
    "validate_netlist",
]

"""Summary statistics of a netlist.

Besides reporting, two statistics feed the algorithms directly:

* ``avg_pins_per_cell`` is the n-bar threshold of Alg. 2 (multi-pin
  cell selection);
* ``utilization`` drives the synthetic generator's density targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of one netlist (sizes, areas, utilization)."""

    n_cells: int
    n_movable: int
    n_macros: int
    n_nets: int
    n_pins: int
    n_two_pin_nets: int
    avg_pins_per_cell: float
    avg_net_degree: float
    max_net_degree: int
    total_movable_area: float
    utilization: float

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "cells": self.n_cells,
            "movable": self.n_movable,
            "macros": self.n_macros,
            "nets": self.n_nets,
            "pins": self.n_pins,
            "two_pin_nets": self.n_two_pin_nets,
            "avg_pins_per_cell": round(self.avg_pins_per_cell, 3),
            "avg_net_degree": round(self.avg_net_degree, 3),
            "max_net_degree": self.max_net_degree,
            "utilization": round(self.utilization, 4),
        }


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a design."""
    degrees = netlist.net_degrees()
    pin_counts = netlist.cell_pin_counts()
    movable = netlist.movable
    fixed_area = float(netlist.cell_area[~movable].sum())
    movable_area = float(netlist.cell_area[movable].sum())
    free_area = max(netlist.die.area - fixed_area, 1e-12)
    return NetlistStats(
        n_cells=netlist.n_cells,
        n_movable=int(movable.sum()),
        n_macros=int(netlist.cell_macro.sum()),
        n_nets=netlist.n_nets,
        n_pins=netlist.n_pins,
        n_two_pin_nets=int(np.count_nonzero(degrees == 2)),
        avg_pins_per_cell=float(pin_counts.mean()) if netlist.n_cells else 0.0,
        avg_net_degree=float(degrees.mean()) if netlist.n_nets else 0.0,
        max_net_degree=int(degrees.max()) if netlist.n_nets else 0,
        total_movable_area=movable_area,
        utilization=movable_area / free_area,
    )

"""Abacus row refinement [Spindler et al.].

Given cells already assigned to rows (by Tetris), Abacus finds, per
free segment, the x positions minimizing the total weighted quadratic
displacement from the cells' global-placement locations subject to
non-overlap — via the classic cluster-merging recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.legalize.rows import RowMap
from repro.legalize.tetris import TetrisAssignment
from repro.netlist.netlist import Netlist


@dataclass
class _Cluster:
    e: float  # total weight
    q: float  # weighted target of the cluster's left edge
    w: float  # total width
    first: int  # index of first cell (into the segment's cell list)

    @property
    def x(self) -> float:
        return self.q / self.e if self.e > 0 else 0.0


def _place_segment(
    desired_left: np.ndarray,
    widths: np.ndarray,
    weights: np.ndarray,
    xlo: float,
    xhi: float,
) -> np.ndarray:
    """Optimal non-overlapping left edges within [xlo, xhi].

    Cells must be given in left-to-right order.  Implements the Abacus
    ``PlaceRow`` recurrence with boundary clamping.
    """
    clusters: list[_Cluster] = []
    for i in range(len(desired_left)):
        c = _Cluster(e=weights[i], q=weights[i] * desired_left[i], w=widths[i], first=i)
        while clusters:
            prev = clusters[-1]
            prev_x = min(max(prev.x, xlo), xhi - prev.w)
            if prev_x + prev.w <= min(max(c.x, xlo), xhi - c.w) + 1e-12:
                break
            # merge c into prev
            prev.q += c.q - c.e * prev.w
            prev.e += c.e
            prev.w += c.w
            c = prev
            clusters.pop()
        clusters.append(c)

    n = len(desired_left)
    out = np.empty(n)
    bounds = [c.first for c in clusters] + [n]
    for c, start, end in zip(clusters, bounds, bounds[1:]):
        x = min(max(c.x, xlo), max(xhi - c.w, xlo))
        for i in range(start, end):
            out[i] = x
            x += widths[i]
    return out


def abacus_refine(
    netlist: Netlist,
    rowmap: RowMap,
    assignment: TetrisAssignment,
    desired_x: np.ndarray,
) -> None:
    """Re-place each row segment optimally; mutates ``netlist.x``.

    Parameters
    ----------
    desired_x:
        Per-cell target centers (the global placement positions, saved
        before Tetris ran).
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for k, cid in enumerate(assignment.cell_ids):
        groups.setdefault((int(assignment.rows[k]), int(assignment.seg_index[k])), []).append(k)

    for (r, s_idx), ks in groups.items():
        seg = rowmap.segments[r][s_idx]
        ks.sort(key=lambda k: assignment.x_left[k])
        cids = assignment.cell_ids[ks]
        widths = netlist.cell_width[cids]
        weights = np.maximum(netlist.cell_area[cids], 1e-9)
        targets = desired_x[cids] - widths / 2
        lefts = _place_segment(targets, widths, weights, seg.xlo, seg.xhi)
        # integer-site snapping: cell widths are site multiples, so all
        # overlap/boundary arithmetic stays exact in site units
        sw = rowmap.site_width
        start_site = int(np.ceil(seg.xlo / sw - 1e-9))
        end_site = int(np.floor(seg.xhi / sw + 1e-9))
        w_sites = np.rint(widths / sw).astype(np.int64)
        li = np.rint(lefts / sw).astype(np.int64)
        li[0] = max(li[0], start_site)
        for i in range(1, len(li)):
            li[i] = max(li[i], li[i - 1] + w_sites[i - 1])
        if li[-1] + w_sites[-1] > end_site:
            # push the tail back left, preserving order
            li[-1] = end_site - w_sites[-1]
            for i in range(len(li) - 2, -1, -1):
                li[i] = min(li[i], li[i + 1] - w_sites[i])
            li = np.maximum(li, start_site)
            for i in range(1, len(li)):  # re-assert non-overlap
                li[i] = max(li[i], li[i - 1] + w_sites[i - 1])
        lefts = li.astype(np.float64) * sw
        netlist.x[cids] = lefts + widths / 2
        assignment.x_left[ks] = lefts

"""Placement rows and their free segments.

A die is divided into standard-cell rows of height ``row_height``.
Fixed cells and macros carve *blocked* intervals out of rows; the
remaining free segments are where legalization may put cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.netlist import Netlist


@dataclass
class Segment:
    """One free interval of a row.  ``cursor`` tracks greedy filling."""

    xlo: float
    xhi: float
    cursor: float = 0.0

    def __post_init__(self) -> None:
        self.cursor = max(self.cursor, self.xlo)

    @property
    def free_width(self) -> float:
        """Remaining width right of the packing cursor."""
        return self.xhi - self.cursor


@dataclass
class RowMap:
    """All rows of a die with their free segments."""

    y_bottoms: np.ndarray
    row_height: float
    site_width: float
    segments: list = field(default_factory=list)  # list[list[Segment]]

    @property
    def n_rows(self) -> int:
        """Number of placement rows."""
        return len(self.y_bottoms)

    def row_of(self, y_center: float) -> int:
        """Nearest row index for a cell center y."""
        r = int(np.round((y_center - self.row_height / 2 - self.y_bottoms[0]) / self.row_height))
        return min(max(r, 0), self.n_rows - 1)

    def row_center_y(self, row: int) -> float:
        """Vertical center of ``row``."""
        return float(self.y_bottoms[row] + self.row_height / 2)

    def snap_x(self, x: float) -> float:
        """Snap a left edge to the nearest site boundary."""
        return round(x / self.site_width) * self.site_width

    def site_ceil(self, x: float) -> float:
        """Smallest site boundary >= x."""
        return np.ceil(x / self.site_width - 1e-9) * self.site_width

    def site_floor(self, x: float) -> float:
        """Largest site boundary <= x."""
        return np.floor(x / self.site_width + 1e-9) * self.site_width


def build_row_map(netlist: Netlist) -> RowMap:
    """Construct rows and subtract fixed-cell blockages."""
    die = netlist.die
    rh = netlist.row_height
    n_rows = max(int(np.floor(die.height / rh + 1e-9)), 1)
    y_bottoms = die.ylo + rh * np.arange(n_rows)
    rowmap = RowMap(
        y_bottoms=y_bottoms,
        row_height=rh,
        site_width=netlist.site_width,
        segments=[[] for _ in range(n_rows)],
    )

    # collect blocked x-intervals per row
    blocked: list[list[tuple[float, float]]] = [[] for _ in range(n_rows)]
    for i in np.flatnonzero(netlist.cell_fixed):
        rect = netlist.cell_rect(i)
        r0 = int(np.floor((rect.ylo - die.ylo) / rh + 1e-9))
        r1 = int(np.ceil((rect.yhi - die.ylo) / rh - 1e-9)) - 1
        for r in range(max(r0, 0), min(r1, n_rows - 1) + 1):
            blocked[r].append((rect.xlo, rect.xhi))

    for r in range(n_rows):
        intervals = sorted(blocked[r])
        merged: list[tuple[float, float]] = []
        for (a, b) in intervals:
            if merged and a <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        free: list[Segment] = []
        x = die.xlo
        for (a, b) in merged:
            if a > x:
                free.append(Segment(x, min(a, die.xhi)))
            x = max(x, b)
        if x < die.xhi:
            free.append(Segment(x, die.xhi))
        rowmap.segments[r] = [s for s in free if s.free_width > 0]
    return rowmap

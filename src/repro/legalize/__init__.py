"""Row-based legalization: Tetris greedy assignment + Abacus refinement.

The paper hands its global placement to the routability-driven
legalization/detailed placement of Xplace-Route [8]; here the
equivalent stage is :func:`legalize` — Tetris assigns every movable
standard cell to a legal row/site position near its global location,
then Abacus minimizes quadratic displacement within each row segment.
Macros and other fixed cells are treated as blockages.
"""

from repro.legalize.rows import RowMap, build_row_map
from repro.legalize.tetris import tetris_legalize
from repro.legalize.abacus import abacus_refine
from repro.legalize.api import legalize, check_legal

__all__ = [
    "RowMap",
    "build_row_map",
    "tetris_legalize",
    "abacus_refine",
    "legalize",
    "check_legal",
]

"""Tetris-style greedy legalization with gap-reclaiming free lists.

Movable standard cells are processed left-to-right; each is assigned
the position minimizing its displacement among all remaining free
intervals (searching rows outward from the cell's row until the row
distance alone exceeds the best cost).  Unlike the classic
monotone-cursor Tetris, free intervals are tracked exactly, so space
skipped by earlier cells remains usable — on high-utilization dies
this is the difference between a small-displacement legalization and
a die-wide compaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.legalize.rows import RowMap
from repro.netlist.netlist import Netlist
from repro.utils.logging import get_logger

logger = get_logger("legalize.tetris")


@dataclass
class TetrisAssignment:
    """Result of Tetris: per-cell row/segment and legal coordinates."""

    cell_ids: np.ndarray
    rows: np.ndarray
    seg_index: np.ndarray
    x_left: np.ndarray


class _FreeList:
    """Sorted disjoint free intervals of one row segment."""

    def __init__(self, xlo: float, xhi: float) -> None:
        self.intervals: list[list[float]] = [[xlo, xhi]]

    def best_position(
        self, desired: float, width: float, site: float
    ) -> float | None:
        """Site-aligned position closest to ``desired`` that fits."""
        best = None
        best_cost = np.inf
        for (a, b) in self.intervals:
            lo = np.ceil(a / site - 1e-9) * site
            hi = np.floor(b / site + 1e-9) * site - width
            if hi < lo - 1e-9:
                continue
            x = min(max(round(desired / site) * site, lo), hi)
            cost = abs(x - desired)
            if cost < best_cost:
                best, best_cost = x, cost
        return best

    def occupy(self, x: float, width: float) -> None:
        """Remove [x, x+width) from the free space."""
        for k, (a, b) in enumerate(self.intervals):
            if a - 1e-9 <= x and x + width <= b + 1e-9:
                pieces = []
                if x - a > 1e-9:
                    pieces.append([a, x])
                if b - (x + width) > 1e-9:
                    pieces.append([x + width, b])
                self.intervals[k : k + 1] = pieces
                return
        raise RuntimeError("occupy() outside any free interval")


def tetris_legalize(
    netlist: Netlist, rowmap: RowMap, compact: bool = False
) -> TetrisAssignment:
    """Assign every movable single-row cell a legal position.

    Mutates ``netlist.x`` / ``netlist.y``.  Raises ``RuntimeError``
    when a cell cannot be placed anywhere (die truly overfull).

    Parameters
    ----------
    compact:
        Kept for API compatibility; the free-list search already
        reclaims gaps, so compact mode only changes the tie-break
        (place at the leftmost fitting site instead of nearest).
    """
    rh = rowmap.row_height
    movable = netlist.movable & (netlist.cell_height <= rh + 1e-9)
    ids = np.flatnonzero(movable)
    order = ids[np.argsort(netlist.x[ids] - netlist.cell_width[ids] / 2)]

    free: list[list[_FreeList]] = [
        [_FreeList(seg.xlo, seg.xhi) for seg in rowmap.segments[r]]
        for r in range(rowmap.n_rows)
    ]

    out_rows = np.zeros(len(order), dtype=np.int64)
    out_seg = np.zeros(len(order), dtype=np.int64)
    out_x = np.zeros(len(order), dtype=np.float64)
    site = rowmap.site_width

    for k, cid in enumerate(order):
        w = netlist.cell_width[cid]
        desired_x = netlist.x[cid] - w / 2
        desired_y = netlist.y[cid]
        home = rowmap.row_of(desired_y)
        best = None  # (cost, row, seg_idx, x_left)

        for dist in range(rowmap.n_rows):
            if best is not None and dist * rh > best[0]:
                break
            for r in {home - dist, home + dist}:
                if not 0 <= r < rowmap.n_rows:
                    continue
                y_cost = abs(rowmap.row_center_y(r) - desired_y)
                for s_idx, flist in enumerate(free[r]):
                    target = rowmap.segments[r][s_idx].xlo if compact else desired_x
                    x = flist.best_position(target, w, site)
                    if x is None:
                        continue
                    cost = abs(x - desired_x) + y_cost
                    if best is None or cost < best[0]:
                        best = (cost, r, s_idx, x)
        if best is None:
            raise RuntimeError(
                f"tetris: no legal position for cell {netlist.cell_names[cid]}"
            )
        _, r, s_idx, x = best
        free[r][s_idx].occupy(x, w)
        out_rows[k] = r
        out_seg[k] = s_idx
        out_x[k] = x
        netlist.x[cid] = x + w / 2
        netlist.y[cid] = rowmap.row_center_y(r)

    return TetrisAssignment(cell_ids=order, rows=out_rows, seg_index=out_seg, x_left=out_x)

"""Top-level legalization entry point and legality checking."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.legalize.abacus import abacus_refine
from repro.legalize.rows import build_row_map
from repro.legalize.tetris import tetris_legalize
from repro.netlist.netlist import Netlist
from repro.utils.logging import get_logger

logger = get_logger("legalize.api")


@dataclass
class LegalizeStats:
    """Displacement summary of one legalization run."""

    total_displacement: float
    max_displacement: float
    mean_displacement: float
    n_cells: int


def legalize(netlist: Netlist, use_abacus: bool = True) -> LegalizeStats:
    """Legalize all movable single-row cells in place.

    Tetris provides the row/segment assignment; Abacus then minimizes
    quadratic displacement within each segment (disable with
    ``use_abacus=False`` for the pure greedy result).
    """
    old_x = netlist.x.copy()
    old_y = netlist.y.copy()
    rowmap = build_row_map(netlist)
    try:
        assignment = tetris_legalize(netlist, rowmap)
    except RuntimeError:
        # displacement-minimizing packing fragmented the free space;
        # retry in compact (first-fit) mode, Abacus will pull cells
        # back toward their global positions afterwards
        logger.warning("tetris retrying in compact mode for %s", netlist.name)
        netlist.x[:] = old_x
        netlist.y[:] = old_y
        rowmap = build_row_map(netlist)
        assignment = tetris_legalize(netlist, rowmap, compact=True)
    if use_abacus and len(assignment.cell_ids):
        abacus_refine(netlist, rowmap, assignment, old_x)

    ids = assignment.cell_ids
    if len(ids) == 0:
        return LegalizeStats(0.0, 0.0, 0.0, 0)
    disp = np.abs(netlist.x[ids] - old_x[ids]) + np.abs(netlist.y[ids] - old_y[ids])
    return LegalizeStats(
        total_displacement=float(disp.sum()),
        max_displacement=float(disp.max()),
        mean_displacement=float(disp.mean()),
        n_cells=len(ids),
    )


def check_legal(netlist: Netlist, tolerance: float = 1e-6) -> list:
    """Return a list of human-readable legality violations.

    Checks: cells inside die, movable single-row cells aligned to rows
    and sites, and no overlap between any two cells occupying the same
    row band (including fixed blockages).
    """
    violations: list[str] = []
    die = netlist.die
    rh = netlist.row_height
    sw = netlist.site_width

    half_w = netlist.cell_width / 2
    half_h = netlist.cell_height / 2
    outside = (
        (netlist.x - half_w < die.xlo - tolerance)
        | (netlist.x + half_w > die.xhi + tolerance)
        | (netlist.y - half_h < die.ylo - tolerance)
        | (netlist.y + half_h > die.yhi + tolerance)
    )
    for i in np.flatnonzero(outside):
        violations.append(f"cell {netlist.cell_names[i]} outside die")

    single_row = netlist.movable & (netlist.cell_height <= rh + 1e-9)
    for i in np.flatnonzero(single_row):
        y_bot = netlist.y[i] - half_h[i] - die.ylo
        if abs(y_bot - round(y_bot / rh) * rh) > tolerance:
            violations.append(f"cell {netlist.cell_names[i]} not row-aligned")
        x_left = netlist.x[i] - half_w[i]
        if abs(x_left - round(x_left / sw) * sw) > tolerance:
            violations.append(f"cell {netlist.cell_names[i]} not site-aligned")

    # overlap sweep per row band
    n_rows = max(int(np.floor(die.height / rh + 1e-9)), 1)
    row_members: list[list[int]] = [[] for _ in range(n_rows)]
    for i in range(netlist.n_cells):
        r0 = int(np.floor((netlist.y[i] - half_h[i] - die.ylo) / rh + 1e-6))
        r1 = int(np.ceil((netlist.y[i] + half_h[i] - die.ylo) / rh - 1e-6)) - 1
        for r in range(max(r0, 0), min(r1, n_rows - 1) + 1):
            row_members[r].append(i)

    for r, members in enumerate(row_members):
        members.sort(key=lambda i: netlist.x[i] - half_w[i])
        for a, b in zip(members, members[1:]):
            right_a = netlist.x[a] + half_w[a]
            left_b = netlist.x[b] - half_w[b]
            if right_a > left_b + tolerance:
                violations.append(
                    f"overlap in row {r}: {netlist.cell_names[a]} / {netlist.cell_names[b]}"
                )
    return violations

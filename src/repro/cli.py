"""Command-line interface: ``python -m repro <command>``.

Commands
--------
gen     generate a synthetic design (suite name or custom size) to a file
place   place a design file (wirelength-only or full routability flow)
route   route a placed design and print congestion statistics
eval    score a placed design (DRWL / #DRVias / #DRVs)
plot    dump placement SVG and congestion heatmap PPM
bench   run a Table I/II sweep, optionally sharded across --jobs workers
gradcheck  validate analytic gradients against central differences
serve   run the placement-as-a-service daemon (see repro.service)
submit  queue a place/route job on a running daemon
status  show daemon queue state or one job's status
cancel  request cancellation of a queued/running job
dse     design-space exploration: run/submit grid sweeps, ingest and
        query the sqlite run database, render HTML reports

``place`` and ``route`` accept ``--check-invariants {off,warn,raise}``
to arm the numeric-contract layer (see :mod:`repro.utils.contracts`);
the flag overrides the ``REPRO_CHECK_INVARIANTS`` environment default.

``place``, ``route`` and ``bench`` accept ``--kernel-backend
{auto,reference,fastnp,numba}`` to select the hot-path kernel backend
(see :mod:`repro.kernels`); the flag overrides the
``REPRO_KERNEL_BACKEND`` environment default (``auto``).
"""

from __future__ import annotations

import argparse
import os
import sys


def _configure_kernels(args: argparse.Namespace, metrics) -> None:
    """Select the kernel backend from ``--kernel-backend``.

    ``None`` (flag absent) keeps the ``REPRO_KERNEL_BACKEND``
    environment default; the resolved choice is exported back into the
    environment so worker subprocesses inherit it, and a
    ``kernel.backend`` telemetry event records the decision when a
    registry is attached.
    """
    from repro.service.runner import configure_kernels

    configure_kernels(getattr(args, "kernel_backend", None), metrics)


def _load_validated(path: str):
    """Load a design file and structurally validate it (see
    :func:`repro.service.runner.load_validated`)."""
    from repro.service.runner import load_validated

    return load_validated(path)


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.io import save_design
    from repro.netlist import compute_stats
    from repro.synth import SynthConfig, generate_design, suite_design, suite_names

    if args.design in suite_names():
        netlist = suite_design(args.design, scale=args.scale, seed=args.seed)
    else:
        netlist = generate_design(
            SynthConfig(name=args.design, n_cells=args.cells, seed=args.seed)
        )
    save_design(netlist, args.out)
    print(f"wrote {args.out}: {compute_stats(netlist).as_dict()}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from repro.service.runner import PlaceRequest, run_place_job

    outcome = run_place_job(PlaceRequest(
        input=args.input,
        out=args.out,
        routability=args.routability,
        iters=args.iters,
        rounds=args.rounds,
        iters_per_round=args.iters_per_round,
        checkpoint=args.checkpoint,
        metrics_out=args.metrics_out,
        check_invariants=args.check_invariants,
        kernel_backend=args.kernel_backend,
    ))
    for line in outcome.summary_lines():
        print(line)
    if outcome.report:
        print(outcome.report)
    if args.profile:
        print(outcome.profiler.report("stage profile (wall-clock)"))
    return 0


def _cmd_eco(args: argparse.Namespace) -> int:
    from repro.service.runner import EcoRequest, run_eco_job

    outcome = run_eco_job(EcoRequest(
        input=args.input,
        baseline=args.baseline,
        baseline_checkpoint=args.baseline_checkpoint,
        out=args.out,
        checkpoint=args.checkpoint,
        rounds=args.rounds,
        iters_per_round=args.iters_per_round,
        halo=args.halo,
        compare=args.compare,
        metrics_out=args.metrics_out,
        check_invariants=args.check_invariants,
        kernel_backend=args.kernel_backend,
    ))
    for line in outcome.summary_lines():
        print(line)
    if outcome.report:
        print(outcome.report)
    if args.profile:
        print(outcome.profiler.report("stage profile (wall-clock)"))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service.runner import RouteRequest, run_route_job

    outcome = run_route_job(RouteRequest(
        input=args.input,
        grid=args.grid,
        engine=args.engine,
        metrics_out=args.metrics_out,
        check_invariants=args.check_invariants,
        kernel_backend=args.kernel_backend,
    ))
    for line in outcome.summary_lines():
        print(line)
    if outcome.report:
        print(outcome.report)
    if args.profile:
        print(outcome.profiler.report("stage profile (wall-clock)"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import PlacementService, ServiceConfig

    service = PlacementService(ServiceConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        execution=args.execution,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.job_retries,
    ))
    host, port = service.start()
    print(f"placement service on {host}:{port} (root {service.root})")

    def _stop(signum, frame):
        service.stop(f"signal:{signum}")

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    service.wait()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(root=args.root)
    request: dict = {"input": os.path.abspath(args.input)}
    if args.kind == "place":
        if args.routability:
            request["routability"] = True
        if args.iters is not None:
            request["iters"] = args.iters
        if args.rounds is not None:
            request["rounds"] = args.rounds
        if args.iters_per_round is not None:
            request["iters_per_round"] = args.iters_per_round
    elif args.kind == "eco":
        if not args.baseline:
            raise SystemExit("error: --kind eco requires --baseline")
        request["baseline"] = os.path.abspath(args.baseline)
        if args.baseline_checkpoint:
            request["baseline_checkpoint"] = os.path.abspath(
                args.baseline_checkpoint
            )
        if args.rounds is not None:
            request["rounds"] = args.rounds
        if args.iters_per_round is not None:
            request["iters_per_round"] = args.iters_per_round
    entry = client.submit(request, kind=args.kind, priority=args.priority)
    print(f"queued {entry['job_id']} (seq {entry['seq']}, "
          f"priority {entry['priority']})")
    if args.wait:
        entry = client.wait(entry["job_id"], timeout=args.timeout)
        print(_format_entry(entry))
        return 0 if entry["state"] == "DONE" else 1
    return 0


def _format_entry(entry: dict) -> str:
    line = (f"{entry['job_id']}: {entry['state']} "
            f"(attempts {entry['attempts']})")
    if entry.get("result"):
        result = entry["result"]
        if result.get("kind") == "place":
            line += f" hpwl={result['hpwl']:.0f} -> {result['out']}"
        elif result.get("kind") == "route":
            line += (f" wirelength={result['wirelength']:.0f} "
                     f"overflow={result['total_overflow']:.0f}")
        elif result.get("kind") == "eco":
            line += (f" hpwl={result['hpwl']:.0f} "
                     f"rounds={result['n_rounds']} -> {result['out']}")
    if entry.get("error"):
        line += f"\n  error: {entry['error'].strip().splitlines()[-1]}"
    return line


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(root=args.root)
    if args.job_id:
        print(_format_entry(client.status(args.job_id)))
    else:
        stats = client.stats()
        print(f"queue: {stats['queue']}  cache: {stats['cache']}")
        for entry in client.jobs():
            print(_format_entry(entry))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(root=args.root)
    entry = client.cancel(args.job_id)
    print(f"cancel requested for {entry['job_id']} "
          f"(was {entry['state']})")
    return 0


def _cmd_gradcheck(args: argparse.Namespace) -> int:
    from repro.utils.gradcheck import run_gradcheck

    report = run_gradcheck(seed=args.seed, tol=args.tol)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.evalrt import evaluate_routing

    netlist = _load_validated(args.input)
    ev = evaluate_routing(netlist)
    print(f"DRWL={ev.drwl:.0f} #DRVias={ev.n_vias:.0f} #DRVs={ev.n_drvs:.0f} "
          f"(overflow {ev.overflow_drvs:.0f}, pin-access "
          f"{ev.pin_report.total:.0f}) RT={ev.routing_time:.2f}s")
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.geometry import Grid2D
    from repro.place.config import auto_grid_dim
    from repro.route import GlobalRouter, RouterConfig
    from repro.viz import save_heatmap_ppm, save_placement_svg

    netlist = _load_validated(args.input)
    dim = auto_grid_dim(netlist.n_cells)
    grid = Grid2D(netlist.die, dim, dim)
    result = GlobalRouter(grid, RouterConfig()).route(netlist)
    svg_path = args.prefix + "_placement.svg"
    ppm_path = args.prefix + "_congestion.ppm"
    save_placement_svg(
        netlist, svg_path, congestion=result.congestion_map, grid=grid
    )
    save_heatmap_ppm(result.utilization_map, ppm_path)
    print(f"wrote {svg_path} and {ppm_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.parallel import TABLE2_DESIGNS, run_sweep
    from repro.evalrt.report import MetricRow, format_table
    from repro.synth.suite import suite_names

    kind = f"table{args.table}"
    if args.designs:
        names = args.designs
    else:
        names = suite_names() if args.table == 1 else list(TABLE2_DESIGNS)
    unknown = [n for n in names if n not in suite_names()]
    if unknown:
        raise SystemExit(f"error: unknown suite designs: {', '.join(unknown)}")

    # resolve the backend before the sweep so workers inherit the
    # exported REPRO_KERNEL_BACKEND selection
    _configure_kernels(args, None)
    result = run_sweep(
        names,
        kind=kind,
        jobs=args.jobs,
        scale=args.scale,
        seed=args.seed,
        metrics_path=args.metrics_out,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.job_retries,
        checkpoint_dir=args.checkpoint_dir,
    )
    rows = [
        MetricRow(design=r["design"], placer=r["placer"], metrics=r["metrics"])
        for r in result.rows()
    ]
    if rows:
        if args.table == 1:
            print(format_table(rows, reference_placer="Ours"))
        else:
            print(format_table(
                rows,
                keys=("DRWL", "#DRVias", "#DRVs"),
                reference_placer="+MCI+DC+DPA",
            ))
    for failed in result.errors():
        print(f"FAILED {failed.design}:\n{failed.error}")
    print(f"{len(names)} designs, jobs={result.jobs}, "
          f"{len(result.errors())} failed, wall {result.elapsed:.1f}s")
    if args.out:
        import json

        payload = {
            "kind": kind,
            "jobs": result.jobs,
            "elapsed_s": result.elapsed,
            "rows": result.rows(),
            "errors": result.error_payload(),
            "supervisor": {
                "events": result.supervisor_events,
                "designs": [
                    {
                        "design": r.design,
                        "attempts": r.attempts,
                        "job_state": r.job_state,
                    }
                    for r in result.runs
                ],
            },
        }
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.out}")
    if args.metrics_out:
        print(f"wrote merged telemetry to {args.metrics_out}")
    return 1 if result.errors() else 0


def _cmd_dse_run(args: argparse.Namespace) -> int:
    """Expand a grid spec and run every unit, persisting results."""
    from repro.dse.grid import load_spec
    from repro.dse.runner import run_grid

    spec = load_spec(args.grid)
    result = run_grid(
        spec,
        jobs=args.jobs,
        out_dir=args.out_dir,
        db_path=args.db,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.job_retries,
    )
    for unit_id, error in result.errors:
        print(f"FAILED {unit_id}:\n{error}")
    print(f"sweep {spec.name}: {len(result.units)} units, "
          f"{len(result.errors)} failed, wall {result.elapsed_s:.1f}s")
    print(f"wrote unit payloads to {args.out_dir}")
    if args.db:
        print(f"ingested into {args.db}")
    return 1 if result.errors else 0


def _cmd_dse_submit(args: argparse.Namespace) -> int:
    """Submit a grid's units to a running ``repro serve`` daemon."""
    from repro.dse.grid import load_spec
    from repro.dse.runner import submit_grid

    spec = load_spec(args.grid)
    entries = submit_grid(spec, root=args.root, priority=args.priority)
    for entry in entries:
        print(f"queued {entry['job_id']}")
    print(f"submitted {len(entries)} units from sweep {spec.name}")
    return 0


def _cmd_dse_ingest(args: argparse.Namespace) -> int:
    """Ingest payloads / telemetry / bench snapshots into the run DB."""
    from pathlib import Path

    from repro.dse.store import RunDB

    files: list = []
    for raw in args.paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.json")) + sorted(p.rglob("*.jsonl")))
        else:
            files.append(p)

    metrics = None
    sink = None
    if args.metrics_out:
        from repro.utils.metrics import JsonlSink, MetricsRegistry

        sink = JsonlSink(args.metrics_out)
        metrics = MetricsRegistry(sink=sink)
        metrics.start_run(command="dse.ingest", db=args.db)

    new = 0
    with RunDB(args.db) as db:
        for path in files:
            fresh = db.ingest_path(path)
            new += int(fresh)
            if metrics is not None:
                metrics.emit("dse.ingest", source=str(path),
                             source_kind=path.suffix.lstrip("."), new=fresh)
            print(f"{'ingested' if fresh else 'skipped (already ingested)'} {path}")
    if metrics is not None:
        metrics.close()
    print(f"{new} new of {len(files)} sources → {args.db}")
    return 0


def _cmd_dse_query(args: argparse.Namespace) -> int:
    """Run one query against the run DB and print JSON."""
    import json

    from repro.dse.store import RunDB

    with RunDB(args.db) as db:
        if args.what == "summary":
            out = db.summary()
        elif args.what == "best":
            if not args.metric:
                raise SystemExit("error: query best needs --metric")
            out = db.best_by(args.metric, placer=args.placer,
                             minimize=not args.maximize, limit=args.limit)
        elif args.what == "trend":
            if not (args.metric and args.knob):
                raise SystemExit("error: query trend needs --knob and --metric")
            out = db.trend(args.knob, args.metric, placer=args.placer)
        else:  # compare
            if not args.runs:
                raise SystemExit("error: query compare needs --runs A B")
            out = db.compare(args.runs[0], args.runs[1])
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _cmd_dse_report(args: argparse.Namespace) -> int:
    """Render the static HTML report from the run DB (+ bench history)."""
    from pathlib import Path

    from repro.dse.report import render_report
    from repro.dse.store import RunDB

    with RunDB(args.db) as db:
        if args.results:
            results = Path(args.results)
            for path in sorted(results.glob("*.json")):
                db.ingest_bench_json(path)
        path = render_report(db, args.out)
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen", help="generate a synthetic design")
    p.add_argument("design", help="suite name (e.g. fft_1) or custom label")
    p.add_argument("--cells", type=int, default=1000)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="design.bl")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("place", help="place a design file")
    p.add_argument("input")
    p.add_argument("--routability", action="store_true",
                   help="run the full Fig. 2 flow instead of WL-only")
    p.add_argument("--iters", type=int, default=1000)
    p.add_argument("--rounds", type=int, default=None, metavar="N",
                   help="cap the routability flow at N rounds "
                        "(default: the RDConfig default)")
    p.add_argument("--iters-per-round", type=int, default=None, metavar="N",
                   help="GP iterations per routability round "
                        "(default: the RDConfig default)")
    p.add_argument("--out", default="placed.bl")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write the routability-flow state here after each "
                        "round and resume from it if the file exists "
                        "(requires --routability)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage wall-clock breakdown")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="stream run telemetry to PATH as JSONL (one event "
                        "per line; appended on checkpoint resume) and print "
                        "the metrics report")
    p.add_argument("--check-invariants", choices=("off", "warn", "raise"),
                   default=None,
                   help="numeric-contract checking mode (default: the "
                        "REPRO_CHECK_INVARIANTS environment variable, or off)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend (default: the "
                        "REPRO_KERNEL_BACKEND environment variable, or auto; "
                        "numba falls back to reference when unavailable)")
    p.set_defaults(func=_cmd_place)

    p = sub.add_parser(
        "eco",
        help="incrementally re-place an edited design from a baseline",
    )
    p.add_argument("baseline",
                   help="the baseline design, ideally a placed output so "
                        "the clean region inherits legal positions")
    p.add_argument("input", help="the edited design")
    p.add_argument("--baseline-checkpoint", default=None, metavar="PATH",
                   help="the baseline flow's npz checkpoint; its best "
                        "snapshot seeds the warm start, and a null edit "
                        "resumes it bit-identically")
    p.add_argument("--out", default="eco_placed.bl")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="the ECO loop's own checkpoint: written after each "
                        "round, resumed from if the file exists")
    p.add_argument("--rounds", type=int, default=None, metavar="N",
                   help="cap the ECO routability loop at N rounds")
    p.add_argument("--iters-per-round", type=int, default=None, metavar="N",
                   help="GP iterations per ECO round")
    p.add_argument("--halo", type=int, default=1, metavar="BINS",
                   help="G-cell halo dilated around edited cells when "
                        "marking the dirty region (default 1)")
    p.add_argument("--compare", action="store_true",
                   help="also run a cold full re-place of the edited design "
                        "and report the QoR delta (slow; for validation)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage wall-clock breakdown")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="stream run telemetry to PATH as JSONL and print "
                        "the metrics report")
    p.add_argument("--check-invariants", choices=("off", "warn", "raise"),
                   default=None,
                   help="numeric-contract checking mode (default: the "
                        "REPRO_CHECK_INVARIANTS environment variable, or off)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend (default: the "
                        "REPRO_KERNEL_BACKEND environment variable, or auto)")
    p.set_defaults(func=_cmd_eco)

    p = sub.add_parser("route", help="route a placed design")
    p.add_argument("input")
    p.add_argument("--grid", type=int, default=0)
    p.add_argument("--engine", choices=("batched", "scalar"), default="batched",
                   help="routing engine (scalar = reference implementation)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage wall-clock breakdown")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="stream run telemetry to PATH as JSONL and print "
                        "the metrics report")
    p.add_argument("--check-invariants", choices=("off", "warn", "raise"),
                   default=None,
                   help="numeric-contract checking mode (default: the "
                        "REPRO_CHECK_INVARIANTS environment variable, or off)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend (default: the "
                        "REPRO_KERNEL_BACKEND environment variable, or auto)")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("bench", help="run a Table I/II sweep (parallelizable)")
    p.add_argument("--table", type=int, choices=(1, 2), default=1,
                   help="1 = placer comparison, 2 = ablation")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes; designs run isolated, one "
                        "crash yields an error entry instead of killing "
                        "the sweep (wall-clock win needs >1 CPU core)")
    p.add_argument("--designs", nargs="*", default=None,
                   help="suite design names (default: the table's full list)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write rows + errors + timing as JSON")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the merged per-design telemetry stream "
                        "(one JSONL segment per design, input order)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend for the sweep workers "
                        "(default: the REPRO_KERNEL_BACKEND environment "
                        "variable, or auto)")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="per-design wall-clock deadline in seconds, "
                        "supervisor-enforced (pooled runs; default: none)")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="S",
                   help="reap a pooled design after S seconds without a "
                        "flow progress beat (hung worker; default: off)")
    p.add_argument("--job-retries", type=int, default=1, metavar="N",
                   help="replacement attempts after an involuntary worker "
                        "death (crash/hang/timeout; default: 1)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="checkpoint each design's flows under DIR; "
                        "supervised retries resume from the last atomic "
                        "checkpoint instead of recomputing")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("serve", help="run the placement service daemon")
    p.add_argument("--root", required=True, metavar="DIR",
                   help="service state directory (queue, job artifacts, "
                        "telemetry); reusing a root resumes its queue")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = pick a free one; the resolved "
                        "address is written to <root>/service.json)")
    p.add_argument("--max-workers", type=int, default=1, metavar="N",
                   help="concurrent supervised worker processes")
    p.add_argument("--execution", choices=("supervised", "inline"),
                   default="supervised",
                   help="supervised = one worker process per job "
                        "(deadlines/heartbeats/retries); inline = run "
                        "jobs serially in the daemon sharing its warm "
                        "caches")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="per-job wall-clock deadline (supervised only)")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="S",
                   help="reap a job after S seconds without a progress "
                        "beat (supervised only)")
    p.add_argument("--job-retries", type=int, default=1, metavar="N",
                   help="replacement attempts after an involuntary "
                        "worker death")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="queue a job on a running daemon")
    p.add_argument("input", help="design file to place/route")
    p.add_argument("--root", required=True, metavar="DIR",
                   help="the daemon's service root")
    p.add_argument("--kind", choices=("place", "route", "eco"),
                   default="place")
    p.add_argument("--routability", action="store_true",
                   help="full routability flow (place jobs)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline design file (eco jobs)")
    p.add_argument("--baseline-checkpoint", default=None, metavar="PATH",
                   help="baseline flow checkpoint (eco jobs)")
    p.add_argument("--iters", type=int, default=None)
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--iters-per-round", type=int, default=None)
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first; FIFO within a priority")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print its "
                        "result (exit 1 unless DONE)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait deadline in seconds")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status", help="show daemon/job status")
    p.add_argument("--root", required=True, metavar="DIR")
    p.add_argument("job_id", nargs="?", default=None)
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued/running job")
    p.add_argument("--root", required=True, metavar="DIR")
    p.add_argument("job_id")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser(
        "gradcheck",
        help="validate analytic gradients against central differences",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tol", type=float, default=1e-4,
                   help="maximum allowed relative error per check")
    p.set_defaults(func=_cmd_gradcheck)

    p = sub.add_parser(
        "dse", help="design-space exploration: grid sweeps, run DB, reports")
    dse = p.add_subparsers(dest="dse_command", required=True)

    q = dse.add_parser("run", help="expand a grid spec and run every unit")
    q.add_argument("--grid", required=True, help="grid spec (.json or .toml)")
    q.add_argument("--jobs", type=int, default=1,
                   help="supervised worker processes (<=1 runs in-process)")
    q.add_argument("--out-dir", default="dse_out",
                   help="directory for unit payloads + manifest")
    q.add_argument("--db", default=None, help="sqlite run database to ingest into")
    q.add_argument("--job-timeout", type=float, default=None)
    q.add_argument("--heartbeat-timeout", type=float, default=None)
    q.add_argument("--job-retries", type=int, default=1)
    q.set_defaults(func=_cmd_dse_run)

    q = dse.add_parser("submit", help="submit a grid to a running daemon")
    q.add_argument("--grid", required=True)
    q.add_argument("--root", required=True, help="service root directory")
    q.add_argument("--priority", type=int, default=0)
    q.set_defaults(func=_cmd_dse_submit)

    q = dse.add_parser("ingest", help="ingest payloads/telemetry/bench JSON")
    q.add_argument("--db", required=True)
    q.add_argument("paths", nargs="+",
                   help="files or directories (*.json / *.jsonl)")
    q.add_argument("--metrics-out", default=None,
                   help="write dse.ingest telemetry JSONL here")
    q.set_defaults(func=_cmd_dse_ingest)

    q = dse.add_parser("query", help="query the run database")
    q.add_argument("what", choices=("summary", "best", "trend", "compare"))
    q.add_argument("--db", required=True)
    q.add_argument("--metric", default=None)
    q.add_argument("--knob", default=None)
    q.add_argument("--placer", default=None)
    q.add_argument("--maximize", action="store_true",
                   help="rank best descending (default ascending)")
    q.add_argument("--limit", type=int, default=10)
    q.add_argument("--runs", nargs=2, metavar=("RUN_A", "RUN_B"),
                   help="two run ids (compare)")
    q.set_defaults(func=_cmd_dse_query)

    q = dse.add_parser("report", help="render the static HTML report")
    q.add_argument("--db", required=True)
    q.add_argument("--out", default="dse_report")
    q.add_argument("--results", default=None,
                   help="also ingest results/*.json bench history first")
    q.set_defaults(func=_cmd_dse_report)

    p = sub.add_parser("eval", help="score a placed design")
    p.add_argument("input")
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser("plot", help="dump SVG/PPM visualizations")
    p.add_argument("input")
    p.add_argument("--prefix", default="design")
    p.set_defaults(func=_cmd_plot)
    return parser


def main(argv: list | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
gen     generate a synthetic design (suite name or custom size) to a file
place   place a design file (wirelength-only or full routability flow)
route   route a placed design and print congestion statistics
eval    score a placed design (DRWL / #DRVias / #DRVs)
plot    dump placement SVG and congestion heatmap PPM
bench   run a Table I/II sweep, optionally sharded across --jobs workers
gradcheck  validate analytic gradients against central differences

``place`` and ``route`` accept ``--check-invariants {off,warn,raise}``
to arm the numeric-contract layer (see :mod:`repro.utils.contracts`);
the flag overrides the ``REPRO_CHECK_INVARIANTS`` environment default.

``place``, ``route`` and ``bench`` accept ``--kernel-backend
{auto,reference,fastnp,numba}`` to select the hot-path kernel backend
(see :mod:`repro.kernels`); the flag overrides the
``REPRO_KERNEL_BACKEND`` environment default (``auto``).
"""

from __future__ import annotations

import argparse
import os
import sys


def _open_metrics(
    args: argparse.Namespace,
    command: str,
    resumed: bool = False,
    profiler=None,
):
    """Build the registry for ``--metrics-out`` (or the disabled NULL).

    Returns ``(metrics, finish)`` where ``finish()`` closes the stream
    and returns a rendered :class:`~repro.utils.metrics.MetricsReport`
    (``None`` when telemetry is disabled).  A resumed flow appends to
    the existing stream; the new segment starts with its own
    ``run.start`` event carrying ``resumed: true``.

    The registry is armed with an abort flush: a SIGTERM'd or crashed
    run emits a terminal ``run.aborted`` event (naming the profiler's
    open stages when one is attached) and flushes the buffered sink,
    so the on-disk JSONL stays valid — truncated, not torn.
    """
    from repro.utils.metrics import (
        NULL,
        JsonlSink,
        MetricsRegistry,
        MetricsReport,
        install_abort_flush,
    )

    path = getattr(args, "metrics_out", None)
    if not path:
        return NULL, lambda: None

    append = resumed and os.path.exists(path)
    metrics = MetricsRegistry(sink=JsonlSink(path, append=append))
    metrics.start_run(command=command, design=args.input, resumed=append)
    abort = install_abort_flush(metrics, profiler=profiler)

    def finish():
        metrics.close()
        abort.uninstall()
        return MetricsReport.from_jsonl(path).render(f"metrics report ({path})")

    return metrics, finish


def _configure_contracts(args: argparse.Namespace, metrics) -> None:
    """Arm the contract checker from ``--check-invariants``.

    ``None`` (flag absent) keeps the ``REPRO_CHECK_INVARIANTS``
    environment default; either way the telemetry registry is attached
    so warn-mode violations land in the ``--metrics-out`` stream.
    """
    from repro.utils import contracts

    contracts.configure(
        mode=getattr(args, "check_invariants", None), metrics=metrics
    )


def _configure_kernels(args: argparse.Namespace, metrics) -> None:
    """Select the kernel backend from ``--kernel-backend``.

    ``None`` (flag absent) keeps the ``REPRO_KERNEL_BACKEND``
    environment default; the resolved choice is exported back into the
    environment so worker subprocesses inherit it, and a
    ``kernel.backend`` telemetry event records the decision when a
    registry is attached.
    """
    from repro import kernels

    kernels.configure(getattr(args, "kernel_backend", None), metrics=metrics)


def _load_validated(path: str):
    """Load a design file and structurally validate it.

    Parse errors already name the file and line (see
    :mod:`repro.io.bookshelf`); validation failures get the same
    treatment so a truncated or hand-edited file fails with a message
    pointing at the input, not a traceback from deep inside the flow.
    """
    from repro.io import load_design
    from repro.netlist.validate import validate_netlist

    netlist = load_design(path)
    try:
        validate_netlist(netlist)
    except ValueError as exc:
        raise SystemExit(f"error: {path}: invalid design: {exc}") from exc
    return netlist


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.io import save_design
    from repro.netlist import compute_stats
    from repro.synth import SynthConfig, generate_design, suite_design, suite_names

    if args.design in suite_names():
        netlist = suite_design(args.design, scale=args.scale, seed=args.seed)
    else:
        netlist = generate_design(
            SynthConfig(name=args.design, n_cells=args.cells, seed=args.seed)
        )
    save_design(netlist, args.out)
    print(f"wrote {args.out}: {compute_stats(netlist).as_dict()}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from repro.core import RDConfig, RoutabilityDrivenPlacer
    from repro.detail import detailed_place
    from repro.io import save_design
    from repro.legalize import check_legal, legalize
    from repro.place import GPConfig, converge_placement, initial_placement
    from repro.utils.profile import StageProfiler
    from repro.wirelength import hpwl

    netlist = _load_validated(args.input)
    gp = GPConfig(max_iters=args.iters)
    profiler = StageProfiler()
    resuming = args.checkpoint is not None and os.path.exists(args.checkpoint)
    metrics, finish_metrics = _open_metrics(
        args, "place", resumed=resuming, profiler=profiler
    )
    _configure_contracts(args, metrics)
    _configure_kernels(args, metrics)
    if args.routability:
        placer = RoutabilityDrivenPlacer(
            netlist, RDConfig(gp=gp), profiler=profiler, metrics=metrics
        )
        result = placer.run(
            checkpoint_path=args.checkpoint,
            resume=args.checkpoint is not None,
        )
        if result.resumed_from_round >= 0:
            print(f"resumed from checkpoint after round "
                  f"{result.resumed_from_round}")
        print(f"routability rounds: {result.n_rounds} "
              f"(best round {result.best_round})")
        if result.guard_events:
            print(f"guard events: {len(result.guard_events)} "
                  f"(see logs for details)")
        congestion = result.final_routing.congestion_map
        grid = placer.gp.grid
    else:
        initial_placement(netlist, gp.seed)
        converge_placement(netlist, gp, profiler=profiler, metrics=metrics)
        congestion = None
        grid = None
    with profiler.timer("flow.legalize"):
        legalize(netlist)
    with profiler.timer("flow.detail"):
        detailed_place(netlist, passes=2, grid=grid, congestion=congestion)
    issues = check_legal(netlist)
    print(f"hpwl={hpwl(netlist):.0f} legality="
          f"{'CLEAN' if not issues else f'{len(issues)} issues'}")
    save_design(netlist, args.out)
    print(f"wrote {args.out}")
    report = finish_metrics()
    if report:
        print(report)
    if args.profile:
        print(profiler.report("stage profile (wall-clock)"))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.geometry import Grid2D
    from repro.place.config import auto_grid_dim
    from repro.route import GlobalRouter, RouterConfig
    from repro.utils.profile import StageProfiler

    netlist = _load_validated(args.input)
    dim = args.grid or auto_grid_dim(netlist.n_cells)
    grid = Grid2D(netlist.die, dim, dim)
    profiler = StageProfiler()
    metrics, finish_metrics = _open_metrics(args, "route", profiler=profiler)
    _configure_contracts(args, metrics)
    _configure_kernels(args, metrics)
    config = RouterConfig(engine=args.engine)
    result = GlobalRouter(
        grid, config, profiler=profiler, metrics=metrics
    ).route(netlist)
    util = result.utilization_map
    print(f"segments={result.n_segments} wirelength={result.wirelength:.0f} "
          f"vias={result.n_vias:.0f}")
    print(f"utilization mean={util.mean():.3f} max={util.max():.2f} "
          f"overflow={result.total_overflow:.0f} "
          f"congested={(result.congestion_map > 0).mean() * 100:.1f}%")
    report = finish_metrics()
    if report:
        print(report)
    if args.profile:
        print(profiler.report("stage profile (wall-clock)"))
    return 0


def _cmd_gradcheck(args: argparse.Namespace) -> int:
    from repro.utils.gradcheck import run_gradcheck

    report = run_gradcheck(seed=args.seed, tol=args.tol)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.evalrt import evaluate_routing

    netlist = _load_validated(args.input)
    ev = evaluate_routing(netlist)
    print(f"DRWL={ev.drwl:.0f} #DRVias={ev.n_vias:.0f} #DRVs={ev.n_drvs:.0f} "
          f"(overflow {ev.overflow_drvs:.0f}, pin-access "
          f"{ev.pin_report.total:.0f}) RT={ev.routing_time:.2f}s")
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.geometry import Grid2D
    from repro.place.config import auto_grid_dim
    from repro.route import GlobalRouter, RouterConfig
    from repro.viz import save_heatmap_ppm, save_placement_svg

    netlist = _load_validated(args.input)
    dim = auto_grid_dim(netlist.n_cells)
    grid = Grid2D(netlist.die, dim, dim)
    result = GlobalRouter(grid, RouterConfig()).route(netlist)
    svg_path = args.prefix + "_placement.svg"
    ppm_path = args.prefix + "_congestion.ppm"
    save_placement_svg(
        netlist, svg_path, congestion=result.congestion_map, grid=grid
    )
    save_heatmap_ppm(result.utilization_map, ppm_path)
    print(f"wrote {svg_path} and {ppm_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.parallel import TABLE2_DESIGNS, run_sweep
    from repro.evalrt.report import MetricRow, format_table
    from repro.synth.suite import suite_names

    kind = f"table{args.table}"
    if args.designs:
        names = args.designs
    else:
        names = suite_names() if args.table == 1 else list(TABLE2_DESIGNS)
    unknown = [n for n in names if n not in suite_names()]
    if unknown:
        raise SystemExit(f"error: unknown suite designs: {', '.join(unknown)}")

    # resolve the backend before the sweep so workers inherit the
    # exported REPRO_KERNEL_BACKEND selection
    _configure_kernels(args, None)
    result = run_sweep(
        names,
        kind=kind,
        jobs=args.jobs,
        scale=args.scale,
        seed=args.seed,
        metrics_path=args.metrics_out,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.job_retries,
        checkpoint_dir=args.checkpoint_dir,
    )
    rows = [
        MetricRow(design=r["design"], placer=r["placer"], metrics=r["metrics"])
        for r in result.rows()
    ]
    if rows:
        if args.table == 1:
            print(format_table(rows, reference_placer="Ours"))
        else:
            print(format_table(
                rows,
                keys=("DRWL", "#DRVias", "#DRVs"),
                reference_placer="+MCI+DC+DPA",
            ))
    for failed in result.errors():
        print(f"FAILED {failed.design}:\n{failed.error}")
    print(f"{len(names)} designs, jobs={result.jobs}, "
          f"{len(result.errors())} failed, wall {result.elapsed:.1f}s")
    if args.out:
        import json

        payload = {
            "kind": kind,
            "jobs": result.jobs,
            "elapsed_s": result.elapsed,
            "rows": result.rows(),
            "errors": result.error_payload(),
            "supervisor": {
                "events": result.supervisor_events,
                "designs": [
                    {
                        "design": r.design,
                        "attempts": r.attempts,
                        "job_state": r.job_state,
                    }
                    for r in result.runs
                ],
            },
        }
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.out}")
    if args.metrics_out:
        print(f"wrote merged telemetry to {args.metrics_out}")
    return 1 if result.errors() else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen", help="generate a synthetic design")
    p.add_argument("design", help="suite name (e.g. fft_1) or custom label")
    p.add_argument("--cells", type=int, default=1000)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="design.bl")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("place", help="place a design file")
    p.add_argument("input")
    p.add_argument("--routability", action="store_true",
                   help="run the full Fig. 2 flow instead of WL-only")
    p.add_argument("--iters", type=int, default=1000)
    p.add_argument("--out", default="placed.bl")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write the routability-flow state here after each "
                        "round and resume from it if the file exists "
                        "(requires --routability)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage wall-clock breakdown")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="stream run telemetry to PATH as JSONL (one event "
                        "per line; appended on checkpoint resume) and print "
                        "the metrics report")
    p.add_argument("--check-invariants", choices=("off", "warn", "raise"),
                   default=None,
                   help="numeric-contract checking mode (default: the "
                        "REPRO_CHECK_INVARIANTS environment variable, or off)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend (default: the "
                        "REPRO_KERNEL_BACKEND environment variable, or auto; "
                        "numba falls back to reference when unavailable)")
    p.set_defaults(func=_cmd_place)

    p = sub.add_parser("route", help="route a placed design")
    p.add_argument("input")
    p.add_argument("--grid", type=int, default=0)
    p.add_argument("--engine", choices=("batched", "scalar"), default="batched",
                   help="routing engine (scalar = reference implementation)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage wall-clock breakdown")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="stream run telemetry to PATH as JSONL and print "
                        "the metrics report")
    p.add_argument("--check-invariants", choices=("off", "warn", "raise"),
                   default=None,
                   help="numeric-contract checking mode (default: the "
                        "REPRO_CHECK_INVARIANTS environment variable, or off)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend (default: the "
                        "REPRO_KERNEL_BACKEND environment variable, or auto)")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("bench", help="run a Table I/II sweep (parallelizable)")
    p.add_argument("--table", type=int, choices=(1, 2), default=1,
                   help="1 = placer comparison, 2 = ablation")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes; designs run isolated, one "
                        "crash yields an error entry instead of killing "
                        "the sweep (wall-clock win needs >1 CPU core)")
    p.add_argument("--designs", nargs="*", default=None,
                   help="suite design names (default: the table's full list)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write rows + errors + timing as JSON")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the merged per-design telemetry stream "
                        "(one JSONL segment per design, input order)")
    p.add_argument("--kernel-backend",
                   choices=("auto", "reference", "fastnp", "numba"),
                   default=None,
                   help="hot-path kernel backend for the sweep workers "
                        "(default: the REPRO_KERNEL_BACKEND environment "
                        "variable, or auto)")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="per-design wall-clock deadline in seconds, "
                        "supervisor-enforced (pooled runs; default: none)")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="S",
                   help="reap a pooled design after S seconds without a "
                        "flow progress beat (hung worker; default: off)")
    p.add_argument("--job-retries", type=int, default=1, metavar="N",
                   help="replacement attempts after an involuntary worker "
                        "death (crash/hang/timeout; default: 1)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="checkpoint each design's flows under DIR; "
                        "supervised retries resume from the last atomic "
                        "checkpoint instead of recomputing")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "gradcheck",
        help="validate analytic gradients against central differences",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tol", type=float, default=1e-4,
                   help="maximum allowed relative error per check")
    p.set_defaults(func=_cmd_gradcheck)

    p = sub.add_parser("eval", help="score a placed design")
    p.add_argument("input")
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser("plot", help="dump SVG/PPM visualizations")
    p.add_argument("input")
    p.add_argument("--prefix", default="design")
    p.set_defaults(func=_cmd_plot)
    return parser


def main(argv: list | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Synthetic ISPD-2015-like benchmark designs.

The ISPD 2015 contest LEF/DEF files are not redistributable here, so
:mod:`repro.synth.generator` produces deterministic synthetic designs
with the same *structural* features the paper's techniques react to:
clustered standard cells (local congestion), long inter-cluster net
bundles (global congestion), fixed macros that pinch routing corridors,
peripheral I/O anchors, and M2 PG rails.  :mod:`repro.synth.suite`
instantiates the 20 design names of Table I at laptop scale.
"""

from repro.synth.generator import SynthConfig, generate_design
from repro.synth.suite import SUITE, suite_design, suite_names, toy_design

__all__ = [
    "SynthConfig",
    "generate_design",
    "SUITE",
    "suite_design",
    "suite_names",
    "toy_design",
]

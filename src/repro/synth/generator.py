"""Deterministic synthetic design generator.

Produces netlists whose routing behaviour mimics the ISPD 2015 suite at
reduced scale.  The generator controls the two congestion mechanisms
the paper distinguishes (Fig. 1):

* **local congestion** — cells are assigned to latent *clusters*; nets
  drawn mostly within a cluster pull those cells together during
  placement, creating over-dense placement regions;
* **global congestion** — a fraction of nets ("bundles") connect cells
  of two distant clusters, so many wires traverse the G-cells between
  them even where few cells sit.

All randomness flows from one :class:`numpy.random.Generator`, seeded
per design name, so every design is bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.netlist.data import CellSpec, NetSpec, PGRailSpec, PinSpec
from repro.netlist.netlist import Netlist
from repro.utils.rng import make_rng, seed_from_name


@dataclass
class SynthConfig:
    """Parameters of one synthetic design."""

    name: str = "synthetic"
    n_cells: int = 1000
    n_macros: int = 2
    n_io: int = 24
    utilization: float = 0.65
    aspect: float = 1.0
    n_clusters: int = 8
    cluster_affinity: float = 0.8
    bundle_fraction: float = 0.06
    bundle_width: int = 12
    nets_per_cell: float = 1.1
    row_height: float = 1.0
    site_width: float = 0.25
    macro_area_fraction: float = 0.12
    pg_rail_pitch_rows: int = 2
    pg_vertical_pitch: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cells < 4:
            raise ValueError("need at least 4 cells")
        if not 0.05 <= self.utilization <= 0.98:
            raise ValueError("utilization out of range")
        if not 0.0 <= self.cluster_affinity <= 1.0:
            raise ValueError("cluster_affinity must be in [0, 1]")


_NET_DEGREE_CHOICES = np.array([2, 3, 4, 5, 6, 8, 12])
_NET_DEGREE_PROBS = np.array([0.55, 0.18, 0.10, 0.07, 0.05, 0.03, 0.02])


def generate_design(config: SynthConfig) -> Netlist:
    """Generate a full synthetic design from a configuration."""
    rng = make_rng(seed_from_name(config.name, config.seed))

    cells, die = _make_cells_and_die(config, rng)
    macros = _place_macros(config, die, rng, cells)
    ios = _make_io_cells(config, die, rng)
    all_cells = cells + macros + ios

    latent, cluster_of, centers = _latent_positions(config, die, rng, macros, ios)
    nets = _make_nets(config, rng, cells, macros, ios, cluster_of, centers)
    rails = _make_pg_rails(config, die)

    netlist = Netlist.from_specs(
        name=config.name,
        die=die,
        cells=all_cells,
        nets=nets,
        row_height=config.row_height,
        site_width=config.site_width,
        pg_rails=rails,
    )
    # start movable cells at their latent positions: a plausible
    # "already clustered" state for direct routing studies; placers
    # re-initialise anyway.
    for i, cell in enumerate(all_cells):
        if not cell.fixed:
            netlist.x[i], netlist.y[i] = latent[i]
    netlist.clamp_to_die()
    return netlist


# ----------------------------------------------------------------------
# pieces
# ----------------------------------------------------------------------
def _make_cells_and_die(config: SynthConfig, rng: np.random.Generator):
    widths = config.site_width * rng.integers(2, 9, config.n_cells)
    total_std_area = float((widths * config.row_height).sum())
    macro_area = total_std_area * config.macro_area_fraction / max(
        1.0 - config.macro_area_fraction, 0.02
    )
    core_area = (total_std_area + macro_area) / config.utilization
    width = math.sqrt(core_area * config.aspect)
    height = core_area / width
    # snap height to whole rows
    n_rows = max(int(round(height / config.row_height)), 4)
    height = n_rows * config.row_height
    width = core_area / height
    die = Rect(0.0, 0.0, width, height)

    cells = [
        CellSpec(
            name=f"c{i}",
            width=float(widths[i]),
            height=config.row_height,
        )
        for i in range(config.n_cells)
    ]
    return cells, die


def _place_macros(
    config: SynthConfig,
    die: Rect,
    rng: np.random.Generator,
    cells: list,
) -> list:
    """Fixed macro blocks; placed greedily without overlap."""
    if config.n_macros <= 0:
        return []
    total_std_area = sum(c.area for c in cells)
    macro_area_total = total_std_area * config.macro_area_fraction / max(
        1.0 - config.macro_area_fraction, 0.02
    )
    per_macro = macro_area_total / config.n_macros
    macros: list[CellSpec] = []
    placed: list[Rect] = []
    for k in range(config.n_macros):
        aspect = rng.uniform(0.6, 1.6)
        w = min(math.sqrt(per_macro * aspect), 0.45 * die.width)
        h = min(per_macro / w, 0.45 * die.height)
        w = max(w, 2 * config.row_height)
        h = max(h, 2 * config.row_height)
        # snap macro height to rows so rails cut cleanly around them
        h = max(round(h / config.row_height), 2) * config.row_height
        margin_x = 0.03 * die.width
        margin_y = 0.03 * die.height
        for _ in range(200):
            cx = rng.uniform(die.xlo + w / 2 + margin_x, die.xhi - w / 2 - margin_x)
            cy = rng.uniform(die.ylo + h / 2 + margin_y, die.yhi - h / 2 - margin_y)
            rect = Rect.from_center(cx, cy, w, h)
            if all(not rect.expanded(0.05).intersects(p) for p in placed):
                placed.append(rect)
                macros.append(
                    CellSpec(
                        name=f"m{k}",
                        width=w,
                        height=h,
                        x=cx,
                        y=cy,
                        fixed=True,
                        macro=True,
                    )
                )
                break
    return macros


def _make_io_cells(config: SynthConfig, die: Rect, rng: np.random.Generator) -> list:
    """Tiny fixed anchor cells on the die periphery."""
    ios: list[CellSpec] = []
    per_side = max((config.n_io + 3) // 4, 1)
    for k in range(config.n_io):
        side = k % 4
        # deterministic spread along each side so pads never overlap
        t = (k // 4 + 0.5) / per_side
        size = config.site_width
        if side == 0:
            x, y = die.xlo + size / 2, die.ylo + t * die.height
        elif side == 1:
            x, y = die.xhi - size / 2, die.ylo + t * die.height
        elif side == 2:
            x, y = die.xlo + t * die.width, die.ylo + size / 2
        else:
            x, y = die.xlo + t * die.width, die.yhi - size / 2
        ios.append(
            CellSpec(name=f"io{k}", width=size, height=size, x=x, y=y, fixed=True)
        )
    return ios


def _latent_positions(
    config: SynthConfig,
    die: Rect,
    rng: np.random.Generator,
    macros: list,
    ios: list,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Latent geometric home of every cell, used to draw local nets.

    Returns ``(latent, cluster_of, centers)``: positions for all cells
    (std cells, then macros, then I/O), the cluster id of each standard
    cell, and the cluster center coordinates.
    """
    centers = np.column_stack(
        [
            rng.uniform(die.xlo + 0.1 * die.width, die.xhi - 0.1 * die.width, config.n_clusters),
            rng.uniform(die.ylo + 0.1 * die.height, die.yhi - 0.1 * die.height, config.n_clusters),
        ]
    )
    sigma = 0.08 * min(die.width, die.height)
    cluster_of = rng.integers(0, config.n_clusters, config.n_cells)
    latent = centers[cluster_of] + rng.normal(0.0, sigma, (config.n_cells, 2))
    latent[:, 0] = np.clip(latent[:, 0], die.xlo, die.xhi)
    latent[:, 1] = np.clip(latent[:, 1], die.ylo, die.yhi)

    fixed_pos = [(m.x, m.y) for m in macros] + [(p.x, p.y) for p in ios]
    if fixed_pos:
        latent = np.vstack([latent, np.array(fixed_pos)])
    return latent, cluster_of, centers


def _sample_degree(rng: np.random.Generator) -> int:
    return int(rng.choice(_NET_DEGREE_CHOICES, p=_NET_DEGREE_PROBS))


def _pin_offsets(rng: np.random.Generator, cell: CellSpec) -> tuple[float, float]:
    """A pin location inside the cell, snapped to a small internal grid."""
    ox = rng.uniform(-0.4, 0.4) * cell.width
    oy = rng.uniform(-0.4, 0.4) * cell.height
    return float(ox), float(oy)


def _make_nets(
    config: SynthConfig,
    rng: np.random.Generator,
    cells: list,
    macros: list,
    ios: list,
    cluster_of: np.ndarray,
    centers: np.ndarray,
) -> list:
    n_cells = len(cells)
    members: list[np.ndarray] = [
        np.flatnonzero(cluster_of == c) for c in range(config.n_clusters)
    ]
    members = [m if len(m) else np.arange(n_cells) for m in members]
    all_specs = cells + macros + ios
    n_regular = max(int(config.nets_per_cell * n_cells), 1)
    nets: list[NetSpec] = []

    def pin_of(idx: int) -> PinSpec:
        spec = all_specs[idx]
        ox, oy = _pin_offsets(rng, spec)
        return PinSpec(cell=spec.name, offset_x=ox, offset_y=oy)

    # regular nets: mostly intra-cluster
    for k in range(n_regular):
        degree = _sample_degree(rng)
        seed_cell = int(rng.integers(0, n_cells))
        home = members[cluster_of[seed_cell]]
        chosen = {seed_cell}
        while len(chosen) < degree:
            if rng.random() < config.cluster_affinity:
                cand = int(home[rng.integers(0, len(home))])
            else:
                cand = int(rng.integers(0, n_cells))
            chosen.add(cand)
        nets.append(NetSpec(name=f"n{k}", pins=[pin_of(i) for i in sorted(chosen)]))

    # bundles: groups of 2-pin nets between two distant clusters -> the
    # "many nets traverse a G-cell" global congestion of Fig. 1(a)
    n_bundles = max(int(config.bundle_fraction * n_regular / max(config.bundle_width, 1)), 1)
    for b in range(n_bundles):
        ca = b % config.n_clusters
        dists = np.linalg.norm(centers - centers[ca], axis=1)
        cb = int(np.argmax(dists))
        if ca == cb:
            cb = (ca + 1) % config.n_clusters
        ma, mb = members[ca], members[cb]
        for w in range(config.bundle_width):
            ia = int(ma[rng.integers(0, len(ma))])
            ib = int(mb[rng.integers(0, len(mb))])
            if ia == ib:
                continue
            nets.append(
                NetSpec(name=f"bundle{b}_{w}", pins=[pin_of(ia), pin_of(ib)])
            )

    # I/O nets: each pad connects into a random cluster
    for k, io in enumerate(ios):
        home = members[int(rng.integers(0, config.n_clusters))]
        degree = int(rng.integers(2, 5))
        chosen = set()
        while len(chosen) < degree - 1:
            chosen.add(int(home[rng.integers(0, len(home))]))
        pins = [pin_of(n_cells + len(macros) + k)] + [pin_of(i) for i in sorted(chosen)]
        nets.append(NetSpec(name=f"ionet{k}", pins=pins))

    return nets


def _make_pg_rails(config: SynthConfig, die: Rect) -> list:
    """Horizontal M2 PG rails every ``pg_rail_pitch_rows`` rows,

    plus optional vertical power straps.
    """
    rails: list[PGRailSpec] = []
    thickness = 0.1 * config.row_height
    n_rows = int(round(die.height / config.row_height))
    for r in range(0, n_rows + 1, max(config.pg_rail_pitch_rows, 1)):
        yc = die.ylo + r * config.row_height
        ylo = max(yc - thickness / 2, die.ylo)
        yhi = min(yc + thickness / 2, die.yhi)
        if yhi <= ylo:
            continue
        rails.append(
            PGRailSpec(rect=Rect(die.xlo, ylo, die.xhi, yhi), horizontal=True)
        )
    if config.pg_vertical_pitch > 0:
        x = die.xlo + config.pg_vertical_pitch
        while x < die.xhi:
            rails.append(
                PGRailSpec(
                    rect=Rect(
                        x - thickness / 2, die.ylo, x + thickness / 2, die.yhi
                    ),
                    horizontal=False,
                )
            )
            x += config.pg_vertical_pitch
    return rails

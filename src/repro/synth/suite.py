"""The 20-design evaluation suite of Table I, at laptop scale.

Each entry mirrors an ISPD 2015 contest design by name and by *relative
character* — the knobs are chosen so that designs the paper reports as
congestion-heavy (``edit_dist_a``, ``matrix_mult_b``, ``superblue12``)
are the hard ones here too: higher utilization, stronger clustering,
more/denser net bundles, more macros.  Absolute sizes are scaled down
~100x so the whole table regenerates in minutes on a CPU.

Designs marked with a dagger in the paper (fence regions removed) carry
``fence_removed=True`` purely as metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.netlist.netlist import Netlist
from repro.synth.generator import SynthConfig, generate_design


@dataclass(frozen=True)
class SuiteEntry:
    """One Table I design: generator config + paper metadata."""

    config: SynthConfig
    fence_removed: bool = False


def _cfg(name: str, **kwargs) -> SynthConfig:
    return SynthConfig(name=name, **kwargs)


SUITE: dict[str, SuiteEntry] = {
    # des_perf family: mid-size, moderately congested
    "des_perf_1": SuiteEntry(_cfg(
        "des_perf_1", n_cells=1600, n_macros=0, utilization=0.72,
        n_clusters=10, cluster_affinity=0.82, bundle_fraction=0.08)),
    "des_perf_a": SuiteEntry(_cfg(
        "des_perf_a", n_cells=1700, n_macros=4, utilization=0.58,
        n_clusters=10, cluster_affinity=0.85, bundle_fraction=0.10,
        macro_area_fraction=0.22), fence_removed=True),
    "des_perf_b": SuiteEntry(_cfg(
        "des_perf_b", n_cells=1700, n_macros=3, utilization=0.55,
        n_clusters=9, cluster_affinity=0.78, bundle_fraction=0.06,
        macro_area_fraction=0.18), fence_removed=True),
    # edit_dist_a: the DRV-heaviest mid-size design in Table I
    "edit_dist_a": SuiteEntry(_cfg(
        "edit_dist_a", n_cells=2200, n_macros=6, utilization=0.80,
        n_clusters=7, cluster_affinity=0.92, bundle_fraction=0.16,
        bundle_width=18, macro_area_fraction=0.24), fence_removed=True),
    # fft family: small designs
    "fft_1": SuiteEntry(_cfg(
        "fft_1", n_cells=800, n_macros=0, utilization=0.68,
        n_clusters=6, cluster_affinity=0.80, bundle_fraction=0.07)),
    "fft_2": SuiteEntry(_cfg(
        "fft_2", n_cells=800, n_macros=0, utilization=0.62,
        n_clusters=6, cluster_affinity=0.76, bundle_fraction=0.05)),
    "fft_a": SuiteEntry(_cfg(
        "fft_a", n_cells=900, n_macros=2, utilization=0.50,
        n_clusters=6, cluster_affinity=0.72, bundle_fraction=0.04,
        macro_area_fraction=0.20)),
    "fft_b": SuiteEntry(_cfg(
        "fft_b", n_cells=900, n_macros=2, utilization=0.74,
        n_clusters=6, cluster_affinity=0.88, bundle_fraction=0.12,
        macro_area_fraction=0.20)),
    # matrix_mult family: larger, macro-dominated
    "matrix_mult_1": SuiteEntry(_cfg(
        "matrix_mult_1", n_cells=2600, n_macros=0, utilization=0.73,
        n_clusters=12, cluster_affinity=0.84, bundle_fraction=0.09)),
    "matrix_mult_2": SuiteEntry(_cfg(
        "matrix_mult_2", n_cells=2600, n_macros=0, utilization=0.75,
        n_clusters=12, cluster_affinity=0.85, bundle_fraction=0.09)),
    "matrix_mult_a": SuiteEntry(_cfg(
        "matrix_mult_a", n_cells=3000, n_macros=5, utilization=0.60,
        n_clusters=12, cluster_affinity=0.80, bundle_fraction=0.07,
        macro_area_fraction=0.25)),
    "matrix_mult_b": SuiteEntry(_cfg(
        "matrix_mult_b", n_cells=3000, n_macros=5, utilization=0.78,
        n_clusters=10, cluster_affinity=0.90, bundle_fraction=0.14,
        bundle_width=16, macro_area_fraction=0.25)),
    "matrix_mult_c": SuiteEntry(_cfg(
        "matrix_mult_c", n_cells=3000, n_macros=5, utilization=0.62,
        n_clusters=11, cluster_affinity=0.80, bundle_fraction=0.07,
        macro_area_fraction=0.24), fence_removed=True),
    # pci_bridge32: small with macros
    "pci_bridge32_a": SuiteEntry(_cfg(
        "pci_bridge32_a", n_cells=1000, n_macros=3, utilization=0.58,
        n_clusters=7, cluster_affinity=0.80, bundle_fraction=0.06,
        macro_area_fraction=0.22), fence_removed=True),
    "pci_bridge32_b": SuiteEntry(_cfg(
        "pci_bridge32_b", n_cells=1000, n_macros=3, utilization=0.50,
        n_clusters=7, cluster_affinity=0.74, bundle_fraction=0.04,
        macro_area_fraction=0.22), fence_removed=True),
    # superblue family: the big ones (scaled down less aggressively)
    "superblue11_a": SuiteEntry(_cfg(
        "superblue11_a", n_cells=4500, n_macros=8, utilization=0.55,
        n_clusters=16, cluster_affinity=0.78, bundle_fraction=0.05,
        macro_area_fraction=0.20), fence_removed=True),
    "superblue12": SuiteEntry(_cfg(
        "superblue12", n_cells=5000, n_macros=4, utilization=0.82,
        n_clusters=14, cluster_affinity=0.93, bundle_fraction=0.18,
        bundle_width=20, macro_area_fraction=0.15)),
    "superblue14": SuiteEntry(_cfg(
        "superblue14", n_cells=4200, n_macros=6, utilization=0.52,
        n_clusters=15, cluster_affinity=0.74, bundle_fraction=0.04,
        macro_area_fraction=0.18)),
    "superblue16_a": SuiteEntry(_cfg(
        "superblue16_a", n_cells=4200, n_macros=5, utilization=0.60,
        n_clusters=14, cluster_affinity=0.79, bundle_fraction=0.06,
        macro_area_fraction=0.18), fence_removed=True),
    "superblue19": SuiteEntry(_cfg(
        "superblue19", n_cells=3800, n_macros=5, utilization=0.64,
        n_clusters=13, cluster_affinity=0.81, bundle_fraction=0.07,
        macro_area_fraction=0.18)),
}


def suite_names() -> list[str]:
    """Design names in Table I order."""
    return list(SUITE.keys())


def suite_design(name: str, scale: float = 1.0, seed: int = 0) -> Netlist:
    """Generate one suite design.

    Parameters
    ----------
    scale:
        Multiplier on the cell count (e.g. ``0.25`` for quick tests).
    seed:
        Extra seed folded into the per-name seed.
    """
    if name not in SUITE:
        raise KeyError(f"unknown suite design {name!r}; see suite_names()")
    cfg = SUITE[name].config
    if scale != 1.0 or seed != 0:
        cfg = replace(cfg, n_cells=max(int(cfg.n_cells * scale), 50), seed=seed)
    return generate_design(cfg)


def toy_design(
    n_cells: int = 120,
    seed: int = 0,
    utilization: float = 0.6,
    n_macros: int = 1,
    **overrides,
) -> Netlist:
    """Small deterministic design for unit tests."""
    cfg = SynthConfig(
        name=f"toy{n_cells}",
        n_cells=n_cells,
        n_macros=n_macros,
        n_io=8,
        utilization=utilization,
        n_clusters=4,
        seed=seed,
        **overrides,
    )
    return generate_design(cfg)

"""Momentum-based cell inflation (Sec. III-B, Eq. 11-12).

Per-cell inflation rate with momentum over the history of congestion
observations::

    r_i^t      = clamp(r_i^{t-1} + dr_i^t, r_min, r_max)
    dr_i^t     = alpha * dr_i^{t-1} + (1 - alpha) * s_i^t
    s_i^t      = delta_i^t * C_i^t

``C_i^t`` is the congestion of the G-cell under cell i's center at the
t-th inflation round.  The *deflation* decision ``delta_i^t`` (Eq. 12)
fires when the cell just moved from an above-average to a below-average
congestion region — then a negative correction proportional to the
normalized congestion drop lets the cell shrink back (down to
``r_min < 1``), freeing the resources monotone schemes waste.

Inflated sizes are used only in the *density* system: the rate scales
the footprint area, so width and height are each scaled by
``sqrt(rate)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist
from repro.utils.contracts import CONTRACTS


@dataclass
class InflationConfig:
    """Paper defaults: r in [0.9, 2.0], momentum alpha = 0.4."""

    r_min: float = 0.9
    r_max: float = 2.0
    alpha: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        if self.r_min > self.r_max:
            raise ValueError("r_min must not exceed r_max")
        if self.r_min <= 0.0:
            raise ValueError("r_min must be positive")


class MomentumInflation:
    """Stateful inflation-rate tracker over routability rounds."""

    def __init__(self, n_cells: int, config: InflationConfig | None = None) -> None:
        self.config = config or InflationConfig()
        self.rates = np.ones(n_cells, dtype=np.float64)  # r^0 = 1
        self.delta_rates = np.zeros(n_cells, dtype=np.float64)
        self._prev_cong: np.ndarray | None = None
        self._prev_mean: float = 0.0
        self.round = 0
        # diagnostics of the most recent update: cells whose Eq. 12
        # correction fired negative this round.  Part of the resumable
        # state — a resumed flow must emit the same rd.round telemetry
        # as the uninterrupted run.
        self.last_n_deflated = 0

    # ------------------------------------------------------------------
    def update(self, congestion_at_cells: np.ndarray) -> np.ndarray:
        """One inflation round (Eq. 11-12); returns the new rates.

        Parameters
        ----------
        congestion_at_cells:
            ``C_i^t`` per cell (Eq. 3 values sampled at cell centers).
        """
        cfg = self.config
        c = np.array(congestion_at_cells, dtype=np.float64, copy=True)
        if len(c) != len(self.rates):
            raise ValueError("congestion vector length mismatch")
        # a poisoned congestion map (NaN from a degenerate capacity,
        # Inf from an overflow blow-up) must not corrupt the rate
        # state: NaN observations read as "no information" (0), Inf
        # and huge finite values saturate (unclamped, products inside
        # the Eq. 12 correction overflow back to Inf/NaN), and the
        # momentum terms can never go non-finite
        np.nan_to_num(c, copy=False, nan=0.0, posinf=1e12, neginf=-1e12)
        np.clip(c, -1e12, 1e12, out=c)
        self.round += 1

        self.last_n_deflated = 0
        if self.round == 1:
            # paper: dr^1 = C^1
            self.delta_rates = c.copy()
        else:
            s = self._correction(c)
            self.delta_rates = cfg.alpha * self.delta_rates + (1.0 - cfg.alpha) * s
            # the deflation strength divides by the congestion means;
            # near-zero means can still push the correction to Inf (and
            # Inf * 0 to NaN) — saturate so the carried momentum stays
            # usable for every later round
            np.nan_to_num(
                self.delta_rates, copy=False, nan=0.0, posinf=1e12, neginf=-1e12
            )

        self.rates = np.clip(self.rates + self.delta_rates, cfg.r_min, cfg.r_max)
        self._prev_cong = c.copy()
        self._prev_mean = float(c.mean()) if len(c) else 0.0
        if CONTRACTS.enabled:
            # Eq. 11 clamp: rates in [r_min, r_max] and finite for any
            # (even NaN/Inf-poisoned) congestion input
            CONTRACTS.check_range(
                "inflation.update", "rates", self.rates, cfg.r_min, cfg.r_max
            )
            CONTRACTS.check_array(
                "inflation.update", "delta_rates", self.delta_rates, finite=True
            )
        return self.rates

    def _correction(self, c: np.ndarray) -> np.ndarray:
        """``s_i^t = delta_i^t * C_i^t`` with Eq. (12) deflation."""
        mean_now = float(c.mean()) if len(c) else 0.0
        prev = self._prev_cong
        assert prev is not None
        delta = np.ones_like(c)
        if mean_now > 0.0 and self._prev_mean > 0.0:
            deflate = (c < mean_now) & (prev > self._prev_mean)
            self.last_n_deflated = int(deflate.sum())
            if deflate.any():
                strength = np.abs(
                    (prev * mean_now - c * self._prev_mean)
                    / (self._prev_mean * mean_now)
                )
                delta = np.where(deflate, -strength, delta)
        # s_i^t = delta_i^t * C_i^t.  For deflating cells the paper
        # multiplies the (negative) strength by the *current* congestion;
        # a cell that escaped to a zero-congestion G-cell therefore stops
        # growing (s = 0) rather than shrinking — it keeps its inflated
        # footprint so it is not pulled straight back into the hotspot.
        return delta * c

    # ------------------------------------------------------------------
    def size_scale(self) -> np.ndarray:
        """Per-cell width/height multiplier: area scales by the rate."""
        return np.sqrt(self.rates)

    def reset(self) -> None:
        """Forget all momentum and return every rate to 1.0."""
        self.rates.fill(1.0)
        self.delta_rates.fill(0.0)
        self._prev_cong = None
        self._prev_mean = 0.0
        self.round = 0
        self.last_n_deflated = 0

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable snapshot of the rate/momentum state (arrays copied)."""
        return {
            "rates": self.rates.copy(),
            "delta_rates": self.delta_rates.copy(),
            "prev_cong": None if self._prev_cong is None else self._prev_cong.copy(),
            "prev_mean": self._prev_mean,
            "round": self.round,
            "last_n_deflated": self.last_n_deflated,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact resume)."""
        self.rates = np.array(state["rates"], dtype=np.float64, copy=True)
        self.delta_rates = np.array(
            state["delta_rates"], dtype=np.float64, copy=True
        )
        prev = state.get("prev_cong")
        self._prev_cong = None if prev is None else np.array(prev, dtype=np.float64)
        self._prev_mean = float(state["prev_mean"])
        self.round = int(state["round"])
        # snapshots written before this field existed default to 0
        self.last_n_deflated = int(state.get("last_n_deflated", 0))


def congestion_at_cell_centers(
    netlist: Netlist, grid: Grid2D, congestion: np.ndarray
) -> np.ndarray:
    """``C_i``: congestion of the G-cell under each cell center."""
    return grid.value_at(congestion, netlist.x, netlist.y)

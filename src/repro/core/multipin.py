"""Algorithm 2 (lines 7-15): congestion gradients for multi-pin cells.

Cells with more pins than the design average attract many nets and
aggravate global congestion where routing resources are scarce.  Those
of them sitting in a G-cell whose congestion exceeds a threshold (0.7
in the paper) receive the raw congestion-field gradient of Eq. (1), so
they are pushed out of the congested region directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.congestion_field import CongestionField
from repro.geometry.grid import Grid2D
from repro.kernels import get_backend
from repro.netlist.netlist import Netlist
from repro.utils.contracts import CONTRACTS


def multi_pin_cell_gradients(
    netlist: Netlist,
    grid: Grid2D,
    congestion: np.ndarray,
    field: CongestionField,
    threshold: float = 0.7,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell gradients for the selected multi-pin cells.

    Selection (lines 9-11 of Alg. 2): pin count strictly above the
    average pin count over all cells, *and* congestion of the G-cell
    under the cell center strictly above ``threshold``.

    Returns ``(grad_x, grad_y, selected_mask)``; non-selected cells get
    zeros.
    """
    n_cells = netlist.n_cells
    grad_x = np.zeros(n_cells)
    grad_y = np.zeros(n_cells)
    if n_cells == 0:
        return grad_x, grad_y, np.zeros(0, dtype=bool)

    pin_counts = netlist.cell_pin_counts()
    n_bar = float(pin_counts.mean())
    cell_cong = get_backend().sample_nearest(congestion, grid, netlist.x, netlist.y)
    selected = (pin_counts > n_bar) & (cell_cong > threshold) & netlist.movable
    if selected.any():
        ids = np.flatnonzero(selected)
        gx, gy = field.gradient_at(
            netlist.x[ids], netlist.y[ids], netlist.cell_area[ids]
        )
        grad_x[ids] = gx
        grad_y[ids] = gy
    if CONTRACTS.enabled:
        site = "multipin.multi_pin_cell_gradients"
        CONTRACTS.check_array(site, "grad_x", grad_x, shape=(n_cells,), finite=True)
        CONTRACTS.check_array(site, "grad_y", grad_y, shape=(n_cells,), finite=True)
    return grad_x, grad_y, selected

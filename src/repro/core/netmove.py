"""Algorithm 1: congestion gradient update for two-pin net moving.

For every two-pin net a *virtual cell* is placed at the most congested
point sampled along the pin-to-pin segment (Eq. 6-8).  The congestion
field gradient at the virtual cell is projected onto the segment's unit
normal (the most efficient direction for the whole net to leave the
congested region, Fig. 3), and each endpoint cell receives that
projected gradient scaled by ``L / (2 d_iv)`` (Eq. 9) — cells close to
the congestion move more.

Everything is vectorized over all two-pin nets of the design: sampling
positions form an ``(n_nets, S)`` matrix, the congestion lookup and the
arg-max over samples are single numpy expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.congestion_field import CongestionField
from repro.geometry.grid import Grid2D
from repro.kernels import get_backend
from repro.netlist.netlist import Netlist
from repro.utils.contracts import CONTRACTS


@dataclass
class NetMoveConfig:
    """Knobs of the two-pin net moving technique.

    Attributes
    ----------
    max_samples:
        Cap on candidate points per net.  Eq. (6) samples one point
        per traversed G-cell; nets spanning more G-cells than this are
        sampled evenly (a faithful approximation for very long nets).
    min_congestion:
        Nets whose best sampled congestion value does not exceed this
        receive no gradient (there is nothing to move away from).
    max_scale:
        Clamp on the ``L / (2 d_iv)`` factor, guarding against the
        virtual cell landing arbitrarily close to a pin.
    """

    max_samples: int = 48
    min_congestion: float = 0.0
    max_scale: float = 8.0


def _two_pin_endpoints(netlist: Netlist):
    """Pin indices (p1, p2) of every two-pin net."""
    degrees = netlist.net_degrees()
    two_pin = np.flatnonzero(degrees == 2)
    starts = netlist.net_pin_starts[two_pin]
    p1 = netlist.net_pin_order[starts]
    p2 = netlist.net_pin_order[starts + 1]
    return two_pin, p1, p2


def virtual_cell_positions(
    netlist: Netlist,
    grid: Grid2D,
    congestion: np.ndarray,
    config: NetMoveConfig | None = None,
):
    """Locate the virtual cell of every two-pin net (Eq. 6-8).

    Returns a dict of arrays over two-pin nets: net ids, endpoint pin
    indices, virtual-cell coordinates, the congestion value there, and
    the ``active`` mask of nets that actually cross congestion.
    """
    cfg = config or NetMoveConfig()
    two_pin, p1, p2 = _two_pin_endpoints(netlist)
    px, py = netlist.pin_positions()
    x1, y1 = px[p1], py[p1]
    x2, y2 = px[p2], py[p2]
    n = len(two_pin)
    if n == 0:
        empty = np.zeros(0)
        return {
            "net_ids": two_pin,
            "p1": p1,
            "p2": p2,
            "xv": empty,
            "yv": empty.copy(),
            "congestion": empty.copy(),
            "active": np.zeros(0, dtype=bool),
        }

    # Eq. (6): number of G-cells traversed
    k = np.maximum(
        np.floor(np.abs(x1 - x2) / grid.dx),
        np.floor(np.abs(y1 - y2) / grid.dy),
    ).astype(np.int64)
    k = np.clip(k, 1, cfg.max_samples)

    # Eq. (7)-(8): interior sampling, congestion lookup and per-net
    # arg-max run in the active kernel backend
    xv, yv, cbest = get_backend().netmove_virtual(x1, y1, x2, y2, k, congestion, grid)
    active = cbest > cfg.min_congestion
    return {
        "net_ids": two_pin,
        "p1": p1,
        "p2": p2,
        "xv": xv,
        "yv": yv,
        "congestion": cbest,
        "active": active,
    }


def two_pin_net_gradients(
    netlist: Netlist,
    grid: Grid2D,
    congestion: np.ndarray,
    field: CongestionField,
    virtual_area: float,
    config: NetMoveConfig | None = None,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Per-cell congestion gradients from all two-pin nets (Alg. 1).

    Parameters
    ----------
    congestion:
        Eq. (3) map used to pick virtual-cell locations.
    field:
        Congestion field whose gradient drives the move.
    virtual_area:
        Charge of a virtual cell ("same size as a standard cell").

    Returns
    -------
    (grad_x, grad_y, info):
        Gradient arrays over all cells (zero for cells not on an
        active two-pin net) and the virtual-cell info dict (with the
        per-net projected gradients added, for inspection and the
        C(x, y) bookkeeping).
    """
    cfg = config or NetMoveConfig()
    info = virtual_cell_positions(netlist, grid, congestion, cfg)
    n_cells = netlist.n_cells
    grad_x = np.zeros(n_cells)
    grad_y = np.zeros(n_cells)
    # a two-pin net whose pins sit on the *same* cell has no segment to
    # move perpendicular to: applying Eq. (9) to both endpoints would
    # deposit the projected gradient twice onto one cell, doubling its
    # force.  Such nets are masked out of the update.
    act = info["active"]
    if act.any():
        same_cell = netlist.pin_cell[info["p1"]] == netlist.pin_cell[info["p2"]]
        act = act & ~same_cell
        info["active"] = act
    if not act.any():
        info["lx"] = np.zeros(0)
        return grad_x, grad_y, info

    p1 = info["p1"][act]
    p2 = info["p2"][act]
    xv = info["xv"][act]
    yv = info["yv"][act]
    px, py = netlist.pin_positions()
    x1, y1 = px[p1], py[p1]
    x2, y2 = px[p2], py[p2]

    # minimization gradient of the virtual cell (line 3 of Alg. 1)
    gvx, gvy = field.gradient_at(xv, yv, virtual_area)

    # unit normal of the segment (line 5); sign is irrelevant for the
    # projection but we orient it along the gradient as in the paper
    dx = x2 - x1
    dy = y2 - y1
    length = np.hypot(dx, dy)
    safe_len = np.maximum(length, 1e-12)
    nx = -dy / safe_len
    ny = dx / safe_len
    flip = (nx * gvx + ny * gvy) < 0
    nx = np.where(flip, -nx, nx)
    ny = np.where(flip, -ny, ny)

    # projection onto the normal (line 8)
    dot = gvx * nx + gvy * ny
    perp_x = dot * nx
    perp_y = dot * ny

    # Eq. (9): scale by L / (2 d_iv) per endpoint.  Both endpoints'
    # deposits are concatenated (p1 block first) into one kernel-layer
    # scatter; entry order matches the original sequential per-endpoint
    # np.add.at calls, so the accumulated sums are bit-identical.
    d1 = np.hypot(xv - x1, yv - y1)
    scale1 = np.clip(length / (2.0 * np.maximum(d1, 1e-12)), 0.0, cfg.max_scale)
    d2 = np.hypot(xv - x2, yv - y2)
    scale2 = np.clip(length / (2.0 * np.maximum(d2, 1e-12)), 0.0, cfg.max_scale)
    cells = np.concatenate((netlist.pin_cell[p1], netlist.pin_cell[p2]))
    vx = np.concatenate((scale1 * perp_x, scale2 * perp_x))
    vy = np.concatenate((scale1 * perp_y, scale2 * perp_y))
    get_backend().scatter_add_pair(grad_x, grad_y, cells, vx, vy)

    grad_x[netlist.cell_fixed] = 0.0
    grad_y[netlist.cell_fixed] = 0.0
    if CONTRACTS.enabled:
        CONTRACTS.check_array(
            "netmove.two_pin_net_gradients", "grad_x", grad_x,
            shape=(n_cells,), finite=True,
        )
        CONTRACTS.check_array(
            "netmove.two_pin_net_gradients", "grad_y", grad_y,
            shape=(n_cells,), finite=True,
        )
    info["perp_x"] = perp_x
    info["perp_y"] = perp_y
    return grad_x, grad_y, info

"""The integrated routability-driven global placement flow (Fig. 2).

Stages, in the paper's order:

1. select PG rails from macro positions (pin-accessibility prep);
2. wirelength-driven global placement (Xplace stand-in) for the
   initial solution;
3. routability loop — each round:
   a. global routing (Z-shape router) -> congestion map (Eq. 3) and
      utilization (the congestion Poisson charge);
   b. momentum-based cell inflation update (MCI, Eq. 11-12);
   c. dynamic pin-accessibility density adjustment (DPA, Eq. 13-15);
   d. solve problem (5) with Nesterov, where the congestion gradient
      is assembled per Alg. 1 + Alg. 2 and weighted by Eq. (10) (DC);
   repeated until C(x, y) stops decreasing or the round cap;
4. hand the result to legalization / detailed placement (separate
   modules — see :mod:`repro.legalize` and :mod:`repro.detail`).

Each of MCI / DC / DPA can be disabled independently, which is exactly
the ablation axis of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.congestion_field import CongestionField
from repro.core.inflation import InflationConfig, MomentumInflation
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.netmove import NetMoveConfig, two_pin_net_gradients
from repro.core.pgrails import rail_area_map, select_pg_rails
from repro.core.pinaccess import PinAccessConfig, pg_density_charge
from repro.core.weights import congestion_penalty_weight, count_cells_in_congestion
from repro.netlist.netlist import Netlist
from repro.place.config import GPConfig
from repro.place.global_placer import GlobalPlacer
from repro.place.initial import initial_placement
from repro.route.config import RouterConfig
from repro.route.router import GlobalRouter, RoutingResult
from repro.utils.logging import get_logger
from repro.utils.profile import StageProfiler
from repro.utils.timer import Timer
from repro.wirelength.hpwl import hpwl as hpwl_of

logger = get_logger("core.rd_placer")


@dataclass
class RDConfig:
    """Configuration of the routability-driven flow.

    ``enable_mci`` / ``enable_dc`` / ``enable_dpa`` toggle the paper's
    three techniques (Table II ablation axis).
    """

    gp: GPConfig = field(default_factory=GPConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    netmove: NetMoveConfig = field(default_factory=NetMoveConfig)
    pinaccess: PinAccessConfig = field(default_factory=PinAccessConfig)
    inflation_mode: str = "momentum"  # "momentum" (MCI) | "present" | "off"
    pg_mode: str = "dynamic"  # "dynamic" (DPA) | "static" | "off"
    enable_dc: bool = True
    max_rounds: int = 8
    iters_per_round: int = 50
    multipin_threshold: float = 0.7
    patience: int = 2
    c_improve_tol: float = 1e-3
    # skip/stop the routability loop when the routed congestion is
    # negligible: there is nothing to mitigate, and perturbing a
    # converged placement can only hurt
    stop_mean_congestion: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.iters_per_round < 1:
            raise ValueError("iters_per_round must be >= 1")
        if self.inflation_mode not in ("momentum", "present", "off"):
            raise ValueError(f"unknown inflation_mode {self.inflation_mode!r}")
        if self.pg_mode not in ("dynamic", "static", "off"):
            raise ValueError(f"unknown pg_mode {self.pg_mode!r}")

    @property
    def enable_mci(self) -> bool:
        """Momentum-based cell inflation active (Table II column MCI)."""
        return self.inflation_mode == "momentum"

    @property
    def enable_dpa(self) -> bool:
        """Dynamic pin-accessibility density active (column DPA)."""
        return self.pg_mode == "dynamic"


@dataclass
class RoundRecord:
    """Diagnostics of one routability round."""

    round_id: int
    c_value: float
    mean_congestion: float
    max_congestion: float
    congested_fraction: float
    total_overflow: float
    hpwl: float
    lambda2: float
    n_congested_cells: int
    mean_inflation: float
    max_inflation: float


@dataclass
class RDResult:
    """Outcome of the full routability-driven global placement."""

    netlist: Netlist
    rounds: list
    final_routing: RoutingResult
    selected_rails: list
    placement_time: float
    initial_gp_iters: int
    best_round: int = -1
    profile: dict = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def series(self, key: str) -> list:
        return [getattr(r, key) for r in self.rounds]


class RoutabilityDrivenPlacer:
    """Run the Fig. 2 flow on a netlist (positions mutated in place)."""

    def __init__(
        self,
        netlist: Netlist,
        config: RDConfig | None = None,
        profiler: StageProfiler | None = None,
    ) -> None:
        self.netlist = netlist
        self.config = config or RDConfig()
        self.profiler = profiler or StageProfiler()
        self.gp = GlobalPlacer(netlist, self.config.gp, profiler=self.profiler)
        self.router = GlobalRouter(
            self.gp.grid, self.config.router, profiler=self.profiler
        )
        self.inflation = MomentumInflation(netlist.n_cells, self.config.inflation)
        std = netlist.movable & ~netlist.cell_macro
        self.virtual_area = (
            float(netlist.cell_area[std].mean()) if std.any() else 1.0
        )
        self.last_lambda2 = 0.0

    # ------------------------------------------------------------------
    def run(self, skip_initial_gp: bool = False) -> RDResult:
        """Execute the full flow.

        Parameters
        ----------
        skip_initial_gp:
            When True, assume ``netlist`` already holds a
            wirelength-driven global placement (used by benchmarks
            that share one initial placement across placers).
        """
        cfg = self.config
        timer = Timer().start()

        selected_rails: list = []
        rail_area = self.gp.grid.zeros()
        if cfg.pg_mode == "dynamic":
            selected_rails = select_pg_rails(self.netlist)
            rail_area = rail_area_map(selected_rails, self.gp.grid)
            logger.info("selected %d PG rail pieces", len(selected_rails))
        elif cfg.pg_mode == "static":
            # Xplace-Route-style: all rails, adjusted once before
            # placement, independent of congestion
            rail_area = rail_area_map(self.netlist.pg_rails, self.gp.grid)
            self.gp.extra_static_charge = cfg.pinaccess.density_scale * rail_area

        if not skip_initial_gp:
            from repro.place.global_placer import converge_placement

            with self.profiler.timer("rd.initial_gp"):
                initial_placement(self.netlist, cfg.gp.seed)
                converge_placement(self.netlist, cfg.gp, profiler=self.profiler)
        initial_iters = len(self.gp.history)

        rounds: list[RoundRecord] = []
        best_c = np.inf
        stall = 0
        # best-placement checkpoint: the loop perturbs a converged
        # placement, so the final round is not necessarily the best
        # one.  Round 0 is the incoming (wirelength-driven) placement;
        # keeping the lowest-overflow snapshot guarantees the flow
        # never returns something worse than its own starting point.
        best_score = np.inf
        best_positions: tuple[np.ndarray, np.ndarray] | None = None
        best_routing: RoutingResult | None = None
        best_round = -1

        with self.profiler.timer("rd.route"):
            routing = self.router.route(self.netlist)
        hpwl_ref = max(hpwl_of(self.netlist), 1e-12)
        for round_id in range(cfg.max_rounds):
            self.profiler.count("rd.rounds")
            score = self._routing_score(routing, hpwl_of(self.netlist), hpwl_ref)
            if score < best_score:
                best_score = score
                best_positions = (self.netlist.x.copy(), self.netlist.y.copy())
                best_routing = routing
                best_round = round_id
            cong = routing.congestion
            c_map = cong.congestion
            fld = CongestionField(self.gp.grid, cong.utilization)

            cell_cong = self.gp.grid.value_at(
                c_map, self.netlist.x, self.netlist.y
            )
            if cfg.inflation_mode == "momentum":
                with self.profiler.timer("rd.inflate"):
                    rates = self.inflation.update(cell_cong)
                    self.gp.size_scale = np.sqrt(self._budgeted_rates(rates))
            elif cfg.inflation_mode == "present":
                # present-congestion-only inflation ([3, 5] style):
                # the rate follows the current map with no history, so
                # cells deflate instantly after leaving a hotspot
                with self.profiler.timer("rd.inflate"):
                    rates = np.clip(
                        1.0 + cell_cong,
                        self.config.inflation.r_min,
                        self.config.inflation.r_max,
                    )
                    self.gp.size_scale = np.sqrt(self._budgeted_rates(rates))

            if cfg.pg_mode == "dynamic":
                with self.profiler.timer("rd.pinaccess"):
                    self.gp.extra_static_charge = pg_density_charge(
                        self.gp.grid, rail_area, c_map, cfg.pinaccess
                    )

            if cfg.enable_dc:
                self.gp.extra_grad_fn = self._make_congestion_grad(fld, c_map)
            else:
                self.gp.extra_grad_fn = None

            with self.profiler.timer("rd.record"):
                record = self._record_round(round_id, routing, fld, c_map)
            rounds.append(record)
            if record.mean_congestion < cfg.stop_mean_congestion:
                logger.info(
                    "round %d: congestion negligible (%.2e), stopping",
                    round_id,
                    record.mean_congestion,
                )
                break
            if record.hpwl > 1.15 * hpwl_ref:
                # runaway guard: on globally saturated designs the
                # inflation/congestion forces can enter a spreading
                # spiral (longer wires -> more demand -> more
                # spreading); once wirelength departs this far from
                # the seed, further rounds only dig deeper
                logger.info(
                    "round %d: wirelength runaway (%.0f vs seed %.0f), stopping",
                    round_id,
                    record.hpwl,
                    hpwl_ref,
                )
                break
            logger.info(
                "round %d: C=%.4e mean_cong=%.4f hpwl=%.4e lambda2=%.3e",
                round_id,
                record.c_value,
                record.mean_congestion,
                record.hpwl,
                record.lambda2,
            )

            # stop when C(x, y) no longer decreases (Fig. 2 exit arc)
            if record.c_value < best_c * (1.0 - cfg.c_improve_tol):
                best_c = record.c_value
                stall = 0
            else:
                stall += 1
                if stall >= cfg.patience:
                    break

            self.gp.reset_solver()
            # inclusive of the gp.* stages recorded inside the solver
            with self.profiler.timer("rd.nesterov"):
                self.gp.run(
                    max_iters=cfg.iters_per_round, min_iters=cfg.iters_per_round
                )
            with self.profiler.timer("rd.route"):
                routing = self.router.route(self.netlist)

        # the loop's very last routing may beat every checkpoint
        final_score = self._routing_score(routing, hpwl_of(self.netlist), hpwl_ref)
        if final_score < best_score:
            best_positions = None
            best_routing = routing
            best_round = len(rounds)

        if best_positions is not None:
            self.netlist.x[:] = best_positions[0]
            self.netlist.y[:] = best_positions[1]
            routing = best_routing if best_routing is not None else routing
            logger.info("restored best placement from round %d", best_round)

        timer.stop()
        return RDResult(
            netlist=self.netlist,
            rounds=rounds,
            final_routing=routing,
            selected_rails=selected_rails,
            placement_time=timer.elapsed,
            initial_gp_iters=initial_iters,
            best_round=best_round,
            profile=self.profiler.as_dict(),
        )

    def _budgeted_rates(self, rates: np.ndarray) -> np.ndarray:
        """Cap total inflated area at the whitespace budget.

        On high-utilization dies, unconstrained inflation can push the
        total (inflated) movable area past what the die holds, after
        which no amount of spreading resolves the density — placement
        and wirelength blow up together.  When the requested rates
        exceed ``budget_fraction x`` the placeable capacity, all rates
        are shrunk toward 1 proportionally (standard inflation-budget
        practice).
        """
        nl = self.netlist
        mv = nl.movable
        areas = nl.cell_area[mv]
        requested = float((areas * rates[mv]).sum())
        fixed_area = float(nl.cell_area[~mv].sum())
        budget = 0.95 * self.config.gp.target_density * (
            nl.die.area - fixed_area
        )
        if requested <= budget:
            return rates
        base = float(areas.sum())
        extra = requested - base
        if extra <= 0:
            return rates
        k = max((budget - base) / extra, 0.0)
        logger.info("inflation budget hit: scaling rate excess by %.3f", k)
        return 1.0 + (rates - 1.0) * k

    @staticmethod
    def _routing_score(
        routing: RoutingResult, cur_hpwl: float, ref_hpwl: float
    ) -> float:
        """Checkpoint score.

        Squared per-G-cell overflow (the quantity the detailed-routing
        violation count tracks) times a quadratic wirelength penalty
        relative to the incoming placement: flattening hotspots by
        doubling every wire is not an improvement — longer wires mean
        proportionally more demand once routed at the finer
        evaluation resolution.
        """
        g = routing.grid
        h_over = np.maximum(g.h_demand - g.h_cap, 0.0)
        v_over = np.maximum(g.v_demand - g.v_cap, 0.0)
        sq = float((h_over**2).sum() + (v_over**2).sum())
        wl_factor = max(cur_hpwl / max(ref_hpwl, 1e-12), 1.0)
        return sq * wl_factor

    # ------------------------------------------------------------------
    def _make_congestion_grad(self, fld: CongestionField, c_map: np.ndarray):
        """Closure evaluated by the placer at every solver iteration.

        Assembles CGrad per Alg. 2 (two-pin net moving + multi-pin
        cells) at the *current* positions against this round's fixed
        congestion field, then scales it by Eq. (10).
        """
        nl = self.netlist
        grid = self.gp.grid
        cfg = self.config
        n_congested = count_cells_in_congestion(nl, grid, c_map)

        def _grad() -> tuple[np.ndarray, np.ndarray]:
            net_gx, net_gy, _ = two_pin_net_gradients(
                nl, grid, c_map, fld, self.virtual_area, cfg.netmove
            )
            cell_gx, cell_gy, _ = multi_pin_cell_gradients(
                nl, grid, c_map, fld, cfg.multipin_threshold
            )
            gx = net_gx + cell_gx
            gy = net_gy + cell_gy
            l1 = float(np.abs(gx).sum() + np.abs(gy).sum())
            lam2 = congestion_penalty_weight(
                self.gp.last_wl_grad_l1, l1, n_congested, nl.n_cells
            )
            self.last_lambda2 = lam2
            return lam2 * gx, lam2 * gy

        return _grad

    def _record_round(
        self,
        round_id: int,
        routing: RoutingResult,
        fld: CongestionField,
        c_map: np.ndarray,
    ) -> RoundRecord:
        nl = self.netlist
        grid = self.gp.grid
        cfg = self.config

        # C(x, y) over V' = selected multi-pin cells + virtual cells
        from repro.core.netmove import virtual_cell_positions

        info = virtual_cell_positions(nl, grid, c_map, cfg.netmove)
        act = info["active"]
        c_value = 0.0
        if act.any():
            c_value += fld.penalty(
                info["xv"][act], info["yv"][act], self.virtual_area
            )
        _, _, selected = multi_pin_cell_gradients(
            nl, grid, c_map, fld, cfg.multipin_threshold
        )
        if selected.any():
            ids = np.flatnonzero(selected)
            c_value += fld.penalty(nl.x[ids], nl.y[ids], nl.cell_area[ids])

        from repro.wirelength.hpwl import hpwl

        n_congested = count_cells_in_congestion(nl, grid, c_map)
        return RoundRecord(
            round_id=round_id,
            c_value=c_value,
            mean_congestion=float(c_map.mean()),
            max_congestion=float(c_map.max()),
            congested_fraction=float((c_map > 0).mean()),
            total_overflow=routing.total_overflow,
            hpwl=hpwl(nl),
            lambda2=self.last_lambda2,
            n_congested_cells=n_congested,
            mean_inflation=float((self.gp.size_scale**2).mean()),
            max_inflation=float((self.gp.size_scale**2).max()),
        )

"""The integrated routability-driven global placement flow (Fig. 2).

Stages, in the paper's order:

1. select PG rails from macro positions (pin-accessibility prep);
2. wirelength-driven global placement (Xplace stand-in) for the
   initial solution;
3. routability loop — each round:
   a. global routing (Z-shape router) -> congestion map (Eq. 3) and
      utilization (the congestion Poisson charge);
   b. momentum-based cell inflation update (MCI, Eq. 11-12);
   c. dynamic pin-accessibility density adjustment (DPA, Eq. 13-15);
   d. solve problem (5) with Nesterov, where the congestion gradient
      is assembled per Alg. 1 + Alg. 2 and weighted by Eq. (10) (DC);
   repeated until C(x, y) stops decreasing or the round cap;
4. hand the result to legalization / detailed placement (separate
   modules — see :mod:`repro.legalize` and :mod:`repro.detail`).

Each of MCI / DC / DPA can be disabled independently, which is exactly
the ablation axis of Table II.

Robustness layer
----------------
The loop never returns garbage and never dies mid-flow:

* every round snapshots positions + inflation state + congestion
  score; the lowest-score snapshot is restored at the end, and a
  diverged or crashed round *rolls back* to it before continuing;
* congestion maps are sanitized (NaN/Inf scrubbed) before they feed
  inflation, DPA or the congestion gradient, and the recovery is
  reported in that round's record;
* the whole loop state can be checkpointed to disk after each round
  (``checkpoint_path``) and resumed bit-identically (``resume=True``),
  so an interrupted flow continues instead of restarting.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.congestion_field import CongestionField
from repro.core.inflation import InflationConfig, MomentumInflation
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.netmove import NetMoveConfig, two_pin_net_gradients
from repro.core.pgrails import rail_area_map, select_pg_rails
from repro.core.pinaccess import PinAccessConfig, pg_density_charge
from repro.core.weights import congestion_penalty_weight, count_cells_in_congestion
from repro.geometry.rect import Rect
from repro.netlist.data import PGRailSpec
from repro.netlist.netlist import Netlist
from repro.place.config import GPConfig
from repro.place.global_placer import GlobalPlacer
from repro.place.initial import initial_placement
from repro.route.config import RouterConfig
from repro.route.router import GlobalRouter, RoutingResult
from repro.utils import faults, heartbeat
from repro.utils.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    backup_path,
    read_checkpoint_with_fallback,
    write_checkpoint,
)
from repro.utils.contracts import CONTRACTS
from repro.utils.guards import GuardEvent, GuardLog, all_finite, scrub_nonfinite
from repro.utils.logging import get_logger
from repro.utils.metrics import NULL
from repro.utils.profile import StageProfiler
from repro.utils.timer import Timer
from repro.wirelength.hpwl import hpwl as hpwl_of

logger = get_logger("core.rd_placer")


def _checkpoint_candidates(path: str) -> bool:
    """True when the checkpoint or its ``.bak`` predecessor exists."""
    return os.path.exists(path) or os.path.exists(backup_path(path))


@dataclass
class RDConfig:
    """Configuration of the routability-driven flow.

    ``enable_mci`` / ``enable_dc`` / ``enable_dpa`` toggle the paper's
    three techniques (Table II ablation axis).
    """

    gp: GPConfig = field(default_factory=GPConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    netmove: NetMoveConfig = field(default_factory=NetMoveConfig)
    pinaccess: PinAccessConfig = field(default_factory=PinAccessConfig)
    inflation_mode: str = "momentum"  # "momentum" (MCI) | "present" | "off"
    pg_mode: str = "dynamic"  # "dynamic" (DPA) | "static" | "off"
    enable_dc: bool = True
    max_rounds: int = 8
    iters_per_round: int = 50
    multipin_threshold: float = 0.7
    patience: int = 2
    c_improve_tol: float = 1e-3
    # skip/stop the routability loop when the routed congestion is
    # negligible: there is nothing to mitigate, and perturbing a
    # converged placement can only hurt
    stop_mean_congestion: float = 1e-3
    # consecutive failed (rolled-back) rounds tolerated before the
    # loop gives up and returns the best snapshot
    max_round_failures: int = 2

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.iters_per_round < 1:
            raise ValueError("iters_per_round must be >= 1")
        if self.inflation_mode not in ("momentum", "present", "off"):
            raise ValueError(f"unknown inflation_mode {self.inflation_mode!r}")
        if self.pg_mode not in ("dynamic", "static", "off"):
            raise ValueError(f"unknown pg_mode {self.pg_mode!r}")
        if self.max_round_failures < 1:
            raise ValueError("max_round_failures must be >= 1")

    @property
    def enable_mci(self) -> bool:
        """Momentum-based cell inflation active (Table II column MCI)."""
        return self.inflation_mode == "momentum"

    @property
    def enable_dpa(self) -> bool:
        """Dynamic pin-accessibility density active (column DPA)."""
        return self.pg_mode == "dynamic"


@dataclass
class RoundRecord:
    """Diagnostics of one routability round.

    ``recovery`` lists human-readable notes of every guard action taken
    while preparing this round (scrubbed congestion maps, rollbacks of
    a previous failed round); ``router_fallbacks`` counts batched->
    scalar routing degradations in the pass that produced this round's
    congestion; ``guard_trips`` is the cumulative solver guard-trip
    count at record time.

    ``n_deflated`` counts cells whose Eq. 12 deflation correction fired
    in this round's MCI update.  ``netmove_grad_l1`` /
    ``multipin_grad_l1`` are the L1 norms of the Alg. 1 / Alg. 2
    gradients at the *last* solver evaluation before this record (zero
    in round 0, where no congestion gradient has run yet).
    ``dpa_bins`` / ``dpa_charge`` summarise this round's dynamic
    pin-accessibility adjustment: bins receiving extra density and the
    total extra charge (Eq. 14-15).
    """

    round_id: int
    c_value: float
    mean_congestion: float
    max_congestion: float
    congested_fraction: float
    total_overflow: float
    hpwl: float
    lambda2: float
    n_congested_cells: int
    mean_inflation: float
    max_inflation: float
    recovery: list = field(default_factory=list)
    router_fallbacks: int = 0
    guard_trips: int = 0
    n_deflated: int = 0
    netmove_grad_l1: float = 0.0
    multipin_grad_l1: float = 0.0
    dpa_bins: int = 0
    dpa_charge: float = 0.0


@dataclass
class RDResult:
    """Outcome of the full routability-driven global placement."""

    netlist: Netlist
    rounds: list
    final_routing: RoutingResult
    selected_rails: list
    placement_time: float
    initial_gp_iters: int
    best_round: int = -1
    profile: dict = field(default_factory=dict)
    guard_events: list = field(default_factory=list)
    resumed_from_round: int = -1

    @property
    def n_rounds(self) -> int:
        """Number of completed routability rounds."""
        return len(self.rounds)

    def series(self, key: str) -> list:
        """Per-round trajectory of one :class:`RoundRecord` field."""
        return [getattr(r, key) for r in self.rounds]


@dataclass
class _FlowState:
    """Everything the routability loop mutates between rounds.

    Kept in one object so a round can be checkpointed to disk and the
    loop resumed from it bit-identically (the current routing is *not*
    part of the state: the router is stateless, so it is recomputed
    from the positions on resume).
    """

    next_round: int = 0
    rounds: list = field(default_factory=list)
    hpwl_ref: float = 1.0
    best_score: float = np.inf
    best_positions: tuple | None = None
    best_inflation: dict | None = None
    best_size_scale: np.ndarray | None = None
    best_round: int = -1
    best_c: float = np.inf
    stall: int = 0
    selected_rails: list = field(default_factory=list)
    rail_area: np.ndarray | None = None
    initial_iters: int = 0
    routing: RoutingResult | None = None
    best_routing: RoutingResult | None = None  # in-memory only
    resumed_from_round: int = -1


class RoutabilityDrivenPlacer:
    """Run the Fig. 2 flow on a netlist (positions mutated in place)."""

    def __init__(
        self,
        netlist: Netlist,
        config: RDConfig | None = None,
        profiler: StageProfiler | None = None,
        metrics=None,
    ) -> None:
        self.netlist = netlist
        self.config = config or RDConfig()
        self.profiler = profiler or StageProfiler()
        self.metrics = metrics if metrics is not None else NULL
        self.gp = GlobalPlacer(
            netlist, self.config.gp, profiler=self.profiler, metrics=self.metrics
        )
        self.router = GlobalRouter(
            self.gp.grid,
            self.config.router,
            profiler=self.profiler,
            metrics=self.metrics,
        )
        self.inflation = MomentumInflation(netlist.n_cells, self.config.inflation)
        std = netlist.movable & ~netlist.cell_macro
        self.virtual_area = (
            float(netlist.cell_area[std].mean()) if std.any() else 1.0
        )
        self.last_lambda2 = 0.0
        # L1 norms of the Alg. 1 / Alg. 2 gradients at the most recent
        # solver evaluation (telemetry; see RoundRecord)
        self.last_netmove_l1 = 0.0
        self.last_multipin_l1 = 0.0
        # (bins adjusted, total charge) of the most recent DPA update
        self._last_dpa = (0, 0.0)
        self.recovery_log = GuardLog()
        self._pending_recovery: list = []

    # ------------------------------------------------------------------
    def run(
        self,
        skip_initial_gp: bool = False,
        checkpoint_path: str | None = None,
        resume: bool = False,
    ) -> RDResult:
        """Execute the full flow.

        Parameters
        ----------
        skip_initial_gp:
            When True, assume ``netlist`` already holds a
            wirelength-driven global placement (used by benchmarks
            that share one initial placement across placers).
        checkpoint_path:
            When set, the loop state is written there after the
            initial routing and after every completed round (atomic
            ``.npz``), so an interrupted flow can be continued.
        resume:
            When True and ``checkpoint_path`` exists, restore the loop
            from it instead of starting over; the continuation is
            bit-identical to the uninterrupted run.
        """
        cfg = self.config
        timer = Timer().start()

        state: _FlowState | None = None
        if resume and checkpoint_path and _checkpoint_candidates(checkpoint_path):
            try:
                state = self._load_flow_checkpoint(checkpoint_path)
            except CheckpointCorruptError as exc:
                # torn write with no good predecessor: a cold start is
                # the correct recovery (the retry recomputes), but the
                # damage is reported, never silently absorbed
                self.recovery_log.record(
                    GuardEvent(
                        site="rd.checkpoint",
                        kind="checkpoint_corrupt",
                        detail=str(exc),
                        action="cold_start",
                    )
                )
                if self.metrics.enabled:
                    self.metrics.emit(
                        "rd.recovery",
                        round=-1,
                        guard="checkpoint_corrupt",
                        detail=str(exc),
                        action="cold_start",
                    )
                logger.warning(
                    "checkpoint unusable, starting flow from scratch: %s", exc
                )
        if state is not None:
            if self.metrics.enabled:
                self.metrics.emit("rd.resume", round=state.next_round)
            logger.info(
                "resumed flow from %s at round %d",
                checkpoint_path,
                state.next_round,
            )
        if state is None:
            state = self._start_flow(skip_initial_gp)
            if checkpoint_path:
                self._save_flow_checkpoint(checkpoint_path, state)

        failures = 0
        for round_id in range(state.next_round, cfg.max_rounds):
            # supervised-job progress marker: a hung round stops beating
            heartbeat.beat()
            self.profiler.count("rd.rounds")
            try:
                outcome = self._run_round(round_id, state)
            except Exception as exc:  # noqa: BLE001 — rollback, don't die
                failures += 1
                self._rollback_round(state, round_id, exc)
                if failures >= cfg.max_round_failures:
                    logger.error(
                        "%d consecutive failed rounds; returning best snapshot",
                        failures,
                    )
                    break
                state.next_round = round_id + 1
                continue
            failures = 0
            state.next_round = round_id + 1
            if outcome == "stop":
                break
            if checkpoint_path:
                self._save_flow_checkpoint(checkpoint_path, state)

        routing = state.routing
        # the loop's very last routing may beat every checkpoint
        final_score = self._routing_score(
            routing, hpwl_of(self.netlist), state.hpwl_ref
        )
        if final_score < state.best_score:
            state.best_positions = None
            state.best_routing = routing
            state.best_round = len(state.rounds)

        if state.best_positions is not None:
            self.netlist.x[:] = state.best_positions[0]
            self.netlist.y[:] = state.best_positions[1]
            if state.best_routing is None:
                # resumed flow: the snapshot's routing was not carried
                # in the checkpoint; recompute it (stateless router ->
                # identical maps)
                with self.profiler.timer("rd.route"):
                    state.best_routing = self.router.route(self.netlist)
            routing = state.best_routing
            logger.info("restored best placement from round %d", state.best_round)

        timer.stop()
        return RDResult(
            netlist=self.netlist,
            rounds=state.rounds,
            final_routing=routing,
            selected_rails=state.selected_rails,
            placement_time=timer.elapsed,
            initial_gp_iters=state.initial_iters,
            best_round=state.best_round,
            profile=self.profiler.as_dict(),
            guard_events=self.gp.guard_log.as_dicts()
            + self.recovery_log.as_dicts(),
            resumed_from_round=state.resumed_from_round,
        )

    # ------------------------------------------------------------------
    # flow setup / one round
    # ------------------------------------------------------------------
    def _start_flow(self, skip_initial_gp: bool) -> _FlowState:
        """Rails + initial wirelength-driven GP + first routing pass."""
        cfg = self.config
        if self.metrics.enabled:
            nl = self.netlist
            self.metrics.emit(
                "rd.start",
                design=nl.name,
                n_cells=int(nl.n_cells),
                n_nets=int(nl.n_nets),
                inflation_mode=cfg.inflation_mode,
                pg_mode=cfg.pg_mode,
                enable_dc=cfg.enable_dc,
            )
        state = _FlowState()
        state.rail_area = self.gp.grid.zeros()
        if cfg.pg_mode == "dynamic":
            state.selected_rails = select_pg_rails(self.netlist)
            state.rail_area = rail_area_map(state.selected_rails, self.gp.grid)
            logger.info("selected %d PG rail pieces", len(state.selected_rails))
        elif cfg.pg_mode == "static":
            # Xplace-Route-style: all rails, adjusted once before
            # placement, independent of congestion
            state.rail_area = rail_area_map(self.netlist.pg_rails, self.gp.grid)
            self.gp.extra_static_charge = (
                cfg.pinaccess.density_scale * state.rail_area
            )

        if not skip_initial_gp:
            from repro.place.global_placer import converge_placement

            with self.profiler.timer("rd.initial_gp"):
                initial_placement(self.netlist, cfg.gp.seed)
                converge_placement(
                    self.netlist,
                    cfg.gp,
                    profiler=self.profiler,
                    metrics=self.metrics,
                )
        state.initial_iters = len(self.gp.history)

        with self.profiler.timer("rd.route"):
            state.routing = self.router.route(self.netlist)
        state.hpwl_ref = max(hpwl_of(self.netlist), 1e-12)
        return state

    def _run_round(self, round_id: int, state: _FlowState) -> str:
        """One routability round; returns ``"continue"`` or ``"stop"``."""
        cfg = self.config
        routing = state.routing
        score = self._routing_score(
            routing, hpwl_of(self.netlist), state.hpwl_ref
        )
        if score < state.best_score:
            # best snapshot: positions + inflation state + congestion
            # score, so a rollback restores a *consistent* flow state
            state.best_score = score
            state.best_positions = (self.netlist.x.copy(), self.netlist.y.copy())
            state.best_inflation = self.inflation.state_dict()
            state.best_size_scale = self.gp.size_scale.copy()
            state.best_routing = routing
            state.best_round = round_id

        c_map, utilization = self._sanitized_maps(routing, round_id)
        fld = CongestionField(self.gp.grid, utilization)

        cell_cong = self.gp.grid.value_at(c_map, self.netlist.x, self.netlist.y)
        if cfg.inflation_mode == "momentum":
            with self.profiler.timer("rd.inflate"):
                rates = self.inflation.update(cell_cong)
                self.gp.size_scale = np.sqrt(self._budgeted_rates(rates))
        elif cfg.inflation_mode == "present":
            # present-congestion-only inflation ([3, 5] style): the
            # rate follows the current map with no history, so cells
            # deflate instantly after leaving a hotspot
            with self.profiler.timer("rd.inflate"):
                rates = np.clip(
                    1.0 + cell_cong,
                    self.config.inflation.r_min,
                    self.config.inflation.r_max,
                )
                self.gp.size_scale = np.sqrt(self._budgeted_rates(rates))

        if cfg.pg_mode == "dynamic":
            with self.profiler.timer("rd.pinaccess"):
                charge = pg_density_charge(
                    self.gp.grid, state.rail_area, c_map, cfg.pinaccess
                )
                self.gp.extra_static_charge = charge
                self._last_dpa = (int((charge > 0).sum()), float(charge.sum()))
        else:
            self._last_dpa = (0, 0.0)

        if cfg.enable_dc:
            self.gp.extra_grad_fn = self._make_congestion_grad(fld, c_map)
        else:
            self.gp.extra_grad_fn = None

        with self.profiler.timer("rd.record"):
            record = self._record_round(round_id, routing, fld, c_map)
        state.rounds.append(record)
        if self.metrics.enabled:
            self._emit_round(record)
        if record.mean_congestion < cfg.stop_mean_congestion:
            logger.info(
                "round %d: congestion negligible (%.2e), stopping",
                round_id,
                record.mean_congestion,
            )
            return "stop"
        if record.hpwl > 1.15 * state.hpwl_ref:
            # runaway guard: on globally saturated designs the
            # inflation/congestion forces can enter a spreading spiral
            # (longer wires -> more demand -> more spreading); once
            # wirelength departs this far from the seed, further
            # rounds only dig deeper
            logger.info(
                "round %d: wirelength runaway (%.0f vs seed %.0f), stopping",
                round_id,
                record.hpwl,
                state.hpwl_ref,
            )
            return "stop"
        logger.info(
            "round %d: C=%.4e mean_cong=%.4f hpwl=%.4e lambda2=%.3e",
            round_id,
            record.c_value,
            record.mean_congestion,
            record.hpwl,
            record.lambda2,
        )

        # stop when C(x, y) no longer decreases (Fig. 2 exit arc)
        if record.c_value < state.best_c * (1.0 - cfg.c_improve_tol):
            state.best_c = record.c_value
            state.stall = 0
        else:
            state.stall += 1
            if state.stall >= cfg.patience:
                return "stop"

        self.gp.reset_solver()
        # inclusive of the gp.* stages recorded inside the solver
        with self.profiler.timer("rd.nesterov"):
            self.gp.run(
                max_iters=cfg.iters_per_round, min_iters=cfg.iters_per_round
            )
        self._ensure_finite_positions(round_id)
        with self.profiler.timer("rd.route"):
            state.routing = self.router.route(self.netlist)
        return "continue"

    # ------------------------------------------------------------------
    # robustness: sanitization, rollback
    # ------------------------------------------------------------------
    def _sanitized_maps(self, routing: RoutingResult, round_id: int) -> tuple:
        """Congestion/utilization maps with NaN/Inf scrubbed.

        A degenerate map (zero capacity, overflow blow-up, or an
        injected fault) would otherwise poison inflation rates, the
        DPA charge and the congestion gradient at once.  Scrubbed
        entries read as "no congestion"; the recovery is reported in
        this round's record.
        """
        cong = routing.congestion
        c_map = faults.fire("rd.congestion", cong.congestion)
        utilization = cong.utilization
        if not all_finite(c_map):
            c_map = np.array(c_map, dtype=np.float64, copy=True)
            _, n_bad = scrub_nonfinite(c_map)
            np.clip(c_map, 0.0, None, out=c_map)
            self._note_recovery(
                round_id,
                "nonfinite",
                f"scrubbed {n_bad} non-finite congestion entries",
                action="scrub",
            )
        if not all_finite(utilization):
            utilization = np.array(utilization, dtype=np.float64, copy=True)
            _, n_bad = scrub_nonfinite(utilization)
            np.clip(utilization, 0.0, None, out=utilization)
            self._note_recovery(
                round_id,
                "nonfinite",
                f"scrubbed {n_bad} non-finite utilization entries",
                action="scrub",
            )
        return c_map, utilization

    def _ensure_finite_positions(self, round_id: int) -> None:
        """Last line of defence after a solver round: finite, in-die."""
        nl = self.netlist
        if all_finite(nl.x) and all_finite(nl.y):
            return
        _, bad_x = scrub_nonfinite(nl.x, float(nl.die.cx))
        _, bad_y = scrub_nonfinite(nl.y, float(nl.die.cy))
        nl.clamp_to_die()
        self._note_recovery(
            round_id,
            "nonfinite",
            f"re-centered {max(bad_x, bad_y)} cells with non-finite positions",
            action="scrub",
        )

    def _note_recovery(
        self, round_id: int, kind: str, detail: str, action: str
    ) -> None:
        logger.warning("round %d: %s (%s)", round_id, detail, action)
        self.profiler.count("rd.recoveries")
        if self.metrics.enabled:
            self.metrics.inc("rd.recoveries")
            self.metrics.emit(
                "rd.recovery",
                round=round_id,
                guard=kind,
                detail=detail,
                action=action,
            )
        self.recovery_log.record(
            GuardEvent(
                site="rd.flow",
                kind=kind,
                iteration=round_id,
                detail=detail,
                action=action,
            )
        )
        self._pending_recovery.append(detail)

    def _rollback_round(
        self, state: _FlowState, round_id: int, exc: Exception
    ) -> None:
        """Restore the best snapshot after a round crashed or diverged."""
        logger.exception("round %d failed; rolling back to best snapshot", round_id)
        self._note_recovery(
            round_id,
            "exception",
            f"round {round_id} failed ({type(exc).__name__}: {exc}); "
            f"rolled back to round {state.best_round} snapshot",
            action="rollback",
        )
        nl = self.netlist
        if state.best_positions is not None:
            nl.x[:] = state.best_positions[0]
            nl.y[:] = state.best_positions[1]
        else:
            scrub_nonfinite(nl.x, float(nl.die.cx))
            scrub_nonfinite(nl.y, float(nl.die.cy))
            nl.clamp_to_die()
        if state.best_inflation is not None:
            self.inflation.load_state_dict(state.best_inflation)
        if state.best_size_scale is not None:
            self.gp.size_scale = state.best_size_scale.copy()
        # the solver state may be arbitrarily corrupted: rebuild it
        # from scratch at the restored point next round
        self.gp._optimizer = None
        self.gp.extra_grad_fn = None
        self.gp.reset_solver()
        with self.profiler.timer("rd.route"):
            state.routing = self.router.route(nl)

    # ------------------------------------------------------------------
    # checkpoint serialization
    # ------------------------------------------------------------------
    def _design_fingerprint(self) -> dict:
        nl = self.netlist
        return {
            "name": nl.name,
            "n_cells": int(nl.n_cells),
            "n_nets": int(nl.n_nets),
            "n_pins": int(nl.n_pins),
        }

    def _save_flow_checkpoint(self, path: str, state: _FlowState) -> None:
        cfg = self.config
        nl = self.netlist
        gp_state = self.gp.state_dict()
        infl_state = self.inflation.state_dict()
        opt_state = gp_state.pop("optimizer")

        meta = {
            "version": CHECKPOINT_VERSION,
            "design": self._design_fingerprint(),
            "config": {
                "inflation_mode": cfg.inflation_mode,
                "pg_mode": cfg.pg_mode,
                "enable_dc": cfg.enable_dc,
                "max_rounds": cfg.max_rounds,
                "iters_per_round": cfg.iters_per_round,
                "optimizer": cfg.gp.optimizer,
                "seed": cfg.gp.seed,
            },
            "next_round": state.next_round,
            "rounds": [asdict(r) for r in state.rounds],
            "hpwl_ref": state.hpwl_ref,
            "best_score": (
                None if not np.isfinite(state.best_score) else state.best_score
            ),
            "best_round": state.best_round,
            "best_c": None if not np.isfinite(state.best_c) else state.best_c,
            "stall": state.stall,
            "initial_iters": state.initial_iters,
            "last_lambda2": self.last_lambda2,
            # Alg. 1 / Alg. 2 gradient norms from the last solver
            # evaluation feed the *next* round's record, so a resumed
            # flow must carry them or its telemetry diverges from an
            # uninterrupted run
            "last_netmove_l1": self.last_netmove_l1,
            "last_multipin_l1": self.last_multipin_l1,
            "selected_rails": [
                [r.rect.xlo, r.rect.ylo, r.rect.xhi, r.rect.yhi, int(r.horizontal)]
                for r in state.selected_rails
            ],
            "gp": {
                "density_weight": gp_state["density_weight"],
                "prev_hpwl": gp_state["prev_hpwl"],
                "wa_gamma": gp_state["wa_gamma"],
                "has_extra_static_charge": gp_state["extra_static_charge"]
                is not None,
            },
            "optimizer": None
            if opt_state is None
            else {
                k: v
                for k, v in opt_state.items()
                if not isinstance(v, np.ndarray) and v is not None
            },
            "inflation": {
                "prev_mean": infl_state["prev_mean"],
                "round": infl_state["round"],
                "has_prev_cong": infl_state["prev_cong"] is not None,
                "last_n_deflated": infl_state["last_n_deflated"],
            },
            "has_best": state.best_positions is not None,
        }

        arrays: dict = {
            "x": nl.x,
            "y": nl.y,
            "gp_filler_x": gp_state["filler_x"],
            "gp_filler_y": gp_state["filler_y"],
            "gp_size_scale": gp_state["size_scale"],
            "infl_rates": infl_state["rates"],
            "infl_delta": infl_state["delta_rates"],
        }
        if gp_state["extra_static_charge"] is not None:
            arrays["gp_extra_static_charge"] = gp_state["extra_static_charge"]
        if infl_state["prev_cong"] is not None:
            arrays["infl_prev_cong"] = infl_state["prev_cong"]
        if opt_state is not None:
            for key, value in opt_state.items():
                if isinstance(value, np.ndarray):
                    arrays[f"opt_{key}"] = value
        if state.best_positions is not None:
            arrays["best_x"] = state.best_positions[0]
            arrays["best_y"] = state.best_positions[1]
            arrays["best_size_scale"] = state.best_size_scale
            best_infl = state.best_inflation
            arrays["best_infl_rates"] = best_infl["rates"]
            arrays["best_infl_delta"] = best_infl["delta_rates"]
            if best_infl["prev_cong"] is not None:
                arrays["best_infl_prev_cong"] = best_infl["prev_cong"]
            meta["best_inflation"] = {
                "prev_mean": best_infl["prev_mean"],
                "round": best_infl["round"],
                "last_n_deflated": best_infl["last_n_deflated"],
            }

        with self.profiler.timer("rd.checkpoint"):
            # keep the predecessor: a torn write of this file must not
            # cost the flow its only resume point
            write_checkpoint(path, meta, arrays, keep_previous=True)
        if self.metrics.enabled:
            self.metrics.inc("rd.checkpoints")
            self.metrics.emit("rd.checkpoint", round=state.next_round)
        logger.info(
            "checkpoint written to %s (next round %d)", path, state.next_round
        )

    def _load_flow_checkpoint(self, path: str) -> _FlowState:
        cfg = self.config
        meta, arrays, used_path = read_checkpoint_with_fallback(path)
        if used_path != path:
            logger.warning(
                "checkpoint %s unusable; resuming from previous good "
                "checkpoint %s", path, used_path,
            )
            if self.metrics.enabled:
                self.metrics.emit(
                    "rd.recovery",
                    round=-1,
                    guard="checkpoint_corrupt",
                    detail=f"fell back to {used_path}",
                    action="fallback",
                )
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: checkpoint version {meta.get('version')!r} "
                f"!= {CHECKPOINT_VERSION}"
            )
        if meta.get("design") != self._design_fingerprint():
            raise CheckpointError(
                f"{path}: checkpoint was written for design "
                f"{meta.get('design')}, not {self._design_fingerprint()}"
            )
        want_cfg = {
            "inflation_mode": cfg.inflation_mode,
            "pg_mode": cfg.pg_mode,
            "enable_dc": cfg.enable_dc,
            "max_rounds": cfg.max_rounds,
            "iters_per_round": cfg.iters_per_round,
            "optimizer": cfg.gp.optimizer,
            "seed": cfg.gp.seed,
        }
        if meta.get("config") != want_cfg:
            raise CheckpointError(
                f"{path}: checkpoint config {meta.get('config')} does not "
                f"match the current flow config {want_cfg}"
            )

        nl = self.netlist
        nl.x[:] = arrays["x"]
        nl.y[:] = arrays["y"]

        opt_meta = meta.get("optimizer")
        opt_state = None
        if opt_meta is not None:
            opt_state = dict(opt_meta)
            for key, value in arrays.items():
                if key.startswith("opt_"):
                    opt_state[key[4:]] = value
            opt_state.setdefault("prev_v", None)
            opt_state.setdefault("prev_g", None)
        self.gp.load_state_dict(
            {
                "filler_x": arrays["gp_filler_x"],
                "filler_y": arrays["gp_filler_y"],
                "size_scale": arrays["gp_size_scale"],
                "extra_static_charge": arrays.get("gp_extra_static_charge"),
                "density_weight": meta["gp"]["density_weight"],
                "prev_hpwl": meta["gp"]["prev_hpwl"],
                "wa_gamma": meta["gp"]["wa_gamma"],
                "optimizer": opt_state,
            }
        )
        self.inflation.load_state_dict(
            {
                "rates": arrays["infl_rates"],
                "delta_rates": arrays["infl_delta"],
                "prev_cong": arrays.get("infl_prev_cong"),
                "prev_mean": meta["inflation"]["prev_mean"],
                "round": meta["inflation"]["round"],
                # absent in pre-existing snapshots; resumes as 0 there
                "last_n_deflated": meta["inflation"].get("last_n_deflated", 0),
            }
        )
        self.last_lambda2 = float(meta["last_lambda2"])
        # absent in pre-existing snapshots; resumes as 0.0 there
        self.last_netmove_l1 = float(meta.get("last_netmove_l1", 0.0))
        self.last_multipin_l1 = float(meta.get("last_multipin_l1", 0.0))

        state = _FlowState(
            next_round=int(meta["next_round"]),
            rounds=[RoundRecord(**r) for r in meta["rounds"]],
            hpwl_ref=float(meta["hpwl_ref"]),
            best_score=(
                np.inf if meta["best_score"] is None else float(meta["best_score"])
            ),
            best_round=int(meta["best_round"]),
            best_c=np.inf if meta["best_c"] is None else float(meta["best_c"]),
            stall=int(meta["stall"]),
            initial_iters=int(meta["initial_iters"]),
            resumed_from_round=int(meta["next_round"]) - 1,
        )
        state.selected_rails = [
            PGRailSpec(rect=Rect(r[0], r[1], r[2], r[3]), horizontal=bool(r[4]))
            for r in meta["selected_rails"]
        ]
        state.rail_area = rail_area_map(
            state.selected_rails
            if cfg.pg_mode == "dynamic"
            else self.netlist.pg_rails,
            self.gp.grid,
        )
        if meta["has_best"]:
            state.best_positions = (
                arrays["best_x"].copy(),
                arrays["best_y"].copy(),
            )
            state.best_size_scale = arrays["best_size_scale"].copy()
            state.best_inflation = {
                "rates": arrays["best_infl_rates"].copy(),
                "delta_rates": arrays["best_infl_delta"].copy(),
                "prev_cong": (
                    arrays["best_infl_prev_cong"].copy()
                    if "best_infl_prev_cong" in arrays
                    else None
                ),
                "prev_mean": meta["best_inflation"]["prev_mean"],
                "round": meta["best_inflation"]["round"],
                "last_n_deflated": meta["best_inflation"].get(
                    "last_n_deflated", 0
                ),
            }
        with self.profiler.timer("rd.route"):
            state.routing = self.router.route(nl)
        return state

    # ------------------------------------------------------------------
    def _budgeted_rates(self, rates: np.ndarray) -> np.ndarray:
        """Cap total inflated area at the whitespace budget.

        On high-utilization dies, unconstrained inflation can push the
        total (inflated) movable area past what the die holds, after
        which no amount of spreading resolves the density — placement
        and wirelength blow up together.  When the requested rates
        exceed ``budget_fraction x`` the placeable capacity, all rates
        are shrunk toward 1 proportionally (standard inflation-budget
        practice).
        """
        nl = self.netlist
        mv = nl.movable
        areas = nl.cell_area[mv]
        requested = float((areas * rates[mv]).sum())
        fixed_area = float(nl.cell_area[~mv].sum())
        budget = 0.95 * self.config.gp.target_density * (
            nl.die.area - fixed_area
        )
        if requested <= budget:
            return rates
        base = float(areas.sum())
        extra = requested - base
        if extra <= 0:
            return rates
        k = max((budget - base) / extra, 0.0)
        logger.info("inflation budget hit: scaling rate excess by %.3f", k)
        return 1.0 + (rates - 1.0) * k

    @staticmethod
    def _routing_score(
        routing: RoutingResult, cur_hpwl: float, ref_hpwl: float
    ) -> float:
        """Checkpoint score.

        Squared per-G-cell overflow (the quantity the detailed-routing
        violation count tracks) times a quadratic wirelength penalty
        relative to the incoming placement: flattening hotspots by
        doubling every wire is not an improvement — longer wires mean
        proportionally more demand once routed at the finer
        evaluation resolution.
        """
        g = routing.grid
        h_over = np.maximum(g.h_demand - g.h_cap, 0.0)
        v_over = np.maximum(g.v_demand - g.v_cap, 0.0)
        sq = float((h_over**2).sum() + (v_over**2).sum())
        wl_factor = max(cur_hpwl / max(ref_hpwl, 1e-12), 1.0)
        return sq * wl_factor

    # ------------------------------------------------------------------
    def _make_congestion_grad(self, fld: CongestionField, c_map: np.ndarray):
        """Closure evaluated by the placer at every solver iteration.

        Assembles CGrad per Alg. 2 (two-pin net moving + multi-pin
        cells) at the *current* positions against this round's fixed
        congestion field, then scales it by Eq. (10).
        """
        nl = self.netlist
        grid = self.gp.grid
        cfg = self.config
        n_congested = count_cells_in_congestion(nl, grid, c_map)

        def _grad() -> tuple[np.ndarray, np.ndarray]:
            net_gx, net_gy, _ = two_pin_net_gradients(
                nl, grid, c_map, fld, self.virtual_area, cfg.netmove
            )
            cell_gx, cell_gy, _ = multi_pin_cell_gradients(
                nl, grid, c_map, fld, cfg.multipin_threshold
            )
            self.last_netmove_l1 = float(
                np.abs(net_gx).sum() + np.abs(net_gy).sum()
            )
            self.last_multipin_l1 = float(
                np.abs(cell_gx).sum() + np.abs(cell_gy).sum()
            )
            gx = net_gx + cell_gx
            gy = net_gy + cell_gy
            l1 = float(np.abs(gx).sum() + np.abs(gy).sum())
            lam2 = congestion_penalty_weight(
                self.gp.last_wl_grad_l1, l1, n_congested, nl.n_cells
            )
            self.last_lambda2 = lam2
            if CONTRACTS.enabled:
                # Eq. (10) weight: finite and non-negative by
                # construction of congestion_penalty_weight
                CONTRACTS.check_finite_scalar(
                    "rd_placer.congestion_grad", "lambda2", lam2, nonneg=True
                )
            return lam2 * gx, lam2 * gy

        return _grad

    def _record_round(
        self,
        round_id: int,
        routing: RoutingResult,
        fld: CongestionField,
        c_map: np.ndarray,
    ) -> RoundRecord:
        nl = self.netlist
        grid = self.gp.grid
        cfg = self.config

        # C(x, y) over V' = selected multi-pin cells + virtual cells
        from repro.core.netmove import virtual_cell_positions

        info = virtual_cell_positions(nl, grid, c_map, cfg.netmove)
        act = info["active"]
        c_value = 0.0
        if act.any():
            c_value += fld.penalty(
                info["xv"][act], info["yv"][act], self.virtual_area
            )
        _, _, selected = multi_pin_cell_gradients(
            nl, grid, c_map, fld, cfg.multipin_threshold
        )
        if selected.any():
            ids = np.flatnonzero(selected)
            c_value += fld.penalty(nl.x[ids], nl.y[ids], nl.cell_area[ids])

        from repro.wirelength.hpwl import hpwl

        n_congested = count_cells_in_congestion(nl, grid, c_map)
        recovery, self._pending_recovery = self._pending_recovery, []
        return RoundRecord(
            round_id=round_id,
            c_value=c_value,
            mean_congestion=float(c_map.mean()),
            max_congestion=float(c_map.max()),
            congested_fraction=float((c_map > 0).mean()),
            total_overflow=routing.total_overflow,
            hpwl=hpwl(nl),
            lambda2=self.last_lambda2,
            n_congested_cells=n_congested,
            mean_inflation=float((self.gp.size_scale**2).mean()),
            max_inflation=float((self.gp.size_scale**2).max()),
            recovery=recovery,
            router_fallbacks=routing.n_fallbacks,
            guard_trips=len(self.gp.guard_log),
            n_deflated=self.inflation.last_n_deflated,
            netmove_grad_l1=self.last_netmove_l1,
            multipin_grad_l1=self.last_multipin_l1,
            dpa_bins=self._last_dpa[0],
            dpa_charge=self._last_dpa[1],
        )

    def _emit_round(self, record: RoundRecord) -> None:
        """One ``rd.round`` telemetry event mirroring the record."""
        m = self.metrics
        m.inc("rd.rounds")
        m.observe("rd.total_overflow", record.total_overflow)
        m.gauge("rd.mean_inflation", record.mean_inflation)
        m.emit(
            "rd.round",
            round=record.round_id,
            c_value=record.c_value,
            mean_congestion=record.mean_congestion,
            max_congestion=record.max_congestion,
            congested_fraction=record.congested_fraction,
            total_overflow=record.total_overflow,
            hpwl=record.hpwl,
            lambda2=record.lambda2,
            n_congested_cells=record.n_congested_cells,
            mean_inflation=record.mean_inflation,
            max_inflation=record.max_inflation,
            n_deflated=record.n_deflated,
            netmove_grad_l1=record.netmove_grad_l1,
            multipin_grad_l1=record.multipin_grad_l1,
            dpa_bins=record.dpa_bins,
            dpa_charge=record.dpa_charge,
            router_fallbacks=record.router_fallbacks,
            guard_trips=record.guard_trips,
            n_recoveries=len(record.recovery),
        )

"""Differentiable congestion function C(x, y) from Poisson's equation.

Following Sec. II-B of the paper, the congestion charge density is the
G-cell utilization ``rho_{m,n} = Dmd_{m,n} / Cap_{m,n}`` produced by the
global router.  Solving Eq. (1) with this charge gives a *congestion
potential* ``psi`` and field ``E = -grad(psi)``; the penalty term is::

    C(x, y) = 1/2 * sum_{i in V'} A_i psi_i

where V' contains the selected multi-pin cells and the virtual cells of
two-pin nets.  The field is smooth, so sampling it (bilinearly between
G-cell centers) at any point yields a usable gradient — this is what
makes the construction differentiable, in contrast to bounding-box
penalties that treat all covered G-cells alike.
"""

from __future__ import annotations

import numpy as np

from repro.density.poisson import SpectralWorkspace
from repro.geometry.grid import Grid2D
from repro.utils.contracts import CONTRACTS


class CongestionField:
    """Congestion potential/field for one routing snapshot.

    Build once per routability round (the router's utilization map is
    fixed within a round); query as often as the solver iterates.  The
    Poisson solve goes through the process-wide cached
    :class:`~repro.density.poisson.SpectralWorkspace`, so consecutive
    rounds on the same grid reuse the memoized eigenvalue denominators
    and scratch buffers instead of rebuilding a solver each time.
    """

    def __init__(
        self,
        grid: Grid2D,
        utilization: np.ndarray,
        fft_workers: int | None = None,
    ) -> None:
        if utilization.shape != grid.shape:
            raise ValueError(
                f"utilization shape {utilization.shape} != grid {grid.shape}"
            )
        self.grid = grid
        self.utilization = utilization
        self.potential, self.field_x, self.field_y = SpectralWorkspace.for_grid(
            grid
        ).solve(utilization, workers=fft_workers)
        if CONTRACTS.enabled:
            site = "congestion_field"
            CONTRACTS.check_array(site, "potential", self.potential, finite=True)
            CONTRACTS.check_array(site, "field_x", self.field_x, finite=True)
            CONTRACTS.check_array(site, "field_y", self.field_y, finite=True)
            # Neumann-BC spectral solve: Eq. (1) is only solvable after
            # the mean shift, and the solved psi must be mean-free
            CONTRACTS.check_charge_neutrality(site, self.potential)
            # Parseval: the balanced charge's self-energy is a sum of
            # non-negative modal terms
            CONTRACTS.check_field_energy(site, utilization, self.potential)

    # ------------------------------------------------------------------
    def potential_at(self, x, y) -> np.ndarray:
        """Bilinear potential sample psi(x, y)."""
        return self.grid.bilinear_at(self.potential, x, y)

    def gradient_at(self, x, y, area) -> tuple[np.ndarray, np.ndarray]:
        """Congestion energy gradient of charge(s) ``area`` at points.

        Returns the *minimization* gradient ``A * grad(psi) = -A * E``:
        subtracting it moves the charge away from congestion.
        """
        gx = -np.asarray(area) * self.grid.bilinear_at(self.field_x, x, y)
        gy = -np.asarray(area) * self.grid.bilinear_at(self.field_y, x, y)
        return gx, gy

    def penalty(self, x, y, area) -> float:
        """``C(x, y) = 1/2 sum_i A_i psi_i`` over the given charges."""
        return 0.5 * float(np.sum(np.asarray(area) * self.potential_at(x, y)))

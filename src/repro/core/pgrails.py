"""PG rail selection for pin-accessibility density (Sec. III-C step 1).

Indiscriminately densifying every region under M2 PG rails hurts — the
narrow corridors between macros are congested already.  So, as in
Fig. 4 of the paper:

1. every macro bounding box is expanded by 10%;
2. the expanded boxes *cut* each rail into pieces (the covered spans
   are removed);
3. only pieces at least ``0.2 x`` the die width (horizontal rails) or
   height (vertical rails) survive.

The surviving rails are the ones whose surroundings can safely carry
extra placement density.
"""

from __future__ import annotations

import numpy as np

from repro.density.rasterize import CellRasterizer
from repro.geometry.grid import Grid2D
from repro.geometry.rect import Rect
from repro.netlist.data import PGRailSpec
from repro.netlist.netlist import Netlist


def _cut_interval(lo: float, hi: float, holes: list) -> list:
    """Subtract hole intervals from [lo, hi]; returns surviving pieces."""
    pieces = [(lo, hi)]
    for (a, b) in holes:
        next_pieces = []
        for (plo, phi) in pieces:
            if b <= plo or a >= phi:
                next_pieces.append((plo, phi))
                continue
            if a > plo:
                next_pieces.append((plo, a))
            if b < phi:
                next_pieces.append((b, phi))
        pieces = next_pieces
    return pieces


def select_pg_rails(
    netlist: Netlist,
    expand_fraction: float = 0.1,
    min_span_fraction: float = 0.2,
) -> list:
    """Cut rails by expanded macro boxes and keep the long pieces.

    Returns a new list of :class:`PGRailSpec` (pieces of the original
    rails).  Non-macro fixed cells are ignored — only macro bounding
    boxes cut rails, as in the paper.
    """
    boxes = [
        netlist.cell_rect(i).expanded(expand_fraction)
        for i in np.flatnonzero(netlist.cell_macro)
    ]
    die = netlist.die
    selected: list[PGRailSpec] = []
    for rail in netlist.pg_rails:
        r = rail.rect
        if rail.horizontal:
            holes = [
                (box.xlo, box.xhi)
                for box in boxes
                if box.ylo < r.yhi and box.yhi > r.ylo
            ]
            min_len = min_span_fraction * die.width
            for (lo, hi) in _cut_interval(r.xlo, r.xhi, holes):
                if hi - lo >= min_len:
                    selected.append(
                        PGRailSpec(rect=Rect(lo, r.ylo, hi, r.yhi), horizontal=True)
                    )
        else:
            holes = [
                (box.ylo, box.yhi)
                for box in boxes
                if box.xlo < r.xhi and box.xhi > r.xlo
            ]
            min_len = min_span_fraction * die.height
            for (lo, hi) in _cut_interval(r.ylo, r.yhi, holes):
                if hi - lo >= min_len:
                    selected.append(
                        PGRailSpec(rect=Rect(r.xlo, lo, r.xhi, hi), horizontal=False)
                    )
    return selected


def rail_area_map(rails: list, grid: Grid2D) -> np.ndarray:
    """``sum_i A_{PG_i ∩ b}`` per bin: rail area overlapping each bin.

    Precomputed once per design — the rails never move; only the
    congestion weighting of Eq. (14) changes between rounds.
    """
    if not rails:
        return grid.zeros()
    cx = np.array([r.rect.center[0] for r in rails])
    cy = np.array([r.rect.center[1] for r in rails])
    w = np.array([r.rect.width for r in rails])
    h = np.array([r.rect.height for r in rails])
    raster = CellRasterizer(grid, cx, cy, w, h, smooth=False)
    return raster.charge_map()

"""Congestion penalty weight lambda_2 (Eq. 10).

``lambda_2 = (2 N_C / N) * ||grad W||_1 / ||grad C||_1`` — the L1 ratio
normalizes the congestion force against the wirelength force, and the
``2 N_C / N`` coefficient scales it by how much of the design currently
sits in congested regions: heavy congestion prioritizes the congestion
term, light congestion hands priority back to wirelength.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import Grid2D
from repro.netlist.netlist import Netlist


def count_cells_in_congestion(
    netlist: Netlist, grid: Grid2D, congestion: np.ndarray, threshold: float = 0.0
) -> int:
    """``N_C``: movable cells whose center G-cell is congested."""
    cell_cong = grid.value_at(congestion, netlist.x, netlist.y)
    return int(((cell_cong > threshold) & netlist.movable).sum())


def congestion_penalty_weight(
    wl_grad_l1: float,
    cong_grad_l1: float,
    n_congested_cells: int,
    n_cells: int,
) -> float:
    """Evaluate Eq. (10); returns 0 when there is no congestion force."""
    if cong_grad_l1 <= 0.0 or n_cells <= 0:
        return 0.0
    weight = (2.0 * n_congested_cells / n_cells) * (wl_grad_l1 / cong_grad_l1)
    # a denormal-tiny ||grad C||_1 overflows the ratio to Inf; an
    # effectively-zero congestion force means there is nothing to
    # weight, same as the exact-zero case above
    if not np.isfinite(weight):
        return 0.0
    return weight

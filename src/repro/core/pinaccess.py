"""Dynamic pin-accessibility density adjustment (Sec. III-C step 2).

Bins covered by *selected* PG rails whose congestion exceeds the map
average receive extra density (Eq. 13-15)::

    D_b = D_b^ori + D_b^PG
    D_b^PG = eta_b * (1 + C_b) / A_b * sum_i A_{PG_i ∩ b}
    eta_b  = 1 if C_b > C_bar else 0

The electrostatic engine consumes *charge* maps (area units), so this
module emits ``D_b^PG * A_b`` — an extra static charge added to the
density system.  It is recomputed every routability round from the
fresh congestion map, which is what makes the adjustment *dynamic*
(Xplace-Route's static variant adjusts once, before placement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid2D
from repro.utils.contracts import CONTRACTS


@dataclass
class PinAccessConfig:
    """Knobs of the dynamic PG-rail density.

    Attributes
    ----------
    density_scale:
        Multiplier on the rail charge.  The paper uses the raw metal
        area; because synthetic rails are thin, the blocked region
        around a rail (routing margin on M1) is better represented by
        a slightly amplified footprint.  Set to 1.0 for the literal
        Eq. (14).
    """

    density_scale: float = 1.5


def pg_density_charge(
    grid: Grid2D,
    rail_area: np.ndarray,
    congestion: np.ndarray,
    config: PinAccessConfig | None = None,
) -> np.ndarray:
    """Extra static charge map ``D_b^PG * A_b`` (Eq. 14-15).

    Parameters
    ----------
    rail_area:
        Selected-rail overlap area per bin (precomputed once, see
        :func:`repro.core.pgrails.rail_area_map`).
    congestion:
        Current Eq. (3) congestion map on the same grid.
    """
    cfg = config or PinAccessConfig()
    if rail_area.shape != grid.shape or congestion.shape != grid.shape:
        raise ValueError("map shapes must match the grid")
    finite = np.isfinite(congestion)
    if finite.all():
        mean_c = float(congestion.mean())
        eta = congestion > mean_c
        return np.where(
            eta, cfg.density_scale * (1.0 + congestion) * rail_area, 0.0
        )
    # a single NaN used to poison congestion.mean() (NaN compares False
    # everywhere), silently turning eta all-False and disabling DPA for
    # the round; compute C_bar over the finite bins and never select a
    # non-finite bin (its charge would be garbage anyway)
    n_bad = int(congestion.size - np.count_nonzero(finite))
    if CONTRACTS.enabled:
        CONTRACTS.violate(
            "pinaccess.pg_density_charge",
            "dpa.finite_congestion",
            f"{n_bad}/{congestion.size} non-finite congestion bins",
        )
    mean_c = float(congestion[finite].mean()) if finite.any() else 0.0
    eta = finite & (congestion > mean_c)
    return np.where(
        eta, cfg.density_scale * (1.0 + congestion) * rail_area, 0.0
    )

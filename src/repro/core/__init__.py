"""The paper's contribution: differentiable net-moving and local
congestion mitigation for routability-driven global placement.

Modules map one-to-one onto the paper's sections:

* :mod:`repro.core.congestion_field` — the differentiable congestion
  function C(x, y) from Poisson's equation (Sec. II-B);
* :mod:`repro.core.netmove` — Alg. 1, virtual-cell gradients for
  two-pin net moving (Sec. III-A.1);
* :mod:`repro.core.multipin` — Alg. 2, multi-pin cell gradient update
  (Sec. III-A.2);
* :mod:`repro.core.weights` — the lambda_2 schedule of Eq. (10);
* :mod:`repro.core.inflation` — momentum-based cell inflation,
  Eq. (11)-(12) (Sec. III-B);
* :mod:`repro.core.pgrails` / :mod:`repro.core.pinaccess` — PG-rail
  selection and dynamic pin-accessibility density, Eq. (13)-(15)
  (Sec. III-C);
* :mod:`repro.core.rd_placer` — the integrated flow of Fig. 2.
"""

from repro.core.congestion_field import CongestionField
from repro.core.netmove import NetMoveConfig, two_pin_net_gradients, virtual_cell_positions
from repro.core.multipin import multi_pin_cell_gradients
from repro.core.weights import congestion_penalty_weight
from repro.core.inflation import InflationConfig, MomentumInflation
from repro.core.pgrails import select_pg_rails, rail_area_map
from repro.core.pinaccess import PinAccessConfig, pg_density_charge
from repro.core.rd_placer import RDConfig, RDResult, RoutabilityDrivenPlacer

__all__ = [
    "CongestionField",
    "NetMoveConfig",
    "two_pin_net_gradients",
    "virtual_cell_positions",
    "multi_pin_cell_gradients",
    "congestion_penalty_weight",
    "InflationConfig",
    "MomentumInflation",
    "select_pg_rails",
    "rail_area_map",
    "PinAccessConfig",
    "pg_density_charge",
    "RDConfig",
    "RDResult",
    "RoutabilityDrivenPlacer",
]

"""Design-space-exploration harness: grid sweeps, run database, reports.

The package turns the telemetry the flow already emits into a queryable
asset.  It has three layers, mirroring the tentpole split:

* :mod:`repro.dse.grid` — declarative parameter-grid specs (JSON/TOML)
  expanded into deterministic sweep units and sharded across workers;
* :mod:`repro.dse.store` — a stdlib-``sqlite3`` run database ingesting
  per-unit payloads, telemetry JSONL segments, and ``results/BENCH_*``
  history, with a small query API;
* :mod:`repro.dse.report` — a dependency-free static HTML+SVG renderer
  for knob-trend charts and perf-regression tables, published by the
  docs build.

:mod:`repro.dse.runner` drives a sweep end to end (in-process, through
the :mod:`repro.jobs` supervisor, or submitted to a ``repro serve``
daemon) and is what ``repro dse run`` calls.
"""

from repro.dse.grid import (
    KNOBS,
    DseUnit,
    GridSpec,
    KnobBinding,
    apply_knobs,
    expand_points,
    load_spec,
    make_units,
    shard_units,
    validate_knobs,
)
from repro.dse.report import render_report
from repro.dse.runner import GridResult, run_grid, run_unit, submit_grid
from repro.dse.store import RunDB

__all__ = [
    "KNOBS",
    "DseUnit",
    "GridSpec",
    "GridResult",
    "KnobBinding",
    "RunDB",
    "apply_knobs",
    "expand_points",
    "load_spec",
    "make_units",
    "render_report",
    "run_grid",
    "run_unit",
    "shard_units",
    "submit_grid",
    "validate_knobs",
]

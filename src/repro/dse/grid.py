"""Declarative parameter grids: knob registry, expansion, sharding.

A *grid spec* is a small JSON or TOML document naming a sweep, the
designs it covers, and the knobs to vary::

    {
      "name": "alpha-sweep",
      "designs": ["des_perf_1", "fft_1"],
      "grid": {"inflation.alpha": [0.2, 0.4, 0.6]},
      "paired": {"rd.max_rounds": [2, 4], "rd.iters_per_round": [40, 20]},
      "scale": 0.25,
      "seed": 0,
      "placers": ["Ours"]
    }

``grid`` knobs are crossed (cartesian product); ``paired`` knobs are
zipped position-wise (all lists must share one length).  Expansion is
deterministic: knob names are iterated in sorted order, values in spec
order, so the same spec always yields the same point list, the same
unit ids, and the same shard assignment.

Every knob lives in the :data:`KNOBS` registry, which maps a dotted
public name to the config dataclass field it rebinds.  The registry is
the single source of truth shared by the sweep runner, the service
job-payload validator (``overrides``), and ``docs/dse.md``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.inflation import InflationConfig
from repro.core.netmove import NetMoveConfig
from repro.core.pinaccess import PinAccessConfig
from repro.core.rd_placer import RDConfig
from repro.place.config import GPConfig
from repro.route.config import RouterConfig

_KERNEL_BACKENDS = ("reference", "fastnp", "numba", "auto")


@dataclass(frozen=True)
class Knob:
    """One sweepable parameter: a dotted name bound to a config field."""

    name: str
    section: str
    attr: str
    kind: str  # "float" | "int" | "bool" | "str"
    doc: str
    choices: tuple | None = None

    def cast(self, value):
        """Validate and coerce ``value`` to the knob's declared type."""
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"knob {self.name!r} expects a number, got {value!r}")
            out = float(value)
        elif self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"knob {self.name!r} expects an integer, got {value!r}")
            out = int(value)
        elif self.kind == "bool":
            if not isinstance(value, bool):
                raise ValueError(f"knob {self.name!r} expects a boolean, got {value!r}")
            out = bool(value)
        else:
            if not isinstance(value, str):
                raise ValueError(f"knob {self.name!r} expects a string, got {value!r}")
            out = value
        if self.choices is not None and out not in self.choices:
            raise ValueError(
                f"knob {self.name!r} value {out!r} not in {list(self.choices)}"
            )
        return out


def _knob_table() -> dict:
    """Build the registry mapping dotted knob names to bindings."""
    knobs = (
        Knob("gp.target_density", "gp", "target_density", "float",
             "GP target placement density (rho_t)"),
        Knob("gp.max_iters", "gp", "max_iters", "int",
             "Nesterov iteration budget for the initial GP stage"),
        Knob("gp.seed", "gp", "seed", "int",
             "RNG seed for the initial placement spread"),
        Knob("inflation.alpha", "inflation", "alpha", "float",
             "MCI inflation exponent alpha (Eq. 11)"),
        Knob("inflation.r_min", "inflation", "r_min", "float",
             "Inflation-ratio lower clamp (deflation floor, Eq. 12)"),
        Knob("inflation.r_max", "inflation", "r_max", "float",
             "Inflation-ratio upper clamp"),
        Knob("dpa.density_scale", "pinaccess", "density_scale", "float",
             "DPA pin-density charge scale (Eq. 14)"),
        Knob("netmove.max_samples", "netmove", "max_samples", "int",
             "Net-moving congestion samples per net (Alg. 1)"),
        Knob("netmove.max_scale", "netmove", "max_scale", "float",
             "Net-moving gradient scale clamp"),
        Knob("rd.max_rounds", "rd", "max_rounds", "int",
             "RD loop round budget"),
        Knob("rd.iters_per_round", "rd", "iters_per_round", "int",
             "Nesterov iterations per RD round"),
        Knob("rd.multipin_threshold", "rd", "multipin_threshold", "float",
             "Congestion threshold enabling multi-pin net moving (Alg. 2)"),
        Knob("rd.inflation_mode", "rd", "inflation_mode", "str",
             "Inflation accumulation mode", choices=("momentum", "naive")),
        Knob("rd.pg_mode", "rd", "pg_mode", "str",
             "Pseudo-gradient weighting mode", choices=("dynamic", "static")),
        Knob("rd.enable_dc", "rd", "enable_dc", "bool",
             "Enable differentiable-congestion gradients"),
        Knob("router.engine", "router", "engine", "str",
             "Global-router estimation engine", choices=("batched", "scalar")),
        Knob("router.rrr_rounds", "router", "rrr_rounds", "int",
             "Rip-up-and-reroute rounds in the congestion estimator"),
        Knob("kernel.backend", "kernel", "backend", "str",
             "Hot-path kernel backend", choices=_KERNEL_BACKENDS),
    )
    return {k.name: k for k in knobs}


KNOBS = _knob_table()


def validate_knobs(knobs: dict) -> dict:
    """Check a knob mapping against :data:`KNOBS`; return the cast copy."""
    if not isinstance(knobs, dict):
        raise ValueError(f"knob mapping must be a dict, got {type(knobs).__name__}")
    out = {}
    for name in sorted(knobs):
        knob = KNOBS.get(name)
        if knob is None:
            raise ValueError(
                f"unknown knob {name!r}; known knobs: {', '.join(sorted(KNOBS))}"
            )
        out[name] = knob.cast(knobs[name])
    return out


@dataclass(frozen=True)
class KnobBinding:
    """Configs produced by applying a knob mapping to flow defaults."""

    gp_config: GPConfig
    rd_config: RDConfig
    kernel_backend: str | None


def apply_knobs(knobs: dict, gp_base: GPConfig | None = None,
                rd_base: RDConfig | None = None) -> KnobBinding:
    """Rebind a validated knob mapping onto fresh (or given) configs.

    Starts from ``gp_base`` / ``rd_base`` when provided (the service
    path layers sweep overrides on top of request-level settings),
    otherwise from the flow defaults.
    """
    cast = validate_knobs(knobs)
    by_section: dict = {}
    for name, value in cast.items():
        knob = KNOBS[name]
        by_section.setdefault(knob.section, {})[knob.attr] = value

    gp = replace(gp_base or GPConfig(), **by_section.get("gp", {}))
    rd = rd_base or RDConfig(gp=gp)
    rd = replace(
        rd,
        gp=gp,
        inflation=replace(rd.inflation, **by_section.get("inflation", {})),
        pinaccess=replace(rd.pinaccess, **by_section.get("pinaccess", {})),
        netmove=replace(rd.netmove, **by_section.get("netmove", {})),
        router=replace(rd.router, **by_section.get("router", {})),
        **by_section.get("rd", {}),
    )
    backend = by_section.get("kernel", {}).get("backend")
    return KnobBinding(gp_config=gp, rd_config=rd, kernel_backend=backend)


@dataclass(frozen=True)
class GridSpec:
    """A parsed, validated sweep specification."""

    name: str
    designs: tuple
    grid: dict = field(default_factory=dict)
    paired: dict = field(default_factory=dict)
    scale: float = 1.0
    seed: int = 0
    placers: tuple = ("Ours",)

    def as_dict(self) -> dict:
        """Plain-dict form, round-trippable through :func:`parse_spec`."""
        return {
            "name": self.name,
            "designs": list(self.designs),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "paired": {k: list(v) for k, v in self.paired.items()},
            "scale": self.scale,
            "seed": self.seed,
            "placers": list(self.placers),
        }


def parse_spec(raw: dict, origin: str = "<spec>") -> GridSpec:
    """Validate a raw spec mapping into a :class:`GridSpec`."""
    if not isinstance(raw, dict):
        raise ValueError(f"{origin}: grid spec must be a mapping")
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{origin}: spec needs a non-empty string 'name'")
    designs = raw.get("designs")
    if not isinstance(designs, (list, tuple)) or not designs:
        raise ValueError(f"{origin}: spec needs a non-empty 'designs' list")
    from repro.synth.suite import suite_names

    known = set(suite_names())
    for d in designs:
        if d not in known:
            raise ValueError(f"{origin}: unknown design {d!r}; see `repro gen --list`")

    grid = {k: tuple(v) for k, v in (raw.get("grid") or {}).items()}
    paired = {k: tuple(v) for k, v in (raw.get("paired") or {}).items()}
    overlap = sorted(set(grid) & set(paired))
    if overlap:
        raise ValueError(f"{origin}: knobs in both 'grid' and 'paired': {overlap}")
    for src, mapping in (("grid", grid), ("paired", paired)):
        for knob_name, values in mapping.items():
            knob = KNOBS.get(knob_name)
            if knob is None:
                raise ValueError(f"{origin}: unknown {src} knob {knob_name!r}")
            if not values:
                raise ValueError(f"{origin}: {src} knob {knob_name!r} has no values")
            for v in values:
                knob.cast(v)
    if paired:
        lengths = {len(v) for v in paired.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"{origin}: 'paired' lists must share one length, got {sorted(lengths)}"
            )

    placers = tuple(raw.get("placers") or ("Ours",))
    scale = float(raw.get("scale", 1.0))
    seed = int(raw.get("seed", 0))
    if scale <= 0:
        raise ValueError(f"{origin}: scale must be positive")
    return GridSpec(name=name, designs=tuple(designs), grid=grid, paired=paired,
                    scale=scale, seed=seed, placers=placers)


def load_spec(path) -> GridSpec:
    """Load a grid spec from a ``.json`` or ``.toml`` file."""
    p = Path(path)
    text = p.read_text()
    if p.suffix.lower() == ".toml":
        import tomllib

        raw = tomllib.loads(text)
    elif p.suffix.lower() == ".json":
        raw = json.loads(text)
    else:
        raise ValueError(f"{p}: grid specs must be .json or .toml")
    return parse_spec(raw, origin=str(p))


def expand_points(spec: GridSpec) -> list:
    """Expand a spec into an ordered list of knob-value mappings.

    Crossed knobs iterate in sorted-name, row-major order (last sorted
    name varies fastest); paired knobs advance together.  The result
    order is a pure function of the spec — the determinism contract
    the shard layer and unit ids build on.
    """
    grid_names = sorted(spec.grid)
    grid_axes = [spec.grid[n] for n in grid_names]
    crossed = [dict(zip(grid_names, combo))
               for combo in itertools.product(*grid_axes)] if grid_names else [{}]

    paired_names = sorted(spec.paired)
    if paired_names:
        n_pairs = len(spec.paired[paired_names[0]])
        zipped = [{n: spec.paired[n][i] for n in paired_names}
                  for i in range(n_pairs)]
    else:
        zipped = [{}]

    points = []
    for base in crossed:
        for extra in zipped:
            point = dict(base)
            point.update(extra)
            points.append(validate_knobs(point))
    return points


@dataclass(frozen=True)
class DseUnit:
    """One schedulable sweep unit: a (point, design) pair."""

    unit_id: str
    index: int
    point: int
    design: str
    knobs: dict
    scale: float
    seed: int
    placers: tuple

    def as_dict(self) -> dict:
        """JSON-serialisable form used in manifests and payloads."""
        return {
            "unit_id": self.unit_id,
            "index": self.index,
            "point": self.point,
            "design": self.design,
            "knobs": dict(self.knobs),
            "scale": self.scale,
            "seed": self.seed,
            "placers": list(self.placers),
        }


def make_units(spec: GridSpec) -> list:
    """Expand a spec into its full ordered :class:`DseUnit` list."""
    units = []
    index = 0
    for pi, point in enumerate(expand_points(spec)):
        for design in spec.designs:
            units.append(DseUnit(
                unit_id=f"{spec.name}:p{pi:03d}:{design}",
                index=index,
                point=pi,
                design=design,
                knobs=point,
                scale=spec.scale,
                seed=spec.seed,
                placers=spec.placers,
            ))
            index += 1
    return units


def shard_units(units: list, n_shards: int) -> list:
    """Deal units round-robin into ``n_shards`` deterministic shards."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards = [[] for _ in range(n_shards)]
    for unit in units:
        shards[unit.index % n_shards].append(unit)
    return shards

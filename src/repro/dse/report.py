"""Static HTML+SVG report renderer for the DSE run database.

Renders, with no third-party dependencies (same spirit as
``scripts/build_docs.py``'s fallback builder), a single self-contained
``index.html`` holding:

* knob-trend line charts (mean QoR metric vs knob value) with a data
  table beside every chart;
* best-run leaderboards per metric;
* RD round-trajectory charts for sampled units;
* perf-regression tables diffing the two newest ingested
  ``results/BENCH_*.json`` snapshots per family/metric.

Chart styling follows the validated reference palette: categorical
slots in fixed order (blue, orange, aqua — capped at three series),
2px lines, >=8px markers with native ``<title>`` tooltips, hairline
grids, text in ink tokens (never series colors), one value axis per
chart, a legend only when a chart has two or more series, and a dark
mode that swaps in the palette's dark steps via CSS custom properties.
"""

from __future__ import annotations

import html
import json
import math
from pathlib import Path

#: Fixed categorical order (validated all-pairs for up to three series).
SERIES_VARS = ("var(--series-1)", "var(--series-2)", "var(--series-3)")

#: QoR metrics charted by default, in display order.
PREFERRED_METRICS = ("#DRVs", "DRWL", "#DRVias", "PT", "RT")

_STYLE = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --delta-good: #006300;
  --delta-bad: #d03b3b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --delta-good: #0ca30c;
    --delta-bad: #d03b3b;
    --border: rgba(255,255,255,0.10);
  }
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; line-height: 1.45;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 16px; margin: 28px 0 8px; }
.viz-root h3 { font-size: 13px; margin: 16px 0 6px; color: var(--text-secondary); }
.viz-root p.sub { color: var(--text-secondary); margin: 0 0 16px; font-size: 13px; }
.viz-root .card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 12px 14px; margin: 10px 0; overflow-x: auto;
}
.viz-root .row { display: flex; flex-wrap: wrap; gap: 12px; align-items: flex-start; }
.viz-root table { border-collapse: collapse; font-size: 12px; }
.viz-root th, .viz-root td {
  padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
.viz-root th {
  color: var(--text-secondary); font-weight: 600; text-align: right;
  border-bottom: 1px solid var(--baseline);
}
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
.viz-root td.good { color: var(--delta-good); }
.viz-root td.bad { color: var(--delta-bad); }
.viz-root .stat { display: inline-block; margin-right: 28px; }
.viz-root .stat .v { font-size: 22px; font-weight: 600; }
.viz-root .stat .k { font-size: 12px; color: var(--text-secondary); }
.viz-root svg text { font-family: inherit; }
"""


def _fmt(value) -> str:
    """Compact human formatting for axis ticks and table cells."""
    if value is None:
        return "—"
    if isinstance(value, str):
        return value
    v = float(value)
    if v != v:  # NaN
        return "—"
    if v == int(v) and abs(v) < 1e7:
        return str(int(v))
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:.3g}"
    return f"{v:.3g}"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list:
    """Round tick positions covering [lo, hi] (nice-number stepping)."""
    if hi <= lo:
        pad = abs(lo) * 0.05 or 1.0
        lo, hi = lo - pad, hi + pad
    span = hi - lo
    raw = span / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def svg_line_chart(series: list, title: str, x_label: str, y_label: str,
                   width: int = 560, height: int = 280) -> str:
    """Render series ``[(name, [(x, y), ...]), ...]`` as an SVG line chart.

    One value axis; up to three series in fixed palette order; legend
    only when two or more series are present; markers carry native
    ``<title>`` tooltips as the hover layer.
    """
    series = [(n, [(float(x), float(y)) for x, y in pts]) for n, pts in series
              if pts][:len(SERIES_VARS)]
    if not series:
        return ""
    ml, mr, mt, mb = 64, 16, 30, 44
    pw, ph = width - ml - mr, height - mt - mb
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    xt = _nice_ticks(min(xs), max(xs), 5)
    yt = _nice_ticks(min(ys), max(ys), 5)
    x0, x1, y0, y1 = xt[0], xt[-1], yt[0], yt[-1]

    def X(x):
        return ml + (x - x0) / (x1 - x0 or 1) * pw

    def Y(y):
        return mt + ph - (y - y0) / (y1 - y0 or 1) * ph

    e = html.escape
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" aria-label="{e(title)}">',
        f'<title>{e(title)}</title>',
        f'<text x="{ml}" y="16" font-size="13" font-weight="600"'
        f' fill="var(--text-primary)">{e(title)}</text>',
    ]
    for t in yt:
        y = Y(t)
        parts.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}"'
                     ' stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{ml - 8}" y="{y + 3.5:.1f}" font-size="11"'
                     ' text-anchor="end" fill="var(--text-muted)"'
                     f'>{e(_fmt(t))}</text>')
    for t in xt:
        x = X(t)
        parts.append(f'<text x="{x:.1f}" y="{mt + ph + 16}" font-size="11"'
                     ' text-anchor="middle" fill="var(--text-muted)"'
                     f'>{e(_fmt(t))}</text>')
    parts.append(f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}"'
                 ' stroke="var(--baseline)" stroke-width="1"/>')
    parts.append(f'<text x="{ml + pw / 2:.1f}" y="{height - 8}" font-size="11"'
                 f' text-anchor="middle" fill="var(--text-secondary)">{e(x_label)}</text>')
    parts.append(f'<text x="14" y="{mt + ph / 2:.1f}" font-size="11"'
                 ' text-anchor="middle" fill="var(--text-secondary)"'
                 f' transform="rotate(-90 14 {mt + ph / 2:.1f})">{e(y_label)}</text>')
    for i, (name, pts) in enumerate(series):
        color = SERIES_VARS[i]
        path = " ".join(f"{X(x):.1f},{Y(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{path}" fill="none" stroke="{color}"'
                     ' stroke-width="2" stroke-linejoin="round"/>')
        for x, y in pts:
            parts.append(
                f'<circle cx="{X(x):.1f}" cy="{Y(y):.1f}" r="4" fill="{color}"'
                f' stroke="var(--surface-1)" stroke-width="2">'
                f'<title>{e(name)}: {e(_fmt(x))} → {e(_fmt(y))}</title></circle>')
    if len(series) >= 2:
        lx = ml + 8
        for i, (name, _) in enumerate(series):
            parts.append(f'<rect x="{lx}" y="{mt - 6}" width="10" height="10"'
                         f' rx="2" fill="{SERIES_VARS[i]}"/>')
            parts.append(f'<text x="{lx + 14}" y="{mt + 3}" font-size="11"'
                         f' fill="var(--text-secondary)">{e(name)}</text>')
            lx += 14 + 7 * len(name) + 18
    parts.append("</svg>")
    return "".join(parts)


def _table(headers: list, rows: list, classes: dict | None = None) -> str:
    """Render an HTML table; ``classes`` maps (row, col) to a css class."""
    e = html.escape
    out = ["<table><thead><tr>"]
    out.extend(f"<th>{e(str(h))}</th>" for h in headers)
    out.append("</tr></thead><tbody>")
    for ri, row in enumerate(rows):
        out.append("<tr>")
        for ci, cell in enumerate(row):
            cls = (classes or {}).get((ri, ci))
            attr = f' class="{cls}"' if cls else ""
            out.append(f"<td{attr}>{e(_fmt(cell))}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def lower_is_better(metric: str) -> bool:
    """Whether smaller values of a metric are improvements."""
    m = metric.lower()
    if "speedup" in m:
        return False
    return True


def _trend_sections(db) -> list:
    """Knob-trend chart+table cards, one per (knob, metric) pair."""
    metrics = [m for m in PREFERRED_METRICS if m in db.metric_names()]
    sections = []
    for knob in db.knob_names():
        cards = []
        for metric in metrics:
            points = db.trend(knob, metric)
            if len(points) < 2:
                continue
            numeric = all(p["value_num"] is not None for p in points)
            chart = ""
            if numeric:
                chart = svg_line_chart(
                    [(metric, [(p["value_num"], p["mean"]) for p in points])],
                    f"{metric} vs {knob}", knob, f"mean {metric}")
            table = _table(
                [knob, f"mean {metric}", "runs"],
                [[_fmt(p["value"]), p["mean"], p["n"]] for p in points])
            cards.append(f'<div class="card">{chart}{table}</div>')
        if cards:
            sections.append(
                f"<h3>{html.escape(knob)}</h3><div class=\"row\">"
                + "".join(cards) + "</div>")
    return sections


def _best_sections(db) -> list:
    """Leaderboard tables for each preferred metric present."""
    sections = []
    for metric in PREFERRED_METRICS:
        hits = db.best_by(metric, minimize=lower_is_better(metric), limit=5)
        if not hits:
            continue
        rows = [[h["run_id"], h["value"],
                 "; ".join(f"{k}={_fmt(v)}" for k, v in sorted(h["knobs"].items()))
                 or "—"] for h in hits]
        sections.append(
            f"<h3>best {html.escape(metric)} "
            f"({'min' if lower_is_better(metric) else 'max'})</h3>"
            '<div class="card">'
            + _table(["run", metric, "knobs"], rows) + "</div>")
    return sections


def _round_sections(db, max_units: int = 2) -> list:
    """RD round-trajectory charts for the first few units with rounds."""
    unit_ids = [r[0] for r in db.conn.execute(
        "SELECT DISTINCT unit_id FROM rounds ORDER BY unit_id")][:max_units]
    sections = []
    for unit_id in unit_ids:
        rounds = db.unit_rounds(unit_id)
        if len(rounds) < 2:
            continue
        cards = []
        for metric in ("mean_congestion", "total_overflow", "hpwl"):
            pts = [(r["round"], r[metric]) for r in rounds
                   if r[metric] is not None]
            if len(pts) < 2:
                continue
            chart = svg_line_chart([(metric, pts)],
                                   f"{metric} by RD round", "round", metric,
                                   width=420, height=240)
            cards.append(f'<div class="card">{chart}</div>')
        if cards:
            sections.append(f"<h3>{html.escape(unit_id)}</h3>"
                            f'<div class="row">{"".join(cards)}</div>')
    return sections


def _regression_sections(db) -> list:
    """Perf tables diffing the two newest bench snapshots per family."""
    sections = []
    by_family: dict = {}
    for family, metric in db.bench_families():
        by_family.setdefault(family, []).append(metric)
    for family, metrics in sorted(by_family.items()):
        rows, classes = [], {}
        for metric in metrics:
            for label, hist in sorted(db.bench_series(family, metric).items()):
                if not hist:
                    continue
                latest_file, latest = hist[-1]
                prev = hist[-2][1] if len(hist) >= 2 else None
                delta = latest - prev if prev is not None else None
                cell = "—"
                if delta is not None and prev:
                    pct = 100.0 * delta / abs(prev)
                    arrow = "▲" if delta > 0 else ("▼" if delta < 0 else "·")
                    cell = f"{arrow} {pct:+.1f}%"
                    good = (delta < 0) == lower_is_better(metric)
                    if delta != 0:
                        classes[(len(rows), 4)] = "good" if good else "bad"
                rows.append([f"{label} · {metric}", prev, latest,
                             latest_file, cell])
        if rows:
            sections.append(
                f"<h3>{html.escape(family)}</h3><div class=\"card\">"
                + _table(["series", "previous", "latest", "snapshot", "Δ"],
                         rows, classes) + "</div>")
    return sections


def render_report(db, out_dir, title: str = "DSE report") -> Path:
    """Write the full report to ``out_dir/index.html``; return its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    summary = db.summary()
    counts = summary["counts"]
    e = html.escape

    stats = "".join(
        f'<span class="stat"><span class="v">{counts[k]}</span><br/>'
        f'<span class="k">{e(label)}</span></span>'
        for k, label in (("units", "sweep units"), ("runs", "runs"),
                         ("metrics", "metric values"), ("rounds", "RD rounds"),
                         ("bench_payloads", "bench snapshots")))
    sweeps = ", ".join(s for s in summary["sweeps"] if s) or "—"

    body = [
        f"<h1>{e(title)}</h1>",
        f'<p class="sub">sweeps: {e(sweeps)} · generated by <code>repro dse report</code>'
        " · every chart has its data table; deltas carry a direction glyph.</p>",
        f'<div class="card">{stats}</div>',
    ]
    trend = _trend_sections(db)
    if trend:
        body.append("<h2>Knob trends</h2>")
        body.extend(trend)
    best = _best_sections(db)
    if best:
        body.append("<h2>Best runs</h2>")
        body.extend(best)
    rounds = _round_sections(db)
    if rounds:
        body.append("<h2>RD round trajectories</h2>")
        body.extend(rounds)
    regression = _regression_sections(db)
    if regression:
        body.append("<h2>Bench history</h2>")
        body.extend(regression)
    if len(body) == 3:
        body.append("<p class=\"sub\">database is empty — ingest unit payloads "
                    "or bench snapshots first.</p>")

    page = (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\"/>"
        f"<title>{e(title)}</title>"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\"/>"
        f"<style>{_STYLE}</style></head>"
        f"<body class=\"viz-root\">{''.join(body)}</body></html>\n")
    path = out / "index.html"
    path.write_text(page)
    return path


def render_report_json(db) -> str:
    """Machine-readable summary mirroring the HTML report's contents."""
    return json.dumps({
        "summary": db.summary(),
        "knobs": db.knob_names(),
        "metrics": db.metric_names(),
        "bench_files": db.bench_files(),
    }, indent=2, sort_keys=True)

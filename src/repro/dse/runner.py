"""Sweep execution: run grid units in-process, supervised, or remote.

Three execution paths share the same deterministic unit list from
:func:`repro.dse.grid.make_units`:

* ``jobs <= 1`` — plain in-process loop (bit-identical baseline);
* ``jobs > 1`` — one :class:`~repro.jobs.spec.JobSpec` per unit
  dispatched through :func:`repro.jobs.run_jobs`, inheriting the
  supervisor's deadlines, hung-worker reaping and retry-with-resume;
* :func:`submit_grid` — units posted to a running ``repro serve``
  daemon as ``place`` jobs whose ``overrides`` payload field carries
  the unit's knob mapping.

Every unit produces a JSON payload (``dse_unit: 1``) that
:class:`repro.dse.store.RunDB` ingests; :func:`run_grid` writes the
payloads plus a sweep manifest under ``out_dir`` and, when ``db_path``
is given, ingests them immediately.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse.grid import DseUnit, GridSpec, apply_knobs, make_units


def _unit_filename(unit_id: str) -> str:
    """Filesystem-safe payload filename for a unit id."""
    return unit_id.replace(":", "__").replace("/", "_") + ".json"


def run_unit(unit: DseUnit, ctx=None) -> dict:
    """Execute one sweep unit; never raises (except cancellation).

    Mirrors :func:`repro.bench.parallel.run_sweep_task`: telemetry goes
    to a private in-memory registry whose events ride back on the
    payload, exceptions become traceback strings, and
    :class:`~repro.jobs.spec.JobCancelled` is re-raised so a supervised
    worker reports ``cancelled`` rather than a unit failure.  A
    ``kernel.backend`` knob is applied for the duration of the unit and
    the previous process-wide selection restored afterwards.
    """
    from repro.jobs.spec import JobCancelled
    from repro.utils.metrics import MemorySink, MetricsRegistry

    attempt = ctx.attempt if ctx is not None else 0
    t0 = time.perf_counter()
    sink = MemorySink()
    metrics = MetricsRegistry(sink=sink)
    start_fields = dict(command="dse", sweep=unit.unit_id.split(":", 1)[0],
                        design=unit.design, shard=unit.index)
    if attempt > 0:
        start_fields["attempt"] = attempt
    metrics.start_run(**start_fields)
    error = None
    rows: list = []
    restore_backend = None
    try:
        binding = apply_knobs(unit.knobs)
        if binding.kernel_backend is not None:
            from repro import kernels

            restore_backend = kernels.requested_backend()
            kernels.configure(binding.kernel_backend, metrics)
        rows = _run_unit_flow(unit, binding, metrics)
    except JobCancelled:
        raise
    except BaseException:
        error = traceback.format_exc()
    finally:
        if restore_backend is not None:
            from repro import kernels

            kernels.configure(restore_backend)
    metrics.close()
    events = [json.loads(line) for line in sink.lines]
    return {
        "dse_unit": 1,
        "sweep": unit.unit_id.split(":", 1)[0],
        "unit_id": unit.unit_id,
        "unit_index": unit.index,
        "point": unit.point,
        "design": unit.design,
        "knobs": dict(unit.knobs),
        "placers": list(unit.placers),
        "rows": rows,
        "events": events,
        "error": error,
        "elapsed_s": time.perf_counter() - t0,
    }


def _run_unit_flow(unit: DseUnit, binding, metrics) -> list:
    """Generate the design and run the bench flow under the binding."""
    from repro.bench.harness import run_design, table_rows
    from repro.synth.suite import suite_design

    netlist = suite_design(unit.design, scale=unit.scale, seed=unit.seed)
    outcome = run_design(
        netlist,
        placers=unit.placers,
        gp_config=binding.gp_config,
        rd_config=binding.rd_config,
        metrics=metrics,
    )
    return [
        {"design": row.design, "placer": row.placer, "metrics": dict(row.metrics)}
        for row in table_rows([outcome])
    ]


@dataclass
class GridResult:
    """Everything a finished sweep produced."""

    spec: GridSpec
    units: list
    payloads: list
    events: list = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def errors(self) -> list:
        """``(unit_id, error)`` pairs for units that failed."""
        return [(p["unit_id"], p["error"]) for p in self.payloads
                if p and p.get("error")]


def _sweep_events(spec: GridSpec, units: list) -> list:
    """Emit the sweep-level ``dse.*`` telemetry segment."""
    from repro.utils.metrics import MemorySink, MetricsRegistry

    sink = MemorySink()
    metrics = MetricsRegistry(sink=sink)
    metrics.start_run(command="dse.sweep", sweep=spec.name)
    n_points = len({u.point for u in units})
    metrics.emit("dse.sweep", sweep=spec.name, n_units=len(units),
                 n_points=n_points, n_designs=len(spec.designs))
    for unit in units:
        metrics.emit("dse.shard", sweep=spec.name, unit=unit.unit_id,
                     index=unit.index, design=unit.design)
    metrics.close()
    return [json.loads(line) for line in sink.lines]


def run_grid(spec: GridSpec, jobs: int = 1, out_dir=None, db_path=None,
             job_timeout: float | None = None,
             heartbeat_timeout: float | None = None,
             max_retries: int = 1) -> GridResult:
    """Run every unit of a grid spec; optionally persist and ingest.

    With ``jobs > 1`` the units run under the supervised job runtime
    (one worker process per unit, ``jobs`` at a time); the supervisor's
    own ``job.*`` lifecycle segment is appended to the sweep events.
    Unit payload order always matches unit order, independent of worker
    completion order.
    """
    t0 = time.perf_counter()
    units = make_units(spec)
    events = _sweep_events(spec, units)

    if jobs <= 1:
        payloads = [run_unit(unit) for unit in units]
    else:
        payloads, sup_events = _run_supervised(
            units, jobs, job_timeout, heartbeat_timeout, max_retries)
        events = events + sup_events

    result = GridResult(spec=spec, units=units, payloads=payloads,
                        events=events, elapsed_s=time.perf_counter() - t0)
    if out_dir is not None:
        _write_outputs(result, out_dir)
    if db_path is not None:
        from repro.dse.store import RunDB

        with RunDB(db_path) as db:
            for payload in payloads:
                if payload is not None:
                    db.ingest_unit_payload(payload, source=f"sweep:{spec.name}")
    return result


def _run_supervised(units: list, jobs: int, job_timeout, heartbeat_timeout,
                    max_retries) -> tuple:
    """Dispatch units through :func:`repro.jobs.run_jobs`."""
    from repro.jobs import DONE, JobSpec, SupervisorConfig, run_jobs
    from repro.utils.metrics import MemorySink, MetricsRegistry

    sink = MemorySink()
    sup_metrics = MetricsRegistry(sink=sink)
    sup_metrics.start_run(command="dse.supervise", jobs=jobs)
    specs = [
        JobSpec(job_id=unit.unit_id, fn=run_unit, args=(unit,),
                with_context=True, index=unit.index)
        for unit in units
    ]
    config = SupervisorConfig(max_workers=jobs, timeout=job_timeout,
                              heartbeat_timeout=heartbeat_timeout,
                              max_retries=max_retries)
    job_results = run_jobs(specs, config=config, metrics=sup_metrics)
    sup_metrics.close()

    payloads = []
    for unit, job in zip(units, job_results):
        if job is not None and job.state == DONE and job.value is not None:
            payloads.append(job.value)
        else:
            state = job.state if job is not None else "lost"
            error = (job.error if job is not None else None) \
                or f"job ended in state {state!r}"
            payloads.append({
                "dse_unit": 1,
                "sweep": unit.unit_id.split(":", 1)[0],
                "unit_id": unit.unit_id,
                "unit_index": unit.index,
                "point": unit.point,
                "design": unit.design,
                "knobs": dict(unit.knobs),
                "placers": list(unit.placers),
                "rows": [],
                "events": [],
                "error": error,
                "elapsed_s": job.elapsed if job is not None else 0.0,
            })
    return payloads, [json.loads(line) for line in sink.lines]


def _write_outputs(result: GridResult, out_dir) -> None:
    """Write unit payloads, the manifest, and the sweep event stream."""
    out = Path(out_dir)
    units_dir = out / "units"
    units_dir.mkdir(parents=True, exist_ok=True)
    for payload in result.payloads:
        if payload is None:
            continue
        path = units_dir / _unit_filename(payload["unit_id"])
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    manifest = {
        "spec": result.spec.as_dict(),
        "units": [u.as_dict() for u in result.units],
        "errors": [{"unit_id": u, "error": e} for u, e in result.errors],
        "elapsed_s": result.elapsed_s,
    }
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    with (out / "sweep.jsonl").open("w") as fh:
        for event in result.events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


def submit_grid(spec: GridSpec, root: str, designs_dir=None,
                priority: int = 0) -> list:
    """Submit a grid's units as ``place`` jobs to a running daemon.

    Design files are generated (once per distinct design) under
    ``designs_dir`` (default ``<root>/designs``), then each unit is
    posted via :class:`~repro.service.client.ServiceClient` with its
    knob mapping in the request's ``overrides`` field and its unit id
    as the job id.  Returns the submitted queue entries.
    """
    from repro.io.bookshelf import save_design
    from repro.service.client import ServiceClient
    from repro.synth.suite import suite_design

    units = make_units(spec)
    designs = Path(designs_dir) if designs_dir is not None else Path(root) / "designs"
    designs.mkdir(parents=True, exist_ok=True)
    paths: dict = {}
    for unit in units:
        if unit.design not in paths:
            path = designs / f"{unit.design}_s{unit.scale:g}_r{unit.seed}.bl"
            if not path.exists():
                save_design(
                    suite_design(unit.design, scale=unit.scale, seed=unit.seed),
                    str(path))
            paths[unit.design] = path

    client = ServiceClient(root=root)
    entries = []
    for unit in units:
        knobs = dict(unit.knobs)
        backend = knobs.pop("kernel.backend", None)
        request = {"input": str(paths[unit.design]), "routability": True}
        if knobs:
            request["overrides"] = knobs
        if backend is not None:
            request["kernel_backend"] = backend
        entries.append(client.submit(
            request, kind="place", priority=priority,
            job_id=_unit_filename(unit.unit_id)[:-5]))
    return entries
